//! Chaos-soak invariants for the serving layer (`core::chaos`).
//!
//! Each soak serves a seeded randomized multi-hundred-request stream
//! while every serving-path fault point is armed with probabilistic
//! schedules, then checks the properties that must survive *any* fault
//! weather (DESIGN.md §12):
//!
//! * **None lost** — requests and responses are in bijection, and every
//!   response terminates `served`, `shed`, or `deadline_exceeded`
//!   (never `failed`).
//! * **Seed determinism** — identical `(seed, stream)` gives a
//!   byte-identical summary: response contents, digest, fault log,
//!   breaker transitions, every counter.
//! * **Accounting balance** — cache `inserts == len + evictions +
//!   drops` and `hits + misses` equals the lookups performed.
//! * **Legal breaker walks** — the transition log only takes edges of
//!   the breaker state machine, chained per rung.
//!
//! Arming faults is process-global, so the sessions serialize on the
//! fault lock; the obs test takes the obs lock first (same order as
//! `obs_invariants.rs`, so the two locks cannot deadlock).

use defcon::core::chaos::{self, ChaosConfig, FaultPointSet};
use defcon_support::obs::{self, ObsConfig};

/// The soak seeds. Three full-size sessions plus the pinned-golden seed
/// below satisfy the "≥ 3 seeds × 200 requests" soak contract.
const SOAK_SEEDS: [u64; 3] = [0xD15EA5E, 0xB10C0DE, 0x5EED];

fn soak_cfg(seed: u64) -> ChaosConfig {
    ChaosConfig {
        seed,
        requests: 200,
        ..ChaosConfig::default()
    }
}

#[test]
fn soak_sessions_hold_invariants_and_replay_byte_identically() {
    for seed in SOAK_SEEDS {
        let cfg = soak_cfg(seed);
        let first = chaos::run_session(&cfg);
        first.assert_invariants();
        // The soak must actually exercise the robustness machinery, not
        // vacuously pass on a quiet session.
        assert!(
            !first.fault_log.is_empty(),
            "seed {seed:#x}: no faults fired"
        );
        assert!(
            first.admission.retries > 0,
            "seed {seed:#x}: no retry exercised"
        );
        assert!(
            first.outcomes[2] > 0,
            "seed {seed:#x}: no deadline verdict exercised"
        );
        let second = chaos::run_session(&cfg);
        assert_eq!(
            first, second,
            "seed {seed:#x}: same seed must replay byte-identically"
        );
    }
}

#[test]
fn cache_lookup_accounting_balances_under_chaos() {
    let s = chaos::run_session(&soak_cfg(0x0B5E55ED));
    s.assert_invariants();
    // Lookups-side balance: every consult is a hit or a miss. The session
    // summary records both sides; their sum is the lookup count the
    // serving layer performed (terminal sheds and admission-gated
    // deadline verdicts never reach the cache).
    assert_eq!(
        s.cache.hits + s.cache.misses,
        s.requests as u64
            - s.admission.terminal_sheds
            - (s.outcomes[2] as u64 - launch_stage_deadline_verdicts(&s)),
        "hits + misses must equal the requests that reached the cache"
    );
}

/// Deadline verdicts that *did* consult the cache before tripping. Gate-
/// stage verdicts (`serve admission` / `serve preflight` / `serve
/// backoff`) fire before the lookup and never touch the cache; launch-
/// stage verdicts (`launch <kernel>`, whether from a fresh simulation or
/// a hit's replay) consulted it first. The error rendering distinguishes
/// them, so count the launch-stage ones from the response contents.
fn launch_stage_deadline_verdicts(s: &chaos::ChaosSummary) -> u64 {
    s.contents
        .iter()
        .filter(|c| c.contains("deadline exceeded") && c.contains("launch "))
        .count() as u64
}

#[test]
fn owner_thread_fault_plans_are_worker_count_invariant() {
    // Restricted to fault points consulted on the owner thread in
    // admission order, the whole summary — responses, fault log, breaker
    // walk, every counter — must be independent of the worker count.
    let cfg = |workers| ChaosConfig {
        seed: 0xFA57,
        requests: 120,
        workers,
        points: FaultPointSet::OwnerOnly,
        ..ChaosConfig::default()
    };
    let single = chaos::run_session(&cfg(1));
    single.assert_invariants();
    assert!(!single.fault_log.is_empty());
    let quad = chaos::run_session(&cfg(4));
    assert_eq!(
        single, quad,
        "worker count changed an owner-thread chaos session"
    );
}

/// The pinned golden breaker walk for the default chaos seed. If a
/// deliberate change to the breaker tuning, fault schedules, or request
/// stream moves this log, re-pin it from the `repro_chaos` output — the
/// *shape* (legal chained edges) is enforced separately above.
#[test]
fn default_seed_breaker_walk_is_pinned() {
    let s = chaos::run_session(&ChaosConfig::default());
    s.assert_invariants();
    assert_eq!(
        s.breaker_log,
        [
            "tex2D:closed->open:trip",
            "tex2D:open->half-open:cooldown",
            "tex2D:half-open->closed:success",
            "tex2D:closed->open:trip",
            "tex2D:open->half-open:cooldown",
            "tex2D:half-open->closed:success",
            "tex2D++:closed->open:trip",
            "tex2D++:open->half-open:cooldown",
            "tex2D++:half-open->closed:success",
            "tex2D:closed->open:trip",
            "tex2D:open->half-open:cooldown",
            "tex2D:half-open->closed:success",
            "tex2D:closed->open:trip",
        ],
        "golden breaker walk moved — re-pin from repro_chaos if intentional"
    );
}

#[test]
fn chaos_sessions_populate_the_obs_registry() {
    // Obs lock first, fault lock second (inside run_session) — the fixed
    // order documented in obs_invariants.rs.
    let _obs = obs::arm(ObsConfig::default());
    let s = chaos::run_session(&ChaosConfig {
        seed: 0xC0FFEE,
        requests: 80,
        ..ChaosConfig::default()
    });
    s.assert_invariants();
    let metrics = obs::metrics_json().expect("armed");
    let counters = metrics.get("counters").expect("counters object");
    for key in ["serve.requests", "serve.cache_misses", "serve.retries"] {
        assert!(
            counters.get(key).is_some(),
            "missing counter {key} in {counters}"
        );
    }
    if s.admission.terminal_sheds > 0 {
        assert!(counters.get("serve.sheds_terminal").is_some());
    }
    if s.admission.deadline_exceeded > 0 {
        assert!(counters.get("serve.deadline_exceeded").is_some());
    }
    let gauges = metrics.get("gauges").expect("gauges object");
    for key in ["serve.breaker.tex2dpp", "serve.breaker.tex2d"] {
        assert!(
            gauges.get(key).is_some(),
            "missing breaker gauge {key} in {gauges}"
        );
    }
}
