//! Cross-crate integration tests: the full DEFCON pipeline from
//! configuration to simulated speedup and numeric equivalence.

use defcon::core::pipeline::TileChoice;
use defcon::prelude::*;

#[test]
fn full_config_beats_baseline_on_a_paper_layer() {
    let gpu = Gpu::new(DeviceConfig::xavier_agx());
    let shape = DeformLayerShape::same3x3(128, 128, 69, 69);
    let (x, offsets) = synthetic_inputs(&shape, 4.0, 1);

    let baseline_cfg = DefconConfig::baseline();
    let full_cfg = DefconConfig {
        tile: TileChoice::Autotuned { budget: 8 },
        ..DefconConfig::full()
    };

    let t_base = baseline_cfg
        .build_op(shape, &gpu)
        .simulate_total(&gpu, &x, &offsets)
        .0;
    let t_full = full_cfg
        .build_op(shape, &gpu)
        .simulate_total(&gpu, &x, &offsets)
        .0;
    let speedup = t_base / t_full;
    assert!(
        speedup > 1.5,
        "full DEFCON config should be well over 1.5x, got {speedup:.2}x"
    );
}

#[test]
fn numeric_equivalence_across_the_whole_operator_stack() {
    // The tensor-crate reference, the kernels-crate executor and the
    // tape-op must all agree on the same deformable convolution.
    let gpu = Gpu::new(DeviceConfig::xavier_agx());
    let shape = DeformLayerShape::same3x3(6, 8, 11, 11);
    let (x, offsets) = synthetic_inputs(&shape, 2.0, 2);
    let weight = Tensor::randn(&[8, 6, 3, 3], 0.0, 0.2, 3);

    let reference = defcon::tensor::sample::deform_conv2d_ref(
        &x,
        &offsets,
        &weight,
        None,
        &shape.deform_params(),
        OffsetTransform::Identity,
    );
    let op_out = DeformConvOp::baseline(shape).execute(&x, &offsets, &weight, &gpu);
    defcon::tensor::assert_close(&op_out, &reference, 1e-3, 1e-3);

    // Tape op (autograd path).
    let mut tape = Tape::new();
    let xv = tape.input(x.clone());
    let ov = tape.input(offsets.clone());
    let wv = tape.input(weight.clone());
    let y = defcon::nn::ops::deform_conv2d_op(
        &mut tape,
        xv,
        ov,
        wv,
        None,
        shape.deform_params(),
        OffsetTransform::Identity,
    );
    defcon::tensor::assert_close(tape.value(y), &reference, 1e-4, 1e-4);
}

#[test]
fn texture_limits_propagate_to_the_operator() {
    // Batch × channels beyond the 2048-layer limit must fail loudly
    // (paper §III-B), not silently mis-simulate.
    let gpu = Gpu::new(DeviceConfig::xavier_agx());
    let shape = DeformLayerShape {
        n: 5,
        ..DeformLayerShape::same3x3(512, 64, 8, 8)
    };
    assert!(shape.n * shape.c_in > 2048);
    let (x, offsets) = synthetic_inputs(&shape, 2.0, 4);
    let op = DeformConvOp {
        method: SamplingMethod::Tex2d,
        ..DeformConvOp::baseline(shape)
    };
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        op.simulate_deform(&gpu, &x, &offsets)
    }));
    assert!(
        result.is_err(),
        "exceeding the layered-texture limit must panic"
    );
}

#[test]
fn latency_lut_orders_predictors_and_devices_sensibly() {
    use defcon::core::lut::{LatencyKey, LatencyLut};
    let key = LatencyKey {
        c_in: 128,
        c_out: 128,
        h: 69,
        w: 69,
        stride: 1,
    };
    let xavier = Gpu::new(DeviceConfig::xavier_agx());
    let turing = Gpu::new(DeviceConfig::rtx2080ti());

    let lut_x = LatencyLut::build(
        &xavier,
        &[key],
        SamplingMethod::SoftwareBilinear,
        OffsetPredictorKind::Standard,
    );
    let lut_t = LatencyLut::build(
        &turing,
        &[key],
        SamplingMethod::SoftwareBilinear,
        OffsetPredictorKind::Standard,
    );
    // The discrete GPU is far faster in absolute terms.
    assert!(lut_t.get(&key).unwrap().deform_ms < lut_x.get(&key).unwrap().deform_ms);

    let lut_light = LatencyLut::build(
        &xavier,
        &[key],
        SamplingMethod::Tex2dPlusPlus,
        OffsetPredictorKind::Lightweight,
    );
    assert!(lut_light.dcn_overhead_ms(&key) < lut_x.dcn_overhead_ms(&key));
}

#[test]
fn bounded_offsets_identical_numerics_when_in_range() {
    let gpu = Gpu::new(DeviceConfig::xavier_agx());
    let shape = DeformLayerShape::same3x3(4, 4, 10, 10);
    let (x, offsets) = synthetic_inputs(&shape, 3.0, 5); // within ±3 < 7
    let weight = Tensor::randn(&[4, 4, 3, 3], 0.0, 0.2, 6);
    let id = DeformConvOp::baseline(shape).execute(&x, &offsets, &weight, &gpu);
    let bounded = DeformConvOp {
        offset_transform: OffsetTransform::Bounded(7.0),
        ..DeformConvOp::baseline(shape)
    }
    .execute(&x, &offsets, &weight, &gpu);
    assert_eq!(id.data(), bounded.data());
}

#[test]
fn rounding_changes_numerics_but_bounding_does_not() {
    let gpu = Gpu::new(DeviceConfig::xavier_agx());
    let shape = DeformLayerShape::same3x3(4, 4, 10, 10);
    let (x, offsets) = synthetic_inputs(&shape, 3.0, 7);
    let weight = Tensor::randn(&[4, 4, 3, 3], 0.0, 0.2, 8);
    let id = DeformConvOp::baseline(shape).execute(&x, &offsets, &weight, &gpu);
    let rounded = DeformConvOp {
        offset_transform: OffsetTransform::Rounded,
        ..DeformConvOp::baseline(shape)
    }
    .execute(&x, &offsets, &weight, &gpu);
    let max_err = id
        .data()
        .iter()
        .zip(rounded.data().iter())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    assert!(
        max_err > 1e-3,
        "integer rounding must actually change sampling"
    );
}
