//! Cross-backend differential conformance: every operator family
//! {DCNv1, DCNv2, DCNv3} × kernel path {software, tex2D, tex2D++} cell
//! must produce **byte-identical** functional deform outputs on the
//! gpusim backend and the tiled-dataflow accel backend.
//!
//! The argument (DESIGN.md §13) is structural, and these tests pin it:
//! both backends drive the same `Im2colDeformKernel` per-element sampling
//! pipeline, and the shared GEMM accumulates each output element over the
//! identical ascending-k sequence at any blocking width — so the accel's
//! per-tile execution must reproduce gpusim's whole-image bytes exactly,
//! not merely to a tolerance. The family reduction identities
//! (v2 all-ones ≡ v1, v3 constant logits ≡ uniform 1/k² mask) are pinned
//! bytewise on the accel substrate too, mirroring
//! `tests/operator_conformance.rs` on gpusim.
//!
//! CI runs this suite under both `DEFCON_THREADS=1` and `=4`, so every
//! byte assertion also covers the worker-band dimension.

use defcon::core::autotune::{Autotuner, Strategy};
use defcon::prelude::*;

fn small_shape() -> DeformLayerShape {
    DeformLayerShape::same3x3(4, 6, 10, 10)
}

fn grouped_shape() -> DeformLayerShape {
    DeformLayerShape {
        deform_groups: 2,
        ..DeformLayerShape::same3x3(4, 4, 8, 8)
    }
}

fn weight_for(shape: &DeformLayerShape, seed: u64) -> Tensor {
    Tensor::randn(
        &[shape.c_out, shape.c_in, shape.kernel, shape.kernel],
        0.0,
        0.3,
        seed,
    )
}

fn op_with(
    shape: DeformLayerShape,
    family: OpFamily,
    method: SamplingMethod,
    modulation: Option<Tensor>,
) -> DeformConvOp {
    DeformConvOp {
        family,
        method,
        modulation,
        ..DeformConvOp::baseline(shape)
    }
}

/// Both substrates behind the trait, so every assertion goes through the
/// same `Backend` surface the serving layer uses.
fn backends() -> (Gpu, Accel) {
    (
        Gpu::new(DeviceConfig::xavier_agx()),
        Accel::new(AccelConfig::edge()),
    )
}

#[test]
fn every_family_and_path_cell_is_byte_identical_across_backends() {
    let (gpu, accel) = backends();
    for shape in [small_shape(), grouped_shape()] {
        let (x, offsets) = synthetic_inputs(&shape, 2.0, 42);
        let w = weight_for(&shape, 43);
        for family in OpFamily::all() {
            let modulation = synthetic_modulation(&shape, family, 7);
            for method in SamplingMethod::ladder() {
                let op = op_with(shape, family, method, modulation.clone());
                let on_gpu = Backend::execute(&gpu, &op, &x, &offsets, &w);
                let on_accel = Backend::execute(&accel, &op, &x, &offsets, &w);
                assert_eq!(on_gpu.shape(), on_accel.shape());
                assert_eq!(
                    on_gpu.data(),
                    on_accel.data(),
                    "backends diverged on {family:?} {} {shape:?}",
                    method.name()
                );
            }
        }
    }
}

#[test]
fn accel_tiling_is_invariant_to_the_tile_choice_bytewise() {
    // The blocking-width argument directly: different tile shapes change
    // the accel's execution order across tiles but may not change bytes.
    let (gpu, accel) = backends();
    let shape = small_shape();
    let (x, offsets) = synthetic_inputs(&shape, 2.0, 44);
    let w = weight_for(&shape, 45);
    let base = op_with(
        shape,
        OpFamily::DcnV2,
        SamplingMethod::Tex2dPlusPlus,
        synthetic_modulation(&shape, OpFamily::DcnV2, 9),
    );
    let reference = Backend::execute(&gpu, &base, &x, &offsets, &w);
    for tile in accel.tile_space(&base) {
        let op = DeformConvOp {
            tile,
            ..base.clone()
        };
        let got = Backend::execute(&accel, &op, &x, &offsets, &w);
        assert_eq!(
            reference.data(),
            got.data(),
            "tile {}x{} changed accel bytes",
            tile.h,
            tile.w
        );
    }
}

#[test]
fn v2_reductions_hold_bytewise_on_the_accel_backend() {
    let (_, accel) = backends();
    for shape in [small_shape(), grouped_shape()] {
        let (x, offsets) = synthetic_inputs(&shape, 2.0, 46);
        let w = weight_for(&shape, 47);
        let (oh, ow) = shape.out_hw();
        let mc = shape.deform_groups * shape.kernel * shape.kernel;
        let ones = Tensor::full(&[shape.n, mc, oh, ow], 1.0);
        for method in SamplingMethod::ladder() {
            let v1 = Backend::execute(
                &accel,
                &op_with(shape, OpFamily::DcnV1, method, None),
                &x,
                &offsets,
                &w,
            );
            let v2_ones = Backend::execute(
                &accel,
                &op_with(shape, OpFamily::DcnV2, method, Some(ones.clone())),
                &x,
                &offsets,
                &w,
            );
            let v2_none = Backend::execute(
                &accel,
                &op_with(shape, OpFamily::DcnV2, method, None),
                &x,
                &offsets,
                &w,
            );
            assert_eq!(
                v1.data(),
                v2_ones.data(),
                "accel: all-ones mask changed bytes on {}",
                method.name()
            );
            assert_eq!(
                v1.data(),
                v2_none.data(),
                "accel: neutral (absent) mask changed bytes on {}",
                method.name()
            );
        }
    }
}

#[test]
fn v3_constant_logits_are_the_uniform_average_bytewise_on_accel() {
    let (_, accel) = backends();
    for shape in [small_shape(), grouped_shape()] {
        let (x, offsets) = synthetic_inputs(&shape, 2.0, 48);
        let w = weight_for(&shape, 49);
        let (oh, ow) = shape.out_hw();
        let kk = shape.kernel * shape.kernel;
        let mc = shape.deform_groups * kk;
        // softmax over equal logits is exactly 1/k² per tap; the v2 flat
        // mask of the same f32 makes the comparison bitwise, not tolerant.
        let constant = Tensor::full(&[shape.n, mc, oh, ow], 0.875);
        let flat = Tensor::full(&[shape.n, mc, oh, ow], (1.0f64 / kk as f64) as f32);
        for method in SamplingMethod::ladder() {
            let v3_const = Backend::execute(
                &accel,
                &op_with(shape, OpFamily::DcnV3, method, Some(constant.clone())),
                &x,
                &offsets,
                &w,
            );
            let v3_none = Backend::execute(
                &accel,
                &op_with(shape, OpFamily::DcnV3, method, None),
                &x,
                &offsets,
                &w,
            );
            let v2_flat = Backend::execute(
                &accel,
                &op_with(shape, OpFamily::DcnV2, method, Some(flat.clone())),
                &x,
                &offsets,
                &w,
            );
            assert_eq!(
                v3_const.data(),
                v3_none.data(),
                "accel: neutral logits diverged from constant logits on {}",
                method.name()
            );
            assert_eq!(
                v3_const.data(),
                v2_flat.data(),
                "accel: constant-logit softmax is not the uniform average on {}",
                method.name()
            );
        }
    }
}

#[test]
fn accel_reports_are_reproducible_and_never_depend_on_data() {
    use defcon_support::json::ToJson;
    let (_, accel) = backends();
    let shape = small_shape();
    let (x, offsets) = synthetic_inputs(&shape, 2.0, 50);
    let json = |op: &DeformConvOp, x: &Tensor, offs: &Tensor| -> String {
        Backend::launch_total(&accel, op, x, offs)
            .expect("accel launch")
            .1
            .iter()
            .map(|r| r.to_json().to_string())
            .collect::<Vec<_>>()
            .join("\n")
    };
    for family in OpFamily::all() {
        for method in SamplingMethod::ladder() {
            let op = op_with(
                shape,
                family,
                method,
                synthetic_modulation(&shape, family, 3),
            );
            let first = json(&op, &x, &offsets);
            assert_eq!(first, json(&op, &x, &offsets), "accel reports not stable");
            // Different input data, same shape: the trace may not change.
            let (x2, offs2) = synthetic_inputs(&shape, 3.0, 99);
            let hot = op_with(
                shape,
                family,
                method,
                synthetic_modulation(&shape, family, 8),
            );
            assert_eq!(
                first,
                json(&hot, &x2, &offs2),
                "accel trace depends on data for {family:?} {}",
                method.name()
            );
        }
    }
}

#[test]
fn autotune_search_transfers_wholesale_to_the_accel_tile_space() {
    let (_, accel) = backends();
    let shape = DeformLayerShape::same3x3(16, 16, 40, 40);
    let op = DeformConvOp::baseline(shape);
    let space = accel.tile_space(&op);
    assert!(!space.is_empty(), "accel admits no tiles for {shape:?}");
    let objective = accel.tile_objective(&op);
    let tuner = Autotuner {
        strategy: Strategy::Exhaustive,
        budget: 0,
        seed: 0,
    };
    let result = tuner.run(&space, &objective);
    assert!(result.best_value.is_finite());
    assert_eq!(result.evaluations.len(), space.len());
    // The exhaustive winner is the true arg-min of the cycle model.
    let brute = space
        .iter()
        .map(|&t| objective(t))
        .fold(f64::INFINITY, f64::min);
    assert_eq!(result.best_value, brute);
    // Bayesian search over the same space stays inside it and never beats
    // the exhaustive optimum — the tile search transfers unchanged.
    let bayes = Autotuner::bayesian(8, 5).run(&space, &objective);
    assert!(space.contains(&bayes.best));
    assert!(bayes.best_value >= result.best_value);
}
