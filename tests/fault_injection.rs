//! End-to-end fault-injection suite: every graceful-degradation contract in
//! DESIGN.md §"Fault injection", exercised across crate boundaries with the
//! seeded `defcon_support::fault` harness.
//!
//! Arming is process-global, so **every test here either arms a plan or
//! takes [`fault::quiesce`]** — both hold the arming lock, serializing the
//! tests against each other without any ordering assumptions.

use defcon::core::lut::{LatencyKey, LatencyLut};
use defcon::core::search::{
    IntervalSearch, RobustSearchConfig, SearchConfig, SearchModel, SearchOutcome,
};
use defcon::gpusim::{BlockTrace, DeviceConfig, Gpu, TraceSink};
use defcon::kernels::op::{synthetic_inputs, DeformConvOp, OffsetPredictorKind, SamplingMethod};
use defcon::kernels::DeformLayerShape;
use defcon::nn::graph::{ParamId, ParamStore, Tape, Var};
use defcon::nn::loss;
use defcon::nn::modules::LayerChoice;
use defcon::tensor::Tensor;
use defcon_support::ckpt;
use defcon_support::error::DefconError;
use defcon_support::fault::{self, FaultPlan, Schedule};
use defcon_support::par::ParallelSliceMut;
use std::path::PathBuf;

fn tmp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("defcon-faultinj-{}-{name}", std::process::id()));
    p
}

// --- support::par: worker-panic band recovery ---------------------------

fn fill_bands(threads: usize) -> Vec<u64> {
    let mut out = vec![0u64; 64];
    out.par_chunks_mut(8)
        .threads(threads)
        .enumerate()
        .for_each(|(i, chunk)| {
            for (j, v) in chunk.iter_mut().enumerate() {
                *v = (i as u64 + 1).wrapping_mul(0x9E37_79B9) ^ (j as u64);
            }
        });
    out
}

#[test]
fn worker_panic_band_rerun_is_byte_identical_to_serial() {
    // Reference: fully serial, no faults armed (quiesced by the armed
    // guard below — one scope covers both runs).
    let _armed = fault::arm(FaultPlan::new(71).point("par.band", Schedule::Nth(1)));
    let reference = {
        // threads(1) never spawns workers, so `par.band` cannot fire here.
        fill_bands(1)
    };
    // Parallel run: band 1's worker thread is killed by the injected
    // panic; the band is re-run serially after the parallel phase.
    let recovered = fill_bands(4);
    assert_eq!(fault::log(), vec!["par.band#1"], "fault must have fired");
    assert_eq!(
        reference, recovered,
        "recovered output must be byte-identical"
    );
}

// --- fault harness itself: seeded schedules are byte-reproducible -------

fn drive_fault_log(seed: u64) -> Vec<String> {
    let _armed = fault::arm(
        FaultPlan::new(seed)
            .point("demo.prob", Schedule::Prob(0.4))
            .point("demo.every", Schedule::EveryNth(3)),
    );
    for i in 0..32u64 {
        let _ = fault::fires("demo.prob");
        let _ = fault::fires_at("demo.every", i);
    }
    fault::log()
}

#[test]
fn same_fault_seed_yields_byte_identical_logs_across_runs() {
    let first = drive_fault_log(99);
    let second = drive_fault_log(99);
    assert!(!first.is_empty(), "the schedules above must fire");
    assert_eq!(first, second, "same seed, same plan → same log bytes");
    let other = drive_fault_log(100);
    assert_ne!(first, other, "the Prob schedule must depend on the seed");
}

// --- support::ckpt: torn writes and media rot ---------------------------

#[test]
fn ckpt_load_fault_is_detected_and_discardable() {
    let p = tmp_path("ckpt-load");
    {
        let _quiet = fault::quiesce();
        ckpt::save(&p, "{\"epoch\":3}").unwrap();
    }
    let _armed = fault::arm(FaultPlan::new(53).point("ckpt.load", Schedule::Always));
    assert!(matches!(ckpt::load(&p), Err(DefconError::Corrupt { .. })));
    assert_eq!(ckpt::load_or_discard(&p).unwrap(), None);
    assert_eq!(fault::log(), vec!["ckpt.load#0", "ckpt.load#1"]);
    std::fs::remove_file(&p).unwrap();
}

// --- core::lut: corrupted table bytes -----------------------------------

fn lut_key() -> LatencyKey {
    LatencyKey {
        c_in: 16,
        c_out: 16,
        h: 16,
        w: 16,
        stride: 1,
    }
}

fn tiny_lut() -> LatencyLut {
    let gpu = Gpu::new(DeviceConfig::xavier_agx());
    LatencyLut::build(
        &gpu,
        &[lut_key()],
        SamplingMethod::SoftwareBilinear,
        OffsetPredictorKind::Standard,
    )
}

#[test]
fn lut_corruption_on_load_is_a_typed_error_never_a_panic() {
    let p = tmp_path("lut.json");
    let lut = {
        let _quiet = fault::quiesce();
        let lut = tiny_lut();
        lut.save(&p).unwrap();
        lut
    };
    {
        let _armed = fault::arm(FaultPlan::new(17).point("lut.load", Schedule::Always));
        let err = LatencyLut::load(&p).unwrap_err();
        assert!(matches!(err, DefconError::Json { .. }), "got {err}");
    }
    // Disarmed, the same file loads back bit-for-bit.
    let _quiet = fault::quiesce();
    assert_eq!(LatencyLut::load(&p).unwrap().to_json(), lut.to_json());
    std::fs::remove_file(&p).unwrap();
}

// --- gpusim: texture-layer limit and device-config constraints ----------

#[test]
fn texture_limit_fault_drives_the_fallback_ladder_to_software() {
    let _armed = fault::arm(FaultPlan::new(61).point("texture.limit", Schedule::Always));
    let gpu = Gpu::new(DeviceConfig::xavier_agx());
    let shape = DeformLayerShape::same3x3(16, 16, 12, 12);
    let (x, offsets) = synthetic_inputs(&shape, 4.0, 9);
    let op = DeformConvOp {
        method: SamplingMethod::Tex2dPlusPlus,
        ..DeformConvOp::baseline(shape)
    };
    // The shape fits Xavier's limits; only the injected fault makes every
    // texture build fail, so both texture rungs degrade and the software
    // sampler (which builds no textures) carries the launch.
    let fb = op
        .simulate_deform_with_fallback(&gpu, &x, &offsets)
        .unwrap();
    assert_eq!(fb.method, SamplingMethod::SoftwareBilinear);
    assert_eq!(fb.degradations.len(), 2, "{:?}", fb.degradations);
    assert!(!fb.reports.is_empty());
    assert!(!fault::log().is_empty(), "texture.limit must have fired");
}

/// The modulated (DCNv2) and sparse (DCNv3) operators walk the same
/// tex2D++ → tex2D → software ladder as v1 when texture builds fail: the
/// modulation tensor rides along every rung, the fault log is pinned (one
/// `texture.limit` fire per texture rung, deterministic order), one
/// `kernels.fallback` obs event fires per degraded rung, and the surviving
/// software report keeps the family's label suffix.
#[test]
fn modulated_families_walk_the_fallback_ladder_with_pinned_logs() {
    use defcon::kernels::op::{synthetic_modulation, OpFamily};
    use defcon_support::obs::{self, find_spans, ObsConfig};

    let gpu = Gpu::new(DeviceConfig::xavier_agx());
    let shape = DeformLayerShape::same3x3(16, 16, 12, 12);
    let (x, offsets) = synthetic_inputs(&shape, 4.0, 9);
    for family in [OpFamily::DcnV2, OpFamily::DcnV3] {
        // Obs lock first, then fault — the fixed order (see obs_invariants).
        let _obs = obs::arm(ObsConfig::default());
        let _armed = fault::arm(FaultPlan::new(61).point("texture.limit", Schedule::Always));
        let op = DeformConvOp {
            method: SamplingMethod::Tex2dPlusPlus,
            family,
            modulation: synthetic_modulation(&shape, family, 9),
            ..DeformConvOp::baseline(shape)
        };
        let fb = op
            .simulate_deform_with_fallback(&gpu, &x, &offsets)
            .unwrap();
        assert_eq!(fb.method, SamplingMethod::SoftwareBilinear, "{family:?}");
        assert_eq!(
            fb.degradations.len(),
            2,
            "{family:?}: {:?}",
            fb.degradations
        );
        assert!(fb.degradations[0].starts_with("tex2D++ unavailable"));
        assert!(fb.degradations[1].starts_with("tex2D unavailable"));
        // Pinned fault ordering: each texture rung builds exactly one
        // layered texture, so the injected fault fires once per rung, in
        // ladder order.
        assert_eq!(
            fault::log(),
            vec!["texture.limit#0", "texture.limit#1"],
            "{family:?}"
        );
        // One obs event per degraded rung, tagged with the rung it left.
        let forest = obs::snapshot();
        let events = find_spans(&forest, "kernels.fallback");
        assert_eq!(events.len(), 2, "{family:?}: one event per degraded rung");
        assert_eq!(events[0].str_arg("from"), Some("tex2D++"));
        assert_eq!(events[1].str_arg("from"), Some("tex2D"));
        let ladder = find_spans(&forest, "kernels.fallback_ladder");
        assert_eq!(ladder.len(), 1);
        assert_eq!(ladder[0].str_arg("selected"), Some("PyTorch"));
        assert_eq!(ladder[0].u64_arg("degradations"), Some(2));
        // The software rung that carried the launch still traces the
        // family-suffixed deform kernel.
        let suffix = family.label_suffix();
        assert!(
            fb.reports
                .iter()
                .any(|r| r.kernel.ends_with(suffix) && r.kernel.contains("deform")),
            "{family:?}: no deform kernel with suffix {suffix:?} in the surviving report"
        );
    }
}

struct NullKernel;

impl BlockTrace for NullKernel {
    fn grid_blocks(&self) -> usize {
        1
    }
    fn block_threads(&self) -> usize {
        32
    }
    fn trace_block(&self, _block: usize, _sink: &mut TraceSink) {}
}

#[test]
fn cache_config_fault_turns_launch_into_a_typed_constraint() {
    let _armed = fault::arm(FaultPlan::new(62).point("device.cache_config", Schedule::Always));
    let gpu = Gpu::new(DeviceConfig::xavier_agx());
    let err = gpu.try_launch(&NullKernel).unwrap_err();
    match err {
        DefconError::Constraint { what, .. } => assert_eq!(what, "cache-config"),
        other => panic!("expected Constraint, got {other}"),
    }
    assert_eq!(fault::log(), vec!["device.cache_config#0"]);
}

// --- core::autotune: Cholesky pivot failure → random-search fallback ----

#[test]
fn cholesky_fault_degrades_bayesian_tuner_to_seeded_random_search() {
    use defcon::core::autotune::Autotuner;
    use defcon::kernels::TileConfig;
    let objective = |t: TileConfig| (t.h as f64 - 8.0).abs() + (t.w as f64 - 8.0).abs();
    let space = TileConfig::search_space();
    let faulted = {
        let _armed = fault::arm(FaultPlan::new(63).point("autotune.cholesky", Schedule::Always));
        let r = Autotuner::bayesian(10, 0xA07).run(&space, objective);
        assert!(!fault::log().is_empty(), "cholesky must have failed");
        r
    };
    // The fallback still spends the whole budget and returns a valid best.
    assert_eq!(faulted.evaluations.len(), 10);
    assert!(space.contains(&faulted.best));
    // Twice with the same seed → same evaluations: the fallback is as
    // deterministic as the happy path.
    let again = {
        let _armed = fault::arm(FaultPlan::new(63).point("autotune.cholesky", Schedule::Always));
        Autotuner::bayesian(10, 0xA07).run(&space, objective)
    };
    assert_eq!(faulted.evaluations, again.evaluations);
}

// --- core::search: checkpoint interruption / resume byte-identity -------
//
// `PureNet` is a [`SearchModel`] whose `forward_loss` is a pure function of
// `(store, batch)` — no Gumbel noise, no running statistics. For such a
// model the checkpoint captures the *entire* optimization state (values,
// momentum, LR schedule), so a resumed run must be byte-identical to an
// uninterrupted one, not merely statistically equivalent.

struct PureNet {
    w: ParamId,
    alpha: ParamId,
    targets: Vec<Tensor>,
}

impl PureNet {
    fn new(store: &mut ParamStore) -> Self {
        let w = store.add("w", Tensor::zeros(&[4]), true);
        let alpha = store.add("alpha", Tensor::from_vec(vec![0.05, -0.05], &[2]), false);
        let targets = (0..3)
            .map(|b| {
                let data = (0..4).map(|i| ((b * 4 + i) as f32 * 0.7).sin()).collect();
                Tensor::from_vec(data, &[4])
            })
            .collect();
        PureNet { w, alpha, targets }
    }
}

impl SearchModel for PureNet {
    fn num_slots(&self) -> usize {
        1
    }
    fn alpha(&self, _i: usize) -> ParamId {
        self.alpha
    }
    fn latency_key(&self, _i: usize) -> LatencyKey {
        lut_key()
    }
    fn set_temperature(&mut self, _tau: f32) {}
    fn forward_loss(&mut self, tape: &mut Tape, store: &ParamStore, batch: usize) -> Var {
        let w = tape.param(store, self.w);
        loss::mse(tape, w, &self.targets[batch % self.targets.len()])
    }
    fn freeze(&mut self, store: &ParamStore) -> Vec<LayerChoice> {
        let a = store.value(self.alpha).data();
        vec![if a[1] > a[0] {
            LayerChoice::Deformable
        } else {
            LayerChoice::Regular
        }]
    }
}

fn pure_cfg(finetune_epochs: usize) -> SearchConfig {
    SearchConfig {
        search_epochs: 2,
        finetune_epochs,
        iters_per_epoch: 2,
        ..Default::default()
    }
}

/// Runs `PureNet` through the search; returns the outcome and the exact
/// serialized parameter state (the "byte-identical" witness).
fn run_pure(cfg: SearchConfig, robust: &RobustSearchConfig) -> (SearchOutcome, String) {
    let mut store = ParamStore::new();
    let mut net = PureNet::new(&mut store);
    let out = IntervalSearch::new(cfg, tiny_lut())
        .run_robust(&mut net, &mut store, robust)
        .unwrap();
    (out, store.state_to_json().to_string())
}

fn assert_same_run(a: &(SearchOutcome, String), b: &(SearchOutcome, String)) {
    assert_eq!(a.0.loss_history, b.0.loss_history);
    assert!(
        a.0.final_loss == b.0.final_loss || (a.0.final_loss.is_nan() && b.0.final_loss.is_nan())
    );
    assert_eq!(a.0.choices, b.0.choices);
    assert_eq!(a.1, b.1, "parameter state must match byte-for-byte");
}

#[test]
fn search_resume_after_mid_run_interrupt_is_byte_identical() {
    let _quiet = fault::quiesce();
    let path = tmp_path("search-midrun");
    let _ = std::fs::remove_file(&path);
    // Reference: the uninterrupted run, no checkpointing.
    let reference = run_pure(pure_cfg(2), &RobustSearchConfig::default());
    // "Interrupted" run: the process dies right after the search phase —
    // simulated by running only the search epochs against the checkpoint
    // path (the post-epoch checkpoint on disk is byte-identical to the one
    // the uninterrupted run writes at the same point).
    let with_ckpt = RobustSearchConfig {
        checkpoint: Some(path.clone()),
        ..Default::default()
    };
    let _ = run_pure(pure_cfg(0), &with_ckpt);
    // Resume with the full config: both search epochs are skipped, the
    // optimizer schedule and momentum come from the checkpoint, and the
    // fine-tune phase runs to a byte-identical end state.
    let resumed = run_pure(pure_cfg(2), &with_ckpt);
    assert_same_run(&reference, &resumed);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn truncated_search_checkpoint_restarts_and_reproduces_the_run() {
    let _quiet = fault::quiesce();
    let path = tmp_path("search-trunc");
    // A torn write: CRC header present, payload cut off mid-token.
    std::fs::write(&path, "0c0ffee0\n{\"epochs_done\":").unwrap();
    let reference = run_pure(pure_cfg(2), &RobustSearchConfig::default());
    let with_ckpt = RobustSearchConfig {
        checkpoint: Some(path.clone()),
        ..Default::default()
    };
    let recovered = run_pure(pure_cfg(2), &with_ckpt);
    assert_same_run(&reference, &recovered);
    // The run replaced the truncated file with a valid checkpoint.
    assert!(ckpt::load(&path).unwrap().is_some());
    std::fs::remove_file(&path).unwrap();
}

// --- core::serve: admission shedding and cache corruption ---------------

fn serve_req(c: usize, family: SamplingMethod) -> defcon::core::serve::SimRequest {
    use defcon::core::serve::{RequestPolicy, ServeDevice, SimRequest};
    use defcon::kernels::backend::BackendKind;
    use defcon::kernels::op::OpFamily;
    SimRequest {
        device: ServeDevice::XavierAgx,
        layer: DeformLayerShape::same3x3(c, c, 8, 8),
        kernel_family: family,
        op_family: OpFamily::DcnV1,
        backend: BackendKind::Gpusim,
        policy: RequestPolicy {
            max_blocks: 16,
            ..RequestPolicy::default()
        },
    }
}

fn serve_cfg() -> defcon::core::serve::ServeConfig {
    defcon::core::serve::ServeConfig {
        workers: 1,
        queue_capacity: 4,
        cache_capacity: 16,
        ..defcon::core::serve::ServeConfig::default()
    }
}

#[test]
fn enqueue_fault_sheds_then_degrades_then_serves() {
    use defcon::core::serve::{ServeOutcome, SimServer};
    // Admission fails on *every* submit: each request is shed once, shed
    // again on the post-drain retry, then degraded one ladder rung and
    // served inline. A request already at the software floor has no rung
    // left to give up, so it is shed *terminally* with a typed Overloaded
    // error — but still answered: shed → degrade-or-terminal, nothing
    // dropped.
    let _armed = fault::arm(FaultPlan::new(81).point("serve.enqueue", Schedule::Always));
    let mut server = SimServer::new(serve_cfg());
    let reqs = vec![
        serve_req(4, SamplingMethod::Tex2dPlusPlus),
        serve_req(4, SamplingMethod::Tex2d),
        serve_req(4, SamplingMethod::SoftwareBilinear),
    ];
    let out = server.serve(&reqs);
    assert_eq!(out.len(), 3, "every request must still be answered");
    // One rung down from each requested texture family; served degraded.
    assert!(out[0].degraded_admission && out[1].degraded_admission);
    assert!(out[0].error.is_none() && out[1].error.is_none());
    assert_eq!(out[0].outcome, ServeOutcome::Served);
    assert_eq!(out[1].outcome, ServeOutcome::Served);
    assert_eq!(out[0].request.kernel_family, SamplingMethod::Tex2d);
    assert_eq!(
        out[1].request.kernel_family,
        SamplingMethod::SoftwareBilinear
    );
    // The software-floor request is terminally shed with a typed error.
    assert!(!out[2].degraded_admission);
    assert_eq!(out[2].outcome, ServeOutcome::Shed);
    assert!(out[2]
        .error
        .as_deref()
        .is_some_and(|e| e.contains("overloaded")));
    assert!(out[2].reports.is_empty());
    assert_eq!(
        out[2].request.kernel_family,
        SamplingMethod::SoftwareBilinear
    );
    assert_eq!(server.sheds(), 6, "submit + retry rejected per request");
    assert_eq!(server.degraded_admissions(), 2);
    assert_eq!(server.terminal_sheds(), 1);
    // Pinned fault ordering: two `serve.enqueue` evaluations per request.
    assert_eq!(
        fault::log(),
        vec![
            "serve.enqueue#0",
            "serve.enqueue#1",
            "serve.enqueue#2",
            "serve.enqueue#3",
            "serve.enqueue#4",
            "serve.enqueue#5",
        ]
    );
}

#[test]
fn queue_overflow_sheds_with_a_typed_overloaded_error() {
    use defcon::core::serve::SimServer;
    let _quiet = fault::quiesce();
    let mut server = SimServer::new(serve_cfg());
    for i in 0..4 {
        server
            .submit(serve_req(2 + i, SamplingMethod::Tex2d))
            .unwrap();
    }
    let err = server
        .submit(serve_req(8, SamplingMethod::Tex2d))
        .unwrap_err();
    assert!(
        matches!(
            err,
            DefconError::Overloaded {
                queue_depth: 4,
                capacity: 4,
                ..
            }
        ),
        "got {err}"
    );
    assert!(err.is_degradable(), "overload must be a degradable class");
}

#[test]
fn cache_fault_drops_the_entry_and_resimulates_identically() {
    use defcon::core::serve::SimServer;
    // `serve.cache` fires on the first would-be hit: the entry is dropped
    // (modelling corruption), the request re-simulates and re-caches, and
    // the third pass hits the re-inserted entry. All three responses must
    // carry identical bytes — re-derivation is as good as the cache.
    let _armed = fault::arm(FaultPlan::new(82).point("serve.cache", Schedule::Nth(0)));
    let mut server = SimServer::new(serve_cfg());
    let req = vec![serve_req(4, SamplingMethod::Tex2d)];
    let first = server.serve(&req);
    let second = server.serve(&req);
    let third = server.serve(&req);
    assert!(!first[0].from_cache, "cold miss");
    assert!(!second[0].from_cache, "fault turned the hit into a miss");
    assert!(third[0].from_cache, "re-inserted entry now hits");
    assert_eq!(first[0].content_string(), second[0].content_string());
    assert_eq!(first[0].content_string(), third[0].content_string());
    assert_eq!(server.cache().drops(), 1);
    assert_eq!(fault::log(), vec!["serve.cache#0"]);
}

#[test]
fn deadline_fault_forces_an_admission_verdict() {
    use defcon::core::serve::{ServeOutcome, SimServer};
    // `serve.deadline` models the deadline gate firing at admission. It
    // is only consulted for deadline-carrying requests, so unbudgeted
    // streams keep their fault-log indices.
    let _armed = fault::arm(FaultPlan::new(83).point("serve.deadline", Schedule::Always));
    let mut server = SimServer::new(serve_cfg());
    let unbudgeted = serve_req(4, SamplingMethod::Tex2d);
    let mut budgeted = serve_req(6, SamplingMethod::Tex2d);
    budgeted.policy.deadline_cycles = u64::MAX / 2;
    let out = server.serve(&[unbudgeted, budgeted]);
    assert_eq!(out[0].outcome, ServeOutcome::Served);
    assert!(out[0].error.is_none());
    assert_eq!(out[1].outcome, ServeOutcome::DeadlineExceeded);
    assert!(out[1]
        .error
        .as_deref()
        .is_some_and(|e| e.contains("serve admission")));
    assert!(out[1].reports.is_empty());
    assert_eq!(server.deadline_exceeded(), 1);
    // Exactly one consult: the unbudgeted request never reached the gate.
    assert_eq!(fault::log(), vec!["serve.deadline#0"]);
}

#[test]
fn retry_attempt_fault_costs_the_retry_then_degrades() {
    use defcon::core::serve::{ServeOutcome, SimServer};
    // First admission is shed (`serve.enqueue` hit 0); the single default
    // retry is then lost to `retry.attempt` before the queue is even
    // consulted, so the request exhausts its retries and degrades one
    // rung — the (sorted) fault log pins exactly one consult of each.
    let _armed = fault::arm(
        FaultPlan::new(84)
            .point("serve.enqueue", Schedule::Nth(0))
            .point("retry.attempt", Schedule::Always),
    );
    let mut server = SimServer::new(serve_cfg());
    let out = server.serve(&[serve_req(4, SamplingMethod::Tex2d)]);
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].outcome, ServeOutcome::Served);
    assert!(out[0].degraded_admission);
    assert_eq!(
        out[0].request.kernel_family,
        SamplingMethod::SoftwareBilinear
    );
    assert_eq!(server.retries(), 1);
    assert_eq!(server.degraded_admissions(), 1);
    assert_eq!(fault::log(), vec!["retry.attempt#0", "serve.enqueue#0"]);
}

#[test]
fn breaker_trip_fault_reroutes_only_texture_rungs() {
    use defcon::core::serve::{ServeOutcome, SimServer};
    use defcon_support::breaker::BreakerState;
    // `breaker.trip` force-opens the requested rung at admission. The
    // software floor is unguarded, so a floor request neither consults
    // the fault nor shifts the log indices.
    let _armed = fault::arm(FaultPlan::new(85).point("breaker.trip", Schedule::Nth(0)));
    let mut server = SimServer::new(serve_cfg());
    let out = server.serve(&[
        serve_req(4, SamplingMethod::SoftwareBilinear),
        serve_req(4, SamplingMethod::Tex2d),
    ]);
    assert_eq!(out[0].outcome, ServeOutcome::Served);
    assert_eq!(
        out[0].request.kernel_family,
        SamplingMethod::SoftwareBilinear
    );
    // The texture request was rerouted to the floor and still served.
    assert_eq!(out[1].outcome, ServeOutcome::Served);
    assert_eq!(
        out[1].request.kernel_family,
        SamplingMethod::SoftwareBilinear
    );
    assert_eq!(
        server.breaker().state(SamplingMethod::Tex2d),
        BreakerState::Open
    );
    assert_eq!(
        server.breaker().log(),
        ["tex2D:closed->open:trip".to_string()]
    );
    assert_eq!(fault::log(), vec!["breaker.trip#0"]);
}

#[test]
fn ckpt_write_fault_degrades_the_next_resume_to_a_fresh_start() {
    let path = tmp_path("search-torn-write");
    let _ = std::fs::remove_file(&path);
    let with_ckpt = RobustSearchConfig {
        checkpoint: Some(path.clone()),
        ..Default::default()
    };
    // Every checkpoint this run writes is torn (corrupted pre-write); the
    // run itself completes — the damage only surfaces on the next load.
    let first = {
        let _armed = fault::arm(FaultPlan::new(64).point("ckpt.write", Schedule::Always));
        let r = run_pure(pure_cfg(2), &with_ckpt);
        assert!(!fault::log().is_empty(), "every save must have been torn");
        r
    };
    // The resume finds only torn bytes, discards them (CRC), and restarts
    // from scratch — reproducing the run exactly, per the ckpt contract.
    let _quiet = fault::quiesce();
    assert!(matches!(
        ckpt::load(&path),
        Err(DefconError::Corrupt { .. })
    ));
    let second = run_pure(pure_cfg(2), &with_ckpt);
    assert_same_run(&first, &second);
    // And this run's checkpoints reached the disk intact.
    assert!(ckpt::load(&path).unwrap().is_some());
    std::fs::remove_file(&path).unwrap();
}

// --- accel: tile-scheduler faults fall back to the gpusim ladder --------

/// An injected `accel.tile` fault at configuration time degrades the accel
/// launch to the full gpusim fallback ladder: the launch still succeeds on
/// the requested texture path, the degradation line names the abandoned
/// substrate, the fault log is pinned (configuration evaluates the point
/// exactly once), and the `kernels.fallback` obs event is tagged
/// `from: "accel"` like any other abandoned rung.
#[test]
fn accel_tile_fault_degrades_to_the_gpusim_ladder_with_pinned_log() {
    use defcon::accel::{launch_with_gpu_fallback, Accel, AccelConfig};
    use defcon_support::obs::{self, find_spans, ObsConfig};

    let gpu = Gpu::new(DeviceConfig::xavier_agx());
    let accel = Accel::new(AccelConfig::edge());
    let shape = DeformLayerShape::same3x3(16, 16, 12, 12);
    let (x, offsets) = synthetic_inputs(&shape, 4.0, 11);
    let op = DeformConvOp {
        method: SamplingMethod::Tex2dPlusPlus,
        ..DeformConvOp::baseline(shape)
    };
    // Obs lock first, then fault — the fixed order (see obs_invariants).
    let _obs = obs::arm(ObsConfig::default());
    let _armed = fault::arm(FaultPlan::new(91).point("accel.tile", Schedule::Always));
    let fb = launch_with_gpu_fallback(&accel, &gpu, &op, &x, &offsets).unwrap();
    // The gpusim ladder is healthy, so the requested rung survives.
    assert_eq!(fb.method, SamplingMethod::Tex2dPlusPlus);
    assert_eq!(fb.degradations.len(), 1, "{:?}", fb.degradations);
    assert!(
        fb.degradations[0].starts_with("accel unavailable"),
        "{:?}",
        fb.degradations
    );
    assert_eq!(fault::log(), vec!["accel.tile#0"]);
    let forest = obs::snapshot();
    let events = find_spans(&forest, "kernels.fallback");
    assert_eq!(events.len(), 1, "one event for the abandoned substrate");
    assert_eq!(events[0].str_arg("from"), Some("accel"));
    // No accel launch span: the substrate was rejected before launching.
    assert!(find_spans(&forest, "accel.launch").is_empty());
}

/// The same fault through the serving layer: a request pinned to the accel
/// backend is still answered (via the gpusim ladder), carries the
/// substrate degradation line, and stays cacheable — the replay is
/// byte-identical content even though the fault only fired once.
#[test]
fn accel_tile_fault_in_serving_degrades_but_still_answers_and_caches() {
    use defcon::core::serve::{ServeOutcome, SimServer};
    use defcon::kernels::backend::BackendKind;

    let _armed = fault::arm(FaultPlan::new(92).point("accel.tile", Schedule::Always));
    let mut server = SimServer::new(serve_cfg());
    let req = defcon::core::serve::SimRequest {
        backend: BackendKind::Accel,
        ..serve_req(4, SamplingMethod::Tex2d)
    };
    // Two separate sessions: within one drain a duplicate simulates
    // rather than waiting on its twin, so the cache hit needs a second
    // serve call (same discipline as the repro_serving session).
    let mut out = server.serve(&[req.clone()]);
    out.extend(server.serve(&[req]));
    assert_eq!(out.len(), 2);
    assert_eq!(out[0].outcome, ServeOutcome::Served);
    assert!(out[0].error.is_none());
    assert_eq!(out[0].method, SamplingMethod::Tex2d);
    assert!(out[0].degradations[0].starts_with("accel unavailable"));
    // Second submission answers from the cache with identical content;
    // the fault point is only evaluated by the one real simulation.
    assert!(out[1].from_cache);
    assert_eq!(
        out[0].content_json().to_string(),
        out[1].content_json().to_string()
    );
    assert_eq!(fault::log(), vec!["accel.tile#0"]);
}
