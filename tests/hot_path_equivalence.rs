//! Equivalence tests for the zero-allocation trace hot path.
//!
//! Two families:
//!
//! 1. The in-place coalescer (`coalesce_into`) must be **bit-equal** to the
//!    allocating reference oracle (`coalesce`) on every warp shape — the
//!    golden snapshots depend on the sector order the cache walk sees.
//! 2. The cache's masked set indexing must agree with plain modulo wherever
//!    the set count is a power of two, and the shipped device geometries
//!    must exercise both paths. NOTE: not every shipped geometry has a
//!    power-of-two set count — the Xavier texture cache is 48 KB / (128 B ×
//!    4 ways) = **96 sets**, which is exactly why `Cache` keeps a checked
//!    modulo fallback. The test below pins the actual status of each
//!    geometry rather than assuming pow2 everywhere.

use defcon::gpusim::cache::{Access, Cache};
use defcon::gpusim::coalesce::{coalesce, coalesce_into};
use defcon::gpusim::device::{CacheGeometry, DeviceConfig};
use defcon_support::lanebuf::LaneBuf;
use defcon_support::prop::{self, Config};
use defcon_support::prop_assert_eq;
use defcon_support::rng::Rng;

const CASES: u32 = 64;

/// Random warps across every shape class the kernels generate: broadcast,
/// contiguous, strided, straddling, partial-warp, empty, and fully random —
/// the in-place coalescer must reproduce the oracle's sectors byte for byte.
#[test]
fn coalesce_into_bit_equal_to_reference() {
    prop::check(
        "coalesce_into_bit_equal_to_reference",
        &Config::new(CASES, 0xDEFC_0020),
        |rng| {
            let shape = rng.gen_range(0u32..7);
            let n = rng.gen_range(0usize..33);
            let base = rng.gen_range(0u64..1_000_000);
            let access_bytes = [1u64, 2, 4, 8][rng.gen_range(0usize..4)];
            let addrs: Vec<u64> = match shape {
                0 => vec![base; n],                                          // broadcast
                1 => (0..n as u64).map(|i| base + i * 4).collect(),          // contiguous
                2 => (0..n as u64).map(|i| base + i * 32).collect(),         // sector-strided
                3 => (0..n as u64).map(|i| base + i * 64 + 30).collect(),    // straddling
                4 => (0..n as u64).rev().map(|i| base + i * 36).collect(),   // descending
                5 => vec![],                                                 // empty warp
                _ => (0..n).map(|_| rng.gen_range(0u64..1 << 20)).collect(), // fully random
            };
            (addrs, access_bytes)
        },
        |(addrs, access_bytes)| {
            let r = coalesce(addrs, *access_bytes);
            let mut buf: LaneBuf<u64> = LaneBuf::new();
            let requested = coalesce_into(addrs, *access_bytes, &mut buf);
            prop_assert_eq!(buf.as_slice(), r.sectors.as_slice());
            prop_assert_eq!(requested, r.requested_bytes);
            Ok(())
        },
    );
}

/// For power-of-two set counts, the mask index `line & (sets-1)` equals the
/// modulo index `line % sets` for arbitrary line addresses — the identity
/// `Cache::set_of` relies on when it takes the mask fast path.
#[test]
fn mask_index_agrees_with_modulo_for_pow2_sets() {
    prop::check(
        "mask_index_agrees_with_modulo_for_pow2_sets",
        &Config::new(CASES, 0xDEFC_0021),
        |rng| {
            let sets = 1u64 << rng.gen_range(0u32..16);
            (sets, rng.gen_range(0u64..u64::MAX / 2))
        },
        |&(sets, line)| {
            prop_assert_eq!(line & (sets - 1), line % sets);
            Ok(())
        },
    );
}

/// Pins the set count and pow2 status of every shipped cache geometry. The
/// Xavier texture cache is the one non-power-of-two geometry in the fleet
/// (96 sets), so every full simulation exercises the modulo fallback; all
/// others take the mask fast path.
#[test]
fn shipped_geometries_pow2_status() {
    let xavier = DeviceConfig::xavier_agx();
    let turing = DeviceConfig::rtx2080ti();
    let expect: [(&str, &CacheGeometry, usize, bool); 6] = [
        ("xavier.l1", &xavier.l1, 128, true),
        ("xavier.l2", &xavier.l2, 256, true),
        ("xavier.tex", &xavier.tex_cache, 96, false),
        ("2080ti.l1", &turing.l1, 128, true),
        ("2080ti.l2", &turing.l2, 2048, true),
        ("2080ti.tex", &turing.tex_cache, 128, true),
    ];
    for (name, geo, sets, pow2) in expect {
        assert_eq!(geo.num_sets(), sets, "{name} set count");
        assert_eq!(geo.num_sets().is_power_of_two(), pow2, "{name} pow2");
    }
}

/// Behavioral check of the modulo fallback: on the 96-set Xavier texture
/// geometry, lines congruent mod 96 share a set, so a 4-way set overflows at
/// the fifth resident line while 4 stay resident — the conflict pattern only
/// correct `line mod sets` indexing produces.
#[test]
fn non_pow2_geometry_conflicts_at_modulo_stride() {
    let geo = DeviceConfig::xavier_agx().tex_cache;
    assert_eq!(geo.num_sets(), 96);
    let mut c = Cache::new(geo);
    // Four lines in set 7: all resident after first touch.
    for i in 0..4u64 {
        assert_eq!(c.access_line(7 + i * 96), Access::Miss);
    }
    for i in 0..4u64 {
        assert_eq!(c.access_line(7 + i * 96), Access::Hit, "way {i}");
    }
    // A fifth conflicting line evicts the LRU (line 7).
    assert_eq!(c.access_line(7 + 4 * 96), Access::Miss);
    assert_eq!(c.access_line(7), Access::Miss, "LRU line must be evicted");
    // Neighbouring set untouched by the conflicts.
    c.access_line(8);
    assert_eq!(c.access_line(8), Access::Hit);
}

/// Arbitrary line streams produce identical hit/miss sequences on a
/// power-of-two cache regardless of which indexing path computes the set —
/// checked by comparing against a mirror cache fed lines pre-reduced mod
/// `sets` (same set, same tag behavior requires full-line tags, which the
/// model uses; reduced lines must therefore give the same sequence only
/// when tags are distinct per set — use stride-preserving lines).
#[test]
fn pow2_cache_hit_sequence_matches_modulo_model() {
    prop::check(
        "pow2_cache_hit_sequence_matches_modulo_model",
        &Config::new(CASES, 0xDEFC_0022),
        |rng| {
            let n = rng.gen_range(1usize..200);
            (0..n)
                .map(|_| rng.gen_range(0u64..4096))
                .collect::<Vec<u64>>()
        },
        |lines| {
            // 128-set pow2 geometry (mask path) vs a handmade modulo model
            // of the same true-LRU policy.
            let geo = CacheGeometry {
                size_bytes: 64 * 1024,
                line_bytes: 128,
                ways: 4,
                hit_latency: 1,
            };
            let sets = geo.num_sets() as u64;
            let ways = geo.ways;
            let mut c = Cache::new(geo);
            let mut model: Vec<Vec<(u64, u64)>> = vec![Vec::new(); sets as usize];
            let mut clock = 0u64;
            for &line in lines {
                clock += 1;
                let set = &mut model[(line % sets) as usize];
                let expect = if let Some(e) = set.iter_mut().find(|(t, _)| *t == line) {
                    e.1 = clock;
                    Access::Hit
                } else {
                    if set.len() == ways {
                        let lru = set
                            .iter()
                            .enumerate()
                            .min_by_key(|(_, (_, s))| *s)
                            .map(|(i, _)| i)
                            .unwrap();
                        set.remove(lru);
                    }
                    set.push((line, clock));
                    Access::Miss
                };
                prop_assert_eq!(c.access_line(line), expect);
            }
            Ok(())
        },
    );
}
