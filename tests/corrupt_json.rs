//! Seeded property tests: corrupted serialized state is a *typed*,
//! positioned [`JsonError`] (or a clean re-parse when the corruption
//! happens to keep the document valid) — never a panic, for any mutation.
//!
//! Three serialized artifacts cross process boundaries in this workspace —
//! the latency LUT, the device config, and kernel reports — so each gets
//! the same treatment: serialize a real value, mutate or truncate the
//! bytes at a seeded position, and require the loader to behave.

use defcon::core::lut::{LatencyKey, LatencyLut};
use defcon::gpusim::{Counters, DeviceConfig, Gpu, KernelReport};
use defcon::kernels::op::{synthetic_inputs, DeformConvOp, OffsetPredictorKind, SamplingMethod};
use defcon::kernels::DeformLayerShape;
use defcon_support::json::{FromJson, Json, JsonError, ToJson};
use defcon_support::prop::{self, Config};
use defcon_support::rng::{Rng, StdRng};
use defcon_support::{prop_assert, prop_assert_eq};

/// One seeded corruption of an ASCII document.
#[derive(Debug)]
enum Mutation {
    /// Keep only `0..idx` (a torn write).
    Truncate(usize),
    /// Overwrite the byte at `idx` with a printable ASCII byte.
    Replace(usize, u8),
}

fn draw_mutation(rng: &mut StdRng, len: usize) -> Mutation {
    if rng.gen_range(0u32..2) == 0 {
        Mutation::Truncate(rng.gen_range(1..len))
    } else {
        Mutation::Replace(rng.gen_range(0..len), rng.gen_range(0x20u32..0x7f) as u8)
    }
}

fn apply(doc: &str, m: &Mutation) -> String {
    assert!(doc.is_ascii(), "corruption below assumes 1-byte chars");
    match *m {
        Mutation::Truncate(idx) => doc[..idx].to_string(),
        Mutation::Replace(idx, b) => {
            let mut bytes = doc.as_bytes().to_vec();
            bytes[idx] = b;
            String::from_utf8(bytes).expect("printable ASCII stays UTF-8")
        }
    }
}

/// The shared property: parsing the mutated bytes either fails with a
/// positioned error or yields a document the typed loader handles — it
/// must never panic. Truncations (strict prefixes of a `{...}`/`[...]`
/// document) can never be valid JSON, so those must fail with an offset
/// pointing into the document.
fn check_corruption<T>(
    doc: &str,
    m: &Mutation,
    load: impl Fn(&Json) -> Result<T, JsonError>,
) -> Result<(), String> {
    let mutated = apply(doc, m);
    let outcome = Json::parse(&mutated).and_then(|j| load(&j).map(|_| ()));
    if let Mutation::Truncate(_) = m {
        let err = match outcome {
            Err(e) => e,
            Ok(()) => return Err(format!("truncated doc parsed cleanly: {mutated:?}")),
        };
        prop_assert!(
            err.offset <= mutated.len(),
            "error position {} beyond the {}-byte input",
            err.offset,
            mutated.len()
        );
    }
    // A single-byte replacement may leave the document valid (digit →
    // digit); both Ok and a typed Err satisfy the contract. Reaching here
    // without a panic is the assertion.
    Ok(())
}

#[test]
fn corrupted_latency_lut_json_is_typed_and_positioned() {
    let gpu = Gpu::new(DeviceConfig::xavier_agx());
    let key = LatencyKey {
        c_in: 16,
        c_out: 16,
        h: 16,
        w: 16,
        stride: 1,
    };
    let doc = LatencyLut::build(
        &gpu,
        &[key],
        SamplingMethod::SoftwareBilinear,
        OffsetPredictorKind::Standard,
    )
    .to_json();
    // Round-trip sanity before corrupting anything.
    assert_eq!(LatencyLut::from_json(&doc).unwrap().to_json(), doc);
    prop::check(
        "corrupt LUT json",
        &Config::new(64, 0xC0DE),
        |rng| draw_mutation(rng, doc.len()),
        |m| {
            let mutated = apply(&doc, m);
            let outcome = LatencyLut::from_json(&mutated);
            if let Mutation::Truncate(_) = m {
                prop_assert!(outcome.is_err(), "truncated LUT parsed: {mutated:?}");
            }
            Ok(())
        },
    );
}

#[test]
fn corrupted_device_config_json_is_typed_and_positioned() {
    let doc = DeviceConfig::rtx2080ti().to_json().to_string();
    let back = DeviceConfig::from_json(&Json::parse(&doc).unwrap()).unwrap();
    prop_assert_never_panics(&doc, 0xDEC0, |j| {
        // A structurally valid but value-mutated config must flow into the
        // typed validator, not a launch-time panic.
        DeviceConfig::from_json(j).map(|cfg| {
            let _ = cfg.validate();
        })
    });
    assert_eq!(back.to_json().to_string(), doc);
}

#[test]
fn corrupted_kernel_report_json_is_typed_and_positioned() {
    let gpu = Gpu::new(DeviceConfig::xavier_agx());
    let shape = DeformLayerShape::same3x3(8, 8, 12, 12);
    let (x, offsets) = synthetic_inputs(&shape, 4.0, 3);
    let report = DeformConvOp::baseline(shape)
        .simulate_deform(&gpu, &x, &offsets)
        .remove(0);
    let doc = report.to_json().to_string();
    assert_eq!(
        KernelReport::from_json(&Json::parse(&doc).unwrap()).unwrap(),
        report
    );
    prop_assert_never_panics(&doc, 0x5EED, |j| KernelReport::from_json(j).map(|_| ()));
}

/// Drives [`check_corruption`] over 64 seeded mutations of `doc`.
fn prop_assert_never_panics(doc: &str, seed: u64, load: impl Fn(&Json) -> Result<(), JsonError>) {
    prop::check(
        "corrupt json never panics",
        &Config::new(64, seed),
        |rng| draw_mutation(rng, doc.len()),
        |m| check_corruption(doc, m, &load),
    );
}

#[test]
fn counters_field_removal_is_a_missing_field_error() {
    // Beyond byte soup: a structurally valid document missing one field
    // must name the field in the error, not default it to zero.
    let c = Counters::default().to_json();
    let Json::Obj(pairs) = c else {
        panic!("counters serialize to an object")
    };
    for drop_idx in 0..pairs.len() {
        let missing = pairs[drop_idx].0.clone();
        let doc = Json::Obj(
            pairs
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != drop_idx)
                .map(|(_, kv)| kv.clone())
                .collect(),
        );
        let err = Counters::from_json(&doc).unwrap_err();
        assert!(
            err.message.contains(&missing),
            "error {err} should name the dropped field {missing:?}"
        );
    }
}

/// `prop_assert_eq` is exercised so the macro import stays honest.
#[test]
fn replace_then_restore_is_identity() {
    let doc = DeviceConfig::xavier_agx().to_json().to_string();
    prop::check(
        "replace/restore identity",
        &Config::new(32, 7),
        |rng| rng.gen_range(0..doc.len()),
        |&idx| {
            let m = Mutation::Replace(idx, b'!');
            let mut mutated = apply(&doc, &m).into_bytes();
            mutated[idx] = doc.as_bytes()[idx];
            prop_assert_eq!(String::from_utf8(mutated).unwrap(), doc.clone());
            Ok(())
        },
    );
}
