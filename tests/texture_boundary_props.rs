//! Property tests pinning the branch-free texture sampler and the
//! precomputed-reciprocal trilinear path to their verbatim legacy copies at
//! address-mode boundaries.
//!
//! The rewrite hoisted address-mode resolution out of the per-texel loop,
//! replaced the quantization divide with an exact reciprocal multiply, and
//! split the fetch into a layer-independent plan plus a per-layer replay.
//! None of that is allowed to move a single bit: for every address mode,
//! filter mode and a boundary-heavy coordinate grid (texel edges, the
//! half-texel filter seams, just-outside and far-outside positions),
//! `fetch` must agree with `fetch_legacy` on the filtered value, the texel
//! address list and its length — and `fetch_trilinear` with
//! `fetch_trilinear_legacy` on the blended value, across integer, fractional
//! and out-of-range LODs.

use defcon::gpusim::mipmap::MipmappedArray2d;
use defcon::gpusim::texture::{AddressMode, FilterMode, LayeredTexture2d};
use defcon_support::prop::{self, Config};
use defcon_support::prop_assert_eq;
use defcon_support::rng::Rng;

const CASES: u32 = 24;

const MODES: [AddressMode; 4] = [
    AddressMode::Border,
    AddressMode::Clamp,
    AddressMode::Wrap,
    AddressMode::Mirror,
];

const FILTERS: [FilterMode; 3] = [
    FilterMode::Point,
    FilterMode::Linear { frac_bits: 23 },
    FilterMode::Linear { frac_bits: 8 },
];

/// Deterministic pseudo-random texel data in [-2, 2).
fn texels(n: usize, seed: u64) -> Vec<f32> {
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..n)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            ((s >> 40) as f32 / (1u64 << 24) as f32) * 4.0 - 2.0
        })
        .collect()
}

/// Coordinates that straddle every interesting seam of one axis of extent
/// `n`: texel centres and edges, the ±0.5 filter seam, epsilon inside and
/// outside both ends, and far out of range (where the early-outs and the
/// wrap/mirror folds all disagree in shape, if not in bits).
fn boundary_coords(extent: usize, extra: f32) -> Vec<f32> {
    let n = extent as f32;
    vec![
        -2.25,
        -1.0,
        -0.75,
        -0.5,
        -f32::EPSILON,
        0.0,
        0.25,
        0.5,
        1.0,
        (extent / 2) as f32 + 0.5,
        n - 1.0,
        n - 0.5,
        n - 0.25,
        n - n * f32::EPSILON,
        n,
        n + 0.5,
        n + 1.75,
        extra,
    ]
}

#[test]
fn fetch_matches_legacy_at_address_mode_boundaries() {
    prop::check(
        "fetch_matches_legacy_at_address_mode_boundaries",
        &Config::new(CASES, 0xDEFC_0810),
        |rng| {
            (
                rng.gen_range(1usize..4),
                rng.gen_range(2usize..13),
                rng.gen_range(2usize..13),
                rng.gen_range(0u64..10_000),
                rng.gen_range(-2.0f32..14.0),
                rng.gen_range(-2.0f32..14.0),
            )
        },
        |&(layers, h, w, seed, fy, fx)| {
            for mode in MODES {
                for filter in FILTERS {
                    let mut tex = LayeredTexture2d::new(
                        texels(layers * h * w, seed),
                        layers,
                        h,
                        w,
                        0x8000_0000,
                        2048,
                        32768,
                    )
                    .expect("within device limits");
                    tex.address_mode = mode;
                    tex.filter_mode = filter;
                    for layer in 0..layers {
                        for &y in &boundary_coords(h, fy) {
                            for &x in &boundary_coords(w, fx) {
                                let new = tex.fetch(layer, y, x);
                                let old = tex.fetch_legacy(layer, y, x);
                                prop_assert_eq!(new.value.to_bits(), old.value.to_bits());
                                prop_assert_eq!(new.len, old.len);
                                prop_assert_eq!(
                                    &new.addresses[..new.len as usize],
                                    &old.addresses[..old.len as usize]
                                );
                            }
                        }
                    }
                }
            }
            Ok(())
        },
    );
}

#[test]
fn trilinear_matches_legacy_across_lods() {
    prop::check(
        "trilinear_matches_legacy_across_lods",
        &Config::new(CASES, 0xDEFC_0811),
        |rng| {
            (
                rng.gen_range(1usize..3),
                rng.gen_range(2usize..11),
                rng.gen_range(2usize..11),
                rng.gen_range(0u64..10_000),
                rng.gen_range(-1.0f32..8.0),
            )
        },
        |&(layers, h, w, seed, flod)| {
            for mode in MODES {
                for filter in FILTERS {
                    let mut mip = MipmappedArray2d::new(
                        texels(layers * h * w, seed),
                        layers,
                        h,
                        w,
                        0x8000_0000,
                        2048,
                        32768,
                    )
                    .expect("within device limits");
                    mip.configure(mode, filter);
                    let top = (mip.num_levels() - 1) as f32;
                    // Integer LODs (the folded degenerate case), fractions,
                    // both out-of-range ends, and a random fractional LOD.
                    let lods = [-0.5, 0.0, 0.5, 1.0, 1.5, top - 0.25, top, top + 0.75, flod];
                    for layer in 0..layers {
                        for lod in lods {
                            for &y in &boundary_coords(h, 0.75) {
                                for &x in &boundary_coords(w, 1.25) {
                                    prop_assert_eq!(
                                        mip.fetch_trilinear(layer, y, x, lod).to_bits(),
                                        mip.fetch_trilinear_legacy(layer, y, x, lod).to_bits()
                                    );
                                }
                            }
                        }
                    }
                }
            }
            Ok(())
        },
    );
}
