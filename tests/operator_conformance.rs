//! Differential conformance for the deformable operator family
//! {DCNv1, DCNv2, DCNv3} × {software, tex2D, tex2D++} × {1, 4 threads}.
//!
//! The contract (DESIGN.md §10) has three layers:
//!
//! 1. **Numeric** — every family on every sampling path agrees with its
//!    CPU reference (`deform_conv2d_ref` / `_v2_ref` / `_v3_ref`), and the
//!    family reductions hold **byte-for-byte on each path**: DCNv2 with an
//!    all-ones mask (or no mask at all) is DCNv1, and DCNv3 with constant
//!    logits is the uniform 1/k² average — expressed as a DCNv2 flat mask
//!    of exactly `fl(1/k²)` so the comparison is bitwise, not tolerant.
//! 2. **Timing** — the simulated reports are a function of the *family*,
//!    never of the modulation values (a trace may not depend on data), are
//!    reproducible at a fixed thread count, and at 4 threads keep the
//!    engine's exact-u64-counter / ≤1 % cycle contract from
//!    `tests/engine_parallel_equivalence.rs`.
//! 3. **Naming** — v2/v3 launches are distinguishable in traces via the
//!    `_dcnv2` / `_dcnv3` label suffix while v1 labels stay byte-identical
//!    to the pre-family kernels (goldens must not move).
//!
//! CI runs this suite under both `DEFCON_THREADS=1` and `=4`, which adds
//! the worker-band dimension to every numeric cell as well.

use defcon::prelude::*;
use defcon::tensor::sample::{deform_conv2d_ref, deform_conv2d_v2_ref, deform_conv2d_v3_ref};

fn small_shape() -> DeformLayerShape {
    DeformLayerShape::same3x3(4, 6, 10, 10)
}

fn grouped_shape() -> DeformLayerShape {
    DeformLayerShape {
        deform_groups: 2,
        ..DeformLayerShape::same3x3(4, 4, 8, 8)
    }
}

fn weight_for(shape: &DeformLayerShape, seed: u64) -> Tensor {
    Tensor::randn(
        &[shape.c_out, shape.c_in, shape.kernel, shape.kernel],
        0.0,
        0.3,
        seed,
    )
}

fn op_with(
    shape: DeformLayerShape,
    family: OpFamily,
    method: SamplingMethod,
    modulation: Option<Tensor>,
) -> DeformConvOp {
    DeformConvOp {
        family,
        method,
        modulation,
        ..DeformConvOp::baseline(shape)
    }
}

/// Per-method numeric tolerance against the CPU reference: software and
/// fp32-filter tex2D track it closely; tex2D++'s 8-bit fractions are the
/// documented quantization (same bounds as the v1 tests in `op.rs`).
fn tolerance(method: SamplingMethod) -> (f32, f32) {
    match method {
        SamplingMethod::Tex2dPlusPlus => (0.05, 0.02),
        _ => (1e-3, 1e-3),
    }
}

#[test]
fn every_family_and_path_agrees_with_its_reference() {
    let gpu = Gpu::new(DeviceConfig::xavier_agx());
    for shape in [small_shape(), grouped_shape()] {
        let (x, offsets) = synthetic_inputs(&shape, 2.0, 42);
        let w = weight_for(&shape, 43);
        let p = shape.deform_params();
        for family in OpFamily::all() {
            let modulation = synthetic_modulation(&shape, family, 7);
            let expect = match family {
                OpFamily::DcnV1 => {
                    deform_conv2d_ref(&x, &offsets, &w, None, &p, OffsetTransform::Identity)
                }
                OpFamily::DcnV2 => deform_conv2d_v2_ref(
                    &x,
                    &offsets,
                    modulation.as_ref().expect("v2 has a mask"),
                    &w,
                    None,
                    &p,
                    OffsetTransform::Identity,
                ),
                OpFamily::DcnV3 => deform_conv2d_v3_ref(
                    &x,
                    &offsets,
                    modulation.as_ref().expect("v3 has logits"),
                    &w,
                    None,
                    &p,
                    OffsetTransform::Identity,
                ),
            };
            for method in SamplingMethod::ladder() {
                let op = op_with(shape, family, method, modulation.clone());
                let got = op.execute(&x, &offsets, &w, &gpu);
                let (rtol, atol) = tolerance(method);
                defcon::tensor::assert_close(&got, &expect, rtol, atol);
            }
        }
    }
}

#[test]
fn v2_with_all_ones_mask_is_v1_bytewise_on_every_path() {
    let gpu = Gpu::new(DeviceConfig::xavier_agx());
    for shape in [small_shape(), grouped_shape()] {
        let (x, offsets) = synthetic_inputs(&shape, 2.0, 44);
        let w = weight_for(&shape, 45);
        let (oh, ow) = shape.out_hw();
        let mc = shape.deform_groups * shape.kernel * shape.kernel;
        let ones = Tensor::full(&[shape.n, mc, oh, ow], 1.0);
        for method in SamplingMethod::ladder() {
            let v1 = op_with(shape, OpFamily::DcnV1, method, None).execute(&x, &offsets, &w, &gpu);
            let v2_ones = op_with(shape, OpFamily::DcnV2, method, Some(ones.clone()))
                .execute(&x, &offsets, &w, &gpu);
            let v2_none =
                op_with(shape, OpFamily::DcnV2, method, None).execute(&x, &offsets, &w, &gpu);
            assert_eq!(
                v1.data(),
                v2_ones.data(),
                "all-ones mask changed bytes on {} {shape:?}",
                method.name()
            );
            assert_eq!(
                v1.data(),
                v2_none.data(),
                "neutral (absent) mask changed bytes on {} {shape:?}",
                method.name()
            );
        }
    }
}

#[test]
fn v3_with_constant_logits_is_the_uniform_average_bytewise_on_every_path() {
    let gpu = Gpu::new(DeviceConfig::xavier_agx());
    for shape in [small_shape(), grouped_shape()] {
        let (x, offsets) = synthetic_inputs(&shape, 2.0, 46);
        let w = weight_for(&shape, 47);
        let (oh, ow) = shape.out_hw();
        let kk = shape.kernel * shape.kernel;
        let mc = shape.deform_groups * kk;
        // Any constant c: softmax over equal logits is exactly 1/k² per
        // tap (exp(0) == 1.0 is exact, the sum is the exact integer k²).
        let constant = Tensor::full(&[shape.n, mc, oh, ow], 0.875);
        // The uniform average, expressed through the v2 path: a flat mask
        // of exactly fl(1/k²), the same f32 the softmax produces.
        let flat = Tensor::full(&[shape.n, mc, oh, ow], (1.0f64 / kk as f64) as f32);
        for method in SamplingMethod::ladder() {
            let v3_const = op_with(shape, OpFamily::DcnV3, method, Some(constant.clone()))
                .execute(&x, &offsets, &w, &gpu);
            let v3_none =
                op_with(shape, OpFamily::DcnV3, method, None).execute(&x, &offsets, &w, &gpu);
            let v2_flat = op_with(shape, OpFamily::DcnV2, method, Some(flat.clone()))
                .execute(&x, &offsets, &w, &gpu);
            assert_eq!(
                v3_const.data(),
                v3_none.data(),
                "neutral (absent) logits diverged from constant logits on {}",
                method.name()
            );
            assert_eq!(
                v3_const.data(),
                v2_flat.data(),
                "constant-logit softmax is not the uniform 1/k^2 average on {}",
                method.name()
            );
        }
    }
}

#[test]
fn reports_depend_on_family_but_never_on_modulation_values() {
    use defcon_support::json::ToJson;
    let gpu = Gpu::with_policy(
        DeviceConfig::xavier_agx(),
        SamplePolicy::default().with_threads(1),
    );
    let shape = small_shape();
    let (x, offsets) = synthetic_inputs(&shape, 2.0, 48);
    let json = |op: &DeformConvOp| -> String {
        op.simulate_total(&gpu, &x, &offsets)
            .1
            .iter()
            .map(|r| r.to_json().to_string())
            .collect::<Vec<_>>()
            .join("\n")
    };
    for family in OpFamily::all() {
        for method in SamplingMethod::ladder() {
            let with_none = json(&op_with(shape, family, method, None));
            let with_values = json(&op_with(
                shape,
                family,
                method,
                synthetic_modulation(&shape, family, 9),
            ));
            assert_eq!(
                with_none,
                with_values,
                "a trace leaked modulation *values* ({} {})",
                family.name(),
                method.name()
            );
        }
    }
    // The family itself must be visible: v2/v3 pay for the modulation
    // loads, so their deform-stage reports cannot equal v1's.
    for method in SamplingMethod::ladder() {
        let v1 = json(&op_with(shape, OpFamily::DcnV1, method, None));
        let v2 = json(&op_with(shape, OpFamily::DcnV2, method, None));
        let v3 = json(&op_with(shape, OpFamily::DcnV3, method, None));
        assert_ne!(v1, v2, "{} trace ignored the v2 mask", method.name());
        assert_ne!(v2, v3, "{} trace ignored the v3 softmax", method.name());
    }
}

#[test]
fn four_thread_reports_keep_the_engine_contract_for_every_cell() {
    let gpu1 = Gpu::with_policy(
        DeviceConfig::xavier_agx(),
        SamplePolicy::default().with_threads(1),
    );
    let gpu4 = Gpu::with_policy(
        DeviceConfig::xavier_agx(),
        SamplePolicy::default().with_threads(4),
    );
    let shape = DeformLayerShape::same3x3(16, 16, 35, 35);
    let (x, offsets) = synthetic_inputs(&shape, 2.0, 49);
    for family in OpFamily::all() {
        for method in SamplingMethod::ladder() {
            let op = op_with(shape, family, method, None);
            let one = op.simulate_deform(&gpu1, &x, &offsets);
            let four = op.simulate_deform(&gpu4, &x, &offsets);
            assert_eq!(one.len(), four.len());
            for (a, b) in one.iter().zip(&four) {
                assert_eq!(a.kernel, b.kernel);
                assert_eq!(a.counters.flops, b.counters.flops, "{}", a.kernel);
                assert_eq!(
                    a.counters.gld_requests, b.counters.gld_requests,
                    "{}",
                    a.kernel
                );
                assert_eq!(
                    a.counters.tex_requests, b.counters.tex_requests,
                    "{}",
                    a.kernel
                );
                assert_eq!(a.grid_blocks, b.grid_blocks);
                let rel = (a.time_ms - b.time_ms).abs() / a.time_ms;
                assert!(
                    rel <= 0.01,
                    "{}: 4-thread time diverged {:.3}% (> 1%)",
                    a.kernel,
                    rel * 100.0
                );
            }
        }
    }
}

#[test]
fn family_labels_suffix_v2_v3_and_leave_v1_untouched() {
    let gpu = Gpu::with_policy(
        DeviceConfig::xavier_agx(),
        SamplePolicy::default().with_threads(1),
    );
    let shape = small_shape();
    let (x, offsets) = synthetic_inputs(&shape, 2.0, 50);
    for method in SamplingMethod::ladder() {
        for family in OpFamily::all() {
            let op = op_with(shape, family, method, None);
            let deform = &op.simulate_deform(&gpu, &x, &offsets)[0];
            match family {
                OpFamily::DcnV1 => assert!(
                    !deform.kernel.contains("dcnv"),
                    "v1 label must stay byte-identical to the pre-family kernels: {}",
                    deform.kernel
                ),
                OpFamily::DcnV2 => assert!(
                    deform.kernel.ends_with("_dcnv2"),
                    "missing _dcnv2 suffix: {}",
                    deform.kernel
                ),
                OpFamily::DcnV3 => assert!(
                    deform.kernel.ends_with("_dcnv3"),
                    "missing _dcnv3 suffix: {}",
                    deform.kernel
                ),
            }
        }
    }
}

#[test]
fn fixed_thread_count_is_reproducible_for_every_cell() {
    for threads in [1usize, 4] {
        let gpu = Gpu::with_policy(
            DeviceConfig::xavier_agx(),
            SamplePolicy::default().with_threads(threads),
        );
        let shape = small_shape();
        let (x, offsets) = synthetic_inputs(&shape, 2.0, 51);
        for family in OpFamily::all() {
            for method in SamplingMethod::ladder() {
                use defcon_support::json::ToJson;
                let op = op_with(
                    shape,
                    family,
                    method,
                    synthetic_modulation(&shape, family, 12),
                );
                let run = || -> String {
                    op.simulate_total(&gpu, &x, &offsets)
                        .1
                        .iter()
                        .map(|r| r.to_json().to_string())
                        .collect::<Vec<_>>()
                        .join("\n")
                };
                assert_eq!(
                    run(),
                    run(),
                    "threads={threads} {} {} not reproducible",
                    family.name(),
                    method.name()
                );
            }
        }
    }
}
