//! Property tests tying the two halves of the reproduction together:
//!
//! * the CPU reference sampler (`tensor::sample::bilinear_sample`) and the
//!   simulated texture hardware path (`gpusim::texture`) must agree — the
//!   paper's whole premise is that moving bilinear interpolation into the
//!   texture unit changes *where* the arithmetic happens, not the result;
//! * the set-associative cache model must behave as a true-LRU cache, which
//!   we check against a naive per-set reference implementation.

use defcon::gpusim::cache::{Access, Cache};
use defcon::gpusim::device::{CacheGeometry, DeviceConfig};
use defcon::gpusim::texture::{FilterMode, LayeredTexture2d};
use defcon::prelude::*;
use defcon_support::prop::{self, Config};
use defcon_support::rng::{Rng, StdRng};
use defcon_support::{prop_assert, prop_assert_eq};

const CASES: u32 = 24;

/// Builds a layered texture over every `(n, c)` slice of a `[1, C, H, W]`
/// tensor, the mapping the kernels use (one feature-map slice per layer).
fn texture_of(t: &Tensor, frac_bits: u32) -> LayeredTexture2d {
    let (n, c, h, w) = t.shape().nchw();
    let dev = DeviceConfig::xavier_agx();
    let mut tex = LayeredTexture2d::new(
        t.data().to_vec(),
        n * c,
        h,
        w,
        0,
        dev.max_texture_layers,
        dev.max_texture_dim,
    )
    .expect("test shapes fit device limits");
    tex.filter_mode = FilterMode::Linear { frac_bits };
    tex
}

/// `tex2D` (fp32 filtering, border addressing) equals the software sampler
/// everywhere — including fractional positions straddling the border and
/// fully out-of-bounds positions.
#[test]
fn texture_fetch_matches_software_bilinear() {
    prop::check(
        "texture_fetch_matches_software_bilinear",
        &Config::new(CASES, 0xDEFC_0010),
        |rng| {
            let c = rng.gen_range(1usize..4);
            let h = rng.gen_range(2usize..12);
            let w = rng.gen_range(2usize..12);
            let seed = rng.gen_range(0u64..1000);
            let coords: Vec<(usize, f32, f32)> = (0..40)
                .map(|_| {
                    (
                        rng.gen_range(0usize..c),
                        rng.gen_range(-3.0f32..h as f32 + 3.0),
                        rng.gen_range(-3.0f32..w as f32 + 3.0),
                    )
                })
                .collect();
            (c, h, w, seed, coords)
        },
        |(c, h, w, seed, coords)| {
            let t = Tensor::randn(&[1, *c, *h, *w], 0.0, 1.0, *seed);
            let tex = texture_of(&t, 23);
            for &(ch, y, x) in coords {
                let hw = tex.fetch(ch, y, x).value;
                let sw = defcon::tensor::sample::bilinear_sample(&t, 0, ch, y, x);
                prop_assert!(
                    (hw - sw).abs() < 1e-5,
                    "layer {ch} at ({y},{x}): hardware {hw} vs software {sw}"
                );
            }
            Ok(())
        },
    );
}

/// `tex2D++` (8-bit interpolation fractions) stays within one filter quantum
/// of the software result: the weight error is ≤ 2⁻⁹ per axis, and the
/// sample is a convex combination of values whose spread bounds the damage.
#[test]
fn tex2dpp_error_bounded_by_filter_quantum() {
    prop::check(
        "tex2dpp_error_bounded_by_filter_quantum",
        &Config::new(CASES, 0xDEFC_0011),
        |rng| {
            let h = rng.gen_range(4usize..12);
            let w = rng.gen_range(4usize..12);
            let seed = rng.gen_range(0u64..1000);
            let coords: Vec<(f32, f32)> = (0..40)
                .map(|_| {
                    (
                        rng.gen_range(0.0f32..(h - 1) as f32),
                        rng.gen_range(0.0f32..(w - 1) as f32),
                    )
                })
                .collect();
            (h, w, seed, coords)
        },
        |(h, w, seed, coords)| {
            // Values in [0, 1] so the neighbour spread is ≤ 1.
            let t = Tensor::rand_uniform(&[1, 1, *h, *w], 0.0, 1.0, *seed);
            let tex = texture_of(&t, 8);
            for &(y, x) in coords {
                let hw = tex.fetch(0, y, x).value;
                let sw = defcon::tensor::sample::bilinear_sample(&t, 0, 0, y, x);
                // Two axes, each fraction off by ≤ 2⁻⁹, spread ≤ 1.
                prop_assert!(
                    (hw - sw).abs() <= 2.0 / 512.0 + 1e-5,
                    "at ({y},{x}): tex2D++ {hw} drifted from {sw}"
                );
            }
            Ok(())
        },
    );
}

/// A naive true-LRU model: per set, a most-recent-first list of tags.
struct RefLru {
    sets: Vec<Vec<u64>>,
    ways: usize,
}

impl RefLru {
    fn new(geo: &CacheGeometry) -> Self {
        RefLru {
            sets: vec![Vec::new(); geo.num_sets()],
            ways: geo.ways,
        }
    }

    fn access_line(&mut self, line: u64) -> Access {
        let idx = (line % self.sets.len() as u64) as usize;
        let set = &mut self.sets[idx];
        if let Some(pos) = set.iter().position(|&t| t == line) {
            set.remove(pos);
            set.insert(0, line);
            Access::Hit
        } else {
            set.insert(0, line);
            set.truncate(self.ways);
            Access::Miss
        }
    }
}

/// The cache model agrees access-for-access with the reference LRU on both
/// Xavier cache geometries (4-way L1, 16-way L2).
#[test]
fn cache_matches_reference_lru() {
    let dev = DeviceConfig::xavier_agx();
    for (name, geo) in [("l1", dev.l1), ("l2", dev.l2)] {
        prop::check(
            &format!("cache_matches_reference_lru/{name}"),
            &Config::new(CASES, 0xDEFC_0012),
            |rng: &mut StdRng| {
                let n = rng.gen_range(1usize..400);
                // A line span a few times the set count, so sets see both
                // conflict evictions and reuse.
                let span = 8 * geo.num_sets() as u64;
                (0..n)
                    .map(|_| rng.gen_range(0u64..span))
                    .collect::<Vec<u64>>()
            },
            |lines| {
                let mut cache = Cache::new(geo);
                let mut reference = RefLru::new(&geo);
                for &l in lines {
                    let got = cache.access_line(l);
                    let want = reference.access_line(l);
                    prop_assert_eq!(got, want);
                }
                prop_assert_eq!(cache.hits() + cache.misses(), lines.len() as u64);
                Ok(())
            },
        );
    }
}

/// Capacity invariant: a working set that fits one set's ways entirely hits
/// on the second pass, however the accesses are ordered.
#[test]
fn cache_working_set_within_ways_never_thrashes() {
    let dev = DeviceConfig::xavier_agx();
    prop::check(
        "cache_working_set_within_ways_never_thrashes",
        &Config::new(CASES, 0xDEFC_0013),
        |rng| {
            let geo = dev.l1;
            let sets = geo.num_sets() as u64;
            let set = rng.gen_range(0u64..sets);
            // Exactly `ways` distinct lines, all mapping to the same set.
            let lines: Vec<u64> = (0..geo.ways as u64).map(|k| set + k * sets).collect();
            let order: Vec<usize> = (0..lines.len() * 4)
                .map(|_| rng.gen_range(0usize..lines.len()))
                .collect();
            (lines, order)
        },
        |(lines, order)| {
            let mut cache = Cache::new(dev.l1);
            for &l in lines {
                cache.access_line(l);
            }
            cache.reset_stats();
            for &i in order {
                prop_assert_eq!(cache.access_line(lines[i]), Access::Hit);
            }
            prop_assert_eq!(cache.misses(), 0);
            Ok(())
        },
    );
}
