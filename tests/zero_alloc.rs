//! The zero-allocation trace contract, pinned.
//!
//! Installs the per-thread counting allocator from `defcon_support` and
//! asserts that — after kernel and sink construction — tracing blocks of
//! every kernel family performs **zero** heap allocations. This is the
//! invariant the hot-path rework establishes: all warp-level event staging
//! goes through the sink's fixed-capacity `LaneBuf` scratch and the
//! iterator-based `_into` entry points, never through per-instruction
//! `Vec`s.
//!
//! Layer shape: the paper's exhaustive Table II layer (16×16 channels,
//! 550×550), the same layer the hot-path benchmark times.

use defcon::gpusim::cache::Cache;
use defcon::gpusim::device::DeviceConfig;
use defcon::gpusim::trace::{BlockTrace, TraceSink};
use defcon::kernels::fused::FusedTexDeformKernel;
use defcon::kernels::gemm_kernel::{DepthwiseConvKernel, GemmKernel, RegularConvKernel};
use defcon::kernels::im2col::{Im2colDeformKernel, Sampling};
use defcon::kernels::op::synthetic_inputs;
use defcon::kernels::{DeformLayerShape, TileConfig};
use defcon::tensor::sample::OffsetTransform;
use defcon_support::testalloc::{thread_allocations, CountingAllocator};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// Traces up to `max_blocks` blocks of `kernel` through a fresh sink and
/// returns the number of heap allocations the traced region performed.
fn allocations_tracing(kernel: &dyn BlockTrace, cfg: &DeviceConfig, max_blocks: usize) -> u64 {
    let mut l1 = Cache::new(cfg.l1);
    let mut tex = Cache::new(cfg.tex_cache);
    let mut l2 = Cache::new(cfg.l2);
    let warps = kernel.block_threads().div_ceil(cfg.warp_size);
    let mut sink = TraceSink::new(cfg, &mut l1, &mut tex, &mut l2, warps);
    let blocks = kernel.grid_blocks().min(max_blocks);
    assert!(blocks > 0, "kernel has an empty grid");
    let before = thread_allocations();
    for b in 0..blocks {
        kernel.trace_block(b, &mut sink);
    }
    thread_allocations() - before
}

fn table2_shape() -> DeformLayerShape {
    DeformLayerShape::same3x3(16, 16, 550, 550)
}

/// The disarmed observability layer is part of the zero-allocation
/// contract: every `obs::` entry point on a hot path must reduce to one
/// relaxed atomic load when no trace is armed — no allocation, no closure
/// evaluation, no registry touch. (This test binary never arms obs, so the
/// whole process runs disarmed.)
#[test]
fn disarmed_obs_layer_does_not_allocate() {
    use defcon_support::json::Json;
    use defcon_support::obs;
    let before = thread_allocations();
    for i in 0..1024u64 {
        let span = obs::span_with("zalloc.span", || vec![("iter", Json::from(i))]);
        span.record("extra", Json::from(i));
        obs::event("zalloc.event");
        obs::event_with("zalloc.event2", || vec![("iter", Json::from(i))]);
        obs::counter_add("zalloc.counter", i);
        obs::gauge_set("zalloc.gauge", i as f64);
        assert!(!obs::armed());
        drop(span);
    }
    assert_eq!(thread_allocations() - before, 0);
}

/// The retry backoff schedule is consulted on the serving layer's
/// admission path (potentially per request under overload), so computing
/// a backoff pause must not touch the heap: it is pure integer/FNV
/// arithmetic over `(seed, attempt)`.
#[test]
fn retry_backoff_schedule_does_not_allocate() {
    use defcon_support::retry::RetryPolicy;
    let policy = RetryPolicy::default();
    // Warm anything lazily initialised, then measure.
    let mut sink = policy.backoff_cycles(0);
    let before = thread_allocations();
    for attempt in 0..256u32 {
        sink = sink.wrapping_add(policy.backoff_cycles(attempt));
        sink = sink.wrapping_add(policy.envelope_cycles(attempt));
        sink = sink.wrapping_add(policy.total_backoff_cycles(attempt));
    }
    assert_eq!(thread_allocations() - before, 0);
    assert_ne!(sink, 0, "schedule must produce nonzero pauses");
}

#[test]
fn im2col_software_traces_without_allocating() {
    let shape = table2_shape();
    let (x, off) = synthetic_inputs(&shape, 2.0, 11);
    let cfg = DeviceConfig::xavier_agx();
    let k = Im2colDeformKernel::new(
        shape,
        TileConfig::default16(),
        &x,
        &off,
        OffsetTransform::Identity,
        Sampling::Software,
        cfg.max_texture_layers,
        cfg.max_texture_dim,
    )
    .unwrap();
    assert_eq!(allocations_tracing(&k, &cfg, 4), 0);
}

#[test]
fn im2col_texture_traces_without_allocating() {
    let shape = table2_shape();
    let (x, off) = synthetic_inputs(&shape, 2.0, 12);
    let cfg = DeviceConfig::xavier_agx();
    let k = Im2colDeformKernel::new(
        shape,
        TileConfig::default16(),
        &x,
        &off,
        OffsetTransform::Identity,
        Sampling::Texture { frac_bits: 23 },
        cfg.max_texture_layers,
        cfg.max_texture_dim,
    )
    .unwrap();
    assert_eq!(allocations_tracing(&k, &cfg, 4), 0);
}

#[test]
fn fused_texture_traces_without_allocating() {
    let shape = table2_shape();
    let (x, off) = synthetic_inputs(&shape, 2.0, 13);
    let cfg = DeviceConfig::xavier_agx();
    let k = FusedTexDeformKernel::new(
        shape,
        TileConfig::default16(),
        &x,
        &off,
        OffsetTransform::Identity,
        8,
        cfg.max_texture_layers,
        cfg.max_texture_dim,
    )
    .unwrap();
    assert_eq!(allocations_tracing(&k, &cfg, 2), 0);
}

/// The modulated (DCNv2) and sparse-softmax (DCNv3) variants stay on the
/// zero-allocation trace path: their extra modulation loads and softmax
/// arithmetic go through the same `_into` sink entry points as v1, with a
/// real modulation tensor attached so the address stream is exercised.
#[test]
fn modulated_and_sparse_kernels_trace_without_allocating() {
    use defcon::kernels::op::{synthetic_modulation, OpFamily};
    let shape = table2_shape();
    let (x, off) = synthetic_inputs(&shape, 2.0, 14);
    let cfg = DeviceConfig::xavier_agx();
    for family in [OpFamily::DcnV2, OpFamily::DcnV3] {
        let m = synthetic_modulation(&shape, family, 14);
        let im2col = Im2colDeformKernel::new_family(
            shape,
            TileConfig::default16(),
            &x,
            &off,
            OffsetTransform::Identity,
            Sampling::Texture { frac_bits: 23 },
            cfg.max_texture_layers,
            cfg.max_texture_dim,
            family,
            m.as_ref(),
        )
        .unwrap();
        assert_eq!(
            allocations_tracing(&im2col, &cfg, 2),
            0,
            "{family:?} im2col"
        );
        let fused = FusedTexDeformKernel::new_family(
            shape,
            TileConfig::default16(),
            &x,
            &off,
            OffsetTransform::Identity,
            8,
            cfg.max_texture_layers,
            cfg.max_texture_dim,
            family,
            m.as_ref(),
        )
        .unwrap();
        assert_eq!(allocations_tracing(&fused, &cfg, 2), 0, "{family:?} fused");
    }
}

#[test]
fn gemm_traces_without_allocating() {
    let cfg = DeviceConfig::xavier_agx();
    let k = GemmKernel::for_conv(&table2_shape());
    assert_eq!(allocations_tracing(&k, &cfg, 2), 0);
}

#[test]
fn regular_conv_traces_without_allocating() {
    let cfg = DeviceConfig::xavier_agx();
    let k = RegularConvKernel::new(table2_shape(), "offset_conv");
    assert_eq!(allocations_tracing(&k, &cfg, 4), 0);
}

#[test]
fn depthwise_conv_traces_without_allocating() {
    let cfg = DeviceConfig::xavier_agx();
    let k = DepthwiseConvKernel {
        shape: table2_shape(),
    };
    assert_eq!(allocations_tracing(&k, &cfg, 4), 0);
}

/// The accel backend's inner tile loop — plan indexing, per-tile halo
/// extents, per-tile cycle costs, and the totals accumulation — is pure
/// index arithmetic over precomputed structs: walking every tile of the
/// paper's exhaustive Table II layer performs zero heap allocations.
/// (`TilePlan::tiles()` is a counting iterator, not a materialized list.)
#[test]
fn accel_tile_loop_does_not_allocate() {
    use defcon::accel::{Accel, AccelConfig};
    use defcon::kernels::DeformConvOp;

    let accel = Accel::new(AccelConfig::edge());
    let op = DeformConvOp::baseline(table2_shape());
    // Plan and model construction may allocate; the tile walk may not.
    let plan = accel.plan(&op);
    let model = accel.cycle_model(&op);
    assert!(plan.num_tiles() > 1, "a multi-tile plan exercises the loop");
    // Warm anything lazily initialised, then measure.
    let mut sink = model.totals(&plan);
    let before = thread_allocations();
    for _ in 0..4 {
        sink = model.totals(&plan);
    }
    assert_eq!(thread_allocations() - before, 0);
    assert!(sink.total_cycles > 0, "the walk must produce real totals");
}
