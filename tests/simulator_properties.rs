//! Property-based tests over the simulator and kernel stack.
//!
//! Ported from `proptest` to the in-workspace `defcon_support::prop`
//! harness: each test keeps its original property and case count (24), and
//! pins an explicit master seed so every run exercises the same inputs.

use defcon::gpusim::report::Counters;
use defcon::prelude::*;
use defcon_support::prop::{self, Config};
use defcon_support::rng::Rng;
use defcon_support::{prop_assert, prop_assert_eq};

const CASES: u32 = 24;

/// Bilinear sampling is exact at integer coordinates for any tensor.
#[test]
fn bilinear_exact_at_integers() {
    prop::check(
        "bilinear_exact_at_integers",
        &Config::new(CASES, 0xDEFC_0001),
        |rng| {
            (
                rng.gen_range(2usize..10),
                rng.gen_range(2usize..10),
                rng.gen_range(0u64..1000),
            )
        },
        |&(h, w, seed)| {
            let t = Tensor::randn(&[1, 1, h, w], 0.0, 1.0, seed);
            for y in 0..h {
                for x in 0..w {
                    let v = defcon::tensor::sample::bilinear_sample(&t, 0, 0, y as f32, x as f32);
                    prop_assert!((v - t.at4(0, 0, y, x)).abs() < 1e-6);
                }
            }
            Ok(())
        },
    );
}

/// Bilinear sampling is bounded by the min/max of its 4 neighbours — the
/// interpolation property, for any fractional position.
#[test]
fn bilinear_within_neighbour_hull() {
    prop::check(
        "bilinear_within_neighbour_hull",
        &Config::new(CASES, 0xDEFC_0002),
        |rng| {
            (
                rng.gen_range(0.0f32..6.0),
                rng.gen_range(0.0f32..6.0),
                rng.gen_range(0u64..1000),
            )
        },
        |&(y, x, seed)| {
            let t = Tensor::rand_uniform(&[1, 1, 8, 8], 0.0, 1.0, seed);
            let v = defcon::tensor::sample::bilinear_sample(&t, 0, 0, y, x);
            prop_assert!(
                (0.0..=1.0).contains(&v),
                "sample {v} escaped the value hull"
            );
            Ok(())
        },
    );
}

/// Zero offsets reduce deformable conv to regular conv for any shape.
#[test]
fn zero_offsets_are_rigid() {
    prop::check(
        "zero_offsets_are_rigid",
        &Config::new(CASES, 0xDEFC_0003),
        |rng| {
            (
                rng.gen_range(1usize..4),
                rng.gen_range(5usize..9),
                rng.gen_range(0u64..500),
            )
        },
        |&(c, hw, seed)| {
            let p = defcon::tensor::sample::DeformConv2dParams::same3x3();
            let x = Tensor::randn(&[1, c, hw, hw], 0.0, 1.0, seed);
            let w = Tensor::randn(&[2, c, 3, 3], 0.0, 0.4, seed ^ 1);
            let off = Tensor::zeros(&[1, 18, hw, hw]);
            let a = defcon::tensor::sample::deform_conv2d_ref(
                &x,
                &off,
                &w,
                None,
                &p,
                OffsetTransform::Identity,
            );
            let b = defcon::tensor::conv::conv2d(&x, &w, None, &p.conv);
            for (p, q) in a.data().iter().zip(b.data().iter()) {
                prop_assert!((p - q).abs() < 1e-4);
            }
            Ok(())
        },
    );
}

/// The coalescer never reports more sectors than active lanes × 2 and never
/// under-reports requested bytes.
#[test]
fn coalescer_bounds() {
    prop::check(
        "coalescer_bounds",
        &Config::new(CASES, 0xDEFC_0004),
        |rng| {
            let n = rng.gen_range(1usize..32);
            (0..n)
                .map(|_| rng.gen_range(0u64..1_000_000))
                .collect::<Vec<u64>>()
        },
        |addrs| {
            let r = defcon::gpusim::coalesce::coalesce(addrs, 4);
            prop_assert!(r.transactions() <= 2 * addrs.len() as u64);
            prop_assert!(r.transactions() >= 1);
            prop_assert_eq!(r.requested_bytes, addrs.len() as u64 * 4);
            prop_assert!(r.efficiency() <= 1.0 + 1e-12);
            Ok(())
        },
    );
}

/// Cache hit/miss counts always sum to the access count, and the hit rate is
/// a probability.
#[test]
fn cache_stats_consistent() {
    prop::check(
        "cache_stats_consistent",
        &Config::new(CASES, 0xDEFC_0005),
        |rng| {
            let n = rng.gen_range(1usize..200);
            (0..n)
                .map(|_| rng.gen_range(0u64..512))
                .collect::<Vec<u64>>()
        },
        |lines| {
            let geo = defcon::gpusim::device::CacheGeometry {
                size_bytes: 4096,
                line_bytes: 64,
                ways: 2,
                hit_latency: 1,
            };
            let mut c = defcon::gpusim::cache::Cache::new(geo);
            for &l in lines {
                c.access_line(l);
            }
            prop_assert_eq!(c.hits() + c.misses(), lines.len() as u64);
            prop_assert!((0.0..=1.0).contains(&c.hit_rate()));
            Ok(())
        },
    );
}

/// Simulated kernel time is positive and scales monotonically with the batch
/// dimension for the fused texture kernel.
#[test]
fn fused_kernel_time_monotone_in_work() {
    prop::check(
        "fused_kernel_time_monotone_in_work",
        &Config::new(CASES, 0xDEFC_0006),
        |rng| (rng.gen_range(4usize..17), rng.gen_range(12usize..28)),
        |&(c, hw)| {
            let gpu = Gpu::new(DeviceConfig::xavier_agx());
            let small = DeformLayerShape::same3x3(c, c, hw, hw);
            let big = DeformLayerShape::same3x3(2 * c, 2 * c, hw, hw);
            let t = |shape: DeformLayerShape| {
                let (x, off) = synthetic_inputs(&shape, 2.0, 9);
                DeformConvOp {
                    method: SamplingMethod::Tex2d,
                    ..DeformConvOp::baseline(shape)
                }
                .simulate_deform(&gpu, &x, &off)
                .iter()
                .map(|r| r.time_ms)
                .sum::<f64>()
            };
            let (ts, tb) = (t(small), t(big));
            prop_assert!(ts > 0.0);
            prop_assert!(tb > ts, "4x the MACs should not be faster: {tb} vs {ts}");
            Ok(())
        },
    );
}

/// `SamplePolicy::select` invariants for arbitrary (grid, budget) pairs:
/// sorted, unique, starts at block 0, never longer than `max_blocks`, never
/// out of range, and covers the grid up to one stride of the tail.
#[test]
fn sample_policy_select_invariants() {
    prop::check(
        "sample_policy_select_invariants",
        &Config::new(CASES, 0xDEFC_0010),
        |rng| {
            // Mix everyday grids with the huge ones that used to break the
            // f64 stride arithmetic.
            let grid = match rng.gen_range(0u32..3) {
                0 => rng.gen_range(1usize..1_000),
                1 => rng.gen_range(1_000usize..2_000_000),
                _ => rng.gen_range(1usize << 40..1usize << 60),
            };
            (grid, rng.gen_range(1usize..2_000))
        },
        |&(grid, max_blocks)| {
            let p = SamplePolicy {
                max_blocks,
                ..SamplePolicy::default()
            };
            let idx = p.select(grid);
            prop_assert_eq!(idx.len(), max_blocks.min(grid));
            prop_assert_eq!(idx[0], 0);
            prop_assert!(
                idx.windows(2).all(|w| w[0] < w[1]),
                "sample must be strictly increasing (sorted + unique)"
            );
            prop_assert!(*idx.last().unwrap() < grid, "index out of range");
            prop_assert!(
                grid - idx.last().unwrap() <= grid.div_ceil(max_blocks),
                "tail of the grid left uncovered"
            );
            Ok(())
        },
    );
}

/// `Counters::merge` is commutative and `scale(1.0)` is the identity — the
/// algebra the parallel engine's band merge relies on.
#[test]
fn counters_merge_commutative_scale_identity() {
    // Values stay below 2^53 so the f64 round-trip inside `scale` is exact;
    // real launches are far below that.
    fn arbitrary_counters(rng: &mut defcon_support::rng::StdRng, lo: u64) -> Counters {
        Counters {
            flops: rng.gen_range(lo..1 << 50),
            alu_ops: rng.gen_range(lo..1 << 50),
            gld_requests: rng.gen_range(lo..1 << 40),
            gld_transactions: rng.gen_range(lo..1 << 40),
            gld_requested_bytes: rng.gen_range(lo..1 << 50),
            gst_requests: rng.gen_range(lo..1 << 40),
            gst_transactions: rng.gen_range(lo..1 << 40),
            gst_requested_bytes: rng.gen_range(lo..1 << 50),
            tex_requests: rng.gen_range(lo..1 << 40),
            tex_line_accesses: rng.gen_range(lo..1 << 40),
            tex_hits: rng.gen_range(lo..1 << 40),
            l1_hits: rng.gen_range(lo..1 << 40),
            l1_accesses: rng.gen_range(lo..1 << 40),
            l2_hits: rng.gen_range(lo..1 << 40),
            l2_accesses: rng.gen_range(lo..1 << 40),
            dram_read_bytes: rng.gen_range(lo..1 << 50),
            dram_write_bytes: rng.gen_range(lo..1 << 50),
        }
    }
    prop::check(
        "counters_merge_commutative_scale_identity",
        &Config::new(CASES, 0xDEFC_0011),
        |rng| (arbitrary_counters(rng, 0), arbitrary_counters(rng, 1)),
        |(a, b)| {
            let mut ab = a.clone();
            ab.merge(b);
            let mut ba = b.clone();
            ba.merge(a);
            prop_assert_eq!(&ab, &ba);
            prop_assert_eq!(&a.scale(1.0), a);
            let mut with_zero = a.clone();
            with_zero.merge(&Counters::default());
            prop_assert_eq!(&with_zero, a);
            Ok(())
        },
    );
}

/// mAP is always within [0, 100] on arbitrary generated scenes with the
/// untrained detector.
#[test]
fn map_bounded() {
    prop::check(
        "map_bounded",
        &Config::new(CASES, 0xDEFC_0007),
        |rng| rng.gen_range(0u64..50),
        |&seed| {
            use defcon::models::trainer::{evaluate_detector, prepare};
            let mut store = ParamStore::new();
            let backbone =
                BackboneConfig::mini(48, BackboneConfig::uniform_slots(5, SlotKind::Regular));
            let mut det = YolactLite::new(&mut store, backbone);
            let val = prepare(&DeformedShapesConfig::default(), 2, seed).samples;
            let m = evaluate_detector(&mut det, &store, &val, 0.3);
            prop_assert!((0.0..=100.0).contains(&m.box_map));
            prop_assert!((0.0..=100.0).contains(&m.mask_map));
            Ok(())
        },
    );
}

/// The DCNv2 mask activation: `sigmoid` stays in [0, 1] and is strictly
/// monotone, for any pair of finite logits. These are the two properties
/// the modulated operator relies on — the mask can attenuate but never
/// amplify or negate a sample.
#[test]
fn sigmoid_bounded_and_monotone() {
    use defcon::tensor::sample::sigmoid;
    prop::check(
        "sigmoid_bounded_and_monotone",
        &Config::new(CASES, 0xDEFC_0008),
        |rng| (rng.gen_range(-80.0f32..80.0), rng.gen_range(1e-3f32..40.0)),
        |&(x, dx)| {
            let (lo, hi) = (sigmoid(x), sigmoid(x + dx));
            prop_assert!(
                (0.0..=1.0).contains(&lo),
                "sigmoid({x}) = {lo} escaped [0,1]"
            );
            prop_assert!((0.0..=1.0).contains(&hi));
            prop_assert!(
                lo <= hi,
                "sigmoid not monotone: σ({x})={lo} > σ({})={hi}",
                x + dx
            );
            // Strict monotonicity holds wherever f32 hasn't saturated.
            if lo > 0.0 && hi < 1.0 {
                prop_assert!(lo < hi, "σ({x})={lo} not strictly below σ({})={hi}", x + dx);
            }
            // Symmetry: σ(-x) = 1 - σ(x) (both branches of the stable form).
            prop_assert!((sigmoid(-x) - (1.0 - lo)).abs() < 1e-6);
            Ok(())
        },
    );
}

/// The DCNv3 grouped softmax: weights are positive, sum to 1 within 1e-12
/// (f64 accumulation), are invariant under a constant logit shift, and
/// permuting the logits permutes the weights identically.
#[test]
fn tap_softmax_normalized_shift_invariant_equivariant() {
    use defcon::tensor::sample::tap_softmax;
    prop::check(
        "tap_softmax_normalized_shift_invariant_equivariant",
        &Config::new(CASES, 0xDEFC_0009),
        |rng| {
            let kk = [1usize, 4, 9, 25][rng.gen_range(0usize..4)];
            let logits: Vec<f32> = (0..kk).map(|_| rng.gen_range(-8.0f32..8.0)).collect();
            let shift = rng.gen_range(-4.0f32..4.0);
            let rot = rng.gen_range(0usize..kk);
            (logits, shift, rot)
        },
        |(logits, shift, rot)| {
            let w = tap_softmax(logits);
            let sum: f64 = w.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-12, "Σw = {sum}");
            prop_assert!(w.iter().all(|&v| v > 0.0));
            // Shift invariance: softmax(l + c) == softmax(l) up to fp noise
            // from the max-subtract (both subtract their own max, so the
            // shifted exponent arguments are identical when c is exact).
            let shifted: Vec<f32> = logits.iter().map(|&l| l + shift).collect();
            for (a, b) in tap_softmax(&shifted).iter().zip(w.iter()) {
                prop_assert!((a - b).abs() < 1e-6, "shift broke invariance: {a} vs {b}");
            }
            // Permutation equivariance: rotating the logits rotates the
            // weights bytewise (the same f64 ops run in a different order
            // only in the sum, which is why this is exact for a rotation
            // of distinct values only up to 1e-15 — assert tight).
            let rotated: Vec<f32> = (0..logits.len())
                .map(|i| logits[(i + rot) % logits.len()])
                .collect();
            let wr = tap_softmax(&rotated);
            for i in 0..logits.len() {
                let expect = w[(i + rot) % logits.len()];
                prop_assert!((wr[i] - expect).abs() < 1e-15, "permutation equivariance");
            }
            Ok(())
        },
    );
}

/// The v2 reference with an all-ones mask is bytewise the v1 reference,
/// and the v3 reference with constant logits is bytewise v2 with a flat
/// `fl(1/k²)` mask — the two reduction identities, on random shapes.
#[test]
fn family_reduction_identities_hold_on_random_shapes() {
    use defcon::tensor::sample::{
        deform_conv2d_ref, deform_conv2d_v2_ref, deform_conv2d_v3_ref, DeformConv2dParams,
    };
    prop::check(
        "family_reduction_identities_hold_on_random_shapes",
        &Config::new(12, 0xDEFC_000A),
        |rng| {
            (
                rng.gen_range(1usize..3),
                rng.gen_range(5usize..8),
                rng.gen_range(0u64..500),
                rng.gen_range(-3.0f32..3.0),
            )
        },
        |&(c, hw, seed, logit)| {
            let p = DeformConv2dParams::same3x3();
            let x = Tensor::randn(&[1, c, hw, hw], 0.0, 1.0, seed);
            let w = Tensor::randn(&[2, c, 3, 3], 0.0, 0.4, seed ^ 7);
            let off = Tensor::randn(&[1, 18, hw, hw], 0.0, 1.5, seed ^ 13);
            let v1 = deform_conv2d_ref(&x, &off, &w, None, &p, OffsetTransform::Identity);
            let ones = Tensor::full(&[1, 9, hw, hw], 1.0);
            let v2 = deform_conv2d_v2_ref(&x, &off, &ones, &w, None, &p, OffsetTransform::Identity);
            prop_assert_eq!(v1.data(), v2.data());
            let logits = Tensor::full(&[1, 9, hw, hw], logit);
            let v3 =
                deform_conv2d_v3_ref(&x, &off, &logits, &w, None, &p, OffsetTransform::Identity);
            let flat = Tensor::full(&[1, 9, hw, hw], (1.0f64 / 9.0) as f32);
            let v2_flat =
                deform_conv2d_v2_ref(&x, &off, &flat, &w, None, &p, OffsetTransform::Identity);
            prop_assert_eq!(v3.data(), v2_flat.data());
            Ok(())
        },
    );
}
