//! Property-based tests over the simulator and kernel stack.

use defcon::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Bilinear sampling is exact at integer coordinates for any tensor.
    #[test]
    fn bilinear_exact_at_integers(h in 2usize..10, w in 2usize..10, seed in 0u64..1000) {
        let t = Tensor::randn(&[1, 1, h, w], 0.0, 1.0, seed);
        for y in 0..h {
            for x in 0..w {
                let v = defcon::tensor::sample::bilinear_sample(&t, 0, 0, y as f32, x as f32);
                prop_assert!((v - t.at4(0, 0, y, x)).abs() < 1e-6);
            }
        }
    }

    /// Bilinear sampling is bounded by the min/max of its 4 neighbours —
    /// the interpolation property, for any fractional position.
    #[test]
    fn bilinear_within_neighbour_hull(y in 0.0f32..6.0, x in 0.0f32..6.0, seed in 0u64..1000) {
        let t = Tensor::rand_uniform(&[1, 1, 8, 8], 0.0, 1.0, seed);
        let v = defcon::tensor::sample::bilinear_sample(&t, 0, 0, y, x);
        prop_assert!((0.0..=1.0).contains(&v), "sample {v} escaped the value hull");
    }

    /// Zero offsets reduce deformable conv to regular conv for any shape.
    #[test]
    fn zero_offsets_are_rigid(c in 1usize..4, hw in 5usize..9, seed in 0u64..500) {
        let p = defcon::tensor::sample::DeformConv2dParams::same3x3();
        let x = Tensor::randn(&[1, c, hw, hw], 0.0, 1.0, seed);
        let w = Tensor::randn(&[2, c, 3, 3], 0.0, 0.4, seed ^ 1);
        let off = Tensor::zeros(&[1, 18, hw, hw]);
        let a = defcon::tensor::sample::deform_conv2d_ref(&x, &off, &w, None, &p, OffsetTransform::Identity);
        let b = defcon::tensor::conv::conv2d(&x, &w, None, &p.conv);
        for (p, q) in a.data().iter().zip(b.data().iter()) {
            prop_assert!((p - q).abs() < 1e-4);
        }
    }

    /// The coalescer never reports more sectors than active lanes × 2 and
    /// never under-reports requested bytes.
    #[test]
    fn coalescer_bounds(addrs in proptest::collection::vec(0u64..1_000_000, 1..32)) {
        let r = defcon::gpusim::coalesce::coalesce(&addrs, 4);
        prop_assert!(r.transactions() <= 2 * addrs.len() as u64);
        prop_assert!(r.transactions() >= 1);
        prop_assert_eq!(r.requested_bytes, addrs.len() as u64 * 4);
        prop_assert!(r.efficiency() <= 1.0 + 1e-12);
    }

    /// Cache hit/miss counts always sum to the access count, and the hit
    /// rate is a probability.
    #[test]
    fn cache_stats_consistent(lines in proptest::collection::vec(0u64..512, 1..200)) {
        let geo = defcon::gpusim::device::CacheGeometry {
            size_bytes: 4096, line_bytes: 64, ways: 2, hit_latency: 1,
        };
        let mut c = defcon::gpusim::cache::Cache::new(geo);
        for &l in &lines {
            c.access_line(l);
        }
        prop_assert_eq!(c.hits() + c.misses(), lines.len() as u64);
        prop_assert!((0.0..=1.0).contains(&c.hit_rate()));
    }

    /// Simulated kernel time is positive and scales monotonically with the
    /// batch dimension for the fused texture kernel.
    #[test]
    fn fused_kernel_time_monotone_in_work(c in 4usize..17, hw in 12usize..28) {
        let gpu = Gpu::new(DeviceConfig::xavier_agx());
        let small = DeformLayerShape::same3x3(c, c, hw, hw);
        let big = DeformLayerShape::same3x3(2 * c, 2 * c, hw, hw);
        let t = |shape: DeformLayerShape| {
            let (x, off) = synthetic_inputs(&shape, 2.0, 9);
            DeformConvOp { method: SamplingMethod::Tex2d, ..DeformConvOp::baseline(shape) }
                .simulate_deform(&gpu, &x, &off)
                .iter()
                .map(|r| r.time_ms)
                .sum::<f64>()
        };
        let (ts, tb) = (t(small), t(big));
        prop_assert!(ts > 0.0);
        prop_assert!(tb > ts, "4x the MACs should not be faster: {tb} vs {ts}");
    }

    /// mAP is always within [0, 100] on arbitrary generated scenes with the
    /// untrained detector.
    #[test]
    fn map_bounded(seed in 0u64..50) {
        use defcon::models::trainer::{evaluate_detector, prepare};
        let mut store = ParamStore::new();
        let backbone = BackboneConfig::mini(48, BackboneConfig::uniform_slots(5, SlotKind::Regular));
        let mut det = YolactLite::new(&mut store, backbone);
        let val = prepare(&DeformedShapesConfig::default(), 2, seed).samples;
        let m = evaluate_detector(&mut det, &store, &val, 0.3);
        prop_assert!((0.0..=100.0).contains(&m.box_map));
        prop_assert!((0.0..=100.0).contains(&m.mask_map));
    }
}
