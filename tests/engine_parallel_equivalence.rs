//! The parallel engine's determinism contract, checked on the paper's
//! Table II layer set with the real kernels (software im2col, fused
//! texture, GEMM epilogue) — not toy traces:
//!
//! * `threads = 1`: [`Gpu::launch`] must produce **byte-identical**
//!   `KernelReport` JSON to the reference [`Gpu::launch_serial`] path — a
//!   single band shares one launch-persistent L2 and accumulates in the
//!   exact serial order, so there is nothing to tolerate;
//! * `threads = 4`: each worker's private cold L2 shard loses cross-band
//!   reuse, so estimates may move — but cycles (and therefore time) must
//!   stay within the documented ≤ 1 % tolerance, and the merged `u64`
//!   counters that don't depend on L2 outcomes must match exactly.

use defcon::gpusim::trace::BlockTrace;
use defcon::kernels::fused::FusedTexDeformKernel;
use defcon::kernels::gemm_kernel::GemmKernel;
use defcon::kernels::im2col::Im2colDeformKernel;
use defcon::prelude::*;
use defcon_support::json::ToJson;

/// The three kernel stages of one Table II layer, boxed behind the trace
/// interface so each runs through both engine paths.
fn layer_kernels(shape: DeformLayerShape, gpu: &Gpu) -> Vec<Box<dyn BlockTrace + '_>> {
    let cfg = gpu.config();
    // Inputs are leaked so the kernels (which borrow tensors) can be
    // returned; the test process owns a handful of layers only.
    let (x, offsets) = synthetic_inputs(&shape, 4.0, 0xDEFC);
    let x: &'static _ = Box::leak(Box::new(x));
    let offsets: &'static _ = Box::leak(Box::new(offsets));
    let im2col = Im2colDeformKernel::new(
        shape,
        TileConfig::default16(),
        x,
        offsets,
        OffsetTransform::Identity,
        SamplingMethod::SoftwareBilinear.sampling(),
        cfg.max_texture_layers,
        cfg.max_texture_dim,
    )
    .expect("texture limits exceeded");
    let mut fused = FusedTexDeformKernel::new(
        shape,
        TileConfig::default16(),
        x,
        offsets,
        OffsetTransform::Identity,
        23, // tex2D fp32 filter precision
        cfg.max_texture_layers,
        cfg.max_texture_dim,
    )
    .expect("texture limits exceeded");
    fused.co_blocks = FusedTexDeformKernel::pick_co_blocks(&shape, TileConfig::default16(), cfg);
    vec![
        Box::new(im2col),
        Box::new(fused),
        Box::new(GemmKernel::for_conv(&shape)),
    ]
}

/// Table II layers small enough to iterate in a debug-build test; the grid
/// sizes still far exceed the 96-block sampling budget, so every launch
/// exercises sampling, banding and extrapolation.
fn table2_layers() -> Vec<DeformLayerShape> {
    paper_layer_sweep()
        .into_iter()
        .filter(|s| s.h <= 69)
        .collect()
}

#[test]
fn one_thread_reports_are_byte_identical_to_serial() {
    let gpu = Gpu::with_policy(
        DeviceConfig::xavier_agx(),
        SamplePolicy::default().with_threads(1),
    );
    for shape in table2_layers() {
        for kernel in layer_kernels(shape, &gpu) {
            let serial = gpu.launch_serial(kernel.as_ref()).to_json().to_string();
            let parallel = gpu.launch(kernel.as_ref()).to_json().to_string();
            assert_eq!(
                parallel, serial,
                "threads=1 diverged from serial on {shape:?}"
            );
        }
    }
}

#[test]
fn four_thread_cycles_stay_within_one_percent_of_serial() {
    let gpu = Gpu::with_policy(
        DeviceConfig::xavier_agx(),
        SamplePolicy::default().with_threads(4),
    );
    for shape in table2_layers() {
        for kernel in layer_kernels(shape, &gpu) {
            let serial = gpu.launch_serial(kernel.as_ref());
            let parallel = gpu.launch(kernel.as_ref());

            let rel = (parallel.cycles - serial.cycles).abs() / serial.cycles;
            assert!(
                rel <= 0.01,
                "{}: 4-thread cycles diverged {:.3}% (> 1%) on {shape:?}",
                serial.kernel,
                rel * 100.0
            );
            let rel_t = (parallel.time_ms - serial.time_ms).abs() / serial.time_ms;
            assert!(
                rel_t <= 0.01,
                "{}: 4-thread time diverged {:.3}% (> 1%) on {shape:?}",
                serial.kernel,
                rel_t * 100.0
            );

            // Counters independent of L2 hit/miss outcomes are exact u64
            // merges — any drift here is a banding bug, not shard skew.
            let (s, p) = (&serial.counters, &parallel.counters);
            assert_eq!(s.flops, p.flops, "{shape:?}");
            assert_eq!(s.gld_requests, p.gld_requests, "{shape:?}");
            assert_eq!(s.gld_transactions, p.gld_transactions, "{shape:?}");
            assert_eq!(s.tex_requests, p.tex_requests, "{shape:?}");
            assert_eq!(s.l1_accesses, p.l1_accesses, "{shape:?}");
            assert_eq!(s.l1_hits, p.l1_hits, "{shape:?}");
            assert_eq!(serial.grid_blocks, parallel.grid_blocks);
            assert_eq!(serial.simulated_blocks, parallel.simulated_blocks);
        }
    }
}

/// A fixed thread count must be deterministic run to run — the contract's
/// "deterministic for fixed N" clause, on a real layer.
#[test]
fn fixed_thread_count_is_reproducible() {
    let shape = DeformLayerShape::same3x3(128, 128, 69, 69);
    for threads in [2usize, 4, 8] {
        let gpu = Gpu::with_policy(
            DeviceConfig::xavier_agx(),
            SamplePolicy::default().with_threads(threads),
        );
        for kernel in layer_kernels(shape, &gpu) {
            let a = gpu.launch(kernel.as_ref()).to_json().to_string();
            let b = gpu.launch(kernel.as_ref()).to_json().to_string();
            assert_eq!(a, b, "threads={threads} not reproducible");
        }
    }
}
