//! Differential serving tests: the response *content* of `core::serve`
//! must be byte-identical across worker counts and cache temperatures.
//!
//! This is the serving layer's correctness contract (DESIGN.md §9): a
//! response is a pure function of the canonicalized request, so neither
//! the number of `support::par` worker bands, nor whether the answer came
//! from the content-addressed cache, nor the cache's eviction pressure
//! may change a single byte of it. Each test serves a seeded randomized
//! request stream two ways and compares the sorted
//! [`SimResponse::content_string`] sets.
//!
//! CI runs this suite under both `DEFCON_THREADS=1` and `=4`, which also
//! pins the default worker count (`ServeConfig::default().workers`
//! follows `DEFCON_THREADS`) against the explicit `workers: 1` baseline.

use defcon::core::serve::{
    RequestPolicy, ServeConfig, ServeDevice, SimRequest, SimResponse, SimServer,
};
use defcon::kernels::backend::BackendKind;
use defcon::kernels::op::{OpFamily, SamplingMethod};
use defcon::kernels::DeformLayerShape;
use defcon_support::fault;
use defcon_support::rng::{Rng, SeedableRng, StdRng};

/// A seeded stream over tiny shapes, both devices, all three kernel
/// families, all three operator families (DCNv1/v2/v3), and two seeds —
/// small enough for debug-mode CI, varied enough to exercise hits,
/// misses, and mid-stream drains.
fn random_stream(seed: u64, n: usize) -> Vec<SimRequest> {
    let mut rng = StdRng::seed_from_u64(seed);
    let shapes = [
        DeformLayerShape::same3x3(4, 4, 10, 10),
        DeformLayerShape::same3x3(8, 8, 8, 8),
        DeformLayerShape::same3x3(8, 16, 6, 6),
    ];
    let devices = ServeDevice::all();
    let families = SamplingMethod::ladder();
    let ops = OpFamily::all();
    (0..n)
        .map(|_| SimRequest {
            device: devices[rng.gen_range(0..devices.len())],
            layer: shapes[rng.gen_range(0..shapes.len())],
            kernel_family: families[rng.gen_range(0..families.len())],
            op_family: ops[rng.gen_range(0..ops.len())],
            backend: BackendKind::Gpusim,
            policy: RequestPolicy {
                max_blocks: 16,
                seed: rng.gen_range(0u64..2),
                ..RequestPolicy::default()
            },
        })
        .collect()
}

fn sorted_contents(responses: &[SimResponse]) -> Vec<String> {
    let mut contents: Vec<String> = responses.iter().map(|r| r.content_string()).collect();
    contents.sort();
    contents
}

fn serve_fresh(cfg: ServeConfig, stream: &[SimRequest]) -> Vec<String> {
    let mut server = SimServer::new(cfg);
    let responses = server.serve(stream);
    assert_eq!(responses.len(), stream.len());
    sorted_contents(&responses)
}

#[test]
fn one_vs_four_workers_byte_identical() {
    let _quiet = fault::quiesce();
    let stream = random_stream(11, 24);
    let cfg = |workers| ServeConfig {
        workers,
        queue_capacity: 8,
        cache_capacity: 64,
        ..ServeConfig::default()
    };
    assert_eq!(
        serve_fresh(cfg(1), &stream),
        serve_fresh(cfg(4), &stream),
        "worker count changed response bytes"
    );
}

#[test]
fn default_workers_match_single_worker() {
    // ServeConfig::default() follows DEFCON_THREADS; whatever CI set it
    // to, content must equal the explicit single-worker serve.
    let _quiet = fault::quiesce();
    let stream = random_stream(12, 16);
    let default_cfg = ServeConfig {
        queue_capacity: 8,
        cache_capacity: 64,
        ..ServeConfig::default()
    };
    let pinned = ServeConfig {
        workers: 1,
        ..default_cfg
    };
    assert_eq!(
        serve_fresh(default_cfg, &stream),
        serve_fresh(pinned, &stream)
    );
}

#[test]
fn cold_vs_warm_cache_byte_identical() {
    let _quiet = fault::quiesce();
    let stream = random_stream(13, 24);
    let mut server = SimServer::new(ServeConfig {
        workers: 2,
        queue_capacity: 8,
        cache_capacity: 64,
        ..ServeConfig::default()
    });
    let cold = server.serve(&stream);
    let hits_after_cold = server.cache().hits();
    let warm = server.serve(&stream);
    assert_eq!(
        sorted_contents(&cold),
        sorted_contents(&warm),
        "cache temperature changed response bytes"
    );
    assert!(warm.iter().all(|r| r.from_cache), "warm pass must hit");
    assert_eq!(server.cache().hits() - hits_after_cold, stream.len() as u64);
}

#[test]
fn eviction_pressure_changes_hit_rate_not_bytes() {
    let _quiet = fault::quiesce();
    let stream = random_stream(14, 24);
    let cfg = |cache_capacity| ServeConfig {
        workers: 2,
        queue_capacity: 8,
        cache_capacity,
        ..ServeConfig::default()
    };
    let mut tight = SimServer::new(cfg(2));
    let mut roomy = SimServer::new(cfg(256));
    let a = tight.serve(&stream);
    let b = roomy.serve(&stream);
    assert_eq!(sorted_contents(&a), sorted_contents(&b));
    assert!(
        tight.cache().evictions() > 0,
        "capacity 2 must evict on this stream"
    );
    assert_eq!(roomy.cache().evictions(), 0);
    assert!(tight.cache().hits() <= roomy.cache().hits());
}

#[test]
fn repeated_cold_runs_are_reproducible() {
    let _quiet = fault::quiesce();
    let stream = random_stream(15, 16);
    let cfg = ServeConfig {
        workers: 3,
        queue_capacity: 4,
        cache_capacity: 32,
        ..ServeConfig::default()
    };
    assert_eq!(serve_fresh(cfg, &stream), serve_fresh(cfg, &stream));
}

/// `random_stream` with a deadline mixed onto each request: unbudgeted,
/// impossibly tight (trips at the first launch), mid-range (may trip mid
/// ladder or mid launch sequence), and generous (never trips).
fn budgeted_stream(seed: u64, n: usize) -> Vec<SimRequest> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xDEAD);
    random_stream(seed, n)
        .into_iter()
        .map(|mut req| {
            req.policy.deadline_cycles = match rng.gen_range(0u32..4) {
                0 => 0,
                1 => 1,
                2 => rng.gen_range(10_000u64..10_000_000),
                _ => u64::MAX / 2,
            };
            req
        })
        .collect()
}

#[test]
fn deadline_verdicts_invariant_to_worker_count() {
    // The deadline budget is virtual time (simulated cycles), so the
    // worker count must not change a single verdict byte — including
    // which launch a mid-range budget trips at.
    let _quiet = fault::quiesce();
    let stream = budgeted_stream(16, 24);
    let cfg = |workers| ServeConfig {
        workers,
        queue_capacity: 8,
        cache_capacity: 64,
        ..ServeConfig::default()
    };
    assert_eq!(
        serve_fresh(cfg(1), &stream),
        serve_fresh(cfg(4), &stream),
        "worker count changed a deadline verdict"
    );
}

#[test]
fn deadline_verdicts_invariant_to_cache_temperature() {
    // A cache hit replays the verdict over the cached per-launch reports
    // (and exceeded requests are never cached), so warm serves must
    // render byte-identical responses — errors included.
    let _quiet = fault::quiesce();
    let stream = budgeted_stream(17, 24);
    let mut server = SimServer::new(ServeConfig {
        workers: 2,
        queue_capacity: 8,
        cache_capacity: 64,
        ..ServeConfig::default()
    });
    let cold = server.serve(&stream);
    let warm = server.serve(&stream);
    assert_eq!(
        sorted_contents(&cold),
        sorted_contents(&warm),
        "cache temperature changed a deadline verdict"
    );
    // The stream's generous-budget requests must actually hit on the
    // warm pass — the invariant is vacuous otherwise.
    assert!(warm.iter().any(|r| r.from_cache));
}
