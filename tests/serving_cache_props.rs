//! Property tests for the serving cache key and eviction behaviour.
//!
//! The content-addressed cache is only sound if (DESIGN.md §9):
//! 1. canonicalization is **total** — every request renders to valid
//!    canonical JSON;
//! 2. canonicalization is **injective** — distinct requests render to
//!    distinct bytes (so the full-string check in the cache can never
//!    conflate two jobs, even under 64-bit hash collisions);
//! 3. the hash is **stable** — a pure function of those bytes, pinned
//!    across runs, platforms, and releases;
//! 4. LRU eviction changes **hit rates only**, never response bytes.

use defcon::core::serve::{
    fnv1a64, ReportCache, RequestPolicy, ServeConfig, ServeDevice, SimRequest, SimServer,
};
use defcon::kernels::backend::BackendKind;
use defcon::kernels::op::{OpFamily, SamplingMethod};
use defcon::kernels::DeformLayerShape;
use defcon_support::json::Json;
use defcon_support::prop::{self, Config};
use defcon_support::rng::{Rng, SeedableRng, StdRng};
use defcon_support::{fault, prop_assert, prop_assert_eq};

/// Draws an arbitrary request over the full field space the serving API
/// accepts (shapes beyond the paper sweep included — canonicalization
/// must not depend on a shape table).
fn gen_request(rng: &mut StdRng) -> SimRequest {
    let devices = ServeDevice::all();
    let families = SamplingMethod::ladder();
    let ops = OpFamily::all();
    SimRequest {
        device: devices[rng.gen_range(0..devices.len())],
        layer: DeformLayerShape {
            n: rng.gen_range(1usize..3),
            c_in: rng.gen_range(1usize..64),
            c_out: rng.gen_range(1usize..64),
            h: rng.gen_range(4usize..48),
            w: rng.gen_range(4usize..48),
            kernel: rng.gen_range(1usize..4),
            stride: rng.gen_range(1usize..3),
            pad: rng.gen_range(0usize..2),
            deform_groups: 1,
        },
        kernel_family: families[rng.gen_range(0..families.len())],
        op_family: ops[rng.gen_range(0..ops.len())],
        // Mix backends so totality/injectivity cover the optional
        // `backend` field the same way they cover op_family/deadline.
        backend: if rng.gen_range(0u32..4) == 0 {
            BackendKind::Accel
        } else {
            BackendKind::Gpusim
        },
        policy: RequestPolicy {
            max_blocks: rng.gen_range(1usize..128),
            seed: rng.gen_range(0u64..u64::MAX),
            spread_milli: rng.gen_range(0u32..8000),
            // Mix unbudgeted (0) and budgeted requests so injectivity and
            // totality cover the optional `deadline_cycles` field.
            deadline_cycles: if rng.gen_range(0u32..4) == 0 {
                rng.gen_range(1u64..u64::MAX)
            } else {
                0
            },
        },
    }
}

#[test]
fn canonicalization_is_total() {
    prop::check(
        "canonicalization_total",
        &Config::cases(128),
        gen_request,
        |req| {
            let canonical = req.canonical_string();
            prop_assert!(!canonical.is_empty());
            let doc = Json::parse(&canonical)
                .map_err(|e| format!("canonical form must parse as JSON: {e}"))?;
            prop_assert_eq!(
                doc.str_field("device").map(str::to_string),
                Ok(req.device.canonical_name().to_string())
            );
            // Rendering is a pure function of the request.
            prop_assert_eq!(req.canonical_string(), canonical);
            prop_assert_eq!(req.cache_key(), fnv1a64(canonical.as_bytes()));
            Ok(())
        },
    );
}

#[test]
fn canonicalization_is_injective_on_distinct_requests() {
    prop::check(
        "canonicalization_injective",
        &Config::cases(128),
        |rng| (gen_request(rng), gen_request(rng)),
        |(a, b)| {
            if a == b {
                prop_assert_eq!(a.canonical_string(), b.canonical_string());
                prop_assert_eq!(a.cache_key(), b.cache_key());
            } else {
                prop_assert!(
                    a.canonical_string() != b.canonical_string(),
                    "distinct requests rendered identically"
                );
            }
            Ok(())
        },
    );
}

#[test]
fn single_field_mutations_change_the_canonical_form() {
    // Injectivity at distance one: flipping any single field must change
    // the bytes (random pairs rarely probe near-collisions).
    let base = SimRequest {
        device: ServeDevice::XavierAgx,
        layer: DeformLayerShape::same3x3(8, 8, 12, 12),
        kernel_family: SamplingMethod::Tex2d,
        op_family: OpFamily::DcnV1,
        backend: BackendKind::Gpusim,
        policy: RequestPolicy::default(),
    };
    let mut mutants = vec![
        SimRequest {
            device: ServeDevice::Rtx2080Ti,
            ..base.clone()
        },
        SimRequest {
            kernel_family: SamplingMethod::Tex2dPlusPlus,
            ..base.clone()
        },
        SimRequest {
            op_family: OpFamily::DcnV2,
            ..base.clone()
        },
        SimRequest {
            op_family: OpFamily::DcnV3,
            ..base.clone()
        },
        SimRequest {
            backend: BackendKind::Accel,
            ..base.clone()
        },
        SimRequest {
            layer: DeformLayerShape::same3x3(8, 8, 12, 13),
            ..base.clone()
        },
    ];
    for (max_blocks, seed, spread_milli) in [(97, 2024, 4000), (96, 2025, 4000), (96, 2024, 4001)] {
        mutants.push(SimRequest {
            policy: RequestPolicy {
                max_blocks,
                seed,
                spread_milli,
                ..RequestPolicy::default()
            },
            ..base.clone()
        });
    }
    // A deadline budget must be visible to the canonical form (and two
    // distinct budgets must render distinctly).
    for deadline_cycles in [1u64, 1 << 20] {
        mutants.push(SimRequest {
            policy: RequestPolicy {
                deadline_cycles,
                ..base.policy.clone()
            },
            ..base.clone()
        });
    }
    for m in &mutants {
        assert_ne!(
            m.canonical_string(),
            base.canonical_string(),
            "mutation invisible to the canonical form: {m:?}"
        );
        assert_ne!(m.cache_key(), base.cache_key());
    }
}

#[test]
fn hash_is_pinned_across_runs_and_releases() {
    // The content address is part of the serving contract: if this test
    // breaks, every persisted digest and golden trace breaks with it.
    assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
    assert_eq!(fnv1a64(b"defcon"), 0xa2fe_d20c_73b5_9b48);
    let req = SimRequest {
        device: ServeDevice::XavierAgx,
        layer: DeformLayerShape::same3x3(8, 8, 12, 12),
        kernel_family: SamplingMethod::Tex2dPlusPlus,
        op_family: OpFamily::DcnV1,
        backend: BackendKind::Gpusim,
        policy: RequestPolicy::default(),
    };
    // A DCNv1 request canonicalizes WITHOUT an `op_family` field, so every
    // pre-DCNv2/v3 persisted digest keeps its original content address.
    assert!(!req.canonical_string().contains("op_family"));
    assert_eq!(req.cache_key(), 0x8e6b_e8af_ed20_e412);

    // v2/v3 requests add the field (right after `kernel_family`) and land
    // on their own pinned addresses.
    let v2 = SimRequest {
        op_family: OpFamily::DcnV2,
        ..req.clone()
    };
    let v3 = SimRequest {
        op_family: OpFamily::DcnV3,
        ..req.clone()
    };
    assert!(v2.canonical_string().contains("\"op_family\":\"DCNv2\""));
    assert!(v3.canonical_string().contains("\"op_family\":\"DCNv3\""));
    assert_eq!(v2.cache_key(), 0x0775_2b87_cb8a_6dfb);
    assert_eq!(v3.cache_key(), 0x32b5_84fd_5755_73a2);

    // A deadline budget appends `deadline_cycles` (16-digit hex, last in
    // the policy object) and lands on its own pinned address. Unbudgeted
    // requests omit the field entirely, so every pre-deadline persisted
    // digest keeps its original content address (checked above).
    assert!(!req.canonical_string().contains("deadline_cycles"));
    let budgeted = SimRequest {
        policy: RequestPolicy {
            deadline_cycles: 0x0002_0000,
            ..req.policy.clone()
        },
        ..req.clone()
    };
    assert!(budgeted
        .canonical_string()
        .contains("\"deadline_cycles\":\"0000000000020000\""));
    assert_eq!(budgeted.cache_key(), 0xfb42_147a_ac58_4a00);
}

#[test]
fn lru_eviction_changes_hit_rates_only() {
    let _quiet = fault::quiesce();
    // A repeating stream with more distinct keys than the tight cache
    // holds: responses must match a roomy server byte-for-byte while the
    // hit statistics diverge.
    let mut rng = StdRng::seed_from_u64(0xE71C);
    let pool: Vec<SimRequest> = (0..6)
        .map(|_| {
            let mut req = gen_request(&mut rng);
            // Keep simulation cheap: clamp the layer to tiny.
            req.layer =
                DeformLayerShape::same3x3(req.layer.c_in.min(8), req.layer.c_out.min(8), 8, 8);
            req.policy.max_blocks = req.policy.max_blocks.min(16);
            req
        })
        .collect();
    let stream: Vec<SimRequest> = (0..18).map(|i| pool[i % pool.len()].clone()).collect();
    let cfg = |cache_capacity| ServeConfig {
        workers: 1,
        queue_capacity: 4,
        cache_capacity,
        ..ServeConfig::default()
    };
    let mut tight = SimServer::new(cfg(2));
    let mut roomy = SimServer::new(cfg(64));
    let sorted = |server: &mut SimServer| -> Vec<String> {
        let mut c: Vec<String> = server
            .serve(&stream)
            .iter()
            .map(|r| r.content_string())
            .collect();
        c.sort();
        c
    };
    assert_eq!(sorted(&mut tight), sorted(&mut roomy));
    assert!(tight.cache().evictions() > 0);
    assert_eq!(roomy.cache().evictions(), 0);
    assert!(tight.cache().hits() < roomy.cache().hits());
    assert!(tight.cache().len() <= 2, "capacity bound violated");
}

#[test]
fn cache_never_exceeds_capacity() {
    let _quiet = fault::quiesce();
    let mut cache = ReportCache::new(3);
    for key in 0..10u64 {
        cache.insert(key, format!("req-{key}"), &[], SamplingMethod::Tex2d, &[]);
        assert!(cache.len() <= 3);
    }
    assert_eq!(cache.evictions(), 7);
    // Re-inserting a resident key refreshes it instead of evicting.
    cache.insert(9, "req-9".into(), &[], SamplingMethod::Tex2d, &[]);
    assert_eq!(cache.evictions(), 7);
    assert_eq!(cache.len(), 3);
}
