//! Metamorphic invariants of the observability layer (`support::obs`),
//! exercised end to end through the simulator and the kernel fallback
//! ladder. These are relations that must hold between *parts* of one trace
//! — no golden files, no magic numbers.
//!
//! Arming obs is process-global, so every test here arms (or quiesces) the
//! layer; the arming lock serializes them. Tests that also arm the fault
//! harness always take the obs lock **first** — one fixed order means the
//! two independent arming locks can never deadlock.

use defcon::gpusim::{DeviceConfig, Gpu, SamplePolicy};
use defcon::kernels::im2col::{Im2colDeformKernel, Sampling};
use defcon::kernels::op::{synthetic_inputs, DeformConvOp, SamplingMethod};
use defcon::kernels::{DeformLayerShape, TileConfig};
use defcon::tensor::sample::OffsetTransform;
use defcon_support::fault::{self, FaultPlan, Schedule};
use defcon_support::obs::{self, find_spans, ObsConfig, SpanNode};

/// A small deformable layer whose launch splits into several bands at
/// `threads = 4` without sampling (grid ≤ the default 96-block cap). Owns
/// the inputs the kernel borrows.
struct Layer {
    shape: DeformLayerShape,
    x: defcon::tensor::Tensor,
    off: defcon::tensor::Tensor,
}

fn layer(h: usize, w: usize) -> Layer {
    let shape = DeformLayerShape::same3x3(8, 8, h, w);
    let (x, off) = synthetic_inputs(&shape, 2.0, 21);
    Layer { shape, x, off }
}

impl Layer {
    fn kernel(&self) -> Im2colDeformKernel<'_> {
        let cfg = DeviceConfig::xavier_agx();
        Im2colDeformKernel::new(
            self.shape,
            TileConfig::default16(),
            &self.x,
            &self.off,
            OffsetTransform::Identity,
            Sampling::Software,
            cfg.max_texture_layers,
            cfg.max_texture_dim,
        )
        .unwrap()
    }
}

fn gpu(threads: usize, max_blocks: usize) -> Gpu {
    let policy = SamplePolicy {
        max_blocks,
        ..SamplePolicy::default()
    }
    .with_threads(threads);
    Gpu::with_policy(DeviceConfig::xavier_agx(), policy)
}

/// Structural nesting on the logical clock: every child span lies inside
/// its parent's `[ts, ts + dur]` window and siblings' durations sum to no
/// more than the parent's (each event consumes one tick, so a parent's
/// duration strictly bounds everything recorded inside it).
fn assert_nesting(span: &SpanNode) {
    let mut child_total = 0u64;
    for c in &span.children {
        if !c.instant {
            assert!(
                c.ts >= span.ts && c.ts + c.dur <= span.ts + span.dur,
                "child '{}' [{}, {}] escapes parent '{}' [{}, {}]",
                c.name,
                c.ts,
                c.ts + c.dur,
                span.name,
                span.ts,
                span.ts + span.dur
            );
            child_total += c.dur;
        }
        assert_nesting(c);
    }
    assert!(
        child_total <= span.dur,
        "'{}': child durations {} exceed parent {}",
        span.name,
        child_total,
        span.dur
    );
}

#[test]
fn child_spans_nest_and_band_cycles_sum_to_launch() {
    let _obs = obs::arm(ObsConfig::default());
    let _quiet = fault::quiesce();
    let l = layer(48, 48);
    gpu(4, usize::MAX).launch(&l.kernel());
    let forest = obs::snapshot();
    for root in &forest {
        assert_nesting(root);
    }
    let launches = find_spans(&forest, "gpusim.launch");
    assert_eq!(launches.len(), 1);
    let launch = launches[0];
    let bands: Vec<&SpanNode> = launch
        .children
        .iter()
        .filter(|c| c.name == "gpusim.band")
        .collect();
    assert!(
        bands.len() >= 2,
        "want a multi-band launch, got {}",
        bands.len()
    );
    // The launch's cycle total is exactly the band sum (bands are modeled
    // back to back on the SM pool), and each band's measured child repeats
    // that band's cycles — so measured ≤ band ≤ launch transitively.
    let band_sum: f64 = bands
        .iter()
        .map(|b| b.num_arg("cycles").expect("band has cycles"))
        .sum();
    let launch_cycles = launch.num_arg("cycles").expect("launch has cycles");
    assert!((band_sum - launch_cycles).abs() <= 1e-9 * launch_cycles.max(1.0));
    for b in &bands {
        let measured = find_spans(std::slice::from_ref(*b), "gpusim.band.measured");
        assert_eq!(measured.len(), 1);
        let mc = measured[0].num_arg("cycles").expect("measured has cycles");
        let bc = b.num_arg("cycles").unwrap();
        assert!(mc <= bc + 1e-12, "measured cycles {mc} exceed band {bc}");
    }
}

#[test]
fn per_band_gauges_recombine_to_the_report_aggregate() {
    let _obs = obs::arm(ObsConfig::default());
    let _quiet = fault::quiesce();
    // Unsampled launch: scale is the exact identity, so the registry (fed
    // pre-scale) and the report (post-scale) must agree *exactly*.
    let l = layer(48, 48);
    let report = gpu(4, usize::MAX).launch(&l.kernel());
    let forest = obs::snapshot();
    let launch = find_spans(&forest, "gpusim.launch")[0];
    let bands: Vec<&SpanNode> = launch
        .children
        .iter()
        .filter(|c| c.name == "gpusim.band")
        .collect();
    assert!(bands.len() >= 2);
    for (rate, hits, accesses, rep_hits, rep_accesses) in [
        (
            "gpusim.l1_hit_rate",
            "l1_hits",
            "l1_accesses",
            report.counters.l1_hits,
            report.counters.l1_accesses,
        ),
        (
            "gpusim.tex_hit_rate",
            "tex_hits",
            "tex_line_accesses",
            report.counters.tex_hits,
            report.counters.tex_line_accesses,
        ),
        (
            "gpusim.l2_hit_rate",
            "l2_hits",
            "l2_accesses",
            report.counters.l2_hits,
            report.counters.l2_accesses,
        ),
    ] {
        let h: u64 = bands.iter().map(|b| b.u64_arg(hits).unwrap()).sum();
        let a: u64 = bands.iter().map(|b| b.u64_arg(accesses).unwrap()).sum();
        // Band sums == report counters (identity scale) == registry gauge.
        assert_eq!(h, rep_hits, "{hits}: band sum vs report");
        assert_eq!(a, rep_accesses, "{accesses}: band sum vs report");
        let want = if a == 0 { 0.0 } else { h as f64 / a as f64 };
        let gauge = obs::gauge(rate).unwrap_or_else(|| panic!("gauge '{rate}' missing"));
        assert_eq!(gauge, want, "{rate}: gauge vs band recombination");
    }
}

#[test]
fn sampled_launch_gauges_match_scaled_report_within_rounding() {
    let _obs = obs::arm(ObsConfig::default());
    let _quiet = fault::quiesce();
    // Sampled launch (9 blocks, cap 4): the report's counters are scaled by
    // 9/4 with per-counter rounding, so its hit rates may drift from the
    // pre-scale registry gauges — but only by the rounding, never more.
    let l = layer(48, 48);
    let report = gpu(1, 4).launch(&l.kernel());
    assert!(report.grid_blocks > report.simulated_blocks, "not sampled");
    for (gauge_name, rep_rate) in [
        ("gpusim.l1_hit_rate", report.counters.l1_hit_rate()),
        ("gpusim.tex_hit_rate", report.counters.tex_hit_rate()),
        ("gpusim.l2_hit_rate", report.counters.l2_hit_rate()),
    ] {
        let gauge = obs::gauge(gauge_name).unwrap_or_else(|| panic!("gauge '{gauge_name}'"));
        assert!(
            (gauge - rep_rate).abs() <= 1e-3,
            "{gauge_name}: pre-scale {gauge} vs scaled report {rep_rate}"
        );
    }
}

#[test]
fn counter_registry_accumulates_linearly_across_launches() {
    let _obs = obs::arm(ObsConfig::default());
    let _quiet = fault::quiesce();
    let l = layer(24, 24);
    let k = l.kernel();
    let g = gpu(1, usize::MAX);
    g.launch(&k);
    let after_one = obs::counter("gpusim.flops");
    assert!(after_one > 0, "launch recorded no flops");
    g.launch(&k);
    assert_eq!(
        obs::counter("gpusim.flops"),
        2 * after_one,
        "two identical launches must add identical counter deltas"
    );
}

/// The fallback ladder emits `kernels.fallback` events **iff** something
/// actually degraded — here, only when the fault harness forces texture
/// builds to fail. Both directions of the iff are checked.
#[test]
fn fallback_events_fire_iff_a_fault_forced_the_downgrade() {
    let gpu = Gpu::new(DeviceConfig::xavier_agx());
    let shape = DeformLayerShape::same3x3(16, 16, 12, 12);
    let (x, offsets) = synthetic_inputs(&shape, 4.0, 9);
    let op = DeformConvOp {
        method: SamplingMethod::Tex2dPlusPlus,
        ..DeformConvOp::baseline(shape)
    };

    // No fault armed: the first rung carries the launch, zero events.
    {
        let _obs = obs::arm(ObsConfig::default());
        let _quiet = fault::quiesce();
        let fb = op
            .simulate_deform_with_fallback(&gpu, &x, &offsets)
            .unwrap();
        assert_eq!(fb.method, SamplingMethod::Tex2dPlusPlus);
        let forest = obs::snapshot();
        let ladder = find_spans(&forest, "kernels.fallback_ladder");
        assert_eq!(ladder.len(), 1);
        assert_eq!(ladder[0].str_arg("requested"), Some("tex2D++"));
        assert_eq!(ladder[0].str_arg("selected"), Some("tex2D++"));
        assert_eq!(ladder[0].u64_arg("degradations"), Some(0));
        assert!(
            find_spans(&forest, "kernels.fallback").is_empty(),
            "no degradation happened, yet fallback events were emitted"
        );
    }

    // Fault armed (obs lock first, then fault — the fixed order): every
    // texture build fails, both texture rungs degrade, and the trace shows
    // exactly one event per degradation.
    {
        let _obs = obs::arm(ObsConfig::default());
        let _armed = fault::arm(FaultPlan::new(61).point("texture.limit", Schedule::Always));
        let fb = op
            .simulate_deform_with_fallback(&gpu, &x, &offsets)
            .unwrap();
        assert_eq!(fb.method, SamplingMethod::SoftwareBilinear);
        assert_eq!(fb.degradations.len(), 2);
        let forest = obs::snapshot();
        let ladder = find_spans(&forest, "kernels.fallback_ladder");
        assert_eq!(ladder.len(), 1);
        assert_eq!(ladder[0].str_arg("selected"), Some("PyTorch"));
        assert_eq!(ladder[0].u64_arg("degradations"), Some(2));
        let events = find_spans(&forest, "kernels.fallback");
        assert_eq!(events.len(), 2, "one event per degradation");
        assert_eq!(events[0].str_arg("from"), Some("tex2D++"));
        assert_eq!(events[1].str_arg("from"), Some("tex2D"));
        for e in &events {
            assert!(e.instant, "fallback must be an instant event");
        }
    }
}
