#!/bin/sh
# CI entry point: the tier-1 verify, run fully offline (the hermetic-build
# policy — see DESIGN.md §3 — means no registry access is ever needed),
# plus formatting. Exits non-zero on the first failure.
set -eu

cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo build --release --offline"
cargo build --release --offline

# The test suite runs twice: once serial (DEFCON_THREADS=1) and once on 4
# worker threads. The engine's determinism contract (DESIGN.md §4) says
# reports must not depend on the ambient thread count beyond the documented
# 1 % L2-shard tolerance — the golden-report and equivalence tests fail on
# any divergence, so a pass at both counts is the contract's CI enforcement.
for threads in 1 4; do
    export DEFCON_THREADS="$threads"

    echo "==> cargo test -q --offline (root integration suites, DEFCON_THREADS=$threads)"
    cargo test -q --offline

    echo "==> cargo test --workspace -q --offline (all member crates, DEFCON_THREADS=$threads)"
    cargo test --workspace -q --offline
done
unset DEFCON_THREADS

echo "==> cargo check --all-targets --offline (benches + bins compile)"
cargo check --all-targets --offline

# Hot-path smoke: the legacy (allocating) and staged (zero-allocation) trace
# paths must produce byte-identical serial reports. DEFCON_TINY runs the
# equivalence gate on a small layer without timings, so this stays fast and
# never rewrites the committed BENCH_hotpath.json.
echo "==> hot_path bench smoke (DEFCON_TINY)"
DEFCON_TINY=1 cargo bench --offline -p defcon-bench --bench hot_path

echo "CI OK"
