#!/bin/sh
# CI entry point: the tier-1 verify, run fully offline (the hermetic-build
# policy — see DESIGN.md §3 — means no registry access is ever needed),
# plus formatting. Exits non-zero on the first failure.
set -eu

cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test -q --offline (root package: integration suites)"
cargo test -q --offline

echo "==> cargo test --workspace -q --offline (all member crates)"
cargo test --workspace -q --offline

echo "==> cargo check --all-targets --offline (benches + bins compile)"
cargo check --all-targets --offline

echo "CI OK"
