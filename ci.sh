#!/bin/sh
# CI entry point: the tier-1 verify, run fully offline (the hermetic-build
# policy — see DESIGN.md §3 — means no registry access is ever needed),
# plus formatting. Exits non-zero on the first failure.
set -eu

cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo build --release --offline"
cargo build --release --offline

# The test suite runs twice: once serial (DEFCON_THREADS=1) and once on 4
# worker threads. The engine's determinism contract (DESIGN.md §4) says
# reports must not depend on the ambient thread count beyond the documented
# 1 % L2-shard tolerance — the golden-report and equivalence tests fail on
# any divergence, so a pass at both counts is the contract's CI enforcement.
# The root integration suites include tests/fault_injection.rs, so every
# armed-fault degradation path is also exercised at both thread counts.
for threads in 1 4; do
    export DEFCON_THREADS="$threads"

    echo "==> cargo test -q --offline (root integration suites, DEFCON_THREADS=$threads)"
    cargo test -q --offline

    echo "==> cargo test --workspace -q --offline (all member crates, DEFCON_THREADS=$threads)"
    cargo test --workspace -q --offline

    # Golden-trace conformance (DESIGN.md §8), called out explicitly: the
    # DEFCON_TRACE output must match the blessed snapshots byte for byte at
    # one thread and semantically at four. (The suite pins its own child
    # thread counts, so running it under both ambient values also proves the
    # ambient env leaks nothing into the trace.)
    echo "==> golden-trace conformance (obs_golden, DEFCON_THREADS=$threads)"
    cargo test -q --offline -p defcon-bench --test obs_golden

    # Serving suite, called out explicitly (DESIGN.md §9): the differential
    # tests prove response bytes are invariant to worker count and cache
    # temperature, the cache-key property tests pin the content address,
    # and the serving golden holds the 16-request session trace exact.
    echo "==> serving differential + cache-key suites (DEFCON_THREADS=$threads)"
    cargo test -q --offline --test serving_equivalence
    cargo test -q --offline --test serving_cache_props
    cargo test -q --offline -p defcon-bench --test serving_golden

    # Cross-backend table golden (DESIGN.md §13): the repro_backends tiny
    # report must match the blessed snapshot byte for byte. Both timing
    # models are closed-form deterministic, so this holds at any ambient
    # thread count (the test pins its own child to DEFCON_THREADS=1).
    echo "==> backends golden table (DEFCON_THREADS=$threads)"
    cargo test -q --offline -p defcon-bench --test backends_golden

    # Chaos soak (DESIGN.md §12), called out explicitly: multi-hundred-
    # request sessions under an armed probabilistic fault plan must hold
    # the session invariants (none lost, accounting balance, legal breaker
    # walks) and replay byte-identically — at both ambient thread counts.
    echo "==> chaos-soak invariant suite (DEFCON_THREADS=$threads)"
    cargo test -q --offline --test chaos_soak

    # Operator-family conformance (DESIGN.md §10), called out explicitly:
    # every {DCNv1, DCNv2, DCNv3} × {software, tex2D, tex2D++} cell against
    # its CPU reference, the two reduction identities bytewise, and exact
    # counter equality across thread counts — at both ambient values.
    echo "==> operator-family differential conformance (DEFCON_THREADS=$threads)"
    cargo test -q --offline --test operator_conformance

    # Cross-backend conformance (DESIGN.md §13), called out explicitly:
    # gpusim and accel must produce byte-identical functional outputs for
    # every family × kernel-path cell, and the accel tile scheduler's
    # property suite (exact coverage, halo monotonicity, buffer bounds,
    # visit-order invariance) must hold — at both ambient thread counts.
    echo "==> cross-backend conformance + accel scheduler properties (DEFCON_THREADS=$threads)"
    cargo test -q --offline --test backend_conformance
    cargo test -q --offline -p defcon-accel
done
unset DEFCON_THREADS

# Observability ratchet: with no trace armed, every obs:: entry point must
# stay allocation-free (one relaxed atomic load on the hot path). Runs the
# dedicated zero_alloc test by name so a regression names itself in CI.
echo "==> obs-disarmed allocation ratchet"
cargo test -q --offline --test zero_alloc disarmed_obs_layer_does_not_allocate

# Trace determinism, end to end on the release binary: two back-to-back
# traced runs must write byte-identical DEFCON_TRACE files (the logical
# clock makes timestamps a pure function of the event sequence).
echo "==> DEFCON_TRACE byte-determinism (release repro_table2_xavier)"
trace_a="$(mktemp)" trace_b="$(mktemp)"
DEFCON_TINY=1 DEFCON_THREADS=1 DEFCON_TRACE="$trace_a" \
    ./target/release/repro_table2_xavier > /dev/null
DEFCON_TINY=1 DEFCON_THREADS=1 DEFCON_TRACE="$trace_b" \
    ./target/release/repro_table2_xavier > /dev/null
cmp "$trace_a" "$trace_b" || {
    echo "trace determinism FAIL: DEFCON_TRACE output differs between runs" >&2
    exit 1
}
rm -f "$trace_a" "$trace_b"

echo "==> cargo check --all-targets --offline (benches + bins compile)"
cargo check --all-targets --offline

# Unwrap/panic ratchet over the fallible-API modules (DESIGN.md §"Fault
# injection & graceful degradation"): these files expose typed-DefconError
# APIs, so a *new* unwrap()/panic! is a regression. The counts below are
# the blessed baselines (tests included); if you removed some, lower the
# number here — never raise it without a DESIGN.md note.
echo "==> unwrap()/panic! ratchet on converted fallible-API modules"
check_ratchet() {
    file="$1" max_unwrap="$2" max_panic="$3"
    unwraps=$(grep -c "unwrap()" "$file" || true)
    panics=$(grep -c "panic!" "$file" || true)
    if [ "$unwraps" -gt "$max_unwrap" ] || [ "$panics" -gt "$max_panic" ]; then
        echo "ratchet FAIL: $file has $unwraps unwrap() (max $max_unwrap)," \
             "$panics panic! (max $max_panic)" >&2
        exit 1
    fi
}
check_ratchet crates/support/src/ckpt.rs     14 0
check_ratchet crates/support/src/env.rs       0 0
check_ratchet crates/core/src/lut.rs          6 1
check_ratchet crates/core/src/search.rs      11 1
check_ratchet crates/core/src/autotune.rs     4 0
check_ratchet crates/core/src/pipeline.rs     2 0
check_ratchet crates/gpusim/src/device.rs     4 0
check_ratchet crates/gpusim/src/texture.rs    1 0
check_ratchet crates/kernels/src/op.rs        3 0
check_ratchet crates/models/src/trainer.rs    7 0

# Hot-path tex2D byte-equivalence gate: the legacy (pre-optimization
# sampler + allocating trace path) and current (branch-free plan/replay +
# staged zero-allocation) pipelines must produce byte-identical launch
# reports for every operator family (DCNv1/v2/v3) on both kernels. The
# bench pins the engine to 1 and then 4 worker threads internally for each
# family, so one DEFCON_TINY invocation enforces the gate at both thread
# counts without rewriting the committed BENCH_hotpath.json.
echo "==> hot_path tex2D byte-equivalence gate (DEFCON_TINY, threads 1 and 4)"
DEFCON_TINY=1 cargo bench --offline -p defcon-bench --bench hot_path

# Ratcheted tex2D speedup floor (DESIGN.md §11): the full hot_path bench
# re-times the legacy hot path against the current one and asserts the
# blessed floors itself — software im2col ≥ 1.5x, fused tex2D ≥ 1.4x.
# Hardware-gated like the engine_parallel ≥2x check: on a starved
# single-CPU container the serial wall-clock is too noisy to ratchet, so
# the timed run is skipped (the byte-equivalence gate above still ran).
# DEFCON_BENCH_OUT keeps the committed BENCH_hotpath.json untouched in CI.
cores=$(nproc 2>/dev/null || echo 1)
if [ "$cores" -ge 2 ]; then
    echo "==> hot_path ratcheted speedup floors (full layer, $cores cores)"
    hot_out="$(mktemp)"
    DEFCON_BENCH_OUT="$hot_out" \
        cargo bench --offline -p defcon-bench --bench hot_path
    rm -f "$hot_out"
else
    echo "==> hot_path ratcheted speedup floors: skipped ($cores core(s) — starved container)"
fi

# Serving-report determinism: two serving-bench runs must agree byte for
# byte on everything except the trailing "timing" object (wall-clock is
# the only nondeterministic field by design — see DESIGN.md §9). The
# bench itself also asserts cold/warm/fresh digest equality internally.
echo "==> BENCH_serving.json report determinism (two runs, timing stripped)"
serve_a="$(mktemp)" serve_b="$(mktemp)"
DEFCON_TINY=1 DEFCON_BENCH_OUT="$serve_a" \
    cargo bench --offline -p defcon-bench --bench serving > /dev/null
DEFCON_TINY=1 DEFCON_BENCH_OUT="$serve_b" \
    cargo bench --offline -p defcon-bench --bench serving > /dev/null
sed 's/"timing":.*$//' "$serve_a" > "$serve_a.stripped"
sed 's/"timing":.*$//' "$serve_b" > "$serve_b.stripped"
cmp "$serve_a.stripped" "$serve_b.stripped" || {
    echo "serving determinism FAIL: report bytes differ between runs" >&2
    exit 1
}
rm -f "$serve_a" "$serve_b" "$serve_a.stripped" "$serve_b.stripped"

# Chaos-summary determinism, end to end on the release binary: the whole
# chaos session — outcomes, fault log, breaker walk, digest — is a pure
# function of the seed (DESIGN.md §12), so two back-to-back soaks must
# write byte-identical summary JSON. The binary also asserts the session
# invariants internally before printing anything.
echo "==> repro_chaos summary byte-determinism (two release runs)"
chaos_a="$(mktemp)" chaos_b="$(mktemp)"
DEFCON_FAST=1 DEFCON_BENCH_OUT="$chaos_a" \
    ./target/release/repro_chaos > /dev/null
DEFCON_FAST=1 DEFCON_BENCH_OUT="$chaos_b" \
    ./target/release/repro_chaos > /dev/null
cmp "$chaos_a" "$chaos_b" || {
    echo "chaos determinism FAIL: summary JSON differs between runs" >&2
    exit 1
}
rm -f "$chaos_a" "$chaos_b"

# Family-ablation golden (Table V analogue, DESIGN.md §10): the bench
# byte-compares its report against the blessed golden internally at
# DEFCON_THREADS=1; here two back-to-back runs must also agree byte for
# byte (the report is digest/counter/latency-model only — no wall-clock),
# and a 4-thread run must still pass the semantic invariants.
echo "==> ablation Table V golden (byte determinism at 1 thread, semantic at 4)"
abl_a="$(mktemp)" abl_b="$(mktemp)"
DEFCON_TINY=1 DEFCON_THREADS=1 DEFCON_BENCH_OUT="$abl_a" \
    cargo bench --offline -p defcon-bench --bench ablations > /dev/null
DEFCON_TINY=1 DEFCON_THREADS=1 DEFCON_BENCH_OUT="$abl_b" \
    cargo bench --offline -p defcon-bench --bench ablations > /dev/null
cmp "$abl_a" "$abl_b" || {
    echo "ablation determinism FAIL: Table V report differs between runs" >&2
    exit 1
}
rm -f "$abl_a" "$abl_b"
DEFCON_TINY=1 DEFCON_THREADS=4 \
    cargo bench --offline -p defcon-bench --bench ablations > /dev/null

# Backends-table determinism, end to end on the release binary: the
# cross-backend sweep (gpusim trace replay + accel integer cycle model)
# is a pure function of the code, so two back-to-back release runs must
# write byte-identical report JSON (DESIGN.md §13).
echo "==> repro_backends report byte-determinism (two release runs)"
back_a="$(mktemp)" back_b="$(mktemp)"
DEFCON_TINY=1 DEFCON_THREADS=1 DEFCON_BENCH_OUT="$back_a" \
    ./target/release/repro_backends > /dev/null
DEFCON_TINY=1 DEFCON_THREADS=1 DEFCON_BENCH_OUT="$back_b" \
    ./target/release/repro_backends > /dev/null
cmp "$back_a" "$back_b" || {
    echo "backends determinism FAIL: report JSON differs between runs" >&2
    exit 1
}
rm -f "$back_a" "$back_b"

echo "CI OK"
