//! Deterministic observability: hierarchical spans, a typed counter/gauge
//! registry, and two exporters built on [`crate::json`].
//!
//! Production code opens **spans** ([`span`] / [`span_with`]) around phases
//! of work, drops **instant events** ([`event`] / [`event_with`]) at
//! decision points, and accumulates into a typed registry of named
//! **counters** (u64, additive) and **gauges** (f64, last-write-wins).
//! A binary or test *arms* the layer ([`arm`] / [`arm_from_env`]); while
//! armed, everything recorded on the arming thread is kept in order and can
//! be exported as a flat metrics snapshot ([`metrics_json`]) or a Chrome
//! `chrome://tracing` trace-event file ([`chrome_trace_json`]) that opens
//! directly in Perfetto (<https://ui.perfetto.dev>).
//!
//! Design rules (the [`crate::fault`] pattern):
//!
//! * **Zero cost disarmed.** Every entry point checks one relaxed atomic
//!   and returns immediately — no lock, no allocation. Argument closures
//!   ([`span_with`] / [`event_with`]) are never invoked while disarmed, so
//!   instrumented hot paths stay allocation-free (`tests/zero_alloc.rs`
//!   enforces this).
//! * **Deterministic armed.** Timestamps come from a **logical clock** —
//!   one tick per recorded event — so a deterministic program produces a
//!   byte-identical trace on every run. Wall-clock timestamps (microseconds,
//!   explicitly non-reproducible) are opt-in via `DEFCON_OBS_WALL=1`.
//! * **Single recording thread.** The recorder binds to the thread that
//!   armed it; calls from any other thread are silently dropped. Parallel
//!   code (`support::par` workers) must not record directly — the owner
//!   thread records per-band results *after the join, in band-index order*,
//!   which keeps traces identical across `DEFCON_THREADS` settings up to
//!   the documented ≤1% cycle-drift contract.
//! * **One armed scope at a time.** [`arm`] holds a global lock for the
//!   lifetime of the returned guard; everything disarms (and unlocks) on
//!   drop, even across a panic.

use crate::error::DefconError;
use crate::json::{Json, JsonError};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::thread::ThreadId;
use std::time::Instant;

/// How the recorder stamps events.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Clock {
    /// One tick per recorded event — byte-reproducible traces.
    #[default]
    Logical,
    /// Microseconds since arming — real durations, never reproducible.
    Wall,
}

/// Configuration for [`arm`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ObsConfig {
    /// Timestamp source; defaults to [`Clock::Logical`].
    pub clock: Clock,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Kind {
    Begin,
    End,
    Instant,
}

struct Event {
    name: String,
    kind: Kind,
    ts: u64,
    args: Vec<(String, Json)>,
}

struct Recorder {
    /// `Some(arm instant)` in wall-clock mode, `None` for the logical clock.
    epoch: Option<Instant>,
    clock: u64,
    home: ThreadId,
    events: Vec<Event>,
    /// Indices into `events` of the currently-open `Begin` events.
    open: Vec<usize>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
}

impl Recorder {
    fn tick(&mut self) -> u64 {
        match self.epoch {
            Some(t0) => t0.elapsed().as_micros() as u64,
            None => {
                let t = self.clock;
                self.clock += 1;
                t
            }
        }
    }
}

static ARMED: AtomicBool = AtomicBool::new(false);
static RECORDER: Mutex<Option<Recorder>> = Mutex::new(None);

fn arm_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

fn recorder() -> MutexGuard<'static, Option<Recorder>> {
    // A panic while holding the recorder lock (never expected: the locked
    // sections are straight-line) must not wedge later tests.
    RECORDER.lock().unwrap_or_else(|e| e.into_inner())
}

/// Guard for an armed observability scope; disarms on drop. When created
/// via [`arm_from_env`] with `DEFCON_TRACE` set, drop also writes the
/// Chrome trace to that path (errors go to stderr — a failed trace write
/// must not fail the traced run).
pub struct ObsGuard {
    _serial: MutexGuard<'static, ()>,
    write_path: Option<PathBuf>,
}

impl Drop for ObsGuard {
    fn drop(&mut self) {
        if let Some(path) = self.write_path.take() {
            if let Some(doc) = chrome_trace_json() {
                if let Err(e) = std::fs::write(&path, format!("{doc}\n")) {
                    eprintln!("defcon: failed to write trace {}: {e}", path.display());
                }
            }
        }
        ARMED.store(false, Ordering::SeqCst);
        *recorder() = None;
    }
}

/// Arms the recorder on the **current thread**, serializing against any
/// other armed scope in the process (the previous scope must drop first).
pub fn arm(cfg: ObsConfig) -> ObsGuard {
    let serial = arm_lock().lock().unwrap_or_else(|e| e.into_inner());
    *recorder() = Some(Recorder {
        epoch: match cfg.clock {
            Clock::Wall => Some(Instant::now()),
            Clock::Logical => None,
        },
        clock: 0,
        home: std::thread::current().id(),
        events: Vec::new(),
        open: Vec::new(),
        counters: BTreeMap::new(),
        gauges: BTreeMap::new(),
    });
    ARMED.store(true, Ordering::SeqCst);
    ObsGuard {
        _serial: serial,
        write_path: None,
    }
}

/// Holds the arming lock **without arming anything**: recording stays
/// inert until the guard drops. Tests asserting disarmed behaviour take
/// this to serialize against concurrently-running tests that arm.
pub fn quiesce() -> ObsGuard {
    let serial = arm_lock().lock().unwrap_or_else(|e| e.into_inner());
    ObsGuard {
        _serial: serial,
        write_path: None,
    }
}

/// Arms from the environment: `DEFCON_TRACE=<path>` enables tracing (the
/// guard writes the Chrome trace there on drop), `DEFCON_OBS_WALL=1`
/// switches to wall-clock timestamps. Returns `Ok(None)` when tracing is
/// off; both variables are strict-parsed via [`crate::env`].
pub fn arm_from_env() -> Result<Option<ObsGuard>, DefconError> {
    let Some(path) = crate::env::trace_path()? else {
        return Ok(None);
    };
    let clock = if crate::env::flag(crate::env::OBS_WALL)? {
        Clock::Wall
    } else {
        Clock::Logical
    };
    let mut guard = arm(ObsConfig { clock });
    guard.write_path = Some(path);
    Ok(Some(guard))
}

/// True while an armed scope is live. One relaxed atomic load; use to gate
/// arg computation that [`span_with`]'s deferred closure cannot express.
#[inline]
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// An open span; records its `End` event on drop. Inert (all methods
/// no-op) when obtained while disarmed or from a non-recording thread.
#[must_use = "dropping the guard closes the span"]
pub struct Span {
    idx: Option<usize>,
}

impl Span {
    /// Appends an argument to the span's `Begin` event — for values (loss,
    /// cycles) only known after the work inside the span ran.
    pub fn record(&self, key: &'static str, value: Json) {
        let Some(idx) = self.idx else {
            return;
        };
        let mut reg = recorder();
        let Some(reg) = reg.as_mut() else {
            return;
        };
        if reg.open.contains(&idx) {
            reg.events[idx].args.push((key.to_string(), value));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(idx) = self.idx else {
            return;
        };
        let mut reg = recorder();
        let Some(reg) = reg.as_mut() else {
            return;
        };
        // Guard against a stale index from a span that outlived its armed
        // scope (misuse; the events would belong to a different recording).
        if !reg.open.contains(&idx) {
            return;
        }
        let ts = reg.tick();
        let name = reg.events[idx].name.clone();
        reg.events.push(Event {
            name,
            kind: Kind::End,
            ts,
            args: Vec::new(),
        });
        reg.open.retain(|&i| i != idx);
    }
}

/// Opens a span with no arguments.
#[inline]
pub fn span(name: &str) -> Span {
    if !ARMED.load(Ordering::Relaxed) {
        return Span { idx: None };
    }
    Span {
        idx: begin(name, Vec::new()),
    }
}

/// Opens a span with arguments. The closure is invoked **only while
/// armed**, so building the argument vector costs nothing when tracing is
/// off (the disarmed path is a single relaxed atomic load).
#[inline]
pub fn span_with(name: &str, args: impl FnOnce() -> Vec<(&'static str, Json)>) -> Span {
    if !ARMED.load(Ordering::Relaxed) {
        return Span { idx: None };
    }
    Span {
        idx: begin(name, args()),
    }
}

fn begin(name: &str, args: Vec<(&'static str, Json)>) -> Option<usize> {
    let mut reg = recorder();
    let reg = reg.as_mut()?;
    if std::thread::current().id() != reg.home {
        return None;
    }
    let ts = reg.tick();
    reg.events.push(Event {
        name: name.to_string(),
        kind: Kind::Begin,
        ts,
        args: args.into_iter().map(|(k, v)| (k.to_string(), v)).collect(),
    });
    let idx = reg.events.len() - 1;
    reg.open.push(idx);
    Some(idx)
}

/// Records an instant event with no arguments.
#[inline]
pub fn event(name: &str) {
    if !ARMED.load(Ordering::Relaxed) {
        return;
    }
    instant(name, Vec::new());
}

/// Records an instant event with arguments; the closure is invoked only
/// while armed (see [`span_with`]).
#[inline]
pub fn event_with(name: &str, args: impl FnOnce() -> Vec<(&'static str, Json)>) {
    if !ARMED.load(Ordering::Relaxed) {
        return;
    }
    instant(name, args());
}

fn instant(name: &str, args: Vec<(&'static str, Json)>) {
    let mut reg = recorder();
    let Some(reg) = reg.as_mut() else {
        return;
    };
    if std::thread::current().id() != reg.home {
        return;
    }
    let ts = reg.tick();
    reg.events.push(Event {
        name: name.to_string(),
        kind: Kind::Instant,
        ts,
        args: args.into_iter().map(|(k, v)| (k.to_string(), v)).collect(),
    });
}

/// Adds to a named u64 counter in the typed registry. Counters do not tick
/// the clock; they surface in the metrics snapshot and under the trace's
/// top-level `metrics` key, sorted by name.
#[inline]
pub fn counter_add(name: &str, v: u64) {
    if !ARMED.load(Ordering::Relaxed) {
        return;
    }
    counter_add_slow(name, v);
}

fn counter_add_slow(name: &str, v: u64) {
    let mut reg = recorder();
    let Some(reg) = reg.as_mut() else {
        return;
    };
    if std::thread::current().id() != reg.home {
        return;
    }
    *reg.counters.entry(name.to_string()).or_insert(0) += v;
}

/// Sets a named f64 gauge (last write wins).
#[inline]
pub fn gauge_set(name: &str, v: f64) {
    if !ARMED.load(Ordering::Relaxed) {
        return;
    }
    gauge_set_slow(name, v);
}

fn gauge_set_slow(name: &str, v: f64) {
    let mut reg = recorder();
    let Some(reg) = reg.as_mut() else {
        return;
    };
    if std::thread::current().id() != reg.home {
        return;
    }
    reg.gauges.insert(name.to_string(), v);
}

/// Current value of a counter (0 when absent or disarmed). Test helper.
pub fn counter(name: &str) -> u64 {
    recorder()
        .as_ref()
        .and_then(|r| r.counters.get(name).copied())
        .unwrap_or(0)
}

/// Current value of a gauge (`None` when absent or disarmed). Test helper.
pub fn gauge(name: &str) -> Option<f64> {
    recorder()
        .as_ref()
        .and_then(|r| r.gauges.get(name).copied())
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

fn metrics_from(counters: &BTreeMap<String, u64>, gauges: &BTreeMap<String, f64>) -> Json {
    Json::obj(vec![
        (
            "counters",
            Json::Obj(
                counters
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::from(*v)))
                    .collect(),
            ),
        ),
        (
            "gauges",
            Json::Obj(
                gauges
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::from(*v)))
                    .collect(),
            ),
        ),
    ])
}

/// The flat metrics snapshot: `{"counters": {...}, "gauges": {...}}` with
/// keys sorted. `None` while disarmed.
pub fn metrics_json() -> Option<Json> {
    let reg = recorder();
    let reg = reg.as_ref()?;
    Some(metrics_from(&reg.counters, &reg.gauges))
}

/// The full Chrome trace-event document — load it in Perfetto
/// (<https://ui.perfetto.dev>) or `chrome://tracing`. Span begins/ends map
/// to `ph:"B"`/`ph:"E"` pairs, instants to `ph:"i"`; the metrics snapshot
/// rides along under a top-level `metrics` key (ignored by viewers).
/// `None` while disarmed.
pub fn chrome_trace_json() -> Option<Json> {
    let reg = recorder();
    let reg = reg.as_ref()?;
    let mut events: Vec<Json> = Vec::with_capacity(reg.events.len());
    for e in &reg.events {
        let mut obj: Vec<(String, Json)> = vec![
            ("name".to_string(), Json::str(&e.name)),
            (
                "ph".to_string(),
                Json::str(match e.kind {
                    Kind::Begin => "B",
                    Kind::End => "E",
                    Kind::Instant => "i",
                }),
            ),
            ("ts".to_string(), Json::from(e.ts)),
            ("pid".to_string(), Json::from(0u64)),
            ("tid".to_string(), Json::from(0u64)),
        ];
        if e.kind == Kind::Instant {
            obj.push(("s".to_string(), Json::str("t")));
        }
        if !e.args.is_empty() {
            obj.push(("args".to_string(), Json::Obj(e.args.clone())));
        }
        events.push(Json::Obj(obj));
    }
    Some(Json::obj(vec![
        ("displayTimeUnit", Json::str("ms")),
        ("metrics", metrics_from(&reg.counters, &reg.gauges)),
        ("traceEvents", Json::Arr(events)),
    ]))
}

// ---------------------------------------------------------------------------
// Span-tree snapshots (test oracle)
// ---------------------------------------------------------------------------

/// One node of the reconstructed span forest: a closed span (with
/// `dur = end − begin`) or an instant event (`instant == true`, `dur == 0`).
#[derive(Clone, Debug)]
pub struct SpanNode {
    /// Span/event name.
    pub name: String,
    /// Begin timestamp (logical ticks or wall µs).
    pub ts: u64,
    /// End − begin; 0 for instants.
    pub dur: u64,
    /// True for instant events.
    pub instant: bool,
    /// Arguments in recording order.
    pub args: Vec<(String, Json)>,
    /// Nested spans/events in recording order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Looks up an argument by key.
    pub fn arg(&self, key: &str) -> Option<&Json> {
        self.args.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Numeric argument by key.
    pub fn num_arg(&self, key: &str) -> Option<f64> {
        self.arg(key)?.as_f64()
    }

    /// Integer argument by key.
    pub fn u64_arg(&self, key: &str) -> Option<u64> {
        self.arg(key)?.as_u64()
    }

    /// String argument by key.
    pub fn str_arg(&self, key: &str) -> Option<&str> {
        self.arg(key)?.as_str()
    }
}

/// All nodes named `name`, depth-first across the forest.
pub fn find_spans<'a>(forest: &'a [SpanNode], name: &str) -> Vec<&'a SpanNode> {
    fn walk<'a>(n: &'a SpanNode, name: &str, out: &mut Vec<&'a SpanNode>) {
        if n.name == name {
            out.push(n);
        }
        for c in &n.children {
            walk(c, name, out);
        }
    }
    let mut out = Vec::new();
    for n in forest {
        walk(n, name, &mut out);
    }
    out
}

struct RawEvent {
    name: String,
    kind: Kind,
    ts: u64,
    args: Vec<(String, Json)>,
}

fn build_forest(events: Vec<RawEvent>) -> Vec<SpanNode> {
    fn attach(roots: &mut Vec<SpanNode>, stack: &mut [SpanNode], n: SpanNode) {
        match stack.last_mut() {
            Some(parent) => parent.children.push(n),
            None => roots.push(n),
        }
    }
    let mut roots: Vec<SpanNode> = Vec::new();
    let mut stack: Vec<SpanNode> = Vec::new();
    for e in events {
        let node = SpanNode {
            name: e.name,
            ts: e.ts,
            dur: 0,
            instant: e.kind == Kind::Instant,
            args: e.args,
            children: Vec::new(),
        };
        match e.kind {
            Kind::Begin => stack.push(node),
            Kind::End => {
                if let Some(mut open) = stack.pop() {
                    open.dur = e.ts.saturating_sub(open.ts);
                    attach(&mut roots, &mut stack, open);
                }
            }
            Kind::Instant => attach(&mut roots, &mut stack, node),
        }
    }
    // Still-open spans (snapshot taken mid-run): close them where they are.
    while let Some(open) = stack.pop() {
        attach(&mut roots, &mut stack, open);
    }
    roots
}

/// Reconstructs the span forest of the current recording. Empty while
/// disarmed. Arguments recorded via [`Span::record`] are included.
pub fn snapshot() -> Vec<SpanNode> {
    let reg = recorder();
    let Some(reg) = reg.as_ref() else {
        return Vec::new();
    };
    build_forest(
        reg.events
            .iter()
            .map(|e| RawEvent {
                name: e.name.clone(),
                kind: e.kind,
                ts: e.ts,
                args: e.args.clone(),
            })
            .collect(),
    )
}

/// Parses a Chrome trace-event document (as produced by
/// [`chrome_trace_json`]) back into a span forest — the conformance tests'
/// oracle for traces written by separate processes. Unknown phase types
/// (`M`, `C`, …) are skipped.
pub fn forest_from_chrome(doc: &Json) -> Result<Vec<SpanNode>, JsonError> {
    let events = doc.field("traceEvents")?;
    let Some(arr) = events.as_arr() else {
        return Err(JsonError::msg("traceEvents is not an array"));
    };
    let mut raw = Vec::with_capacity(arr.len());
    for e in arr {
        let kind = match e.str_field("ph")? {
            "B" => Kind::Begin,
            "E" => Kind::End,
            "i" => Kind::Instant,
            _ => continue,
        };
        raw.push(RawEvent {
            name: e.str_field("name")?.to_string(),
            kind,
            ts: e.u64_field("ts")?,
            args: match e.field("args") {
                Ok(Json::Obj(pairs)) => pairs.clone(),
                _ => Vec::new(),
            },
        });
    }
    Ok(build_forest(raw))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_is_inert() {
        let _q = quiesce();
        let sp = span("nope");
        sp.record("k", Json::from(1u64));
        event("nope");
        counter_add("c", 1);
        gauge_set("g", 1.0);
        drop(sp);
        assert!(snapshot().is_empty());
        assert!(chrome_trace_json().is_none());
        assert!(metrics_json().is_none());
        assert_eq!(counter("c"), 0);
        assert_eq!(gauge("g"), None);
    }

    #[test]
    fn spans_nest_and_logical_clock_ticks_per_event() {
        let _g = arm(ObsConfig::default());
        {
            let outer = span("outer");
            {
                let inner = span_with("inner", || vec![("k", Json::from(7u64))]);
                event("ping");
                drop(inner);
            }
            outer.record("late", Json::from(1.5));
        }
        let forest = snapshot();
        assert_eq!(forest.len(), 1);
        let outer = &forest[0];
        assert_eq!(outer.name, "outer");
        assert_eq!((outer.ts, outer.dur), (0, 4));
        assert_eq!(outer.num_arg("late"), Some(1.5));
        assert_eq!(outer.children.len(), 1);
        let inner = &outer.children[0];
        assert_eq!(inner.name, "inner");
        assert_eq!((inner.ts, inner.dur), (1, 2));
        assert_eq!(inner.u64_arg("k"), Some(7));
        assert_eq!(inner.children.len(), 1);
        assert!(inner.children[0].instant);
        assert_eq!(inner.children[0].ts, 2);
    }

    #[test]
    fn counters_add_and_gauges_overwrite() {
        let _g = arm(ObsConfig::default());
        counter_add("hits", 2);
        counter_add("hits", 3);
        gauge_set("rate", 0.25);
        gauge_set("rate", 0.75);
        assert_eq!(counter("hits"), 5);
        assert_eq!(gauge("rate"), Some(0.75));
        let m = metrics_json().unwrap();
        assert_eq!(
            m.to_string(),
            r#"{"counters":{"hits":5},"gauges":{"rate":0.75}}"#
        );
    }

    #[test]
    fn chrome_trace_is_byte_identical_across_runs() {
        let run = || {
            let _g = arm(ObsConfig::default());
            let sp = span_with("work", || vec![("n", Json::from(3u64))]);
            event_with("mark", || vec![("x", Json::from(1.0))]);
            sp.record("cycles", Json::from(123.0));
            drop(sp);
            counter_add("blocks", 3);
            gauge_set("hit_rate", 0.5);
            chrome_trace_json().unwrap().to_string()
        };
        let a = run();
        assert_eq!(a, run());
        assert!(a.contains(r#""ph":"B""#) && a.contains(r#""ph":"E""#));
        assert!(a.contains(r#""ph":"i""#));
    }

    #[test]
    fn chrome_round_trips_through_forest_parser() {
        let _g = arm(ObsConfig::default());
        let sp = span_with("outer", || vec![("a", Json::from(1u64))]);
        event("tick");
        drop(sp);
        let direct = snapshot();
        let doc = chrome_trace_json().unwrap();
        let parsed = forest_from_chrome(&Json::parse(&doc.to_string()).unwrap()).unwrap();
        assert_eq!(parsed.len(), direct.len());
        assert_eq!(parsed[0].name, direct[0].name);
        assert_eq!(parsed[0].dur, direct[0].dur);
        assert_eq!(parsed[0].u64_arg("a"), Some(1));
        assert_eq!(parsed[0].children.len(), 1);
        assert!(parsed[0].children[0].instant);
    }

    #[test]
    fn foreign_thread_records_are_dropped() {
        let _g = arm(ObsConfig::default());
        std::thread::spawn(|| {
            let sp = span("worker");
            event("worker-event");
            counter_add("worker-counter", 1);
            drop(sp);
        })
        .join()
        .unwrap();
        assert!(snapshot().is_empty());
        assert_eq!(counter("worker-counter"), 0);
    }

    #[test]
    fn wall_clock_is_monotonic() {
        let _g = arm(ObsConfig { clock: Clock::Wall });
        let sp = span("timed");
        event("mid");
        drop(sp);
        let forest = snapshot();
        assert_eq!(forest.len(), 1);
        assert!(forest[0].children[0].ts >= forest[0].ts);
    }

    #[test]
    fn drop_disarms_and_clears() {
        {
            let _g = arm(ObsConfig::default());
            let _sp = span("x");
            assert!(armed());
        }
        assert!(!armed());
        assert!(snapshot().is_empty());
    }

    #[test]
    fn arm_from_env_writes_trace_on_drop() {
        let path =
            std::env::temp_dir().join(format!("defcon_obs_test_{}.json", std::process::id()));
        std::env::set_var(crate::env::TRACE, &path);
        {
            let guard = arm_from_env().unwrap();
            assert!(guard.is_some());
            drop(span("traced"));
        }
        std::env::remove_var(crate::env::TRACE);
        let body = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let forest = forest_from_chrome(&Json::parse(&body).unwrap()).unwrap();
        assert_eq!(forest.len(), 1);
        assert_eq!(forest[0].name, "traced");
        assert!(!armed());
    }

    #[test]
    fn arm_from_env_off_when_unset() {
        // DEFCON_TRACE is not set in the test environment by default.
        assert!(arm_from_env().unwrap().is_none());
    }

    #[test]
    fn unclosed_spans_survive_snapshot() {
        let _g = arm(ObsConfig::default());
        let _open = span("still-open");
        let forest = snapshot();
        assert_eq!(forest.len(), 1);
        assert_eq!(forest[0].name, "still-open");
        assert_eq!(forest[0].dur, 0);
    }
}
