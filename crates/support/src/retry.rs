//! Deterministic retry scheduling: seeded exponential backoff + jitter in
//! **virtual time**.
//!
//! Production retry loops pace themselves with wall-clock sleeps; this
//! workspace's determinism contract forbids that — two runs with the same
//! seed must agree byte for byte. So a backoff here is a *virtual-cycle
//! charge*: a pure function of `(policy, attempt)` that the serving layer
//! subtracts from a request's deadline budget instead of sleeping. The
//! shape is the classic capped exponential with jitter:
//!
//! ```text
//! envelope(n) = min(cap, base · 2ⁿ)
//! backoff(n)  = min(cap, envelope(n) ± jitter)   jitter ≤ envelope·f
//! ```
//!
//! where the jitter draw is a splitmix64 hash of `(seed, attempt)` —
//! identical across runs, threads and machines. With a jitter fraction
//! `f ≤ 1/3` the schedule is monotone non-decreasing below the cap
//! (`2e(1−f) ≥ e(1+f)` ⇔ `f ≤ 1/3`), which the property suite pins.
//!
//! Everything here is integer arithmetic on the stack: computing a
//! schedule allocates nothing (pinned by an allocation-counting test), so
//! the disarmed/fast path of a serving loop pays only the arithmetic.

/// A deterministic retry policy. All fields are plain integers so the
/// schedule is exactly reproducible (no float rounding, no clock).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Re-attempts after the initial try (0 = fail fast). The serving
    /// default of 1 reproduces the original single drain-retry loop.
    pub max_retries: u32,
    /// Backoff envelope for attempt 0, in virtual cycles.
    pub base_cycles: u64,
    /// Hard ceiling on any single backoff, in virtual cycles.
    pub cap_cycles: u64,
    /// Jitter bound as a fraction of the envelope, in 1/1000 units
    /// (`250` = ±25 %). Values ≤ 333 keep the schedule monotone below
    /// the cap; see the module docs.
    pub jitter_milli: u32,
    /// Seed for the jitter draws.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 1,
            base_cycles: 1 << 10,
            cap_cycles: 1 << 16,
            jitter_milli: 250,
            seed: 0xDEFC_0DE5,
        }
    }
}

/// splitmix64 — the standard 64-bit finalizer; a pure function of its
/// input, used to turn `(seed, attempt)` into a jitter draw.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl RetryPolicy {
    /// The capped exponential envelope for `attempt` (0-based), before
    /// jitter: `min(cap, base · 2^attempt)`, saturating.
    pub fn envelope_cycles(&self, attempt: u32) -> u64 {
        let doubled = if attempt >= 63 {
            u64::MAX
        } else {
            self.base_cycles.checked_shl(attempt).unwrap_or(u64::MAX)
        };
        doubled.min(self.cap_cycles)
    }

    /// The virtual-cycle backoff charged before re-attempt `attempt`
    /// (0-based: the pause between the initial try and the first retry is
    /// `backoff_cycles(0)`). A pure function of `(self, attempt)`:
    /// envelope ± seeded jitter, clamped to `cap_cycles`.
    pub fn backoff_cycles(&self, attempt: u32) -> u64 {
        let envelope = self.envelope_cycles(attempt);
        let span = envelope / 1000 * self.jitter_milli as u64
            + envelope % 1000 * self.jitter_milli as u64 / 1000;
        if span == 0 {
            return envelope;
        }
        let h = splitmix64(self.seed ^ (attempt as u64).wrapping_mul(0xa076_1d64_78bd_642f));
        // Uniform in [-span, +span]: width 2·span+1 never overflows u64
        // because span ≤ envelope ≤ cap < u64::MAX/3 in any sane config,
        // and the modulo keeps the draw deterministic without floats.
        let delta = (h % (2 * span + 1)) as i128 - span as i128;
        let jittered = envelope as i128 + delta;
        (jittered.max(0) as u64).min(self.cap_cycles)
    }

    /// Total virtual cycles charged by backoffs for attempts `0..n`.
    pub fn total_backoff_cycles(&self, n: u32) -> u64 {
        (0..n).fold(0u64, |acc, a| acc.saturating_add(self.backoff_cycles(a)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_a_pure_function_of_seed_and_attempt() {
        let p = RetryPolicy::default();
        for attempt in 0..12 {
            assert_eq!(
                p.backoff_cycles(attempt),
                p.backoff_cycles(attempt),
                "attempt {attempt} not reproducible"
            );
        }
        // Different seeds give different schedules (somewhere in the run).
        let q = RetryPolicy {
            seed: p.seed ^ 0xdead_beef,
            ..p
        };
        assert!(
            (0..12).any(|a| p.backoff_cycles(a) != q.backoff_cycles(a)),
            "seed does not influence the schedule"
        );
    }

    #[test]
    fn prop_monotone_up_to_cap_and_jitter_bounded() {
        use crate::prop::{self, Config};
        use crate::rng::Rng;

        prop::check(
            "backoff monotone below cap, jitter within the configured fraction",
            &Config::cases(64),
            |rng| RetryPolicy {
                max_retries: 8,
                base_cycles: rng.gen_range(1u64..10_000),
                cap_cycles: rng.gen_range(10_000u64..10_000_000),
                // ≤ 1/3 keeps the schedule monotone (module docs).
                jitter_milli: rng.gen_range(0u32..334),
                seed: rng.gen_range(0u64..u64::MAX),
            },
            |p| {
                let mut prev = 0u64;
                for attempt in 0..24u32 {
                    let env = p.envelope_cycles(attempt);
                    let b = p.backoff_cycles(attempt);
                    // Jitter bound: |b − envelope| ≤ envelope·f (the cap
                    // clamp can only pull b further toward the envelope).
                    let span = env / 1000 * p.jitter_milli as u64
                        + env % 1000 * p.jitter_milli as u64 / 1000;
                    crate::prop_assert!(
                        b >= env.saturating_sub(span) && b <= env.saturating_add(span),
                        "attempt {attempt}: backoff {b} outside envelope {env} ± {span}"
                    );
                    crate::prop_assert!(b <= p.cap_cycles, "attempt {attempt}: {b} above cap");
                    // Monotone while the envelope is still below the cap.
                    if env < p.cap_cycles {
                        crate::prop_assert!(
                            b >= prev,
                            "attempt {attempt}: schedule regressed {prev} -> {b}"
                        );
                    }
                    prev = b;
                }
                Ok(())
            },
        );
    }

    #[test]
    fn envelope_saturates_instead_of_overflowing() {
        let p = RetryPolicy {
            base_cycles: u64::MAX / 2,
            cap_cycles: u64::MAX,
            jitter_milli: 0,
            ..RetryPolicy::default()
        };
        assert_eq!(p.envelope_cycles(63), u64::MAX);
        assert_eq!(p.envelope_cycles(200), u64::MAX);
        // And the cap still applies on the saturated path.
        let q = RetryPolicy {
            cap_cycles: 12_345,
            ..p
        };
        assert_eq!(q.backoff_cycles(120), 12_345);
    }

    #[test]
    fn zero_jitter_is_exactly_the_envelope() {
        let p = RetryPolicy {
            base_cycles: 100,
            cap_cycles: 1000,
            jitter_milli: 0,
            ..RetryPolicy::default()
        };
        assert_eq!(p.backoff_cycles(0), 100);
        assert_eq!(p.backoff_cycles(1), 200);
        assert_eq!(p.backoff_cycles(2), 400);
        assert_eq!(p.backoff_cycles(3), 800);
        assert_eq!(p.backoff_cycles(4), 1000, "capped");
        assert_eq!(p.backoff_cycles(5), 1000, "stays capped");
        assert_eq!(p.total_backoff_cycles(5), 100 + 200 + 400 + 800 + 1000);
    }

    // The allocation-free contract (pure integer math, no heap) is pinned
    // in `tests/zero_alloc.rs`, which installs the counting allocator —
    // an in-crate test could not observe allocations at all.
}
