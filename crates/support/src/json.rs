//! A minimal JSON value type, writer and parser.
//!
//! Replaces `serde`/`serde_json` for the handful of structures the
//! workspace serializes (latency LUTs, simulator reports, bench harness
//! output). Serialization goes through hand-written [`ToJson`]/[`FromJson`]
//! impls on those types; there is no derive and no reflection.
//!
//! Objects keep insertion order ([`Json::Obj`] is a `Vec` of pairs), so a
//! deterministic producer yields byte-identical output — a property the
//! reproducible-report tests rely on.

use std::fmt;

/// A JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (stored as `f64`, like JavaScript).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; pairs keep insertion order and may not repeat keys.
    Obj(Vec<(String, Json)>),
}

/// Error from [`Json::parse`] or a [`FromJson`] conversion.
#[derive(Clone, Debug, PartialEq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input where parsing stopped (0 for conversion
    /// errors).
    pub offset: usize,
}

impl JsonError {
    /// A conversion (non-parse) error.
    pub fn msg(message: impl Into<String>) -> Self {
        JsonError {
            message: message.into(),
            offset: 0,
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (at byte {})", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Serialization into a [`Json`] value.
pub trait ToJson {
    /// The JSON form of `self`.
    fn to_json(&self) -> Json;
}

/// Deserialization from a [`Json`] value.
pub trait FromJson: Sized {
    /// Reconstructs `Self`, or explains why the value does not fit.
    fn from_json(j: &Json) -> Result<Self, JsonError>;
}

impl Json {
    /// Object constructor with string-ish keys.
    pub fn obj(pairs: Vec<(impl Into<String>, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// String constructor.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Looks up a key in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Like [`Json::get`] but a missing key is an error naming it.
    pub fn field(&self, key: &str) -> Result<&Json, JsonError> {
        self.get(key)
            .ok_or_else(|| JsonError::msg(format!("missing field '{key}'")))
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The number as a non-negative integer (rejects fractions).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The number as a `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().map(|v| v as usize)
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Typed field access: `obj.num_field("x")?`.
    pub fn num_field(&self, key: &str) -> Result<f64, JsonError> {
        self.field(key)?
            .as_f64()
            .ok_or_else(|| JsonError::msg(format!("field '{key}' is not a number")))
    }

    /// Typed field access for unsigned integers.
    pub fn u64_field(&self, key: &str) -> Result<u64, JsonError> {
        self.field(key)?
            .as_u64()
            .ok_or_else(|| JsonError::msg(format!("field '{key}' is not an integer")))
    }

    /// Typed field access for `usize`.
    pub fn usize_field(&self, key: &str) -> Result<usize, JsonError> {
        Ok(self.u64_field(key)? as usize)
    }

    /// Typed field access for strings.
    pub fn str_field(&self, key: &str) -> Result<&str, JsonError> {
        self.field(key)?
            .as_str()
            .ok_or_else(|| JsonError::msg(format!("field '{key}' is not a string")))
    }

    /// Parses a JSON document. Trailing non-whitespace is an error.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            // Rust's f64 Display prints the shortest representation that
            // round-trips, so numeric precision survives a parse cycle.
            // Non-finite values have no JSON form; emit null like
            // JavaScript's JSON.stringify.
            Json::Num(v) if v.is_finite() => write!(f, "{v}"),
            Json::Num(_) => f.write_str("null"),
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(format!("invalid literal, expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(self.err(format!("unexpected character '{}'", b as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed for this
                            // workspace's ASCII-ish payloads; reject them
                            // loudly instead of mis-decoding.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("\\u escape outside the BMP"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so slicing
                    // at char boundaries is safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("invalid number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in [
            "null",
            "true",
            "false",
            "0",
            "-1.5",
            "3.141592653589793",
            "\"hi\"",
            "1e-9",
        ] {
            let v = Json::parse(text).unwrap();
            let back = Json::parse(&v.to_string()).unwrap();
            assert_eq!(v, back, "{text}");
        }
    }

    #[test]
    fn f64_precision_survives() {
        let v = Json::Num(0.1 + 0.2);
        let back = Json::parse(&v.to_string()).unwrap();
        assert_eq!(back.as_f64().unwrap(), 0.1 + 0.2);
    }

    #[test]
    fn nested_structure_round_trips() {
        let doc = Json::obj(vec![
            ("name", Json::str("defcon")),
            (
                "speedups",
                Json::Arr(vec![Json::Num(1.27), Json::Num(1.39)]),
            ),
            (
                "meta",
                Json::obj(vec![("fast", Json::Bool(true)), ("n", Json::Num(5.0))]),
            ),
        ]);
        let text = doc.to_string();
        assert_eq!(Json::parse(&text).unwrap(), doc);
        assert_eq!(doc.field("meta").unwrap().u64_field("n").unwrap(), 5);
    }

    #[test]
    fn object_order_is_preserved() {
        let doc = Json::obj(vec![("b", Json::Num(1.0)), ("a", Json::Num(2.0))]);
        assert_eq!(doc.to_string(), "{\"b\":1,\"a\":2}");
    }

    #[test]
    fn string_escapes() {
        let s = "line1\nline2\t\"quoted\" \\slash\\ unicode: µ";
        let v = Json::Str(s.to_string());
        assert_eq!(Json::parse(&v.to_string()).unwrap().as_str().unwrap(), s);
        assert_eq!(
            Json::parse("\"\\u0041\\u00b5\"").unwrap().as_str().unwrap(),
            "Aµ"
        );
    }

    #[test]
    fn parse_errors_carry_position() {
        let e = Json::parse("[1, 2,]").unwrap_err();
        assert!(e.offset > 0);
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("[1] trailing").is_err());
        assert!(Json::parse("").is_err());
    }

    #[test]
    fn whitespace_tolerated() {
        let v = Json::parse(" {\n \"a\" : [ 1 , 2 ] , \"b\" : null }\t").unwrap();
        assert_eq!(v.field("a").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(v.get("b"), Some(&Json::Null));
    }

    #[test]
    fn typed_accessors_reject_wrong_shapes() {
        let v = Json::parse("{\"x\": 1.5, \"s\": \"t\"}").unwrap();
        assert!(v.u64_field("x").is_err(), "1.5 is not an integer");
        assert!(v.num_field("s").is_err());
        assert!(v.num_field("missing").is_err());
        assert_eq!(v.num_field("x").unwrap(), 1.5);
    }

    #[test]
    fn non_finite_numbers_serialize_as_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }
}
