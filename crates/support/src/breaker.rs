//! A deterministic circuit breaker in virtual time.
//!
//! The classic closed → open → half-open pattern, with two departures
//! forced by this workspace's determinism contract:
//!
//! * **No wall clock.** An open breaker does not wait for a timeout; it
//!   counts *consultations* (`allow` calls) as its cooldown ticks. The
//!   serving layer consults once per request in admission order, so the
//!   cooldown elapses at a point that is a pure function of the request
//!   stream — never of scheduling.
//! * **A pure, total transition function.** [`step`] maps every
//!   `(state, event)` pair to a next state. Counting (failure thresholds,
//!   cooldown ticks) lives in [`CircuitBreaker`], which *synthesizes*
//!   `Trip` / `CooldownElapsed` events when its counters saturate; the
//!   edge set itself is a closed table. Illegal transitions — Closed →
//!   HalfOpen, Open → Closed — are unrepresentable: no event maps to
//!   them, which the exhaustive state-machine test enumerates.
//!
//! The breaker records every state *change* in a transition log (legal by
//! construction, goldenable by determinism) and exposes its state as a
//! small integer for obs gauges.

/// The three breaker states.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests flow, failures are counted.
    Closed,
    /// Tripped: requests are refused until the cooldown elapses.
    Open,
    /// Probing: requests flow; the next outcome decides open vs closed.
    HalfOpen,
}

impl BreakerState {
    /// Display name (used in transition logs and obs events).
    pub fn name(&self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }

    /// Gauge encoding: 0 closed, 1 half-open, 2 open (monotone in how
    /// unhealthy the rung is).
    pub fn gauge(&self) -> f64 {
        match self {
            BreakerState::Closed => 0.0,
            BreakerState::HalfOpen => 1.0,
            BreakerState::Open => 2.0,
        }
    }

    /// Every state.
    pub fn all() -> [BreakerState; 3] {
        [
            BreakerState::Closed,
            BreakerState::Open,
            BreakerState::HalfOpen,
        ]
    }
}

/// Events fed to [`step`]. `Success`/`Failure` come from observed
/// outcomes; `Trip` and `CooldownElapsed` are synthesized by
/// [`CircuitBreaker`] when its counters saturate (or forced by the
/// `breaker.trip` fault point).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerEvent {
    /// The guarded operation succeeded.
    Success,
    /// The guarded operation failed (below the trip threshold).
    Failure,
    /// The failure threshold was reached, or a trip was injected.
    Trip,
    /// An open breaker's consultation cooldown ran out.
    CooldownElapsed,
}

impl BreakerEvent {
    /// Display name (used in transition logs).
    pub fn name(&self) -> &'static str {
        match self {
            BreakerEvent::Success => "success",
            BreakerEvent::Failure => "failure",
            BreakerEvent::Trip => "trip",
            BreakerEvent::CooldownElapsed => "cooldown",
        }
    }

    /// Every event.
    pub fn all() -> [BreakerEvent; 4] {
        [
            BreakerEvent::Success,
            BreakerEvent::Failure,
            BreakerEvent::Trip,
            BreakerEvent::CooldownElapsed,
        ]
    }
}

/// The total transition function. Every representable edge is one of:
///
/// ```text
/// Closed   --Trip-->             Open       (threshold or injected)
/// Open     --CooldownElapsed-->  HalfOpen
/// HalfOpen --Success-->          Closed
/// HalfOpen --Failure/Trip-->     Open
/// ```
///
/// plus self-loops; in particular Closed → HalfOpen and Open → Closed do
/// not exist (recovery must pass through a half-open probe).
pub fn step(state: BreakerState, event: BreakerEvent) -> BreakerState {
    use BreakerEvent::*;
    use BreakerState::*;
    match (state, event) {
        (Closed, Success) => Closed,
        (Closed, Failure) => Closed, // below threshold; Trip opens
        (Closed, Trip) => Open,
        (Closed, CooldownElapsed) => Closed,
        (Open, Success) => Open, // stale outcome from an in-flight batch
        (Open, Failure) => Open,
        (Open, Trip) => Open,
        (Open, CooldownElapsed) => HalfOpen,
        (HalfOpen, Success) => Closed,
        (HalfOpen, Failure) => Open,
        (HalfOpen, Trip) => Open,
        (HalfOpen, CooldownElapsed) => HalfOpen,
    }
}

/// Breaker tuning. Integer-only; both counters are in deterministic units
/// (consecutive failures, consultations).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures (while closed) that trip the breaker.
    pub failure_threshold: u32,
    /// `allow` consultations an open breaker refuses before moving to
    /// half-open.
    pub cooldown_consults: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            cooldown_consults: 4,
        }
    }
}

/// One recorded state change.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Transition {
    /// State before.
    pub from: BreakerState,
    /// State after (always ≠ `from`; self-loops are not logged).
    pub to: BreakerState,
    /// The event that caused it.
    pub event: BreakerEvent,
}

impl Transition {
    /// `"closed->open:trip"` — the golden-log line format.
    pub fn render(&self) -> String {
        format!(
            "{}->{}:{}",
            self.from.name(),
            self.to.name(),
            self.event.name()
        )
    }
}

/// A stateful breaker over [`step`], with deterministic counters.
#[derive(Clone, Debug)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    cooldown_left: u32,
    transitions: Vec<Transition>,
}

impl CircuitBreaker {
    /// A closed breaker.
    pub fn new(cfg: BreakerConfig) -> Self {
        CircuitBreaker {
            cfg,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            cooldown_left: 0,
            transitions: Vec::new(),
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Applies `event` through [`step`], logging the change and running
    /// entry actions (reset counters on entering Closed, arm the cooldown
    /// on entering Open). Returns the new state.
    fn apply(&mut self, event: BreakerEvent) -> BreakerState {
        let from = self.state;
        let to = step(from, event);
        if to != from {
            self.transitions.push(Transition { from, to, event });
            match to {
                BreakerState::Open => {
                    self.cooldown_left = self.cfg.cooldown_consults;
                    self.consecutive_failures = 0;
                }
                BreakerState::Closed => self.consecutive_failures = 0,
                BreakerState::HalfOpen => {}
            }
            self.state = to;
        }
        to
    }

    /// Consults the breaker before using the guarded resource. Closed and
    /// half-open allow; open refuses and burns one cooldown consultation —
    /// when the cooldown hits zero the breaker moves to half-open and
    /// **this** consultation is allowed as the probe.
    pub fn allow(&mut self) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                self.cooldown_left = self.cooldown_left.saturating_sub(1);
                if self.cooldown_left == 0 {
                    self.apply(BreakerEvent::CooldownElapsed);
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Records a successful outcome of the guarded operation.
    pub fn record_success(&mut self) {
        self.consecutive_failures = 0;
        self.apply(BreakerEvent::Success);
    }

    /// Records a failed outcome. While closed, failures accumulate and the
    /// threshold synthesizes a `Trip`; in half-open one failure re-opens.
    pub fn record_failure(&mut self) {
        if self.state == BreakerState::Closed {
            self.consecutive_failures += 1;
            if self.consecutive_failures >= self.cfg.failure_threshold {
                self.apply(BreakerEvent::Trip);
            } else {
                self.apply(BreakerEvent::Failure);
            }
        } else {
            self.apply(BreakerEvent::Failure);
        }
    }

    /// Forces the breaker open (the `breaker.trip` fault point).
    pub fn trip(&mut self) {
        self.apply(BreakerEvent::Trip);
    }

    /// Every state change so far, in order.
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// The transition log rendered to golden-log lines.
    pub fn transition_log(&self) -> Vec<String> {
        self.transitions.iter().map(Transition::render).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use BreakerEvent::*;
    use BreakerState::*;

    /// Every (state, event) pair, against the pinned edge table. The
    /// function is total — no pair panics — and only legal edges appear;
    /// anything absent from `LEGAL` is unrepresentable.
    #[test]
    fn exhaustive_state_machine_table() {
        const LEGAL: &[(BreakerState, BreakerEvent, BreakerState)] = &[
            (Closed, Success, Closed),
            (Closed, Failure, Closed),
            (Closed, Trip, Open),
            (Closed, CooldownElapsed, Closed),
            (Open, Success, Open),
            (Open, Failure, Open),
            (Open, Trip, Open),
            (Open, CooldownElapsed, HalfOpen),
            (HalfOpen, Success, Closed),
            (HalfOpen, Failure, Open),
            (HalfOpen, Trip, Open),
            (HalfOpen, CooldownElapsed, HalfOpen),
        ];
        assert_eq!(LEGAL.len(), 3 * 4, "table covers the full product");
        for &(s, e, want) in LEGAL {
            assert_eq!(step(s, e), want, "step({s:?}, {e:?})");
        }
        // The forbidden edges really are unreachable: no event maps
        // Closed→HalfOpen or Open→Closed.
        for e in BreakerEvent::all() {
            assert_ne!(step(Closed, e), HalfOpen, "Closed may not skip to HalfOpen");
            assert_ne!(step(Open, e), Closed, "Open may not skip to Closed");
        }
    }

    #[test]
    fn threshold_trips_and_probe_recovers() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 2,
            cooldown_consults: 3,
        });
        assert!(b.allow());
        b.record_failure();
        assert_eq!(b.state(), Closed, "one failure below threshold");
        b.record_failure();
        assert_eq!(b.state(), Open, "threshold trips");
        // Cooldown: two refused consultations, the third is the probe.
        assert!(!b.allow());
        assert!(!b.allow());
        assert!(b.allow(), "cooldown elapsed -> half-open probe");
        assert_eq!(b.state(), HalfOpen);
        b.record_success();
        assert_eq!(b.state(), Closed, "probe success closes");
        assert_eq!(
            b.transition_log(),
            vec![
                "closed->open:trip",
                "open->half-open:cooldown",
                "half-open->closed:success",
            ]
        );
    }

    #[test]
    fn half_open_failure_reopens_and_rearms_cooldown() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 1,
            cooldown_consults: 2,
        });
        b.record_failure(); // threshold 1: open immediately
        assert_eq!(b.state(), Open);
        assert!(!b.allow());
        assert!(b.allow()); // probe
        b.record_failure();
        assert_eq!(b.state(), Open, "failed probe re-opens");
        assert!(!b.allow(), "cooldown re-armed");
        assert!(b.allow());
        b.record_success();
        assert_eq!(b.state(), Closed);
    }

    #[test]
    fn success_resets_the_failure_count() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 2,
            cooldown_consults: 1,
        });
        b.record_failure();
        b.record_success();
        b.record_failure();
        assert_eq!(b.state(), Closed, "non-consecutive failures do not trip");
    }

    /// Random event sequences: the recorded log only ever contains edges
    /// from the legal table, and consecutive records chain (each `from`
    /// equals the previous `to`).
    #[test]
    fn prop_logged_transitions_are_legal_and_chained() {
        use crate::prop::{self, Config};
        use crate::rng::Rng;

        prop::check(
            "breaker logs only legal, chained transitions",
            &Config::cases(32),
            |rng| {
                let ops: Vec<u32> = (0..rng.gen_range(5usize..60))
                    .map(|_| rng.gen_range(0u32..4))
                    .collect();
                (rng.gen_range(1u32..4), rng.gen_range(1u32..5), ops)
            },
            |(threshold, cooldown, ops)| {
                let mut b = CircuitBreaker::new(BreakerConfig {
                    failure_threshold: *threshold,
                    cooldown_consults: *cooldown,
                });
                for op in ops {
                    match op {
                        0 => {
                            b.allow();
                        }
                        1 => b.record_success(),
                        2 => b.record_failure(),
                        _ => b.trip(),
                    }
                }
                let mut prev = Closed;
                for t in b.transitions() {
                    crate::prop_assert!(
                        t.from == prev,
                        "log does not chain: {:?} after {prev:?}",
                        t
                    );
                    crate::prop_assert!(
                        step(t.from, t.event) == t.to && t.from != t.to,
                        "illegal logged edge {:?}",
                        t
                    );
                    prev = t.to;
                }
                crate::prop_assert!(b.transitions().is_empty() || prev == b.state());
                Ok(())
            },
        );
    }
}
