//! Scoped-thread data parallelism.
//!
//! The workspace's hot loops (GEMM row panels, im2col columns, per-channel
//! deformable sampling) all share one shape: split a big output buffer into
//! disjoint chunks and fill each independently. This module provides exactly
//! that — a `par_chunks_mut(..).enumerate().for_each(..)` combinator with
//! rayon's call-site syntax, built on `std::thread::scope`.
//!
//! Chunks are assigned to threads in contiguous bands decided purely by
//! `len / chunk_size` and the thread count, so a run's output never depends
//! on scheduling; with every chunk disjoint, results are bit-identical to
//! the sequential loop.
//!
//! Set `DEFCON_THREADS=1` (or any count) to override the default of one
//! thread per available core.

use std::sync::OnceLock;

/// Worker threads used by [`ParChunksMutEnumerate::for_each`]: the
/// `DEFCON_THREADS` env var if set, else available parallelism.
pub fn max_threads() -> usize {
    static CACHE: OnceLock<usize> = OnceLock::new();
    *CACHE.get_or_init(|| {
        std::env::var("DEFCON_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    })
}

/// Extension trait adding `par_chunks_mut` to slices.
pub trait ParallelSliceMut<T: Send> {
    /// Splits the slice into `chunk_size`-element chunks (the last may be
    /// shorter) for parallel iteration.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParChunksMut {
            data: self,
            chunk_size,
            threads: None,
        }
    }
}

/// A pending parallel chunk iteration (created by
/// [`ParallelSliceMut::par_chunks_mut`]).
pub struct ParChunksMut<'a, T: Send> {
    data: &'a mut [T],
    chunk_size: usize,
    threads: Option<usize>,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Overrides the worker-thread count for this iteration only (instead
    /// of the process-wide [`max_threads`] default). `n = 1` runs the whole
    /// iteration inline on the calling thread, which callers use to get the
    /// exact sequential evaluation order.
    pub fn threads(mut self, n: usize) -> Self {
        assert!(n > 0, "thread count must be positive");
        self.threads = Some(n);
        self
    }

    /// Pairs each chunk with its index, like `Iterator::enumerate`.
    pub fn enumerate(self) -> ParChunksMutEnumerate<'a, T> {
        ParChunksMutEnumerate(self)
    }

    /// Runs `f` on every chunk across worker threads.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        self.enumerate().for_each(|(_, chunk)| f(chunk));
    }
}

/// An enumerated pending parallel chunk iteration.
pub struct ParChunksMutEnumerate<'a, T: Send>(ParChunksMut<'a, T>);

impl<T: Send> ParChunksMutEnumerate<'_, T> {
    /// Runs `f((chunk_index, chunk))` for every chunk, spreading chunks over
    /// up to [`max_threads`] scoped threads in contiguous bands.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        let ParChunksMut {
            data,
            chunk_size,
            threads,
        } = self.0;
        let n_chunks = data.len().div_ceil(chunk_size);
        let threads = threads.unwrap_or_else(max_threads).min(n_chunks);
        if threads <= 1 {
            for (i, chunk) in data.chunks_mut(chunk_size).enumerate() {
                f((i, chunk));
            }
            return;
        }
        std::thread::scope(|scope| {
            let f = &f;
            let mut rest = data;
            let mut chunk_base = 0usize;
            for t in 0..threads {
                // Balanced contiguous bands: the first `n_chunks % threads`
                // bands get one extra chunk.
                let band_chunks = n_chunks / threads + usize::from(t < n_chunks % threads);
                let band_elems = (band_chunks * chunk_size).min(rest.len());
                let (band, tail) = rest.split_at_mut(band_elems);
                rest = tail;
                let base = chunk_base;
                chunk_base += band_chunks;
                scope.spawn(move || {
                    for (j, chunk) in band.chunks_mut(chunk_size).enumerate() {
                        f((base + j, chunk));
                    }
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_and_coverage_match_sequential_chunks() {
        let mut par = vec![0usize; 1013]; // deliberately not a multiple of the chunk size
        par.par_chunks_mut(32).enumerate().for_each(|(i, chunk)| {
            for (k, v) in chunk.iter_mut().enumerate() {
                *v = i * 1000 + k;
            }
        });
        let mut seq = vec![0usize; 1013];
        for (i, chunk) in seq.chunks_mut(32).enumerate() {
            for (k, v) in chunk.iter_mut().enumerate() {
                *v = i * 1000 + k;
            }
        }
        assert_eq!(par, seq);
    }

    #[test]
    fn single_chunk_runs_inline() {
        let mut data = vec![1.0f32; 10];
        data.par_chunks_mut(64).enumerate().for_each(|(i, chunk)| {
            assert_eq!(i, 0);
            for v in chunk {
                *v += 1.0;
            }
        });
        assert!(data.iter().all(|&v| v == 2.0));
    }

    #[test]
    fn empty_slice_is_a_no_op() {
        let mut data: Vec<u8> = Vec::new();
        data.par_chunks_mut(4)
            .enumerate()
            .for_each(|_| panic!("no chunks expected"));
    }

    #[test]
    fn un_enumerated_for_each_visits_every_chunk() {
        let mut data = vec![0u32; 257];
        data.par_chunks_mut(16).for_each(|chunk| {
            for v in chunk {
                *v = 7;
            }
        });
        assert!(data.iter().all(|&v| v == 7));
    }

    #[test]
    fn more_chunks_than_threads() {
        let mut data = vec![0u64; 4096];
        data.par_chunks_mut(1)
            .enumerate()
            .for_each(|(i, chunk)| chunk[0] = i as u64);
        assert!(data.iter().enumerate().all(|(i, &v)| v == i as u64));
    }

    #[test]
    fn chunk_size_larger_than_slice_is_one_chunk() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let mut data = vec![0u8; 7];
        let visits = AtomicUsize::new(0);
        data.par_chunks_mut(1000)
            .enumerate()
            .for_each(|(i, chunk)| {
                assert_eq!(i, 0);
                assert_eq!(chunk.len(), 7);
                visits.fetch_add(1, Ordering::Relaxed);
            });
        assert_eq!(visits.load(Ordering::Relaxed), 1);
    }

    /// Explicit thread counts must not change results: the band assignment
    /// is a pure function of (len, chunk_size), never of scheduling.
    #[test]
    fn results_identical_for_one_vs_many_threads() {
        let fill = |threads: usize| {
            let mut data = vec![0u64; 1537];
            data.par_chunks_mut(8)
                .threads(threads)
                .enumerate()
                .for_each(|(i, chunk)| {
                    for (k, v) in chunk.iter_mut().enumerate() {
                        *v = (i as u64) << 32 | k as u64;
                    }
                });
            data
        };
        let serial = fill(1);
        for threads in [2, 3, 8, 64] {
            assert_eq!(fill(threads), serial, "threads = {threads}");
        }
    }

    /// A panicking worker must propagate to the caller (via the scoped-join
    /// at the end of `for_each`), never be swallowed.
    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut data = vec![0u32; 64];
            data.par_chunks_mut(4)
                .threads(4)
                .enumerate()
                .for_each(|(i, _)| {
                    if i == 7 {
                        panic!("worker 7 exploded");
                    }
                });
        }));
        assert!(result.is_err(), "worker panic was swallowed");
    }

    #[test]
    #[should_panic(expected = "thread count must be positive")]
    fn zero_thread_override_is_rejected() {
        let mut data = vec![0u8; 4];
        data.par_chunks_mut(2).threads(0).for_each(|_| {});
    }
}
