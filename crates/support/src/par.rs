//! Scoped-thread data parallelism.
//!
//! The workspace's hot loops (GEMM row panels, im2col columns, per-channel
//! deformable sampling) all share one shape: split a big output buffer into
//! disjoint chunks and fill each independently. This module provides exactly
//! that — a `par_chunks_mut(..).enumerate().for_each(..)` combinator with
//! rayon's call-site syntax, built on `std::thread::scope`.
//!
//! Chunks are assigned to threads in contiguous bands decided purely by
//! `len / chunk_size` and the thread count, so a run's output never depends
//! on scheduling; with every chunk disjoint, results are bit-identical to
//! the sequential loop.
//!
//! **Worker-panic recovery.** A band whose worker thread panics is re-run
//! serially on the calling thread, in band order, after the parallel phase
//! — a transient worker death (the kind [`crate::fault`] injects at the
//! `par.band` point) costs only that band's work and leaves the output
//! byte-identical to an unfaulted run. This relies on chunk bodies being
//! idempotent (they fully overwrite their chunk — true of every caller in
//! the workspace). A *deterministic* panic in the chunk body re-panics on
//! the serial re-run and propagates to the caller as before: real bugs are
//! never swallowed.
//!
//! Set `DEFCON_THREADS=1` (or any count) to override the default of one
//! thread per available core; malformed values are a fatal, clearly
//! reported configuration error (see [`crate::env`]).

use std::sync::{Mutex, OnceLock};

/// Worker threads used by [`ParChunksMutEnumerate::for_each`]: the
/// `DEFCON_THREADS` env var if set (a malformed value exits with a clear
/// error), else available parallelism.
pub fn max_threads() -> usize {
    static CACHE: OnceLock<usize> = OnceLock::new();
    *CACHE.get_or_init(|| {
        crate::env::or_die(crate::env::threads_override()).unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
    })
}

/// Extension trait adding `par_chunks_mut` to slices.
pub trait ParallelSliceMut<T: Send> {
    /// Splits the slice into `chunk_size`-element chunks (the last may be
    /// shorter) for parallel iteration.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParChunksMut {
            data: self,
            chunk_size,
            threads: None,
        }
    }
}

/// A pending parallel chunk iteration (created by
/// [`ParallelSliceMut::par_chunks_mut`]).
pub struct ParChunksMut<'a, T: Send> {
    data: &'a mut [T],
    chunk_size: usize,
    threads: Option<usize>,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Overrides the worker-thread count for this iteration only (instead
    /// of the process-wide [`max_threads`] default). `n = 1` runs the whole
    /// iteration inline on the calling thread, which callers use to get the
    /// exact sequential evaluation order.
    pub fn threads(mut self, n: usize) -> Self {
        assert!(n > 0, "thread count must be positive");
        self.threads = Some(n);
        self
    }

    /// Pairs each chunk with its index, like `Iterator::enumerate`.
    pub fn enumerate(self) -> ParChunksMutEnumerate<'a, T> {
        ParChunksMutEnumerate(self)
    }

    /// Runs `f` on every chunk across worker threads.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        self.enumerate().for_each(|(_, chunk)| f(chunk));
    }
}

/// An enumerated pending parallel chunk iteration.
pub struct ParChunksMutEnumerate<'a, T: Send>(ParChunksMut<'a, T>);

impl<T: Send> ParChunksMutEnumerate<'_, T> {
    /// Runs `f((chunk_index, chunk))` for every chunk, spreading chunks over
    /// up to [`max_threads`] scoped threads in contiguous bands.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        let ParChunksMut {
            data,
            chunk_size,
            threads,
        } = self.0;
        let n_chunks = data.len().div_ceil(chunk_size);
        let threads = threads.unwrap_or_else(max_threads).min(n_chunks);
        if threads <= 1 {
            for (i, chunk) in data.chunks_mut(chunk_size).enumerate() {
                f((i, chunk));
            }
            return;
        }
        // Band layout is a pure function of (len, chunk_size, threads):
        // balanced contiguous bands, the first `n_chunks % threads` bands
        // get one extra chunk. Computed up front so the panic-recovery
        // re-run below can re-derive any band's element range.
        let mut layout = Vec::with_capacity(threads);
        {
            let mut chunk_base = 0usize;
            let mut elem_start = 0usize;
            for t in 0..threads {
                let band_chunks = n_chunks / threads + usize::from(t < n_chunks % threads);
                let band_elems = (band_chunks * chunk_size).min(data.len() - elem_start);
                layout.push((chunk_base, elem_start, band_elems));
                chunk_base += band_chunks;
                elem_start += band_elems;
            }
        }
        let failed: Mutex<Vec<usize>> = Mutex::new(Vec::new());
        {
            // Reborrow so `data` is usable again for the recovery pass once
            // the scope (and with it every band borrow) has ended.
            let mut rest: &mut [T] = &mut *data;
            std::thread::scope(|scope| {
                let f = &f;
                let failed = &failed;
                for (b, &(chunk_base, _, band_elems)) in layout.iter().enumerate() {
                    let (band, tail) = rest.split_at_mut(band_elems);
                    rest = tail;
                    scope.spawn(move || {
                        let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            // Fault point: a transient worker death. Keyed
                            // by band index so the decision is independent
                            // of thread scheduling. The serial re-run below
                            // does not consult it — the modelled hazard
                            // lives in the parallel dispatch layer only.
                            crate::fault::panic_at("par.band", b as u64);
                            for (j, chunk) in band.chunks_mut(chunk_size).enumerate() {
                                f((chunk_base + j, chunk));
                            }
                        }));
                        if run.is_err() {
                            failed.lock().unwrap_or_else(|e| e.into_inner()).push(b);
                        }
                    });
                }
            });
        }
        let mut failed = failed.into_inner().unwrap_or_else(|e| e.into_inner());
        if failed.is_empty() {
            return;
        }
        // Graceful degradation: re-run each failed band serially, in band
        // order, on the calling thread. Chunk bodies fully overwrite their
        // chunk, so the result is byte-identical to an unfaulted run. A
        // deterministic panic re-fires here and propagates normally.
        failed.sort_unstable();
        for b in failed {
            let (chunk_base, elem_start, band_elems) = layout[b];
            let band = &mut data[elem_start..elem_start + band_elems];
            for (j, chunk) in band.chunks_mut(chunk_size).enumerate() {
                f((chunk_base + j, chunk));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_and_coverage_match_sequential_chunks() {
        let _quiet = crate::fault::quiesce();
        let mut par = vec![0usize; 1013]; // deliberately not a multiple of the chunk size
        par.par_chunks_mut(32).enumerate().for_each(|(i, chunk)| {
            for (k, v) in chunk.iter_mut().enumerate() {
                *v = i * 1000 + k;
            }
        });
        let mut seq = vec![0usize; 1013];
        for (i, chunk) in seq.chunks_mut(32).enumerate() {
            for (k, v) in chunk.iter_mut().enumerate() {
                *v = i * 1000 + k;
            }
        }
        assert_eq!(par, seq);
    }

    #[test]
    fn single_chunk_runs_inline() {
        let mut data = vec![1.0f32; 10];
        data.par_chunks_mut(64).enumerate().for_each(|(i, chunk)| {
            assert_eq!(i, 0);
            for v in chunk {
                *v += 1.0;
            }
        });
        assert!(data.iter().all(|&v| v == 2.0));
    }

    #[test]
    fn empty_slice_is_a_no_op() {
        let mut data: Vec<u8> = Vec::new();
        data.par_chunks_mut(4)
            .enumerate()
            .for_each(|_| panic!("no chunks expected"));
    }

    #[test]
    fn un_enumerated_for_each_visits_every_chunk() {
        let _quiet = crate::fault::quiesce();
        let mut data = vec![0u32; 257];
        data.par_chunks_mut(16).for_each(|chunk| {
            for v in chunk {
                *v = 7;
            }
        });
        assert!(data.iter().all(|&v| v == 7));
    }

    #[test]
    fn more_chunks_than_threads() {
        let _quiet = crate::fault::quiesce();
        let mut data = vec![0u64; 4096];
        data.par_chunks_mut(1)
            .enumerate()
            .for_each(|(i, chunk)| chunk[0] = i as u64);
        assert!(data.iter().enumerate().all(|(i, &v)| v == i as u64));
    }

    #[test]
    fn chunk_size_larger_than_slice_is_one_chunk() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let mut data = vec![0u8; 7];
        let visits = AtomicUsize::new(0);
        data.par_chunks_mut(1000)
            .enumerate()
            .for_each(|(i, chunk)| {
                assert_eq!(i, 0);
                assert_eq!(chunk.len(), 7);
                visits.fetch_add(1, Ordering::Relaxed);
            });
        assert_eq!(visits.load(Ordering::Relaxed), 1);
    }

    /// Explicit thread counts must not change results: the band assignment
    /// is a pure function of (len, chunk_size), never of scheduling.
    #[test]
    fn results_identical_for_one_vs_many_threads() {
        let _quiet = crate::fault::quiesce();
        let fill = |threads: usize| {
            let mut data = vec![0u64; 1537];
            data.par_chunks_mut(8)
                .threads(threads)
                .enumerate()
                .for_each(|(i, chunk)| {
                    for (k, v) in chunk.iter_mut().enumerate() {
                        *v = (i as u64) << 32 | k as u64;
                    }
                });
            data
        };
        let serial = fill(1);
        for threads in [2, 3, 8, 64] {
            assert_eq!(fill(threads), serial, "threads = {threads}");
        }
    }

    /// A panicking worker must propagate to the caller (via the scoped-join
    /// at the end of `for_each`), never be swallowed.
    #[test]
    fn worker_panic_propagates() {
        let _quiet = crate::fault::quiesce();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut data = vec![0u32; 64];
            data.par_chunks_mut(4)
                .threads(4)
                .enumerate()
                .for_each(|(i, _)| {
                    if i == 7 {
                        panic!("worker 7 exploded");
                    }
                });
        }));
        assert!(result.is_err(), "worker panic was swallowed");
    }

    /// An injected transient worker death must be survived: the killed
    /// band is re-run serially and the output is byte-identical to an
    /// unfaulted run.
    #[test]
    fn injected_band_panic_recovers_byte_identically() {
        use crate::fault::{self, FaultPlan, Schedule};
        let fill = |threads: usize| {
            let mut data = vec![0u64; 1537];
            data.par_chunks_mut(8)
                .threads(threads)
                .enumerate()
                .for_each(|(i, chunk)| {
                    for (k, v) in chunk.iter_mut().enumerate() {
                        *v = (i as u64) << 32 | k as u64;
                    }
                });
            data
        };
        let clean = fill(4);
        let faulted = {
            let _g = fault::arm(FaultPlan::new(21).point("par.band", Schedule::Nth(2)));
            let out = fill(4);
            assert_eq!(fault::log(), vec!["par.band#2"], "fault must have fired");
            out
        };
        assert_eq!(faulted, clean);
    }

    /// Multiple simultaneous band deaths recover too.
    #[test]
    fn all_bands_panicking_still_recovers() {
        use crate::fault::{self, FaultPlan, Schedule};
        let _g = fault::arm(FaultPlan::new(4).point("par.band", Schedule::Always));
        let mut data = vec![0u32; 256];
        data.par_chunks_mut(4)
            .threads(4)
            .enumerate()
            .for_each(|(i, chunk)| {
                for v in chunk.iter_mut() {
                    *v = i as u32;
                }
            });
        for (i, chunk) in data.chunks(4).enumerate() {
            assert!(chunk.iter().all(|&v| v == i as u32));
        }
        assert_eq!(
            fault::log(),
            vec!["par.band#0", "par.band#1", "par.band#2", "par.band#3"]
        );
    }

    #[test]
    #[should_panic(expected = "thread count must be positive")]
    fn zero_thread_override_is_rejected() {
        let mut data = vec![0u8; 4];
        data.par_chunks_mut(2).threads(0).for_each(|_| {});
    }
}
