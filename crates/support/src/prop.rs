//! A tiny seeded property-testing harness (replaces `proptest`).
//!
//! A property test here is: a fixed master seed, `N` cases, a generator
//! closure that draws an input from a per-case RNG, and a property closure
//! returning `Err(reason)` on violation. Failures panic with the case
//! number, the per-case seed and the `Debug` form of the input, so any
//! failure reproduces exactly by re-running the test — no shrinking, no
//! persistence files, no macros beyond [`prop_assert!`]/[`prop_assert_eq!`].
//!
//! ```
//! use defcon_support::prop::{self, Config};
//! use defcon_support::rng::Rng;
//!
//! prop::check("addition commutes", &Config::cases(16), |rng| {
//!     (rng.gen_range(-1.0e6f64..1.0e6), rng.gen_range(-1.0e6f64..1.0e6))
//! }, |&(a, b)| {
//!     defcon_support::prop_assert!(a + b == b + a, "{a} + {b}");
//!     Ok(())
//! });
//! ```

use crate::rng::{SeedableRng, StdRng};

/// How a property is exercised.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Number of generated cases.
    pub cases: u32,
    /// Master seed; each case derives its own RNG from it.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 32,
            seed: 0xDEFC_0000,
        }
    }
}

impl Config {
    /// The default seed with a custom case count.
    pub fn cases(cases: u32) -> Self {
        Config {
            cases,
            ..Config::default()
        }
    }

    /// Fully explicit configuration.
    pub fn new(cases: u32, seed: u64) -> Self {
        Config { cases, seed }
    }
}

/// Per-case RNG seed: decorrelates cases while keeping each one
/// individually reproducible from (master seed, case index).
pub fn case_seed(master: u64, case: u32) -> u64 {
    master ^ (case as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Runs `property` on `config.cases` inputs drawn by `generate`.
///
/// Panics on the first violated case, reporting the input. The property
/// returns `Err(reason)` to fail; the [`prop_assert!`] and
/// [`prop_assert_eq!`] macros build those early returns.
pub fn check<T: std::fmt::Debug>(
    name: &str,
    config: &Config,
    mut generate: impl FnMut(&mut StdRng) -> T,
    property: impl Fn(&T) -> Result<(), String>,
) {
    for case in 0..config.cases {
        let seed = case_seed(config.seed, case);
        let mut rng = StdRng::seed_from_u64(seed);
        let input = generate(&mut rng);
        if let Err(reason) = property(&input) {
            panic!(
                "property '{name}' failed on case {case}/{} (case seed {seed:#x}, master seed {:#x})\n  input: {input:?}\n  {reason}",
                config.cases, config.seed
            );
        }
    }
}

/// Early-returns `Err` from a property closure when `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)));
        }
    };
}

/// Early-returns `Err` from a property closure when the sides differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "assertion failed: {} == {}\n  left: {l:?}\n  right: {r:?}",
                stringify!($left),
                stringify!($right)
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut runs = 0u32;
        let cfg = Config::cases(17);
        check("count", &cfg, |rng| rng.gen_range(0u64..100), |_| Ok(()));
        // The generator is FnMut, so count there instead.
        check("count2", &cfg, |_| runs += 1, |_| Ok(()));
        assert_eq!(runs, 17);
    }

    #[test]
    #[should_panic(expected = "property 'always fails' failed on case 0")]
    fn failing_property_reports_case_and_input() {
        check(
            "always fails",
            &Config::cases(5),
            |rng| rng.gen_range(0u64..10),
            |v| {
                prop_assert!(*v > 100, "value was {v}");
                Ok(())
            },
        );
    }

    #[test]
    fn cases_are_deterministic_across_runs() {
        let collect = || {
            let mut vals = Vec::new();
            check(
                "collect",
                &Config::new(8, 7),
                |rng| rng.gen_range(0u64..1_000_000),
                |_| Ok(()),
            );
            // generate again identically via case_seed to check it is pure
            for case in 0..8 {
                let mut rng = StdRng::seed_from_u64(case_seed(7, case));
                vals.push(rng.gen_range(0u64..1_000_000));
            }
            vals
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    fn prop_assert_eq_formats_both_sides() {
        let r = (|| -> Result<(), String> {
            prop_assert_eq!(1 + 1, 3);
            Ok(())
        })();
        let msg = r.unwrap_err();
        assert!(msg.contains("left: 2") && msg.contains("right: 3"), "{msg}");
    }
}
