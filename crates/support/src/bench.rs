//! A wall-clock micro-benchmark harness (replaces `criterion`).
//!
//! Each bench target is a plain binary (`harness = false`) whose `main`
//! builds a [`Bench`], registers groups and functions, and calls
//! [`Bench::finish`]. Timing is deliberately simple: calibrate an
//! iteration count so one sample takes a few milliseconds, collect a fixed
//! number of samples, report min / median / mean per iteration. No plots,
//! no statistics beyond that — the numbers exist to compare kernels within
//! one run, not across machines.
//!
//! CLI: any non-flag argument is a substring filter on `group/id` names
//! (matching `cargo bench <filter>`); flags criterion receives, like
//! `--bench`, are ignored.

use std::time::{Duration, Instant};

/// Re-export so bench code can guard values against the optimizer.
pub use std::hint::black_box;

/// Target wall-clock time for one calibrated sample.
const TARGET_SAMPLE: Duration = Duration::from_millis(5);

/// The harness: owns the name filter and collected results.
pub struct Bench {
    filter: Option<String>,
    results: Vec<(String, Stats)>,
}

/// Per-iteration timing summary of one bench function.
#[derive(Clone, Copy, Debug)]
pub struct Stats {
    /// Fastest sample, nanoseconds per iteration.
    pub min_ns: f64,
    /// Median sample, nanoseconds per iteration.
    pub median_ns: f64,
    /// Mean over all samples, nanoseconds per iteration.
    pub mean_ns: f64,
    /// Iterations per sample after calibration.
    pub iters: u64,
    /// Samples taken.
    pub samples: usize,
}

impl Default for Bench {
    fn default() -> Self {
        Bench::from_args()
    }
}

impl Bench {
    /// Builds a harness, reading the optional name filter from `std::env::args`.
    pub fn from_args() -> Self {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Bench {
            filter,
            results: Vec::new(),
        }
    }

    /// Starts a named group of related bench functions.
    pub fn group(&mut self, name: impl Into<String>) -> Group<'_> {
        Group {
            bench: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Prints the closing summary. Call last in `main`.
    pub fn finish(self) {
        if self.results.is_empty() {
            println!(
                "(no benchmarks matched{})",
                match &self.filter {
                    Some(f) => format!(" filter '{f}'"),
                    None => String::new(),
                }
            );
        } else {
            println!("\n{} benchmark(s) completed", self.results.len());
        }
    }
}

/// A named group; mirrors criterion's `BenchmarkGroup` surface.
pub struct Group<'b> {
    bench: &'b mut Bench,
    name: String,
    sample_size: usize,
}

impl Group<'_> {
    /// Number of timed samples per bench function (default 10).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Registers and (filter permitting) runs one bench function. `f` is
    /// called with a [`Bencher`] and must call [`Bencher::iter`] exactly
    /// once per invocation.
    pub fn bench_function(&mut self, id: impl std::fmt::Display, mut f: impl FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, id);
        if let Some(filter) = &self.bench.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }

        // Calibrate: grow the iteration count until one sample is slow
        // enough to time reliably.
        let mut iters: u64 = 1;
        loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if b.elapsed >= TARGET_SAMPLE || iters >= 1 << 24 {
                break;
            }
            // Aim directly for the target using the measured rate.
            let per_iter = b.elapsed.as_secs_f64() / iters as f64;
            let needed = if per_iter > 0.0 {
                (TARGET_SAMPLE.as_secs_f64() / per_iter).ceil() as u64
            } else {
                iters * 16
            };
            iters = needed.clamp(iters + 1, (iters * 16).max(2)).min(1 << 24);
        }

        let mut per_iter_ns: Vec<f64> = (0..self.sample_size)
            .map(|_| {
                let mut b = Bencher {
                    iters,
                    elapsed: Duration::ZERO,
                };
                f(&mut b);
                b.elapsed.as_nanos() as f64 / iters as f64
            })
            .collect();
        per_iter_ns.sort_by(f64::total_cmp);
        let stats = Stats {
            min_ns: per_iter_ns[0],
            median_ns: per_iter_ns[per_iter_ns.len() / 2],
            mean_ns: per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64,
            iters,
            samples: per_iter_ns.len(),
        };
        println!(
            "{full:<44} min {:>12}  median {:>12}  mean {:>12}  ({} iters x {} samples)",
            fmt_ns(stats.min_ns),
            fmt_ns(stats.median_ns),
            fmt_ns(stats.mean_ns),
            stats.iters,
            stats.samples,
        );
        self.bench.results.push((full, stats));
    }

    /// `bench_function` with an input threaded through, mirroring
    /// criterion's `bench_with_input`.
    pub fn bench_with_input<I>(
        &mut self,
        id: impl std::fmt::Display,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        self.bench_function(id, |b| f(b, input));
    }

    /// Group teardown (a no-op; exists for criterion call-site parity).
    pub fn finish(self) {}
}

/// Times the body passed to [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `body` the calibrated number of times, timing the whole batch.
    /// The return value is passed through [`black_box`] so the computation
    /// cannot be optimized away.
    pub fn iter<R>(&mut self, mut body: impl FnMut() -> R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(body());
        }
        self.elapsed = start.elapsed();
    }
}

/// Human-readable nanoseconds.
fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_records() {
        let mut harness = Bench {
            filter: None,
            results: Vec::new(),
        };
        let mut group = harness.group("g");
        group.sample_size(3);
        group.bench_function("sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
        group.finish();
        assert_eq!(harness.results.len(), 1);
        let (name, stats) = &harness.results[0];
        assert_eq!(name, "g/sum");
        assert!(stats.min_ns > 0.0 && stats.min_ns <= stats.mean_ns * 1.0001);
        assert_eq!(stats.samples, 3);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut harness = Bench {
            filter: Some("other".into()),
            results: Vec::new(),
        };
        let mut group = harness.group("g");
        group.bench_function("skipped", |_| panic!("must not run"));
        group.finish();
        assert!(harness.results.is_empty());
    }

    #[test]
    fn fmt_ns_scales() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_000.0).ends_with("µs"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
        assert!(fmt_ns(2.0e9).ends_with('s'));
    }
}
