//! Centralized `DEFCON_*` environment-variable parsing.
//!
//! The workspace's behaviour switches (`DEFCON_THREADS`, `DEFCON_TINY`,
//! `DEFCON_JSON`, `DEFCON_FAST`, `DEFCON_BLESS`) used to be parsed ad hoc
//! at ~10 call sites with three different conventions (`is_ok()`,
//! `is_some()`, `== Ok("1")`), and a malformed value — `DEFCON_THREADS=two`
//! — was silently ignored. This module is the single parser: flags accept
//! `1/true/yes/on` and `0/false/no/off` (case-insensitive) plus the empty
//! string as off, counts accept positive integers, and **anything else is a
//! typed [`DefconError::Env`]** naming the variable, the offending value
//! and the accepted forms.
//!
//! Callers that cannot propagate a `Result` (process-wide thread-count
//! caches, bench binaries) report the error and exit via [`or_die`] — a
//! deliberate, clearly-worded configuration failure instead of a panic
//! backtrace or a silent fallback.

use crate::error::DefconError;

/// `DEFCON_THREADS` — worker-thread override shared by `support::par` and
/// the gpusim engine.
pub const THREADS: &str = "DEFCON_THREADS";
/// `DEFCON_TINY` — swap paper-scale sweeps for tiny smoke shapes.
pub const TINY: &str = "DEFCON_TINY";
/// `DEFCON_JSON` — emit machine-readable JSON report lines.
pub const JSON: &str = "DEFCON_JSON";
/// `DEFCON_FAST` — shrink example/repro workloads.
pub const FAST: &str = "DEFCON_FAST";
/// `DEFCON_BLESS` — re-record golden snapshots.
pub const BLESS: &str = "DEFCON_BLESS";
/// `DEFCON_TRACE` — path for the Chrome trace-event file written by
/// `support::obs` when armed from the environment.
pub const TRACE: &str = "DEFCON_TRACE";
/// `DEFCON_OBS_WALL` — wall-clock span timestamps instead of the
/// byte-reproducible logical clock.
pub const OBS_WALL: &str = "DEFCON_OBS_WALL";
/// `DEFCON_SERVE_QUEUE` — admission-queue capacity (requests) for the
/// `core::serve` throughput-mode simulation service.
pub const SERVE_QUEUE: &str = "DEFCON_SERVE_QUEUE";
/// `DEFCON_SERVE_CACHE` — launch-report cache capacity (entries) for the
/// `core::serve` throughput-mode simulation service.
pub const SERVE_CACHE: &str = "DEFCON_SERVE_CACHE";
/// `DEFCON_BENCH_OUT` — override path for a bench binary's JSON report
/// (used by CI to compare two runs without touching the committed file).
pub const BENCH_OUT: &str = "DEFCON_BENCH_OUT";
/// `DEFCON_CHAOS_SEED` — seed for the `repro_chaos` soak harness (fault
/// plan + request stream); any u64, default when unset is the harness's
/// pinned seed.
pub const CHAOS_SEED: &str = "DEFCON_CHAOS_SEED";
/// `DEFCON_SERVE_DEADLINE` — server-default per-request deadline budget in
/// virtual cycles for `core::serve` (0 or unset = no default deadline;
/// requests carrying their own budget are unaffected).
pub const SERVE_DEADLINE: &str = "DEFCON_SERVE_DEADLINE";
/// `DEFCON_RETRY_MAX` — admission re-attempts after the initial try in
/// `SimServer::serve` (0 = fail straight to degrade; unset = the default
/// single retry).
pub const RETRY_MAX: &str = "DEFCON_RETRY_MAX";
/// `DEFCON_BACKEND` — execution backend selection (`gpusim` or `accel`)
/// for binaries that honour it; unset means the default `gpusim` backend.
pub const BACKEND: &str = "DEFCON_BACKEND";

/// Reads a boolean flag. Unset and empty mean **off**; `1`, `true`, `yes`,
/// `on` mean **on**; `0`, `false`, `no`, `off` mean **off** (all
/// case-insensitive). Anything else is a [`DefconError::Env`].
pub fn flag(name: &str) -> Result<bool, DefconError> {
    match std::env::var(name) {
        Err(_) => Ok(false),
        Ok(v) => match v.trim().to_ascii_lowercase().as_str() {
            "" | "0" | "false" | "no" | "off" => Ok(false),
            "1" | "true" | "yes" | "on" => Ok(true),
            _ => Err(DefconError::Env {
                var: name.to_string(),
                value: v,
                expected: "a boolean flag (1/true/yes/on or 0/false/no/off)",
            }),
        },
    }
}

/// Reads a positive-integer variable. Unset means `None`; a positive
/// integer parses; zero, negatives, and garbage are [`DefconError::Env`].
pub fn positive_usize(name: &str) -> Result<Option<usize>, DefconError> {
    match std::env::var(name) {
        Err(_) => Ok(None),
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n > 0 => Ok(Some(n)),
            _ => Err(DefconError::Env {
                var: name.to_string(),
                value: v,
                expected: "a positive integer",
            }),
        },
    }
}

/// The `DEFCON_THREADS` override, if set (and valid).
pub fn threads_override() -> Result<Option<usize>, DefconError> {
    positive_usize(THREADS)
}

/// Reads a non-negative `u64` variable (seeds, cycle budgets — zero is a
/// meaningful value for these, unlike the counts `positive_usize` parses).
/// Unset means `None`; negatives and garbage are [`DefconError::Env`].
pub fn u64_value(name: &str) -> Result<Option<u64>, DefconError> {
    match std::env::var(name) {
        Err(_) => Ok(None),
        Ok(v) => match v.trim().parse::<u64>() {
            Ok(n) => Ok(Some(n)),
            Err(_) => Err(DefconError::Env {
                var: name.to_string(),
                value: v,
                expected: "a non-negative integer",
            }),
        },
    }
}

/// Reads a path-valued variable. Unset and empty mean `None`; a
/// whitespace-only value is a [`DefconError::Env`] — it is never a usable
/// path, always a shell-quoting mistake.
pub fn path(name: &str) -> Result<Option<std::path::PathBuf>, DefconError> {
    match std::env::var(name) {
        Err(_) => Ok(None),
        Ok(v) if v.is_empty() => Ok(None),
        Ok(v) if v.trim().is_empty() => Err(DefconError::Env {
            var: name.to_string(),
            value: v,
            expected: "a file path (or unset/empty to disable)",
        }),
        Ok(v) => Ok(Some(std::path::PathBuf::from(v))),
    }
}

/// The `DEFCON_TRACE` output path, if tracing is enabled.
pub fn trace_path() -> Result<Option<std::path::PathBuf>, DefconError> {
    path(TRACE)
}

/// Unwraps an environment-parse result; on `Err`, prints the error to
/// stderr and exits with status 2. For call sites (process-wide caches,
/// binary entry points) that cannot propagate — a malformed environment is
/// a fatal configuration error, reported clearly, never a panic and never
/// silently defaulted.
pub fn or_die<T>(r: Result<T, DefconError>) -> T {
    match r {
        Ok(v) => v,
        Err(e) => {
            eprintln!("defcon: {e}");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Env-var state is process-global; each test uses its own unique
    // variable name so parallel test threads cannot race.

    #[test]
    fn unset_flag_is_off_and_unset_count_is_none() {
        assert_eq!(flag("DEFCON_TEST_UNSET_X"), Ok(false));
        assert_eq!(positive_usize("DEFCON_TEST_UNSET_Y"), Ok(None));
    }

    #[test]
    fn flag_accepts_both_polarities() {
        let name = "DEFCON_TEST_FLAG_POLARITY";
        for (v, want) in [
            ("1", true),
            ("true", true),
            ("YES", true),
            ("on", true),
            ("0", false),
            ("false", false),
            ("No", false),
            ("off", false),
            ("", false),
        ] {
            std::env::set_var(name, v);
            assert_eq!(flag(name), Ok(want), "value {v:?}");
        }
        std::env::remove_var(name);
    }

    #[test]
    fn malformed_flag_is_a_typed_error() {
        let name = "DEFCON_TEST_FLAG_BAD";
        std::env::set_var(name, "maybe");
        let e = flag(name).unwrap_err();
        assert!(matches!(e, DefconError::Env { .. }));
        assert!(e.to_string().contains(name));
        assert!(e.to_string().contains("maybe"));
        std::env::remove_var(name);
    }

    #[test]
    fn path_rejects_whitespace_only() {
        let name = "DEFCON_TEST_PATH";
        assert_eq!(path("DEFCON_TEST_PATH_UNSET"), Ok(None));
        std::env::set_var(name, "");
        assert_eq!(path(name), Ok(None));
        std::env::set_var(name, "  ");
        assert!(matches!(path(name), Err(DefconError::Env { .. })));
        std::env::set_var(name, "/tmp/trace.json");
        assert_eq!(
            path(name),
            Ok(Some(std::path::PathBuf::from("/tmp/trace.json")))
        );
        std::env::remove_var(name);
    }

    #[test]
    fn u64_value_accepts_zero_and_rejects_garbage() {
        let name = "DEFCON_TEST_U64";
        assert_eq!(u64_value("DEFCON_TEST_U64_UNSET"), Ok(None));
        std::env::set_var(name, "0");
        assert_eq!(u64_value(name), Ok(Some(0)));
        std::env::set_var(name, "18446744073709551615");
        assert_eq!(u64_value(name), Ok(Some(u64::MAX)));
        for bad in ["-1", "nine", "1.5", ""] {
            std::env::set_var(name, bad);
            assert!(u64_value(name).is_err(), "value {bad:?}");
        }
        std::env::remove_var(name);
    }

    #[test]
    fn count_parses_and_rejects() {
        let name = "DEFCON_TEST_COUNT";
        std::env::set_var(name, "4");
        assert_eq!(positive_usize(name), Ok(Some(4)));
        for bad in ["0", "-1", "two", "4.5"] {
            std::env::set_var(name, bad);
            assert!(positive_usize(name).is_err(), "value {bad:?}");
        }
        std::env::remove_var(name);
    }
}
