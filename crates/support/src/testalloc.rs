//! A counting global allocator for allocation-budget tests.
//!
//! Install it in a test binary with
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: defcon_support::testalloc::CountingAllocator = CountingAllocator;
//! ```
//!
//! and bracket the region under test with [`thread_allocations`]: the
//! counter is **per-thread** (a `const`-initialized thread-local `Cell`, so
//! reading it never allocates), which keeps counts exact even when the test
//! harness runs other tests — or its own bookkeeping — on sibling threads.
//!
//! Only used by tests (the zero-allocation trace-hot-path contract); the
//! production binaries use the system allocator untouched.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    /// Heap allocations performed by the current thread since it started.
    /// `realloc` and `alloc_zeroed` count as one allocation each.
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// Allocations performed by the calling thread so far. Subtract two
/// readings to get the count for a region.
pub fn thread_allocations() -> u64 {
    THREAD_ALLOCS.with(|c| c.get())
}

/// A `System`-backed allocator that counts allocations per thread.
pub struct CountingAllocator;

#[inline]
fn bump() {
    THREAD_ALLOCS.with(|c| c.set(c.get() + 1));
}

// SAFETY: defers all memory management to `System`; only adds counting.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        bump();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        System.realloc(ptr, layout, new_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // NOTE: the allocator is not installed in this crate's own test binary
    // (that would tax every unrelated test); these tests only cover the
    // counter plumbing. The end-to-end zero-allocation assertion lives in
    // the workspace-root `tests/zero_alloc.rs`, which does install it.

    #[test]
    fn counter_starts_reads_and_is_monotonic() {
        let a = thread_allocations();
        let b = thread_allocations();
        assert!(b >= a);
    }

    #[test]
    fn bump_increments_this_thread_only() {
        let before = thread_allocations();
        bump();
        assert_eq!(thread_allocations(), before + 1);
        let handle = std::thread::spawn(thread_allocations);
        // The spawned thread's count is independent of this thread's.
        let other = handle.join().unwrap();
        assert!(other < u64::MAX);
        assert_eq!(thread_allocations(), before + 1);
    }
}
