//! A fixed-capacity, stack-allocated buffer sized for warp-level work.
//!
//! The simulator's inner loop handles one warp instruction at a time: at
//! most 32 lane addresses, each of which can straddle one 32-byte sector
//! boundary — so no warp-level event ever needs more than **64** slots. A
//! [`LaneBuf`] is a plain `[T; 64]` plus a length: pushing, clearing and
//! iterating never touch the heap, which is what makes the trace→coalesce→
//! cache path allocation-free (see DESIGN.md, "Zero-allocation trace hot
//! path").

/// Capacity of a [`LaneBuf`]: warp width (32) × 2 for sector straddle.
pub const LANE_BUF_CAP: usize = 64;

/// A fixed-capacity vector of `Copy` elements living entirely on the stack
/// (or inline in its owner). Pushing past [`LANE_BUF_CAP`] panics — by
/// construction no warp-level event produces more entries.
#[derive(Clone, Copy, Debug)]
pub struct LaneBuf<T: Copy + Default> {
    data: [T; LANE_BUF_CAP],
    len: usize,
}

impl<T: Copy + Default> Default for LaneBuf<T> {
    fn default() -> Self {
        LaneBuf::new()
    }
}

impl<T: Copy + Default> LaneBuf<T> {
    /// An empty buffer.
    #[inline]
    pub fn new() -> Self {
        LaneBuf {
            data: [T::default(); LANE_BUF_CAP],
            len: 0,
        }
    }

    /// Number of live elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no element is live.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drops all elements (O(1): elements are `Copy`).
    #[inline]
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// Appends `value`. Panics if the buffer is full.
    #[inline]
    pub fn push(&mut self, value: T) {
        self.data[self.len] = value;
        self.len += 1;
    }

    /// Inserts `value` at `index`, shifting the tail right. Panics if the
    /// buffer is full or `index > len`.
    #[inline]
    pub fn insert(&mut self, index: usize, value: T) {
        assert!(index <= self.len, "insert index out of bounds");
        self.data.copy_within(index..self.len, index + 1);
        self.data[index] = value;
        self.len += 1;
    }

    /// The live elements as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data[..self.len]
    }

    /// The live elements as a mutable slice (for in-place sort/compaction).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data[..self.len]
    }

    /// Shortens the buffer to `len` elements. Panics if `len > self.len()`.
    #[inline]
    pub fn truncate(&mut self, len: usize) {
        assert!(len <= self.len, "truncate beyond length");
        self.len = len;
    }

    /// Refills the buffer from an iterator (clearing it first).
    #[inline]
    pub fn fill_from(&mut self, iter: impl IntoIterator<Item = T>) {
        self.clear();
        for v in iter {
            self.push(v);
        }
    }
}

impl<T: Copy + Default> std::ops::Deref for LaneBuf<T> {
    type Target = [T];
    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Copy + Default> PartialEq for LaneBuf<T>
where
    T: PartialEq,
{
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_len_and_slice() {
        let mut b: LaneBuf<u64> = LaneBuf::new();
        assert!(b.is_empty());
        b.push(3);
        b.push(1);
        assert_eq!(b.len(), 2);
        assert_eq!(b.as_slice(), &[3, 1]);
        b.clear();
        assert!(b.is_empty());
    }

    #[test]
    fn insert_shifts_tail() {
        let mut b: LaneBuf<u64> = LaneBuf::new();
        b.push(1);
        b.push(3);
        b.insert(1, 2);
        assert_eq!(b.as_slice(), &[1, 2, 3]);
        b.insert(0, 0);
        assert_eq!(b.as_slice(), &[0, 1, 2, 3]);
        b.insert(4, 9);
        assert_eq!(b.as_slice(), &[0, 1, 2, 3, 9]);
    }

    #[test]
    fn fill_from_replaces_contents() {
        let mut b: LaneBuf<u64> = LaneBuf::new();
        b.push(7);
        b.fill_from(0..5u64);
        assert_eq!(b.as_slice(), &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn capacity_is_warp_times_two() {
        let mut b: LaneBuf<u64> = LaneBuf::new();
        for i in 0..LANE_BUF_CAP as u64 {
            b.push(i);
        }
        assert_eq!(b.len(), 64);
    }

    #[test]
    #[should_panic]
    fn overflow_panics() {
        let mut b: LaneBuf<u64> = LaneBuf::new();
        for i in 0..=LANE_BUF_CAP as u64 {
            b.push(i);
        }
    }

    #[test]
    fn deref_gives_slice_methods() {
        let mut b: LaneBuf<(f32, f32)> = LaneBuf::new();
        b.push((1.0, 2.0));
        assert_eq!(b.iter().count(), 1);
        assert_eq!(b[0], (1.0, 2.0));
    }
}
