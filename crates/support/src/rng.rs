//! Seedable pseudo-random number generation.
//!
//! A drop-in replacement for the slice of the `rand` crate this workspace
//! uses: a seedable generator ([`StdRng`]), `gen_range` over float/integer
//! ranges, and Fisher–Yates [`SliceRandom::shuffle`]. The generator is
//! xoshiro256** seeded through SplitMix64 — deterministic across platforms
//! and Rust versions, which is what the reproduction needs (the statistical
//! quality bar here is "good enough for initialization, sampling and
//! property tests", not cryptography).

/// A source of raw 64-bit randomness.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a 64-bit seed. Same seed ⇒ same stream, forever.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The workspace's default generator: xoshiro256**.
///
/// 256 bits of state, period 2²⁵⁶ − 1, passes BigCrush; the four state
/// words are initialized by iterating SplitMix64 on the seed so that
/// nearby seeds yield uncorrelated streams.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

/// One SplitMix64 step: advances `state` and returns the mixed output.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }
}

/// A range that a value can be drawn from uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A value uniformly distributed over `range`. Panics on empty ranges.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<G: RngCore + ?Sized> Rng for G {}

/// A uniform f64 in `[0, 1)` with 53 random mantissa bits.
#[inline]
fn unit_f64<G: RngCore + ?Sized>(rng: &mut G) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> f32 {
        assert!(self.start < self.end, "empty range {:?}", self);
        let v = self.start + (unit_f64(rng) as f32) * (self.end - self.start);
        // Float rounding can land exactly on the exclusive upper bound.
        if v < self.end {
            v
        } else {
            self.end.next_down()
        }
    }
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "empty range {:?}", self);
        let v = self.start + unit_f64(rng) * (self.end - self.start);
        if v < self.end {
            v
        } else {
            self.end.next_down()
        }
    }
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty range {:?}", self);
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range {start}..={end}");
                let span = (end as i128 - start as i128 + 1) as u128;
                (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(usize, u64, u32, isize, i64, i32);

/// In-place uniform permutation of slices.
pub trait SliceRandom {
    /// Fisher–Yates shuffle driven by `rng`.
    fn shuffle<G: RngCore>(&mut self, rng: &mut G);
}

impl<T> SliceRandom for [T] {
    fn shuffle<G: RngCore>(&mut self, rng: &mut G) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn stream_is_stable_across_releases() {
        // Pin the first outputs so a refactor can never silently change
        // every seeded experiment in the workspace.
        let mut r = StdRng::seed_from_u64(0);
        assert_eq!(r.next_u64(), 11091344671253066420);
        assert_eq!(r.next_u64(), 13793997310169335082);
        assert_eq!(r.next_u64(), 1900383378846508768);
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v: f32 = r.gen_range(0.25f32..0.75);
            assert!((0.25..0.75).contains(&v));
            let w: f64 = r.gen_range(-2.0f64..-1.0);
            assert!((-2.0..-1.0).contains(&w));
        }
    }

    #[test]
    fn int_ranges_hit_all_values() {
        let mut r = StdRng::seed_from_u64(4);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[r.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let mut seen_inc = [false; 3];
        for _ in 0..100 {
            seen_inc[r.gen_range(1usize..=3) - 1] = true;
        }
        assert!(seen_inc.iter().all(|&s| s));
    }

    #[test]
    fn signed_ranges_cover_negatives() {
        let mut r = StdRng::seed_from_u64(5);
        let mut lo_seen = false;
        for _ in 0..200 {
            let v = r.gen_range(-3i32..3);
            assert!((-3..3).contains(&v));
            lo_seen |= v < 0;
        }
        assert!(lo_seen);
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut r = StdRng::seed_from_u64(6);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.gen_range(0.0f64..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation_and_deterministic() {
        let mut r = StdRng::seed_from_u64(7);
        let mut v: Vec<u32> = (0..32).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..32).collect::<Vec<_>>(),
            "32 elements should not shuffle to identity"
        );

        let mut r2 = StdRng::seed_from_u64(7);
        let mut v2: Vec<u32> = (0..32).collect();
        v2.shuffle(&mut r2);
        assert_eq!(v, v2);
    }
}
