//! Seeded, deterministic fault injection.
//!
//! Production code registers **named fault points** at the places where the
//! real world can go wrong — a LUT file read, a Cholesky factorization, a
//! parallel worker band — by calling [`fires`] / [`fires_at`] (or one of
//! the corruption helpers built on them). A test *arms* a set of points
//! with a seeded [`FaultPlan`]; while armed, each point's [`Schedule`]
//! decides deterministically which hits inject a failure. The degradation
//! paths downstream (typed errors, retries, serial re-runs, checkpoint
//! recovery) can then be exercised byte-reproducibly.
//!
//! Design rules:
//!
//! * **Zero cost disarmed.** Every entry point checks one relaxed atomic
//!   and returns immediately when nothing is armed — no lock, no hash, no
//!   allocation. Production binaries never arm anything.
//! * **Deterministic armed.** A firing decision is a pure function of
//!   `(plan seed, point name, hit counter | caller index)`. Points hit
//!   from worker threads must use [`fires_at`] with a stable index (band
//!   number, key index) so the decision does not depend on scheduling.
//! * **Reproducible logs.** Every firing is recorded; [`log`] returns the
//!   entries sorted, so two runs with the same plan produce byte-identical
//!   logs even when workers interleave.
//! * **One armed scope at a time.** [`arm`] holds a global lock for the
//!   lifetime of the returned guard, serializing fault tests within a
//!   process; everything disarms (and unlocks) on drop, even across a
//!   panic.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// When a fault point injects, relative to its per-point hit stream (for
/// [`fires`]) or the caller-supplied index (for [`fires_at`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Schedule {
    /// Every hit / every index.
    Always,
    /// Exactly hit `n` (0-based) — or, under [`fires_at`], exactly index
    /// `n` each time it is visited.
    Nth(u64),
    /// Every `k`-th hit/index (`hit % k == 0`).
    EveryNth(u64),
    /// A seeded Bernoulli draw per hit/index with probability `p`; the
    /// draw is a pure function of `(seed, point, n)`, so it is identical
    /// across runs and thread schedules.
    Prob(f64),
}

impl Schedule {
    fn decides(&self, seed: u64, point: &str, n: u64) -> bool {
        match *self {
            Schedule::Always => true,
            Schedule::Nth(k) => n == k,
            Schedule::EveryNth(k) => k != 0 && n.is_multiple_of(k),
            Schedule::Prob(p) => {
                let h = mix(seed, fnv1a(point.as_bytes()), n);
                (h as f64 / u64::MAX as f64) < p
            }
        }
    }
}

/// An armed set of fault points with a seed.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    points: Vec<(String, Schedule)>,
}

impl FaultPlan {
    /// An empty plan with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            points: Vec::new(),
        }
    }

    /// Adds a point to the plan (builder style).
    pub fn point(mut self, name: &str, schedule: Schedule) -> Self {
        self.points.push((name.to_string(), schedule));
        self
    }
}

struct Registry {
    seed: u64,
    /// point name → (schedule, hits so far via [`fires`]).
    points: HashMap<String, (Schedule, u64)>,
    /// Fired events: `(point, n)` where `n` is the hit counter or index.
    fired: Vec<(String, u64)>,
}

static ARMED: AtomicBool = AtomicBool::new(false);
static REGISTRY: Mutex<Option<Registry>> = Mutex::new(None);

fn arm_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

fn registry() -> MutexGuard<'static, Option<Registry>> {
    // A panic while holding the registry lock (never expected: the locked
    // sections are straight-line) must not wedge later tests.
    REGISTRY.lock().unwrap_or_else(|e| e.into_inner())
}

/// Guard for an armed fault plan; disarms on drop.
pub struct Armed {
    _serial: MutexGuard<'static, ()>,
}

impl Drop for Armed {
    fn drop(&mut self) {
        ARMED.store(false, Ordering::SeqCst);
        *registry() = None;
    }
}

/// Arms `plan`, serializing against any other armed scope in the process
/// (the previous scope must drop first). All fault points not named in the
/// plan stay inert.
pub fn arm(plan: FaultPlan) -> Armed {
    let serial = arm_lock().lock().unwrap_or_else(|e| e.into_inner());
    *registry() = Some(Registry {
        seed: plan.seed,
        points: plan
            .points
            .into_iter()
            .map(|(name, s)| (name, (s, 0)))
            .collect(),
        fired: Vec::new(),
    });
    ARMED.store(true, Ordering::SeqCst);
    Armed { _serial: serial }
}

/// Holds the arming lock **without arming anything**: every fault point
/// stays inert until the guard drops. Tests that exercise fault-pointed
/// code paths and must observe them disarmed take this guard, so they
/// serialize against concurrently-running tests that arm those points
/// (arming is process-global; without the guard, another test's plan
/// could inject into this test's run).
pub fn quiesce() -> Armed {
    arm(FaultPlan::new(0))
}

/// True when the point injects on this hit. Hits are counted per point in
/// arrival order under a lock — use only from code whose call order is
/// deterministic (single-threaded paths); parallel callers should key the
/// decision with [`fires_at`].
#[inline]
pub fn fires(point: &str) -> bool {
    if !ARMED.load(Ordering::Relaxed) {
        return false;
    }
    fires_slow(point)
}

fn fires_slow(point: &str) -> bool {
    let mut reg = registry();
    let Some(reg) = reg.as_mut() else {
        return false;
    };
    let seed = reg.seed;
    let Some((schedule, hits)) = reg.points.get_mut(point) else {
        return false;
    };
    let n = *hits;
    *hits += 1;
    let fire = schedule.decides(seed, point, n);
    if fire {
        reg.fired.push((point.to_string(), n));
    }
    fire
}

/// True when the point injects at caller-stable `index`. The decision is a
/// pure function of `(plan seed, point, index)` — identical across runs
/// and thread schedules — so this is the form parallel code must use.
#[inline]
pub fn fires_at(point: &str, index: u64) -> bool {
    if !ARMED.load(Ordering::Relaxed) {
        return false;
    }
    fires_at_slow(point, index)
}

fn fires_at_slow(point: &str, index: u64) -> bool {
    let mut reg = registry();
    let Some(reg) = reg.as_mut() else {
        return false;
    };
    let seed = reg.seed;
    let Some((schedule, _)) = reg.points.get(point) else {
        return false;
    };
    let fire = schedule.decides(seed, point, index);
    if fire {
        reg.fired.push((point.to_string(), index));
    }
    fire
}

/// The firing log: one `"point#n"` line per injection, **sorted** (so the
/// log is byte-identical across runs regardless of worker interleaving).
pub fn log() -> Vec<String> {
    let reg = registry();
    let Some(reg) = reg.as_ref() else {
        return Vec::new();
    };
    let mut lines: Vec<String> = reg.fired.iter().map(|(p, n)| format!("{p}#{n}")).collect();
    lines.sort();
    lines
}

// ---------------------------------------------------------------------------
// Corruption helpers: the common injections, built on `fires`.
// ---------------------------------------------------------------------------

/// If the point fires, overwrites `v` with NaN. Returns whether it fired.
#[inline]
pub fn nonfinite_f32(point: &str, v: &mut f32) -> bool {
    if fires(point) {
        *v = f32::NAN;
        true
    } else {
        false
    }
}

/// If the point fires, corrupts `s` deterministically: the hit's seeded
/// hash picks truncation (drop the tail) or byte mutation (flip one ASCII
/// char). Returns whether it fired.
#[inline]
pub fn corrupt_string(point: &str, s: &mut String) -> bool {
    if !fires(point) {
        return false;
    }
    let h = {
        let reg = registry();
        let seed = reg.as_ref().map(|r| r.seed).unwrap_or(0);
        mix(seed, fnv1a(point.as_bytes()), s.len() as u64)
    };
    if s.is_empty() {
        s.push('!');
        return true;
    }
    if h & 1 == 0 {
        // Truncate to a prefix (never the full string).
        let cut = (h as usize / 2) % s.len();
        let cut = s.floor_boundary(cut);
        s.truncate(cut);
    } else {
        // Flip one byte to a character that breaks JSON structure.
        let pos = (h as usize / 2) % s.len();
        let pos = s.floor_boundary(pos);
        let mut out = String::with_capacity(s.len());
        out.push_str(&s[..pos]);
        out.push('\u{7f}');
        let rest = &s[pos..];
        let mut it = rest.chars();
        it.next();
        out.push_str(it.as_str());
        *s = out;
    }
    true
}

/// If the point fires, panics with a recognizable message (for injecting
/// worker-thread deaths). `index` keys the decision, so arm with a
/// schedule over band/worker indices.
#[inline]
pub fn panic_at(point: &str, index: u64) {
    if fires_at(point, index) {
        panic!("injected fault: {point}#{index}");
    }
}

// ---------------------------------------------------------------------------
// Deterministic mixing
// ---------------------------------------------------------------------------

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// splitmix64-style avalanche over the three decision inputs.
fn mix(seed: u64, point_hash: u64, n: u64) -> u64 {
    let mut z = seed
        .wrapping_add(point_hash.rotate_left(17))
        .wrapping_add(n.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

// A stable stand-in for the unstable `str::floor_char_boundary`.
trait FloorCharBoundary {
    fn floor_boundary(&self, i: usize) -> usize;
}

impl FloorCharBoundary for str {
    fn floor_boundary(&self, i: usize) -> usize {
        let mut i = i.min(self.len());
        while i > 0 && !self.is_char_boundary(i) {
            i -= 1;
        }
        i
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_points_never_fire() {
        assert!(!fires("nope"));
        assert!(!fires_at("nope", 3));
        let mut v = 1.0f32;
        assert!(!nonfinite_f32("nope", &mut v));
        assert!(v == 1.0);
    }

    #[test]
    fn unarmed_points_stay_inert_while_armed() {
        let _g = arm(FaultPlan::new(1).point("a", Schedule::Always));
        assert!(fires("a"));
        assert!(!fires("b"));
    }

    #[test]
    fn nth_schedule_fires_exactly_once() {
        let _g = arm(FaultPlan::new(7).point("p", Schedule::Nth(2)));
        let hits: Vec<bool> = (0..5).map(|_| fires("p")).collect();
        assert_eq!(hits, vec![false, false, true, false, false]);
        assert_eq!(log(), vec!["p#2"]);
    }

    #[test]
    fn prob_schedule_is_seed_deterministic() {
        let draw = |seed: u64| -> Vec<bool> {
            let _g = arm(FaultPlan::new(seed).point("p", Schedule::Prob(0.5)));
            (0..64).map(|_| fires("p")).collect()
        };
        assert_eq!(draw(42), draw(42));
        assert_ne!(draw(42), draw(43), "different seeds should differ");
        let fired = draw(42).iter().filter(|&&b| b).count();
        assert!(fired > 8 && fired < 56, "p=0.5 wildly off: {fired}/64");
    }

    #[test]
    fn fires_at_is_schedule_independent_of_visit_order() {
        let _g = arm(FaultPlan::new(3).point("band", Schedule::Nth(1)));
        assert!(!fires_at("band", 0));
        assert!(fires_at("band", 1));
        assert!(!fires_at("band", 2));
        // Re-visiting the same index decides identically.
        assert!(fires_at("band", 1));
        assert_eq!(log(), vec!["band#1", "band#1"]);
    }

    #[test]
    fn log_is_sorted_and_reproducible() {
        let run = || -> Vec<String> {
            let _g = arm(FaultPlan::new(9).point("x", Schedule::Always));
            // Simulate out-of-order arrival from workers.
            for i in [3u64, 0, 2, 1] {
                assert!(fires_at("x", i));
            }
            log()
        };
        let a = run();
        assert_eq!(a, vec!["x#0", "x#1", "x#2", "x#3"]);
        assert_eq!(a, run());
    }

    #[test]
    fn corrupt_string_changes_content_deterministically() {
        let corrupt = || {
            let _g = arm(FaultPlan::new(5).point("c", Schedule::Always));
            let mut s = String::from("{\"a\":[1,2,3],\"b\":\"text\"}");
            assert!(corrupt_string("c", &mut s));
            s
        };
        let a = corrupt();
        assert_ne!(a, "{\"a\":[1,2,3],\"b\":\"text\"}");
        assert_eq!(a, corrupt(), "corruption must be seed-deterministic");
    }

    #[test]
    fn quiesce_keeps_all_points_inert() {
        let _q = quiesce();
        assert!(!fires("anything"));
        assert!(!fires_at("anything", 0));
        assert!(log().is_empty());
    }

    #[test]
    fn drop_disarms() {
        {
            let _g = arm(FaultPlan::new(1).point("a", Schedule::Always));
            assert!(fires("a"));
        }
        assert!(!fires("a"));
    }
}
