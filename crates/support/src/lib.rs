//! # defcon-support
//!
//! In-workspace, zero-dependency replacements for the external crates the
//! DEFCON reproduction used to pull from crates.io. The build must succeed
//! on a machine with an **empty registry cache** (`cargo build --offline`),
//! so everything the workspace needs beyond `std` lives here:
//!
//! * [`rng`] — seedable xoshiro256** RNG with `gen_range`, normal-sampling
//!   support and slice shuffling (replaces `rand`);
//! * [`par`] — scoped-thread `par_chunks_mut` parallel map with
//!   deterministic chunk assignment (replaces `rayon`);
//! * [`json`] — a small JSON value type, writer and parser plus
//!   [`json::ToJson`]/[`json::FromJson`] traits for hand-written impls
//!   (replaces `serde`/`serde_json`);
//! * [`prop`] — a seeded property-testing harness with reproducible
//!   failing-case reports (replaces `proptest`);
//! * [`bench`] — a wall-clock micro-benchmark harness for the
//!   `harness = false` bench binaries (replaces `criterion`);
//! * [`lanebuf`] — a fixed-capacity, stack-allocated buffer for warp-level
//!   events (the zero-allocation trace hot path, replaces ad-hoc `Vec`s);
//! * [`testalloc`] — a per-thread counting global allocator for
//!   allocation-budget tests.
//!
//! Robustness layer (shared by every crate in the stack):
//!
//! * [`error`] — the workspace-wide typed error, [`error::DefconError`];
//! * [`fault`] — seeded, deterministic fault injection behind named fault
//!   points (zero cost disarmed, byte-reproducible armed);
//! * [`env`] — the single parser for the `DEFCON_*` environment switches,
//!   rejecting malformed values with a clear error;
//! * [`ckpt`] — atomic (write-temp + rename), CRC-framed checkpoint IO
//!   with corrupt-file recovery;
//! * [`obs`] — deterministic observability: hierarchical spans on a
//!   logical clock, a typed counter/gauge registry, and Chrome-trace /
//!   metrics-snapshot exporters (zero cost disarmed, byte-reproducible
//!   armed);
//! * [`retry`] — deterministic retry scheduling: capped exponential
//!   backoff with seeded jitter, charged in virtual cycles instead of
//!   wall-clock sleeps;
//! * [`breaker`] — a closed/open/half-open circuit breaker whose cooldown
//!   counts consultations (virtual time), built on a pure, total
//!   transition function with an exhaustively-enumerable edge set.
//!
//! Design rule: these are *replacements for the slice of API this
//! workspace uses*, not general-purpose rewrites. Determinism outranks
//! statistical or ergonomic perfection everywhere — the simulator's claims
//! are only checkable if two runs with the same seed produce byte-identical
//! reports.

pub mod bench;
pub mod breaker;
pub mod ckpt;
pub mod env;
pub mod error;
pub mod fault;
pub mod json;
pub mod lanebuf;
pub mod obs;
pub mod par;
pub mod prop;
pub mod retry;
pub mod rng;
pub mod testalloc;
