//! Atomic, integrity-checked checkpoint IO.
//!
//! Long-running work (training, interval search) persists progress through
//! this module so a crash — or an injected fault — never costs the whole
//! run. The discipline:
//!
//! * **Write-to-temp + rename.** The payload goes to `<path>.tmp` first and
//!   is renamed into place, so the final path only ever holds a complete
//!   write (rename is atomic on POSIX filesystems).
//! * **CRC framing.** The stored bytes are `crc32(payload)` in fixed-width
//!   hex, a newline, then the payload. [`load`] recomputes the CRC; any
//!   truncation or bit-rot is a typed [`DefconError::Corrupt`], never a
//!   garbage deserialize.
//! * **Recovery is explicit.** [`load_or_discard`] maps *missing* and
//!   *corrupt* both to `None` — the resume path falls back to a fresh start
//!   (deterministic seeds make that reproduce the uninterrupted run; it
//!   just costs time), while genuine IO errors still surface.
//!
//! Fault points: `ckpt.write` corrupts the framed bytes before they reach
//! the filesystem (modelling a torn write); `ckpt.load` corrupts them
//! after reading (modelling media rot). Both are detected by the CRC.

use crate::error::DefconError;
use crate::fault;
use std::path::Path;

/// CRC-32 (IEEE 802.3, reflected, init/xorout `0xFFFF_FFFF`) — the same
/// polynomial as zip/png, computed bitwise (checkpoints are small and
/// infrequent; no table needed).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Frames `payload` with its CRC and writes it atomically to `path`
/// (temp file + rename).
pub fn save(path: &Path, payload: &str) -> Result<(), DefconError> {
    let mut framed = format!("{:08x}\n{payload}", crc32(payload.as_bytes()));
    // Fault point: a torn/corrupted write that still reaches the final
    // path. The CRC catches it on the next load.
    fault::corrupt_string("ckpt.write", &mut framed);
    let tmp = path.with_extension("ckpt-tmp");
    let display = path.display().to_string();
    std::fs::write(&tmp, framed.as_bytes()).map_err(|e| DefconError::io(&display, &e))?;
    std::fs::rename(&tmp, path).map_err(|e| DefconError::io(&display, &e))?;
    Ok(())
}

/// Reads and verifies a checkpoint written by [`save`]. Returns the
/// payload; a missing file is `Ok(None)`; a CRC mismatch or malformed
/// frame is [`DefconError::Corrupt`].
pub fn load(path: &Path) -> Result<Option<String>, DefconError> {
    let display = path.display().to_string();
    let mut framed = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(DefconError::io(&display, &e)),
    };
    fault::corrupt_string("ckpt.load", &mut framed);
    let corrupt = |detail: String| DefconError::Corrupt {
        what: format!("checkpoint {display}"),
        detail,
    };
    let Some((head, payload)) = framed.split_once('\n') else {
        return Err(corrupt("missing CRC header line".to_string()));
    };
    let Ok(want) = u32::from_str_radix(head.trim(), 16) else {
        return Err(corrupt(format!("bad CRC header {head:?}")));
    };
    let got = crc32(payload.as_bytes());
    if got != want {
        return Err(corrupt(format!(
            "crc mismatch: stored {want:08x}, computed {got:08x}"
        )));
    }
    Ok(Some(payload.to_string()))
}

/// [`load`], but a corrupt checkpoint is treated like a missing one
/// (`None`) — the graceful-degradation resume path. Real IO errors
/// (permissions, hardware) still propagate.
pub fn load_or_discard(path: &Path) -> Result<Option<String>, DefconError> {
    match load(path) {
        Ok(v) => Ok(v),
        Err(DefconError::Corrupt { .. }) => Ok(None),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultPlan, Schedule};

    fn tmp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("defcon-ckpt-test-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn crc32_reference_values() {
        // Published check value for the ASCII string "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn round_trip() {
        let _quiet = crate::fault::quiesce();
        let p = tmp_path("round");
        save(&p, "{\"step\":7}").unwrap();
        assert_eq!(load(&p).unwrap().as_deref(), Some("{\"step\":7}"));
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn missing_file_is_none() {
        let _quiet = crate::fault::quiesce();
        assert_eq!(load(&tmp_path("missing-nope")).unwrap(), None);
    }

    #[test]
    fn truncation_is_detected_and_discardable() {
        let _quiet = crate::fault::quiesce();
        let p = tmp_path("trunc");
        save(&p, "a payload that will be cut short").unwrap();
        let full = std::fs::read_to_string(&p).unwrap();
        std::fs::write(&p, &full[..full.len() / 2]).unwrap();
        assert!(matches!(load(&p), Err(DefconError::Corrupt { .. })));
        assert_eq!(load_or_discard(&p).unwrap(), None);
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn injected_write_fault_is_caught_on_load() {
        let p = tmp_path("fault-write");
        {
            let _g = crate::fault::arm(FaultPlan::new(11).point("ckpt.write", Schedule::Always));
            save(&p, "precious state").unwrap();
        }
        // The corrupted frame must not verify (overwhelmingly likely: the
        // corruption changes payload bytes or the CRC line).
        assert!(matches!(load(&p), Err(DefconError::Corrupt { .. })));
        assert_eq!(load_or_discard(&p).unwrap(), None);
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn no_tmp_file_left_behind() {
        let _quiet = crate::fault::quiesce();
        let p = tmp_path("clean");
        save(&p, "x").unwrap();
        assert!(!p.with_extension("ckpt-tmp").exists());
        std::fs::remove_file(&p).unwrap();
    }
}
