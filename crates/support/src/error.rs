//! The workspace-wide typed error.
//!
//! Every fallible public API in the DEFCON stack — LUT loading, JSON-backed
//! configs, checkpoint IO, launch validation, the autotuner's linear
//! algebra — reports failure through [`DefconError`] instead of panicking,
//! so callers can degrade gracefully (retry, fall back, resume) rather than
//! abort the process. Variants carry enough structure for a caller to
//! *dispatch* on the failure class; the human-readable rendering goes
//! through `Display`.

use crate::json::JsonError;
use std::fmt;

/// A typed error spanning all DEFCON crates.
#[derive(Clone, Debug, PartialEq)]
pub enum DefconError {
    /// A JSON document failed to parse or convert; `context` names the
    /// document (usually a file path).
    Json {
        /// What was being parsed.
        context: String,
        /// The positioned parse/convert error.
        source: JsonError,
    },
    /// A filesystem operation failed.
    Io {
        /// The path involved.
        path: String,
        /// The OS error rendering (`std::io::Error` is not `Clone`).
        detail: String,
    },
    /// Stored bytes failed an integrity check (CRC mismatch, truncation).
    Corrupt {
        /// What was being read.
        what: String,
        /// Why it was rejected.
        detail: String,
    },
    /// A numeric quantity that must be finite was NaN or ±∞.
    NonFinite {
        /// The quantity (e.g. "training loss", "alpha gradient").
        what: String,
        /// The training/search step at which it appeared.
        step: usize,
    },
    /// A kernel matrix was not positive definite (Cholesky pivot failure).
    NotPositiveDefinite {
        /// Failing pivot row.
        pivot: usize,
        /// The offending diagonal value.
        value: f64,
    },
    /// A hardware/device constraint was violated (texture layer limit,
    /// cache geometry, launch shape).
    Constraint {
        /// The constraint class (e.g. "texture", "cache-config").
        what: String,
        /// The specific violation.
        detail: String,
    },
    /// An environment variable held a value that does not parse.
    Env {
        /// Variable name.
        var: String,
        /// The value found.
        value: String,
        /// What would have been accepted.
        expected: &'static str,
    },
    /// A required lookup key was absent.
    MissingKey {
        /// Description of the key and the table it was missing from.
        what: String,
    },
    /// Retries of a degradation path were exhausted without recovery.
    RetriesExhausted {
        /// The operation that kept failing.
        what: String,
        /// How many attempts were made.
        attempts: usize,
    },
    /// A bounded admission queue refused new work (serving-mode load
    /// shedding). Callers are expected to drain, retry, or degrade.
    Overloaded {
        /// The overloaded resource (e.g. "serve queue").
        what: String,
        /// Queue depth observed at rejection time.
        queue_depth: usize,
        /// The queue's configured capacity.
        capacity: usize,
    },
    /// A request's virtual-time deadline budget was exhausted (serving-mode
    /// SLO enforcement). Deliberately carries only the *budget*, not the
    /// cycles spent when the budget tripped: a cancelled simulation stops
    /// at a launch boundary while a cache hit evaluates the full report
    /// set, so spent-at-detection differs between byte-identical outcomes
    /// and must not leak into response content.
    DeadlineExceeded {
        /// What ran out of budget (e.g. "serve request").
        what: String,
        /// The virtual-cycle budget that was exhausted.
        budget_cycles: u64,
    },
}

impl fmt::Display for DefconError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DefconError::Json { context, source } => {
                write!(f, "invalid JSON in {context}: {source}")
            }
            DefconError::Io { path, detail } => write!(f, "io error on {path}: {detail}"),
            DefconError::Corrupt { what, detail } => write!(f, "corrupt {what}: {detail}"),
            DefconError::NonFinite { what, step } => {
                write!(f, "non-finite {what} at step {step}")
            }
            DefconError::NotPositiveDefinite { pivot, value } => write!(
                f,
                "matrix not positive definite (pivot {pivot}, value {value:e})"
            ),
            DefconError::Constraint { what, detail } => {
                write!(f, "{what} constraint violated: {detail}")
            }
            DefconError::Env {
                var,
                value,
                expected,
            } => write!(f, "env var {var}={value:?} is invalid: expected {expected}"),
            DefconError::MissingKey { what } => write!(f, "missing key: {what}"),
            DefconError::RetriesExhausted { what, attempts } => {
                write!(f, "{what} failed after {attempts} attempts")
            }
            DefconError::Overloaded {
                what,
                queue_depth,
                capacity,
            } => write!(f, "{what} overloaded ({queue_depth}/{capacity} queued)"),
            DefconError::DeadlineExceeded {
                what,
                budget_cycles,
            } => {
                write!(
                    f,
                    "{what} deadline exceeded (budget {budget_cycles} cycles)"
                )
            }
        }
    }
}

impl std::error::Error for DefconError {}

impl DefconError {
    /// Wraps a [`JsonError`] with the document it came from.
    pub fn json(context: impl Into<String>, source: JsonError) -> Self {
        DefconError::Json {
            context: context.into(),
            source,
        }
    }

    /// Wraps an [`std::io::Error`] with the path it hit.
    pub fn io(path: impl Into<String>, e: &std::io::Error) -> Self {
        DefconError::Io {
            path: path.into(),
            detail: e.to_string(),
        }
    }

    /// True for failure classes a caller may sensibly retry or fall back
    /// from (constraint violations, non-finite values, corrupt inputs,
    /// admission rejections); false for programming/environment errors
    /// that will not heal. `DeadlineExceeded` is deliberately **not**
    /// degradable: a deadline must propagate straight out of the fallback
    /// ladder (trying a slower rung can only spend more of a budget that
    /// is already gone).
    pub fn is_degradable(&self) -> bool {
        matches!(
            self,
            DefconError::Constraint { .. }
                | DefconError::NonFinite { .. }
                | DefconError::NotPositiveDefinite { .. }
                | DefconError::Corrupt { .. }
                | DefconError::Overloaded { .. }
        )
    }

    /// True for failure classes where *re-attempting the same operation
    /// later* can plausibly succeed: transient resource pressure
    /// (`Overloaded`), filesystem flakes (`Io`), and integrity failures a
    /// re-read or re-derivation can heal (`Corrupt`). Everything else is
    /// deterministic on its inputs — retrying re-derives the same failure
    /// — or, for `DeadlineExceeded`, the budget is already spent and
    /// retries can only burn more of it.
    ///
    /// The match is exhaustive on purpose (no `_` arm): a new variant must
    /// pick a retry class here before the crate compiles, so nothing can
    /// silently default to the wrong class.
    pub fn retryable(&self) -> bool {
        match self {
            DefconError::Io { .. }
            | DefconError::Corrupt { .. }
            | DefconError::Overloaded { .. } => true,
            DefconError::Json { .. }
            | DefconError::NonFinite { .. }
            | DefconError::NotPositiveDefinite { .. }
            | DefconError::Constraint { .. }
            | DefconError::Env { .. }
            | DefconError::MissingKey { .. }
            | DefconError::RetriesExhausted { .. }
            | DefconError::DeadlineExceeded { .. } => false,
        }
    }
}

impl From<JsonError> for DefconError {
    fn from(source: JsonError) -> Self {
        DefconError::Json {
            context: "document".to_string(),
            source,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_renders_every_variant() {
        let cases: Vec<DefconError> = vec![
            DefconError::json("lut.json", JsonError::msg("bad")),
            DefconError::Io {
                path: "/x".into(),
                detail: "denied".into(),
            },
            DefconError::Corrupt {
                what: "checkpoint".into(),
                detail: "crc mismatch".into(),
            },
            DefconError::NonFinite {
                what: "loss".into(),
                step: 3,
            },
            DefconError::NotPositiveDefinite {
                pivot: 2,
                value: -1e-9,
            },
            DefconError::Constraint {
                what: "texture".into(),
                detail: "too many layers".into(),
            },
            DefconError::Env {
                var: "DEFCON_THREADS".into(),
                value: "lots".into(),
                expected: "a positive integer",
            },
            DefconError::MissingKey {
                what: "LUT key".into(),
            },
            DefconError::RetriesExhausted {
                what: "training step".into(),
                attempts: 4,
            },
            DefconError::Overloaded {
                what: "serve queue".into(),
                queue_depth: 64,
                capacity: 64,
            },
            DefconError::DeadlineExceeded {
                what: "serve request".into(),
                budget_cycles: 250_000,
            },
        ];
        for e in cases {
            assert!(!e.to_string().is_empty());
        }
    }

    /// One representative of *every* variant, so classification tests
    /// below cannot silently skip a variant. Kept in the declaration
    /// order of the enum.
    fn one_of_each() -> Vec<DefconError> {
        vec![
            DefconError::json("lut.json", JsonError::msg("bad")),
            DefconError::Io {
                path: "/x".into(),
                detail: "denied".into(),
            },
            DefconError::Corrupt {
                what: "checkpoint".into(),
                detail: "crc mismatch".into(),
            },
            DefconError::NonFinite {
                what: "loss".into(),
                step: 3,
            },
            DefconError::NotPositiveDefinite {
                pivot: 2,
                value: -1e-9,
            },
            DefconError::Constraint {
                what: "texture".into(),
                detail: "too many layers".into(),
            },
            DefconError::Env {
                var: "DEFCON_THREADS".into(),
                value: "lots".into(),
                expected: "a positive integer",
            },
            DefconError::MissingKey {
                what: "LUT key".into(),
            },
            DefconError::RetriesExhausted {
                what: "training step".into(),
                attempts: 4,
            },
            DefconError::Overloaded {
                what: "serve queue".into(),
                queue_depth: 64,
                capacity: 64,
            },
            DefconError::DeadlineExceeded {
                what: "serve request".into(),
                budget_cycles: 1,
            },
        ]
    }

    /// Exhaustive classification table: every variant's retry class is
    /// pinned explicitly. The helper match below has no wildcard arm, so
    /// adding a variant without extending this test is a compile error —
    /// the class can never default silently.
    #[test]
    fn retryable_classification_is_exhaustive_and_pinned() {
        fn expected(e: &DefconError) -> bool {
            match e {
                // Transient: resource pressure drains, IO flakes pass,
                // corruption heals on re-derivation.
                DefconError::Io { .. }
                | DefconError::Corrupt { .. }
                | DefconError::Overloaded { .. } => true,
                // Deterministic on inputs — a retry re-derives the failure.
                DefconError::Json { .. }
                | DefconError::NonFinite { .. }
                | DefconError::NotPositiveDefinite { .. }
                | DefconError::Constraint { .. }
                | DefconError::Env { .. }
                | DefconError::MissingKey { .. }
                | DefconError::RetriesExhausted { .. } => false,
                // The budget is spent; retrying cannot un-spend it.
                DefconError::DeadlineExceeded { .. } => false,
            }
        }
        let cases = one_of_each();
        assert_eq!(cases.len(), 11, "keep one_of_each in sync with the enum");
        for e in &cases {
            assert_eq!(e.retryable(), expected(e), "retry class of {e}");
        }
        // At least one of each class, so the table cannot degenerate.
        assert!(cases.iter().any(DefconError::retryable));
        assert!(!cases.iter().all(DefconError::retryable));
    }

    #[test]
    fn deadline_exceeded_is_terminal_everywhere() {
        let e = DefconError::DeadlineExceeded {
            what: "serve request".into(),
            budget_cycles: 9000,
        };
        // Non-retryable: the budget is gone.
        assert!(!e.retryable());
        // Non-degradable: the fallback ladder must propagate it instead of
        // spending more budget on a slower rung.
        assert!(!e.is_degradable());
        let msg = e.to_string();
        assert!(msg.contains("deadline exceeded"), "{msg}");
        assert!(msg.contains("9000"), "{msg}");
    }

    #[test]
    fn degradable_classification() {
        assert!(DefconError::NonFinite {
            what: "loss".into(),
            step: 0
        }
        .is_degradable());
        assert!(!DefconError::Env {
            var: "X".into(),
            value: "y".into(),
            expected: "z"
        }
        .is_degradable());
        assert!(DefconError::Overloaded {
            what: "serve queue".into(),
            queue_depth: 8,
            capacity: 8
        }
        .is_degradable());
    }
}
