//! Gumbel-Softmax sampling utilities (paper Eq. 5).
//!
//! The paper writes `ε ~ U(0,1)` for the exploration perturbation; the
//! canonical categorical-reparameterization form (Jang et al., which the
//! paper cites) draws Gumbel noise `g = −ln(−ln u)`, `u ~ U(0,1)`. We follow
//! the canonical form and expose the plain-uniform variant for completeness.

use defcon_support::rng::Rng;

/// One Gumbel(0, 1) sample.
pub fn sample_gumbel<R: Rng>(rng: &mut R) -> f32 {
    let u: f32 = rng.gen_range(f32::EPSILON..1.0);
    -(-u.ln()).ln()
}

/// A vector of `n` Gumbel samples.
pub fn gumbel_noise<R: Rng>(rng: &mut R, n: usize) -> Vec<f32> {
    (0..n).map(|_| sample_gumbel(rng)).collect()
}

/// A vector of `n` U(0,1) samples (the paper's literal `ε ~ U(0,1)`).
pub fn uniform_noise<R: Rng>(rng: &mut R, n: usize) -> Vec<f32> {
    (0..n).map(|_| rng.gen_range(0.0..1.0)).collect()
}

/// Exponential temperature annealing `τ(e) = τ₀ · r^e`, clamped below at
/// `τ_min`. High early temperatures explore; low late temperatures commit.
#[derive(Clone, Copy, Debug)]
pub struct TemperatureSchedule {
    /// Initial temperature.
    pub tau0: f32,
    /// Per-epoch decay ratio (`< 1`).
    pub decay: f32,
    /// Floor.
    pub tau_min: f32,
}

impl TemperatureSchedule {
    /// A schedule commonly used for differentiable NAS: 5.0 → 0.5.
    pub fn standard() -> Self {
        TemperatureSchedule {
            tau0: 5.0,
            decay: 0.9,
            tau_min: 0.5,
        }
    }

    /// Temperature at `epoch`.
    pub fn at(&self, epoch: usize) -> f32 {
        (self.tau0 * self.decay.powi(epoch as i32)).max(self.tau_min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use defcon_support::rng::{SeedableRng, StdRng};

    #[test]
    fn gumbel_mean_near_euler_gamma() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 50_000;
        let mean: f32 = (0..n).map(|_| sample_gumbel(&mut rng)).sum::<f32>() / n as f32;
        // E[Gumbel(0,1)] = γ ≈ 0.5772
        assert!((mean - 0.5772).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn temperature_monotone_decreasing_to_floor() {
        let s = TemperatureSchedule::standard();
        assert!(s.at(0) > s.at(5));
        assert!(s.at(1000) >= s.tau_min);
        assert_eq!(s.at(1000), s.tau_min);
    }

    #[test]
    fn uniform_noise_in_range() {
        let mut rng = StdRng::seed_from_u64(2);
        for v in uniform_noise(&mut rng, 100) {
            assert!((0.0..1.0).contains(&v));
        }
    }
}
