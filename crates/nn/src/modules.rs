//! Reusable network modules.
//!
//! Modules own [`ParamId`]s into a shared [`ParamStore`] plus any
//! non-learnable state (batch-norm running statistics). They are built once
//! and then applied to a fresh [`Tape`] every step, which makes weight
//! sharing (e.g. a YOLACT prediction head evaluated on several FPN levels)
//! work out of the box.

use crate::graph::{ParamId, ParamStore, Tape, Var};
use crate::gumbel;
use crate::ops;
use defcon_support::rng::{SeedableRng, StdRng};
use defcon_tensor::conv::Conv2dParams;
use defcon_tensor::init;
use defcon_tensor::sample::{DeformConv2dParams, OffsetTransform};
use defcon_tensor::Tensor;

/// Anything that maps one activation Var to another on a tape.
pub trait Module {
    /// Records the module's computation on the tape.
    fn forward(&mut self, t: &mut Tape, s: &ParamStore, x: Var) -> Var;
}

/// Deterministic per-module seed derivation so that adding a module never
/// perturbs the initialization of its siblings.
fn derive_seed(base: u64, salt: &str) -> u64 {
    let mut h = 1469598103934665603u64; // FNV-1a
    for b in salt.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(1099511628211);
    }
    h ^ base
}

// ---------------------------------------------------------------------------
// Convolution modules
// ---------------------------------------------------------------------------

/// Plain 2-D convolution with optional bias.
pub struct Conv2d {
    /// Filter parameter `[C_out, C_in, k, k]`.
    pub weight: ParamId,
    /// Optional bias `[C_out]`.
    pub bias: Option<ParamId>,
    /// Window hyper-parameters.
    pub params: Conv2dParams,
}

impl Conv2d {
    /// Kaiming-initialized convolution.
    pub fn new(
        s: &mut ParamStore,
        name: &str,
        c_in: usize,
        c_out: usize,
        p: Conv2dParams,
        bias: bool,
        seed: u64,
    ) -> Self {
        let w = init::kaiming_conv(&[c_out, c_in, p.kernel, p.kernel], derive_seed(seed, name));
        let weight = s.add(&format!("{name}.weight"), w, true);
        let bias = bias.then(|| s.add(&format!("{name}.bias"), Tensor::zeros(&[c_out]), false));
        Conv2d {
            weight,
            bias,
            params: p,
        }
    }

    /// Zero-initialized convolution — used for offset predictors so training
    /// starts from the rigid sampling grid.
    pub fn new_zeroed(
        s: &mut ParamStore,
        name: &str,
        c_in: usize,
        c_out: usize,
        p: Conv2dParams,
        bias: bool,
    ) -> Self {
        let weight = s.add(
            &format!("{name}.weight"),
            Tensor::zeros(&[c_out, c_in, p.kernel, p.kernel]),
            false,
        );
        let bias = bias.then(|| s.add(&format!("{name}.bias"), Tensor::zeros(&[c_out]), false));
        Conv2d {
            weight,
            bias,
            params: p,
        }
    }
}

impl Module for Conv2d {
    fn forward(&mut self, t: &mut Tape, s: &ParamStore, x: Var) -> Var {
        let w = t.param(s, self.weight);
        let b = self.bias.map(|bb| t.param(s, bb));
        if self.params.kernel == 1 && self.params.stride == 1 && self.params.pad == 0 {
            ops::pointwise_conv2d_op(t, x, w, b)
        } else {
            ops::conv2d_op(t, x, w, b, self.params)
        }
    }
}

/// Depthwise convolution module (`[C, 1, k, k]` weights).
pub struct DwConv2d {
    /// Filter parameter.
    pub weight: ParamId,
    /// Optional bias.
    pub bias: Option<ParamId>,
    /// Window hyper-parameters.
    pub params: Conv2dParams,
}

impl DwConv2d {
    /// Kaiming-initialized depthwise convolution.
    pub fn new(
        s: &mut ParamStore,
        name: &str,
        c: usize,
        p: Conv2dParams,
        bias: bool,
        seed: u64,
    ) -> Self {
        let w = init::kaiming_conv(&[c, 1, p.kernel, p.kernel], derive_seed(seed, name));
        let weight = s.add(&format!("{name}.weight"), w, true);
        let bias = bias.then(|| s.add(&format!("{name}.bias"), Tensor::zeros(&[c]), false));
        DwConv2d {
            weight,
            bias,
            params: p,
        }
    }
}

impl Module for DwConv2d {
    fn forward(&mut self, t: &mut Tape, s: &ParamStore, x: Var) -> Var {
        let w = t.param(s, self.weight);
        let b = self.bias.map(|bb| t.param(s, bb));
        ops::depthwise_conv2d_op(t, x, w, b, self.params)
    }
}

/// Batch normalization with running statistics and a train/eval switch.
pub struct BatchNorm2d {
    /// Scale parameter γ.
    pub gamma: ParamId,
    /// Shift parameter β.
    pub beta: ParamId,
    /// Running mean (inference statistics).
    pub running_mean: Vec<f32>,
    /// Running variance.
    pub running_var: Vec<f32>,
    /// EMA momentum.
    pub momentum: f32,
    /// Variance epsilon.
    pub eps: f32,
    /// Training (batch stats) vs. inference (running stats) mode.
    pub training: bool,
}

impl BatchNorm2d {
    /// γ=1, β=0, running stats (0, 1).
    pub fn new(s: &mut ParamStore, name: &str, c: usize) -> Self {
        BatchNorm2d {
            gamma: s.add(&format!("{name}.gamma"), Tensor::ones(&[c]), false),
            beta: s.add(&format!("{name}.beta"), Tensor::zeros(&[c]), false),
            running_mean: vec![0.0; c],
            running_var: vec![1.0; c],
            momentum: 0.1,
            eps: 1e-5,
            training: true,
        }
    }
}

impl Module for BatchNorm2d {
    fn forward(&mut self, t: &mut Tape, s: &ParamStore, x: Var) -> Var {
        let g = t.param(s, self.gamma);
        let b = t.param(s, self.beta);
        if self.training {
            ops::batch_norm2d_op(
                t,
                x,
                g,
                b,
                &mut self.running_mean,
                &mut self.running_var,
                self.momentum,
                self.eps,
            )
        } else {
            // Inference: affine transform with frozen statistics (still
            // differentiable w.r.t. γ/β, though that rarely matters here).
            let xv = t.value(x).clone();
            let y = defcon_tensor::norm::batch_norm2d_infer(
                &xv,
                s.value(self.gamma),
                s.value(self.beta),
                &self.running_mean,
                &self.running_var,
                self.eps,
            );
            let rm = self.running_mean.clone();
            let rv = self.running_var.clone();
            let eps = self.eps;
            let gv = s.value(self.gamma).clone();
            t.push(
                y,
                vec![x, g, b],
                Some(Box::new(move |gy| {
                    let (n, c, h, w) = gy.shape().nchw();
                    let mut gx = Tensor::zeros(gy.dims());
                    let mut gg = Tensor::zeros(&[c]);
                    let mut gb = Tensor::zeros(&[c]);
                    for ni in 0..n {
                        for ci in 0..c {
                            let is = 1.0 / (rv[ci] + eps).sqrt();
                            for hh in 0..h {
                                for ww in 0..w {
                                    let gyv = gy.at4(ni, ci, hh, ww);
                                    *gx.at4_mut(ni, ci, hh, ww) = gyv * gv.data()[ci] * is;
                                    gg.data_mut()[ci] +=
                                        gyv * (xv.at4(ni, ci, hh, ww) - rm[ci]) * is;
                                    gb.data_mut()[ci] += gyv;
                                }
                            }
                        }
                    }
                    vec![gx, gg, gb]
                })),
            )
        }
    }
}

/// Conv → BatchNorm → ReLU, the workhorse block of every backbone.
pub struct ConvBnRelu {
    /// The convolution.
    pub conv: Conv2d,
    /// The normalization.
    pub bn: BatchNorm2d,
    /// Skip the ReLU when this block feeds a residual add.
    pub relu: bool,
}

impl ConvBnRelu {
    /// Standard block constructor.
    pub fn new(
        s: &mut ParamStore,
        name: &str,
        c_in: usize,
        c_out: usize,
        p: Conv2dParams,
        relu: bool,
        seed: u64,
    ) -> Self {
        ConvBnRelu {
            conv: Conv2d::new(s, &format!("{name}.conv"), c_in, c_out, p, false, seed),
            bn: BatchNorm2d::new(s, &format!("{name}.bn"), c_out),
            relu,
        }
    }

    /// Puts the batch norm into training or inference mode.
    pub fn set_training(&mut self, training: bool) {
        self.bn.training = training;
    }
}

impl Module for ConvBnRelu {
    fn forward(&mut self, t: &mut Tape, s: &ParamStore, x: Var) -> Var {
        let y = self.conv.forward(t, s, x);
        let y = self.bn.forward(t, s, y);
        if self.relu {
            ops::relu(t, y)
        } else {
            y
        }
    }
}

// ---------------------------------------------------------------------------
// Deformable convolution and its offset predictors
// ---------------------------------------------------------------------------

/// How a deformable layer predicts its offsets.
pub enum OffsetPredictor {
    /// The original DCN design: one regular `k×k` convolution producing
    /// `2·G·k²` channels (paper Fig. 1).
    Standard(Conv2d),
    /// DEFCON's lightweight predictor: depthwise 3×3 (+BN+ReLU) followed by
    /// a 1×1 projection to `2·G·k²` channels, with **no** activation after
    /// the 1×1 because it emits signed fractional offsets (paper §III-A-b).
    Lightweight {
        /// Depthwise stage.
        dw: DwConv2d,
        /// Normalization after the depthwise stage.
        bn: BatchNorm2d,
        /// 1×1 projection.
        pw: Conv2d,
    },
}

impl OffsetPredictor {
    /// Multiply-accumulate count per output position for this predictor —
    /// the quantity Eq. (9) compares.
    pub fn macs_per_position(&self, c_in: usize, k: usize, deform_groups: usize) -> usize {
        let off_ch = 2 * deform_groups * k * k;
        match self {
            OffsetPredictor::Standard(c) => c_in * c.params.kernel * c.params.kernel * off_ch,
            OffsetPredictor::Lightweight { dw, .. } => {
                c_in * dw.params.kernel * dw.params.kernel + c_in * off_ch
            }
        }
    }

    fn set_training(&mut self, training: bool) {
        if let OffsetPredictor::Lightweight { bn, .. } = self {
            bn.training = training;
        }
    }
}

/// A trainable deformable convolution layer (paper Fig. 4a/4b):
/// an offset predictor followed by the deformable convolution proper,
/// with optional offset bounding/rounding applied between the two.
pub struct DeformConv2d {
    /// Offset-predicting branch.
    pub offset_pred: OffsetPredictor,
    /// Main filter `[C_out, C_in, k, k]`.
    pub weight: ParamId,
    /// Optional bias.
    pub bias: Option<ParamId>,
    /// Deformable-conv hyper-parameters.
    pub params: DeformConv2dParams,
    /// Offset post-processing (identity / bounded / rounded).
    pub transform: OffsetTransform,
    /// The offsets Var produced by the most recent forward, for offset
    /// regularization (Table V) or inspection.
    pub last_offsets: Option<Var>,
}

impl DeformConv2d {
    /// Builds a DCN layer with the *standard* (full conv) offset predictor.
    pub fn new_standard(
        s: &mut ParamStore,
        name: &str,
        c_in: usize,
        c_out: usize,
        p: DeformConv2dParams,
        seed: u64,
    ) -> Self {
        // Offset conv mirrors the window of the main conv so its output is
        // [N, 2Gk², outH, outW].
        let off = Conv2d::new_zeroed(
            s,
            &format!("{name}.offset"),
            c_in,
            p.offset_channels(),
            p.conv,
            true,
        );
        let w = init::kaiming_conv(
            &[c_out, c_in, p.conv.kernel, p.conv.kernel],
            derive_seed(seed, name),
        );
        DeformConv2d {
            offset_pred: OffsetPredictor::Standard(off),
            weight: s.add(&format!("{name}.weight"), w, true),
            bias: None,
            params: p,
            transform: OffsetTransform::Identity,
            last_offsets: None,
        }
    }

    /// Builds a DCN layer with the *lightweight* offset predictor
    /// (depthwise 3×3 + BN + ReLU + pointwise 1×1).
    pub fn new_lightweight(
        s: &mut ParamStore,
        name: &str,
        c_in: usize,
        c_out: usize,
        p: DeformConv2dParams,
        seed: u64,
    ) -> Self {
        // The depthwise stage carries the window (incl. stride) so the
        // pointwise output matches [outH, outW].
        let dw = DwConv2d::new(
            s,
            &format!("{name}.offset_dw"),
            c_in,
            Conv2dParams {
                kernel: 3,
                stride: p.conv.stride,
                pad: 1,
                dilation: 1,
            },
            false,
            seed,
        );
        let bn = BatchNorm2d::new(s, &format!("{name}.offset_bn"), c_in);
        let pw = Conv2d::new_zeroed(
            s,
            &format!("{name}.offset_pw"),
            c_in,
            p.offset_channels(),
            Conv2dParams {
                kernel: 1,
                stride: 1,
                pad: 0,
                dilation: 1,
            },
            true,
        );
        let w = init::kaiming_conv(
            &[c_out, c_in, p.conv.kernel, p.conv.kernel],
            derive_seed(seed, name),
        );
        DeformConv2d {
            offset_pred: OffsetPredictor::Lightweight { dw, bn, pw },
            weight: s.add(&format!("{name}.weight"), w, true),
            bias: None,
            params: p,
            transform: OffsetTransform::Identity,
            last_offsets: None,
        }
    }

    /// Train/eval switch (affects the lightweight predictor's BN).
    pub fn set_training(&mut self, training: bool) {
        self.offset_pred.set_training(training);
    }
}

impl Module for DeformConv2d {
    fn forward(&mut self, t: &mut Tape, s: &ParamStore, x: Var) -> Var {
        let offsets = match &mut self.offset_pred {
            OffsetPredictor::Standard(conv) => conv.forward(t, s, x),
            OffsetPredictor::Lightweight { dw, bn, pw } => {
                let y = dw.forward(t, s, x);
                let y = bn.forward(t, s, y);
                let y = ops::relu(t, y);
                pw.forward(t, s, y)
            }
        };
        self.last_offsets = Some(offsets);
        let w = t.param(s, self.weight);
        let b = self.bias.map(|bb| t.param(s, bb));
        ops::deform_conv2d_op(t, x, offsets, w, b, self.params, self.transform)
    }
}

// ---------------------------------------------------------------------------
// Dual-path layer for the interval search
// ---------------------------------------------------------------------------

/// Which operator a searched layer resolved to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LayerChoice {
    /// Regular 2-D convolution (`α⁰` wins).
    Regular,
    /// Deformable convolution (`α¹` wins).
    Deformable,
}

/// The dual-path search layer of paper Fig. 4(c): holds both a regular conv
/// and a DCN over the same window, mixes their outputs by Gumbel-Softmax
/// over a 2-vector architecture parameter `[α⁰, α¹]`.
pub struct DualPathConv {
    /// Regular path.
    pub regular: Conv2d,
    /// Deformable path.
    pub deform: DeformConv2d,
    /// Architecture parameter `[α⁰, α¹]`.
    pub alpha: ParamId,
    /// Gumbel-Softmax temperature (set per epoch by the search driver).
    pub tau: f32,
    /// RNG for the Gumbel perturbations.
    rng: StdRng,
    /// When `Some`, the layer is frozen to a single path (post-search
    /// fine-tuning; paper Algorithm 1, "Select Layer Type").
    pub frozen: Option<LayerChoice>,
}

impl DualPathConv {
    /// Builds the dual-path layer; both paths share the window `p.conv` and
    /// the DCN path uses the lightweight offset predictor when
    /// `lightweight` is set.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        s: &mut ParamStore,
        name: &str,
        c_in: usize,
        c_out: usize,
        p: DeformConv2dParams,
        lightweight: bool,
        seed: u64,
    ) -> Self {
        let regular = Conv2d::new(
            s,
            &format!("{name}.regular"),
            c_in,
            c_out,
            p.conv,
            false,
            seed,
        );
        let deform = if lightweight {
            DeformConv2d::new_lightweight(
                s,
                &format!("{name}.deform"),
                c_in,
                c_out,
                p,
                seed.wrapping_add(1),
            )
        } else {
            DeformConv2d::new_standard(
                s,
                &format!("{name}.deform"),
                c_in,
                c_out,
                p,
                seed.wrapping_add(1),
            )
        };
        let alpha = s.add(&format!("{name}.alpha"), Tensor::zeros(&[2]), false);
        DualPathConv {
            regular,
            deform,
            alpha,
            tau: 5.0,
            rng: StdRng::seed_from_u64(derive_seed(seed, &format!("{name}.gumbel"))),
            frozen: None,
        }
    }

    /// Current architecture decision by α magnitude (paper Algorithm 1).
    pub fn decision(&self, s: &ParamStore) -> LayerChoice {
        let a = s.value(self.alpha);
        if a.data()[1] > a.data()[0] {
            LayerChoice::Deformable
        } else {
            LayerChoice::Regular
        }
    }

    /// Freezes the layer to its current decision for fine-tuning.
    pub fn freeze(&mut self, s: &ParamStore) -> LayerChoice {
        let d = self.decision(s);
        self.frozen = Some(d);
        d
    }
}

impl Module for DualPathConv {
    fn forward(&mut self, t: &mut Tape, s: &ParamStore, x: Var) -> Var {
        match self.frozen {
            Some(LayerChoice::Regular) => self.regular.forward(t, s, x),
            Some(LayerChoice::Deformable) => self.deform.forward(t, s, x),
            None => {
                let reg = self.regular.forward(t, s, x);
                let def = self.deform.forward(t, s, x);
                let alpha = t.param(s, self.alpha);
                let noise: Vec<f32> = (0..2)
                    .map(|_| gumbel::sample_gumbel(&mut self.rng))
                    .collect();
                let wts = ops::gumbel_softmax_weights(t, alpha, &noise, self.tau);
                ops::mix2(t, reg, def, wts)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_module_forward_shapes() {
        let mut s = ParamStore::new();
        let mut m = Conv2d::new(&mut s, "c", 3, 8, Conv2dParams::downsample(3), true, 1);
        let mut t = Tape::new();
        let x = t.input(Tensor::randn(&[2, 3, 8, 8], 0.0, 1.0, 2));
        let y = m.forward(&mut t, &s, x);
        assert_eq!(t.value(y).dims(), &[2, 8, 4, 4]);
    }

    #[test]
    fn bn_infer_uses_running_stats_after_training() {
        let mut s = ParamStore::new();
        let mut bn = BatchNorm2d::new(&mut s, "bn", 2);
        let x_data = Tensor::randn(&[8, 2, 4, 4], 5.0, 2.0, 3);
        // A few training passes to move the running stats.
        for _ in 0..20 {
            let mut t = Tape::new();
            let x = t.input(x_data.clone());
            let _ = bn.forward(&mut t, &s, x);
        }
        assert!((bn.running_mean[0] - 5.0).abs() < 1.0);
        bn.training = false;
        let mut t = Tape::new();
        let x = t.input(x_data.clone());
        let y = bn.forward(&mut t, &s, x);
        // Output should be roughly normalized.
        assert!(t.value(y).mean().abs() < 0.5);
    }

    #[test]
    fn deform_layer_with_zero_offsets_equals_regular_conv() {
        // Offset predictor is zero-initialized, so before any training the
        // DCN must reproduce a rigid convolution with its own weights.
        let mut s = ParamStore::new();
        let p = DeformConv2dParams::same3x3();
        let mut dcn = DeformConv2d::new_standard(&mut s, "d", 3, 4, p, 7);
        let x_data = Tensor::randn(&[1, 3, 6, 6], 0.0, 1.0, 8);
        let mut t = Tape::new();
        let x = t.input(x_data.clone());
        let y = dcn.forward(&mut t, &s, x);
        let w = s.value(dcn.weight);
        let y_ref = defcon_tensor::conv::conv2d(&x_data, w, None, &p.conv);
        defcon_tensor::assert_close(t.value(y), &y_ref, 1e-4, 1e-4);
    }

    #[test]
    fn lightweight_predictor_cuts_macs_per_eq9() {
        let mut s = ParamStore::new();
        let p = DeformConv2dParams::same3x3();
        let std = DeformConv2d::new_standard(&mut s, "a", 64, 64, p, 1);
        let lw = DeformConv2d::new_lightweight(&mut s, "b", 64, 64, p, 1);
        let m_std = std.offset_pred.macs_per_position(64, 3, 1);
        let m_lw = lw.offset_pred.macs_per_position(64, 3, 1);
        let reduction = 1.0 - m_lw as f64 / m_std as f64;
        // Paper Eq. (9): 83.3 % MAC reduction for k=3.
        assert!((reduction - 0.8333).abs() < 0.01, "reduction {reduction}");
    }

    #[test]
    fn lightweight_dcn_trains_end_to_end() {
        let mut s = ParamStore::new();
        let p = DeformConv2dParams::same3x3();
        let mut dcn = DeformConv2d::new_lightweight(&mut s, "d", 2, 2, p, 9);
        let x_data = Tensor::randn(&[2, 2, 5, 5], 0.0, 1.0, 10);
        let mut last = f32::MAX;
        for _ in 0..15 {
            s.zero_grads();
            let mut t = Tape::new();
            let x = t.input(x_data.clone());
            let y = dcn.forward(&mut t, &s, x);
            let g = ops::global_avg_pool_op(&mut t, y);
            let tgt = Tensor::full(&[2, 2], 1.0);
            let l = crate::loss::mse(&mut t, g, &tgt);
            last = t.value(l).data()[0];
            t.backward(l);
            t.write_param_grads(&mut s);
            s.sgd_step(0.2, 0.9, 0.0);
        }
        assert!(last < 0.1, "lightweight DCN failed to fit: {last}");
    }

    #[test]
    fn dual_path_mixes_and_freezes() {
        let mut s = ParamStore::new();
        let p = DeformConv2dParams::same3x3();
        let mut dp = DualPathConv::new(&mut s, "dp", 2, 3, p, true, 11);
        let x_data = Tensor::randn(&[1, 2, 5, 5], 0.0, 1.0, 12);
        let mut t = Tape::new();
        let x = t.input(x_data.clone());
        let y = dp.forward(&mut t, &s, x);
        assert_eq!(t.value(y).dims(), &[1, 3, 5, 5]);
        // With α = [0, 0] the decision defaults to Regular (ties favour α⁰).
        assert_eq!(dp.decision(&s), LayerChoice::Regular);
        // Push α¹ above α⁰ and freeze: forward must now be the DCN path only.
        s.value_mut(dp.alpha).data_mut()[1] = 1.0;
        assert_eq!(dp.freeze(&s), LayerChoice::Deformable);
        let mut t2 = Tape::new();
        let x2 = t2.input(x_data);
        let y2 = dp.forward(&mut t2, &s, x2);
        assert_eq!(t2.value(y2).dims(), &[1, 3, 5, 5]);
    }

    #[test]
    fn alpha_receives_gradient_through_mix() {
        let mut s = ParamStore::new();
        let p = DeformConv2dParams::same3x3();
        let mut dp = DualPathConv::new(&mut s, "dp", 1, 1, p, false, 13);
        let mut t = Tape::new();
        let x = t.input(Tensor::randn(&[1, 1, 4, 4], 0.0, 1.0, 14));
        let y = dp.forward(&mut t, &s, x);
        let l = ops::mean_all(&mut t, y);
        let l2 = ops::square(&mut t, l);
        t.backward(l2);
        t.write_param_grads(&mut s);
        let ga = s.grad(dp.alpha);
        assert!(
            ga.data().iter().any(|&v| v != 0.0),
            "alpha gradient is zero"
        );
    }
}

// ---------------------------------------------------------------------------
// Modulated deformable convolution (DCNv2)
// ---------------------------------------------------------------------------

/// A trainable *modulated* deformable convolution (DCNv2, the flavour
/// YOLACT++ builds on): one zero-initialized convolution predicts both the
/// offsets (`2·G·k²` channels) and the modulation logits (`G·k²` channels,
/// sigmoid-activated). Zero init means the layer starts as a rigid
/// convolution with every tap at weight `σ(0) = 0.5` — the DCNv2 paper's
/// initialization.
pub struct ModulatedDeformConv2d {
    /// Joint offset+mask predictor (`3·G·k²` output channels).
    pub predictor: Conv2d,
    /// Main filter.
    pub weight: ParamId,
    /// Deformable-conv hyper-parameters.
    pub params: DeformConv2dParams,
    /// Offset post-processing.
    pub transform: OffsetTransform,
}

impl ModulatedDeformConv2d {
    /// Builds the layer.
    pub fn new(
        s: &mut ParamStore,
        name: &str,
        c_in: usize,
        c_out: usize,
        p: DeformConv2dParams,
        seed: u64,
    ) -> Self {
        let kk = p.conv.kernel * p.conv.kernel;
        let pred_out = 3 * p.deform_groups * kk;
        let predictor =
            Conv2d::new_zeroed(s, &format!("{name}.pred"), c_in, pred_out, p.conv, true);
        let w = init::kaiming_conv(
            &[c_out, c_in, p.conv.kernel, p.conv.kernel],
            derive_seed(seed, name),
        );
        ModulatedDeformConv2d {
            predictor,
            weight: s.add(&format!("{name}.weight"), w, true),
            params: p,
            transform: OffsetTransform::Identity,
        }
    }
}

impl Module for ModulatedDeformConv2d {
    fn forward(&mut self, t: &mut Tape, s: &ParamStore, x: Var) -> Var {
        let joint = self.predictor.forward(t, s, x);
        // Split channels: first 2Gk² are offsets, the rest are mask logits.
        let dims = t.value(joint).dims().to_vec();
        let (n, _, oh, ow) = (dims[0], dims[1], dims[2], dims[3]);
        let off_ch = self.params.offset_channels();
        let mask_ch = off_ch / 2;
        let joint_v = t.value(joint).clone();
        let mut off_data = Tensor::zeros(&[n, off_ch, oh, ow]);
        let mut mask_data = Tensor::zeros(&[n, mask_ch, oh, ow]);
        for ni in 0..n {
            for c in 0..off_ch {
                for y in 0..oh {
                    for xx in 0..ow {
                        *off_data.at4_mut(ni, c, y, xx) = joint_v.at4(ni, c, y, xx);
                    }
                }
            }
            for c in 0..mask_ch {
                for y in 0..oh {
                    for xx in 0..ow {
                        *mask_data.at4_mut(ni, c, y, xx) = joint_v.at4(ni, off_ch + c, y, xx);
                    }
                }
            }
        }
        // Record the split as a differentiable op.
        let off_ch_cap = off_ch;
        let dims_cap = dims.clone();
        let offsets = t.push(
            off_data,
            vec![joint],
            Some(Box::new(move |gy| {
                let mut g = Tensor::zeros(&dims_cap);
                let (n, _, oh, ow) = g.shape().nchw();
                for ni in 0..n {
                    for c in 0..off_ch_cap {
                        for y in 0..oh {
                            for xx in 0..ow {
                                *g.at4_mut(ni, c, y, xx) = gy.at4(ni, c, y, xx);
                            }
                        }
                    }
                }
                vec![g]
            })),
        );
        let dims_cap2 = dims.clone();
        let mask_logits = t.push(
            mask_data,
            vec![joint],
            Some(Box::new(move |gy| {
                let mut g = Tensor::zeros(&dims_cap2);
                let (n, mc, oh, ow) = gy.shape().nchw();
                for ni in 0..n {
                    for c in 0..mc {
                        for y in 0..oh {
                            for xx in 0..ow {
                                *g.at4_mut(ni, off_ch + c, y, xx) = gy.at4(ni, c, y, xx);
                            }
                        }
                    }
                }
                vec![g]
            })),
        );
        let mask = ops::sigmoid(t, mask_logits);
        let w = t.param(s, self.weight);
        ops::deform_conv2d_v2_op(t, x, offsets, mask, w, None, self.params, self.transform)
    }
}

#[cfg(test)]
mod v2_tests {
    use super::*;

    #[test]
    fn zero_init_is_half_weighted_rigid_conv() {
        // At init: offsets 0, mask logits 0 → σ = 0.5 → 0.5 × rigid conv.
        let mut s = ParamStore::new();
        let p = DeformConv2dParams::same3x3();
        let mut m = ModulatedDeformConv2d::new(&mut s, "md", 2, 3, p, 11);
        let x_data = Tensor::randn(&[1, 2, 6, 6], 0.0, 1.0, 12);
        let mut t = Tape::new();
        let x = t.input(x_data.clone());
        let y = m.forward(&mut t, &s, x);
        let rigid = defcon_tensor::conv::conv2d(&x_data, s.value(m.weight), None, &p.conv);
        defcon_tensor::assert_close(t.value(y), &rigid.scale(0.5), 1e-4, 1e-4);
    }

    #[test]
    fn modulated_layer_trains() {
        let mut s = ParamStore::new();
        let p = DeformConv2dParams::same3x3();
        let mut m = ModulatedDeformConv2d::new(&mut s, "md", 2, 2, p, 13);
        let x_data = Tensor::randn(&[1, 2, 5, 5], 0.0, 1.0, 14);
        let mut last = f32::MAX;
        for _ in 0..25 {
            s.zero_grads();
            let mut t = Tape::new();
            let x = t.input(x_data.clone());
            let y = m.forward(&mut t, &s, x);
            let g = ops::global_avg_pool_op(&mut t, y);
            let l = crate::loss::mse(&mut t, g, &Tensor::full(&[1, 2], 0.7));
            last = t.value(l).data()[0];
            t.backward(l);
            t.write_param_grads(&mut s);
            s.sgd_step(0.3, 0.9, 0.0);
        }
        assert!(last < 0.05, "modulated DCN failed to fit: {last}");
    }

    #[test]
    fn predictor_receives_gradient_through_both_branches() {
        let mut s = ParamStore::new();
        let p = DeformConv2dParams::same3x3();
        let mut m = ModulatedDeformConv2d::new(&mut s, "md", 1, 1, p, 15);
        let mut t = Tape::new();
        let x = t.input(Tensor::randn(&[1, 1, 5, 5], 0.0, 1.0, 16));
        let y = m.forward(&mut t, &s, x);
        let l = ops::mean_all(&mut t, y);
        let l2 = ops::square(&mut t, l);
        t.backward(l2);
        t.write_param_grads(&mut s);
        // The joint predictor's bias must see gradient (weights are zero at
        // init, so the weight gradient flows but may be small; the bias
        // gradient comes through both the mask sigmoid and the offsets).
        let gb = s.grad(m.predictor.bias.unwrap());
        assert!(
            gb.data().iter().any(|&v| v.abs() > 0.0),
            "predictor bias got no gradient"
        );
    }
}
