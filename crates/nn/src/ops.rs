//! Differentiable op constructors.
//!
//! Each function records one node on the [`Tape`]: it computes the forward
//! value eagerly and captures just enough state in a one-shot closure to
//! produce parent gradients during [`Tape::backward`].

use crate::graph::{Tape, Var};
use defcon_tensor::conv::{
    conv2d, conv2d_backward, depthwise_conv2d, depthwise_conv2d_backward, pointwise_conv2d,
    Conv2dParams,
};
use defcon_tensor::norm::{batch_norm2d_backward, batch_norm2d_train};
use defcon_tensor::pool::{
    global_avg_pool, global_avg_pool_backward, max_pool2x2, max_pool2x2_backward,
    upsample_nearest_2x, upsample_nearest_2x_backward,
};
use defcon_tensor::sample::{
    deform_conv2d_backward_ref, deform_conv2d_ref, DeformConv2dParams, OffsetTransform,
};
use defcon_tensor::{gemm, Tensor};

// ---------------------------------------------------------------------------
// Elementwise & reductions
// ---------------------------------------------------------------------------

/// `a + b` (same shape).
pub fn add(t: &mut Tape, a: Var, b: Var) -> Var {
    let v = t.value(a).add(t.value(b));
    let dims_a = t.value(a).dims().to_vec();
    t.push(
        v,
        vec![a, b],
        Some(Box::new(move |gy| {
            debug_assert_eq!(gy.dims(), dims_a.as_slice());
            vec![gy.clone(), gy.clone()]
        })),
    )
}

/// `a - b` (same shape).
pub fn sub(t: &mut Tape, a: Var, b: Var) -> Var {
    let v = t.value(a).sub(t.value(b));
    t.push(
        v,
        vec![a, b],
        Some(Box::new(move |gy| vec![gy.clone(), gy.scale(-1.0)])),
    )
}

/// `a * b` elementwise (same shape).
pub fn mul(t: &mut Tape, a: Var, b: Var) -> Var {
    let av = t.value(a).clone();
    let bv = t.value(b).clone();
    let v = av.mul(&bv);
    t.push(
        v,
        vec![a, b],
        Some(Box::new(move |gy| vec![gy.mul(&bv), gy.mul(&av)])),
    )
}

/// `a * s` for a constant scalar.
pub fn scale(t: &mut Tape, a: Var, s: f32) -> Var {
    let v = t.value(a).scale(s);
    t.push(v, vec![a], Some(Box::new(move |gy| vec![gy.scale(s)])))
}

/// `a + s` for a constant scalar.
pub fn add_scalar(t: &mut Tape, a: Var, s: f32) -> Var {
    let v = t.value(a).map(|x| x + s);
    t.push(v, vec![a], Some(Box::new(move |gy| vec![gy.clone()])))
}

/// Elementwise square.
pub fn square(t: &mut Tape, a: Var) -> Var {
    let av = t.value(a).clone();
    let v = av.map(|x| x * x);
    t.push(
        v,
        vec![a],
        Some(Box::new(move |gy| vec![gy.zip(&av, |g, x| 2.0 * g * x)])),
    )
}

/// ReLU.
pub fn relu(t: &mut Tape, a: Var) -> Var {
    let av = t.value(a).clone();
    let v = av.map(|x| x.max(0.0));
    t.push(
        v,
        vec![a],
        Some(Box::new(move |gy| {
            vec![gy.zip(&av, |g, x| if x > 0.0 { g } else { 0.0 })]
        })),
    )
}

/// Sigmoid.
pub fn sigmoid(t: &mut Tape, a: Var) -> Var {
    let v = t.value(a).map(|x| 1.0 / (1.0 + (-x).exp()));
    let sv = v.clone();
    t.push(
        v,
        vec![a],
        Some(Box::new(move |gy| {
            vec![gy.zip(&sv, |g, s| g * s * (1.0 - s))]
        })),
    )
}

/// Hyperbolic tangent.
pub fn tanh(t: &mut Tape, a: Var) -> Var {
    let v = t.value(a).map(|x| x.tanh());
    let tv = v.clone();
    t.push(
        v,
        vec![a],
        Some(Box::new(move |gy| {
            vec![gy.zip(&tv, |g, y| g * (1.0 - y * y))]
        })),
    )
}

/// Sum of all elements -> scalar `[1]`.
pub fn sum_all(t: &mut Tape, a: Var) -> Var {
    let dims = t.value(a).dims().to_vec();
    let v = Tensor::from_vec(vec![t.value(a).sum()], &[1]);
    t.push(
        v,
        vec![a],
        Some(Box::new(move |gy| {
            let g = gy.data()[0];
            vec![Tensor::full(&dims, g)]
        })),
    )
}

/// Mean of all elements -> scalar `[1]`.
pub fn mean_all(t: &mut Tape, a: Var) -> Var {
    let n = t.value(a).numel() as f32;
    let s = sum_all(t, a);
    scale(t, s, 1.0 / n)
}

/// Reshape (gradient reshapes back).
pub fn reshape(t: &mut Tape, a: Var, dims: &[usize]) -> Var {
    let v = t.value(a).reshape(dims);
    let src_dims = t.value(a).dims().to_vec();
    t.push(
        v,
        vec![a],
        Some(Box::new(move |gy| vec![gy.reshape(&src_dims)])),
    )
}

/// Channel concatenation of NCHW vars.
pub fn cat_channels(t: &mut Tape, parts: &[Var]) -> Var {
    let tensors: Vec<Tensor> = parts.iter().map(|&p| t.value(p).clone()).collect();
    let refs: Vec<&Tensor> = tensors.iter().collect();
    let v = Tensor::cat_channels(&refs);
    let channels: Vec<usize> = tensors.iter().map(|p| p.dims()[1]).collect();
    let shapes: Vec<Vec<usize>> = tensors.iter().map(|p| p.dims().to_vec()).collect();
    t.push(
        v,
        parts.to_vec(),
        Some(Box::new(move |gy| {
            let (n, _, h, w) = gy.shape().nchw();
            let mut grads: Vec<Tensor> = shapes.iter().map(|s| Tensor::zeros(s)).collect();
            for ni in 0..n {
                let mut c_off = 0usize;
                for (gi, &pc) in channels.iter().enumerate() {
                    for c in 0..pc {
                        for hh in 0..h {
                            for ww in 0..w {
                                *grads[gi].at4_mut(ni, c, hh, ww) = gy.at4(ni, c_off + c, hh, ww);
                            }
                        }
                    }
                    c_off += pc;
                }
            }
            grads
        })),
    )
}

// ---------------------------------------------------------------------------
// Convolutions & linear
// ---------------------------------------------------------------------------

/// Regular 2-D convolution (optional bias).
pub fn conv2d_op(t: &mut Tape, x: Var, w: Var, b: Option<Var>, p: Conv2dParams) -> Var {
    let xv = t.value(x).clone();
    let wv = t.value(w).clone();
    let bv = b.map(|bb| t.value(bb).clone());
    let v = conv2d(&xv, &wv, bv.as_ref(), &p);
    let mut parents = vec![x, w];
    if let Some(bb) = b {
        parents.push(bb);
    }
    let has_bias = b.is_some();
    t.push(
        v,
        parents,
        Some(Box::new(move |gy| {
            let (gx, gw, gb) = conv2d_backward(&xv, &wv, gy, &p);
            if has_bias {
                vec![gx, gw, gb]
            } else {
                vec![gx, gw]
            }
        })),
    )
}

/// Depthwise 2-D convolution (optional bias).
pub fn depthwise_conv2d_op(t: &mut Tape, x: Var, w: Var, b: Option<Var>, p: Conv2dParams) -> Var {
    let xv = t.value(x).clone();
    let wv = t.value(w).clone();
    let bv = b.map(|bb| t.value(bb).clone());
    let v = depthwise_conv2d(&xv, &wv, bv.as_ref(), &p);
    let mut parents = vec![x, w];
    if let Some(bb) = b {
        parents.push(bb);
    }
    let has_bias = b.is_some();
    t.push(
        v,
        parents,
        Some(Box::new(move |gy| {
            let (gx, gw, gb) = depthwise_conv2d_backward(&xv, &wv, gy, &p);
            if has_bias {
                vec![gx, gw, gb]
            } else {
                vec![gx, gw]
            }
        })),
    )
}

/// Pointwise (1×1) convolution (optional bias).
pub fn pointwise_conv2d_op(t: &mut Tape, x: Var, w: Var, b: Option<Var>) -> Var {
    let xv = t.value(x).clone();
    let wv = t.value(w).clone();
    let bv = b.map(|bb| t.value(bb).clone());
    let v = pointwise_conv2d(&xv, &wv, bv.as_ref());
    let mut parents = vec![x, w];
    if let Some(bb) = b {
        parents.push(bb);
    }
    let has_bias = b.is_some();
    let p = Conv2dParams {
        kernel: 1,
        stride: 1,
        pad: 0,
        dilation: 1,
    };
    t.push(
        v,
        parents,
        Some(Box::new(move |gy| {
            let (gx, gw, gb) = conv2d_backward(&xv, &wv, gy, &p);
            if has_bias {
                vec![gx, gw, gb]
            } else {
                vec![gx, gw]
            }
        })),
    )
}

/// Deformable 2-D convolution (paper Eq. 2) with a differentiable offset
/// input and the given offset transform (identity / bounded / rounded).
pub fn deform_conv2d_op(
    t: &mut Tape,
    x: Var,
    offsets: Var,
    w: Var,
    b: Option<Var>,
    p: DeformConv2dParams,
    transform: OffsetTransform,
) -> Var {
    let xv = t.value(x).clone();
    let ov = t.value(offsets).clone();
    let wv = t.value(w).clone();
    let bv = b.map(|bb| t.value(bb).clone());
    let v = deform_conv2d_ref(&xv, &ov, &wv, bv.as_ref(), &p, transform);
    let mut parents = vec![x, offsets, w];
    if let Some(bb) = b {
        parents.push(bb);
    }
    let has_bias = b.is_some();
    t.push(
        v,
        parents,
        Some(Box::new(move |gy| {
            let (gx, goff, gw, gb) = deform_conv2d_backward_ref(&xv, &ov, &wv, gy, &p, transform);
            if has_bias {
                vec![gx, goff, gw, gb]
            } else {
                vec![gx, goff, gw]
            }
        })),
    )
}

/// Fully-connected layer: `y = x · wᵀ + b` with `x: [N, F]`, `w: [O, F]`,
/// `b: [O]`.
pub fn linear(t: &mut Tape, x: Var, w: Var, b: Option<Var>) -> Var {
    let xv = t.value(x).clone();
    let wv = t.value(w).clone();
    let (n, f) = (xv.dims()[0], xv.dims()[1]);
    let o = wv.dims()[0];
    assert_eq!(wv.dims()[1], f, "linear: weight in-features mismatch");
    let mut y = vec![0.0f32; n * o];
    gemm::gemm_bt(xv.data(), wv.data(), &mut y, n, f, o);
    let mut yt = Tensor::from_vec(y, &[n, o]);
    if let Some(bb) = b {
        let bv = t.value(bb);
        assert_eq!(bv.numel(), o);
        for i in 0..n {
            for j in 0..o {
                yt.data_mut()[i * o + j] += bv.data()[j];
            }
        }
    }
    let mut parents = vec![x, w];
    if let Some(bb) = b {
        parents.push(bb);
    }
    let has_bias = b.is_some();
    t.push(
        yt,
        parents,
        Some(Box::new(move |gy| {
            // gx = gy (n×o) · w (o×f); gw = gyᵀ (o×n) · x (n×f)
            let mut gx = vec![0.0f32; n * f];
            gemm::gemm(gy.data(), wv.data(), &mut gx, n, o, f);
            let mut gw = vec![0.0f32; o * f];
            gemm::gemm_at(gy.data(), xv.data(), &mut gw, o, n, f);
            let mut out = vec![Tensor::from_vec(gx, &[n, f]), Tensor::from_vec(gw, &[o, f])];
            if has_bias {
                let mut gb = vec![0.0f32; o];
                for i in 0..n {
                    for j in 0..o {
                        gb[j] += gy.data()[i * o + j];
                    }
                }
                out.push(Tensor::from_vec(gb, &[o]));
            }
            out
        })),
    )
}

// ---------------------------------------------------------------------------
// Normalization, pooling, resampling
// ---------------------------------------------------------------------------

/// Training-mode batch norm; updates `running_mean/var` in place through the
/// provided mutable slices at record time.
pub fn batch_norm2d_op(
    t: &mut Tape,
    x: Var,
    gamma: Var,
    beta: Var,
    running_mean: &mut [f32],
    running_var: &mut [f32],
    momentum: f32,
    eps: f32,
) -> Var {
    let xv = t.value(x).clone();
    let gv = t.value(gamma).clone();
    let bv = t.value(beta).clone();
    let (y, cache) = batch_norm2d_train(&xv, &gv, &bv, running_mean, running_var, momentum, eps);
    t.push(
        y,
        vec![x, gamma, beta],
        Some(Box::new(move |gy| {
            let (gx, gg, gb) = batch_norm2d_backward(gy, &gv, &cache);
            vec![gx, gg, gb]
        })),
    )
}

/// 2×2 max pooling, stride 2.
pub fn max_pool2x2_op(t: &mut Tape, x: Var) -> Var {
    let xv = t.value(x).clone();
    let (y, arg) = max_pool2x2(&xv);
    let in_dims = xv.dims().to_vec();
    t.push(
        y,
        vec![x],
        Some(Box::new(move |gy| {
            vec![max_pool2x2_backward(gy, &arg, &in_dims)]
        })),
    )
}

/// Global average pooling `[N, C, H, W] -> [N, C]`.
pub fn global_avg_pool_op(t: &mut Tape, x: Var) -> Var {
    let xv = t.value(x).clone();
    let in_dims = xv.dims().to_vec();
    let y = global_avg_pool(&xv);
    t.push(
        y,
        vec![x],
        Some(Box::new(move |gy| {
            vec![global_avg_pool_backward(gy, &in_dims)]
        })),
    )
}

/// Nearest-neighbour 2× upsample.
pub fn upsample2x_op(t: &mut Tape, x: Var) -> Var {
    let y = upsample_nearest_2x(t.value(x));
    t.push(
        y,
        vec![x],
        Some(Box::new(move |gy| vec![upsample_nearest_2x_backward(gy)])),
    )
}

// ---------------------------------------------------------------------------
// Architecture-search specific ops
// ---------------------------------------------------------------------------

/// Weighted sum of two same-shaped tensors with a differentiable 2-vector of
/// weights: `out = w[0]·a + w[1]·b` — the dual-path mix of paper Eq. (5)
/// once the Gumbel-Softmax weights have been computed.
pub fn mix2(t: &mut Tape, a: Var, b: Var, w: Var) -> Var {
    let av = t.value(a).clone();
    let bv = t.value(b).clone();
    let wv = t.value(w).clone();
    assert_eq!(wv.numel(), 2, "mix2 weight must be length-2");
    let (w0, w1) = (wv.data()[0], wv.data()[1]);
    let v = av.scale(w0).add(&bv.scale(w1));
    t.push(
        v,
        vec![a, b, w],
        Some(Box::new(move |gy| {
            let ga = gy.scale(w0);
            let gb = gy.scale(w1);
            let gw0: f32 = gy
                .data()
                .iter()
                .zip(av.data().iter())
                .map(|(g, x)| g * x)
                .sum();
            let gw1: f32 = gy
                .data()
                .iter()
                .zip(bv.data().iter())
                .map(|(g, x)| g * x)
                .sum();
            vec![ga, gb, Tensor::from_vec(vec![gw0, gw1], &[2])]
        })),
    )
}

/// Softmax over a 1-D vector with an added constant perturbation and
/// temperature: `softmax((x + eps_const) / tau)` — the Gumbel-Softmax
/// weighting of paper Eq. (5). The perturbation is treated as a constant
/// (reparameterization trick), so gradients flow only through `x`.
pub fn gumbel_softmax_weights(t: &mut Tape, x: Var, noise: &[f32], tau: f32) -> Var {
    let xv = t.value(x).clone();
    assert_eq!(xv.numel(), noise.len(), "noise length must match logits");
    let logits: Vec<f32> = xv
        .data()
        .iter()
        .zip(noise.iter())
        .map(|(a, e)| (a + e) / tau)
        .collect();
    let m = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = logits.iter().map(|v| (v - m).exp()).collect();
    let z: f32 = exps.iter().sum();
    let soft: Vec<f32> = exps.iter().map(|e| e / z).collect();
    let soft_t = Tensor::from_vec(soft.clone(), xv.dims());
    t.push(
        soft_t,
        vec![x],
        Some(Box::new(move |gy| {
            // d softmax_i / d x_j = (s_i (δ_ij - s_j)) / tau
            let dot: f32 = gy.data().iter().zip(soft.iter()).map(|(g, s)| g * s).sum();
            let gx: Vec<f32> = gy
                .data()
                .iter()
                .zip(soft.iter())
                .map(|(g, s)| s * (g - dot) / tau)
                .collect();
            vec![Tensor::from_vec(gx, &[gy.numel()])]
        })),
    )
}

/// The latency penalty of the interval search (paper Eq. 6):
///
/// `L_s = | Σ_n ⌈α¹_n > α⁰_n⌋ · α¹_n · t_n − T |²`
///
/// `alphas[n]` is the length-2 architecture parameter of layer `n`
/// (`[α⁰, α¹]`), `lat[n]` its measured DCN latency `t(w_n)` from the lookup
/// table, and `target` is `T`. The indicator gate is evaluated on current
/// values and receives no gradient (paper: "does not require a gradient");
/// `∂L_s/∂α¹_n` follows Eq. (8) exactly.
pub fn latency_penalty(t: &mut Tape, alphas: &[Var], lat: &[f32], target: f32) -> Var {
    assert_eq!(
        alphas.len(),
        lat.len(),
        "one latency per architecture parameter"
    );
    let mut s = -target;
    let mut gates = Vec::with_capacity(alphas.len());
    for (&a, &tn) in alphas.iter().zip(lat.iter()) {
        let av = t.value(a);
        assert_eq!(av.numel(), 2, "architecture parameter must be [α⁰, α¹]");
        let gate = av.data()[1] > av.data()[0];
        gates.push(gate);
        if gate {
            s += av.data()[1] * tn;
        }
    }
    let loss = Tensor::from_vec(vec![s * s], &[1]);
    let lat = lat.to_vec();
    t.push(
        loss,
        alphas.to_vec(),
        Some(Box::new(move |gy| {
            let g = gy.data()[0];
            gates
                .iter()
                .zip(lat.iter())
                .map(|(&gate, &tn)| {
                    let d_a1 = if gate { 2.0 * s * tn * g } else { 0.0 };
                    Tensor::from_vec(vec![0.0, d_a1], &[2])
                })
                .collect()
        })),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Tape;

    fn finite_diff(f: impl Fn(&Tensor) -> f32, x: &Tensor, idx: usize, eps: f32) -> f32 {
        let mut xp = x.clone();
        xp.data_mut()[idx] += eps;
        let mut xm = x.clone();
        xm.data_mut()[idx] -= eps;
        (f(&xp) - f(&xm)) / (2.0 * eps)
    }

    #[test]
    fn relu_gradient_gates() {
        let mut t = Tape::new();
        let x = t.input(Tensor::from_vec(vec![-1.0, 2.0], &[2]));
        let y = relu(&mut t, x);
        let l = sum_all(&mut t, y);
        t.backward(l);
        assert_eq!(t.grad(x).unwrap().data(), &[0.0, 1.0]);
    }

    #[test]
    fn sigmoid_gradient_matches_fd() {
        let xv = Tensor::from_vec(vec![0.3, -1.2, 2.0], &[3]);
        let mut t = Tape::new();
        let x = t.input(xv.clone());
        let y = sigmoid(&mut t, x);
        let l = sum_all(&mut t, y);
        t.backward(l);
        let g = t.grad(x).unwrap().clone();
        for i in 0..3 {
            let fd = finite_diff(|x| x.map(|v| 1.0 / (1.0 + (-v).exp())).sum(), &xv, i, 1e-3);
            assert!((g.data()[i] - fd).abs() < 1e-3);
        }
    }

    #[test]
    fn linear_gradients_match_fd() {
        let xv = Tensor::randn(&[3, 4], 0.0, 1.0, 50);
        let wv = Tensor::randn(&[2, 4], 0.0, 1.0, 51);
        let bv = Tensor::randn(&[2], 0.0, 1.0, 52);
        let run = |xv: &Tensor, wv: &Tensor, bv: &Tensor| -> f32 {
            let mut t = Tape::new();
            let x = t.input(xv.clone());
            let w = t.input(wv.clone());
            let b = t.input(bv.clone());
            let y = linear(&mut t, x, w, Some(b));
            let s = square(&mut t, y);
            let l = sum_all(&mut t, s);
            t.value(l).data()[0]
        };
        let mut t = Tape::new();
        let x = t.input(xv.clone());
        let w = t.input(wv.clone());
        let b = t.input(bv.clone());
        let y = linear(&mut t, x, w, Some(b));
        let s = square(&mut t, y);
        let l = sum_all(&mut t, s);
        t.backward(l);
        for i in [0usize, 5, 11] {
            let fd = finite_diff(|xx| run(xx, &wv, &bv), &xv, i, 1e-2);
            assert!((t.grad(x).unwrap().data()[i] - fd).abs() < 2e-2);
        }
        for i in [0usize, 3, 7] {
            let fd = finite_diff(|ww| run(&xv, ww, &bv), &wv, i, 1e-2);
            assert!((t.grad(w).unwrap().data()[i] - fd).abs() < 2e-2);
        }
        for i in [0usize, 1] {
            let fd = finite_diff(|bb| run(&xv, &wv, bb), &bv, i, 1e-2);
            assert!((t.grad(b).unwrap().data()[i] - fd).abs() < 2e-2);
        }
    }

    #[test]
    fn mix2_gradients() {
        let mut t = Tape::new();
        let a = t.input(Tensor::from_vec(vec![1.0, 2.0], &[2]));
        let b = t.input(Tensor::from_vec(vec![10.0, 20.0], &[2]));
        let w = t.input(Tensor::from_vec(vec![0.25, 0.75], &[2]));
        let m = mix2(&mut t, a, b, w);
        assert_eq!(t.value(m).data(), &[7.75, 15.5]);
        let l = sum_all(&mut t, m);
        t.backward(l);
        assert_eq!(t.grad(a).unwrap().data(), &[0.25, 0.25]);
        assert_eq!(t.grad(b).unwrap().data(), &[0.75, 0.75]);
        assert_eq!(t.grad(w).unwrap().data(), &[3.0, 30.0]); // sum(a), sum(b)
    }

    #[test]
    fn gumbel_softmax_weights_sum_to_one_and_grad_matches_fd() {
        let logits = Tensor::from_vec(vec![0.5, -0.3], &[2]);
        let noise = [0.1f32, 0.2];
        let tau = 0.7;
        let mut t = Tape::new();
        let x = t.input(logits.clone());
        let wsm = gumbel_softmax_weights(&mut t, x, &noise, tau);
        let sum: f32 = t.value(wsm).data().iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        // loss = w[0] (pick first component)
        let sel = t.input(Tensor::from_vec(vec![1.0, 0.0], &[2]));
        let picked = mul(&mut t, wsm, sel);
        let l = sum_all(&mut t, picked);
        t.backward(l);
        let g = t.grad(x).unwrap().clone();
        let f = |lg: &Tensor| -> f32 {
            let l0 = (lg.data()[0] + noise[0]) / tau;
            let l1 = (lg.data()[1] + noise[1]) / tau;
            let m = l0.max(l1);
            let e0 = (l0 - m).exp();
            let e1 = (l1 - m).exp();
            e0 / (e0 + e1)
        };
        for i in 0..2 {
            let fd = finite_diff(f, &logits, i, 1e-3);
            assert!((g.data()[i] - fd).abs() < 1e-3, "{} vs {fd}", g.data()[i]);
        }
    }

    #[test]
    fn latency_penalty_matches_eq8() {
        // Two layers: layer 0 gated on (α¹>α⁰), layer 1 gated off.
        let mut t = Tape::new();
        let a0 = t.input(Tensor::from_vec(vec![0.2, 0.8], &[2]));
        let a1 = t.input(Tensor::from_vec(vec![0.9, 0.1], &[2]));
        let lat = [3.0f32, 5.0];
        let target = 1.0;
        let l = latency_penalty(&mut t, &[a0, a1], &lat, target);
        // s = 0.8*3 - 1 = 1.4; loss = 1.96
        assert!((t.value(l).data()[0] - 1.96).abs() < 1e-5);
        t.backward(l);
        // dL/dα¹_0 = 2*s*t0 = 2*1.4*3 = 8.4 ; α⁰ grad = 0; gated-off layer = 0.
        assert!((t.grad(a0).unwrap().data()[1] - 8.4).abs() < 1e-4);
        assert_eq!(t.grad(a0).unwrap().data()[0], 0.0);
        assert_eq!(t.grad(a1).unwrap().data(), &[0.0, 0.0]);
    }

    #[test]
    fn cat_channels_grad_splits() {
        let mut t = Tape::new();
        let a = t.input(Tensor::ones(&[1, 1, 2, 2]));
        let b = t.input(Tensor::ones(&[1, 2, 2, 2]));
        let c = cat_channels(&mut t, &[a, b]);
        let s = scale(&mut t, c, 2.0);
        let l = sum_all(&mut t, s);
        t.backward(l);
        assert_eq!(t.grad(a).unwrap().dims(), &[1, 1, 2, 2]);
        assert_eq!(t.grad(b).unwrap().dims(), &[1, 2, 2, 2]);
        assert!(t.grad(a).unwrap().data().iter().all(|&v| v == 2.0));
        assert!(t.grad(b).unwrap().data().iter().all(|&v| v == 2.0));
    }

    #[test]
    fn conv_chain_trains_toward_target() {
        // Sanity: a conv + relu + gap pipeline can fit a constant target.
        use crate::graph::ParamStore;
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::randn(&[1, 1, 3, 3], 0.0, 0.3, 60), true);
        let x_data = Tensor::rand_uniform(&[2, 1, 6, 6], 0.5, 1.0, 61);
        let mut last = f32::MAX;
        for _ in 0..100 {
            store.zero_grads();
            let mut t = Tape::new();
            let x = t.input(x_data.clone());
            let wv = t.param(&store, w);
            let y = conv2d_op(&mut t, x, wv, None, Conv2dParams::same(3));
            let g = global_avg_pool_op(&mut t, y);
            let tgt = t.input(Tensor::full(&[2, 1], 3.0));
            let d = sub(&mut t, g, tgt);
            let sq = square(&mut t, d);
            let l = mean_all(&mut t, sq);
            let lv = t.value(l).data()[0];
            t.backward(l);
            t.write_param_grads(&mut store);
            store.sgd_step(0.1, 0.9, 0.0);
            last = lv;
        }
        assert!(last < 0.05, "loss did not converge: {last}");
    }
}

/// Modulated deformable convolution (DCNv2): like [`deform_conv2d_op`] but
/// with a per-tap modulation mask input (sigmoid-activated by the caller).
#[allow(clippy::too_many_arguments)]
pub fn deform_conv2d_v2_op(
    t: &mut Tape,
    x: Var,
    offsets: Var,
    mask: Var,
    w: Var,
    b: Option<Var>,
    p: DeformConv2dParams,
    transform: OffsetTransform,
) -> Var {
    use defcon_tensor::sample::{deform_conv2d_v2_backward_ref, deform_conv2d_v2_ref};
    let xv = t.value(x).clone();
    let ov = t.value(offsets).clone();
    let mv = t.value(mask).clone();
    let wv = t.value(w).clone();
    let bv = b.map(|bb| t.value(bb).clone());
    let v = deform_conv2d_v2_ref(&xv, &ov, &mv, &wv, bv.as_ref(), &p, transform);
    let mut parents = vec![x, offsets, mask, w];
    if let Some(bb) = b {
        parents.push(bb);
    }
    let has_bias = b.is_some();
    t.push(
        v,
        parents,
        Some(Box::new(move |gy| {
            let (gx, goff, gmask, gw, gb) =
                deform_conv2d_v2_backward_ref(&xv, &ov, &mv, &wv, gy, &p, transform);
            if has_bias {
                vec![gx, goff, gmask, gw, gb]
            } else {
                vec![gx, goff, gmask, gw]
            }
        })),
    )
}
