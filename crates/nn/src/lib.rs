//! # defcon-nn
//!
//! A tape-based reverse-mode autograd engine and the neural-network modules
//! required by DEFCON's training-side experiments:
//!
//! * regular / depthwise / pointwise convolutions and batch norm with full
//!   training gradients,
//! * a trainable [`modules::DeformConv2d`] whose offsets receive gradients
//!   through the bilinear kernel (paper Eq. 2–3),
//! * the *lightweight* offset predictor (depthwise 3×3 + pointwise 1×1,
//!   paper §III-A-b),
//! * the dual-path Gumbel-Softmax layer used by the interval search
//!   (paper Eq. 5, Fig. 4c),
//! * SGD with momentum and step-decay learning rates (paper §IV-A).
//!
//! ## Design
//!
//! The engine is a dynamic tape ([`graph::Tape`]): every forward op pushes a
//! node holding its output value and a one-shot backward closure; `backward`
//! walks the tape in reverse, accumulating gradients into parents. Learnable
//! parameters live in a [`graph::ParamStore`] outside the tape and are
//! re-registered as leaves each step, so modules can be freely shared (a
//! prediction head evaluated on several FPN levels accumulates gradients
//! from every use).

pub mod graph;
pub mod gumbel;
pub mod loss;
pub mod modules;
pub mod ops;
pub mod optim;

pub use graph::{ParamId, ParamStore, Tape, Var};
pub use modules::Module;
