//! The autograd tape and parameter store.

use defcon_support::json::{Json, JsonError};
use defcon_tensor::Tensor;
use std::collections::HashMap;

/// Handle to a value recorded on a [`Tape`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Var(pub(crate) usize);

/// Handle to a learnable parameter in a [`ParamStore`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) usize);

/// One-shot backward closure: given the node's output gradient, produce the
/// gradients of its parents (same order and length as `parents`).
type BackwardFn = Box<dyn FnOnce(&Tensor) -> Vec<Tensor>>;

struct Node {
    value: Tensor,
    parents: Vec<Var>,
    backward: Option<BackwardFn>,
    grad: Option<Tensor>,
}

/// Central store for learnable parameters: values, gradient accumulators and
/// momentum buffers, plus per-parameter metadata (name, weight-decay flag).
///
/// Parameters live *outside* the tape so the tape can be rebuilt every step
/// (define-by-run) while optimizer state persists.
#[derive(Default)]
pub struct ParamStore {
    values: Vec<Tensor>,
    grads: Vec<Tensor>,
    velocity: Vec<Tensor>,
    names: Vec<String>,
    decay: Vec<bool>,
}

impl ParamStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter; `decay` controls whether weight decay applies
    /// (convention: true for conv/linear weights, false for biases, BN
    /// affine parameters, offset predictors and architecture parameters).
    pub fn add(&mut self, name: &str, value: Tensor, decay: bool) -> ParamId {
        let id = ParamId(self.values.len());
        self.grads.push(Tensor::zeros(value.dims()));
        self.velocity.push(Tensor::zeros(value.dims()));
        self.values.push(value);
        self.names.push(name.to_string());
        self.decay.push(decay);
        id
    }

    /// Current value of a parameter.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.values[id.0]
    }

    /// Mutable value access (used for manual re-initialization and testing).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.values[id.0]
    }

    /// Accumulated gradient of a parameter.
    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.grads[id.0]
    }

    /// Parameter name (diagnostics).
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Number of registered parameters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// The id of the `index`-th registered parameter (registration order).
    /// Panics when out of range.
    pub fn param_id(&self, index: usize) -> ParamId {
        assert!(index < self.values.len(), "parameter index out of range");
        ParamId(index)
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total number of scalar parameters.
    pub fn num_scalars(&self) -> usize {
        self.values.iter().map(|t| t.numel()).sum()
    }

    /// Zeroes every gradient accumulator (call before each step).
    pub fn zero_grads(&mut self) {
        for g in &mut self.grads {
            g.data_mut().fill(0.0);
        }
    }

    /// Adds `g` into the parameter's gradient accumulator.
    pub fn accumulate_grad(&mut self, id: ParamId, g: &Tensor) {
        let acc = &mut self.grads[id.0];
        for (a, b) in acc.data_mut().iter_mut().zip(g.data().iter()) {
            *a += b;
        }
    }

    /// True when every parameter value is finite (no NaN/±∞ has leaked in).
    pub fn values_finite(&self) -> bool {
        self.values
            .iter()
            .all(|t| t.data().iter().all(|v| v.is_finite()))
    }

    /// True when every accumulated gradient is finite. Trainers check this
    /// before applying a step so one poisoned backward pass cannot corrupt
    /// the weights.
    pub fn grads_finite(&self) -> bool {
        self.grads
            .iter()
            .all(|t| t.data().iter().all(|v| v.is_finite()))
    }

    /// A point-in-time copy of the trainable state (values + momentum
    /// buffers) for step rollback. Gradients are transient and not captured.
    pub fn snapshot(&self) -> ParamSnapshot {
        ParamSnapshot {
            values: self.values.iter().map(|t| t.data().to_vec()).collect(),
            velocity: self.velocity.iter().map(|t| t.data().to_vec()).collect(),
        }
    }

    /// Restores a [`ParamStore::snapshot`], discarding whatever the
    /// rolled-back step accumulated (gradients are zeroed: they were
    /// computed from the poisoned state).
    pub fn restore(&mut self, snap: &ParamSnapshot) {
        assert_eq!(
            snap.values.len(),
            self.values.len(),
            "snapshot shape mismatch"
        );
        for (t, s) in self.values.iter_mut().zip(&snap.values) {
            t.data_mut().copy_from_slice(s);
        }
        for (t, s) in self.velocity.iter_mut().zip(&snap.velocity) {
            t.data_mut().copy_from_slice(s);
        }
        self.zero_grads();
    }

    /// Serializes the trainable state (names + values + momentum) for
    /// checkpointing. f32 values round-trip exactly through the f64 JSON
    /// numbers (shortest round-trip printing), so save → load is bitwise.
    pub fn state_to_json(&self) -> Json {
        let tensors = |ts: &[Tensor]| {
            Json::Arr(
                ts.iter()
                    .map(|t| Json::Arr(t.data().iter().map(|&v| Json::from(v as f64)).collect()))
                    .collect(),
            )
        };
        Json::obj(vec![
            (
                "names",
                Json::Arr(self.names.iter().map(Json::str).collect()),
            ),
            ("values", tensors(&self.values)),
            ("velocity", tensors(&self.velocity)),
        ])
    }

    /// Loads state saved by [`ParamStore::state_to_json`] into a store with
    /// the **same registered parameters** (checked by name and length) —
    /// build the model first, then restore into it.
    pub fn load_state_json(&mut self, j: &Json) -> Result<(), JsonError> {
        let arr = |v: &'_ Json| v.as_arr().map(<[Json]>::to_vec);
        let names =
            arr(j.field("names")?).ok_or_else(|| JsonError::msg("names must be an array"))?;
        if names.len() != self.names.len() {
            return Err(JsonError::msg(format!(
                "checkpoint has {} parameters, model has {}",
                names.len(),
                self.names.len()
            )));
        }
        for (i, n) in names.iter().enumerate() {
            let n = n
                .as_str()
                .ok_or_else(|| JsonError::msg("names must be strings"))?;
            if n != self.names[i] {
                return Err(JsonError::msg(format!(
                    "parameter {i} name mismatch: checkpoint {n:?}, model {:?}",
                    self.names[i]
                )));
            }
        }
        let load = |dst: &mut [Tensor], src: &Json| -> Result<(), JsonError> {
            let arrs = src
                .as_arr()
                .ok_or_else(|| JsonError::msg("expected tensor array"))?;
            if arrs.len() != dst.len() {
                return Err(JsonError::msg("tensor count mismatch"));
            }
            for (t, a) in dst.iter_mut().zip(arrs) {
                let vals = a
                    .as_arr()
                    .ok_or_else(|| JsonError::msg("expected value array"))?;
                if vals.len() != t.numel() {
                    return Err(JsonError::msg("tensor length mismatch"));
                }
                for (d, v) in t.data_mut().iter_mut().zip(vals) {
                    *d = v
                        .as_f64()
                        .ok_or_else(|| JsonError::msg("expected number"))?
                        as f32;
                }
            }
            Ok(())
        };
        load(&mut self.values, j.field("values")?)?;
        load(&mut self.velocity, j.field("velocity")?)?;
        self.zero_grads();
        Ok(())
    }

    /// One raw SGD-with-momentum update over every parameter (the
    /// [`crate::optim::Sgd`] optimizer wraps this with scheduling).
    pub fn sgd_step(&mut self, lr: f32, momentum: f32, weight_decay: f32) {
        for i in 0..self.values.len() {
            let wd = if self.decay[i] { weight_decay } else { 0.0 };
            let v = &mut self.velocity[i];
            let g = &self.grads[i];
            let p = &mut self.values[i];
            for ((vv, &gv), pv) in v
                .data_mut()
                .iter_mut()
                .zip(g.data().iter())
                .zip(p.data_mut().iter_mut())
            {
                let eff = gv + wd * *pv;
                *vv = momentum * *vv - lr * eff;
                *pv += *vv;
            }
        }
    }
}

/// A point-in-time copy of a [`ParamStore`]'s trainable state (values and
/// momentum buffers), for step rollback after a non-finite loss/gradient.
#[derive(Clone)]
pub struct ParamSnapshot {
    values: Vec<Vec<f32>>,
    velocity: Vec<Vec<f32>>,
}

/// A define-by-run autograd tape.
///
/// Build one per training step, record the forward computation through the
/// op constructors in [`crate::ops`], call [`Tape::backward`] on the scalar
/// loss, then [`Tape::write_param_grads`] to flush parameter gradients into
/// the [`ParamStore`].
pub struct Tape {
    nodes: Vec<Node>,
    param_vars: HashMap<usize, Var>,
    param_of_var: HashMap<usize, ParamId>,
}

impl Default for Tape {
    fn default() -> Self {
        Self::new()
    }
}

impl Tape {
    /// An empty tape.
    pub fn new() -> Self {
        Tape {
            nodes: Vec::new(),
            param_vars: HashMap::new(),
            param_of_var: HashMap::new(),
        }
    }

    /// Records a leaf holding input data (no gradient tracking beyond the
    /// tape; useful for activations and labels).
    pub fn input(&mut self, value: Tensor) -> Var {
        self.push(value, vec![], None)
    }

    /// Registers parameter `id` from `store` as a leaf, reusing the existing
    /// leaf if the parameter was already used on this tape (so shared modules
    /// accumulate gradients across uses).
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> Var {
        if let Some(&v) = self.param_vars.get(&id.0) {
            return v;
        }
        let v = self.push(store.value(id).clone(), vec![], None);
        self.param_vars.insert(id.0, v);
        self.param_of_var.insert(v.0, id);
        v
    }

    /// Pushes a node; `backward` maps the output gradient to parent
    /// gradients.
    pub fn push(&mut self, value: Tensor, parents: Vec<Var>, backward: Option<BackwardFn>) -> Var {
        let id = Var(self.nodes.len());
        self.nodes.push(Node {
            value,
            parents,
            backward,
            grad: None,
        });
        id
    }

    /// The value held by `v`.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    /// The accumulated gradient of `v` (after [`Tape::backward`]); `None` if
    /// no gradient flowed to it.
    pub fn grad(&self, v: Var) -> Option<&Tensor> {
        self.nodes[v.0].grad.as_ref()
    }

    /// Runs reverse-mode accumulation from `loss`, which must be scalar
    /// (numel == 1). Seeds `d loss / d loss = 1`.
    pub fn backward(&mut self, loss: Var) {
        assert_eq!(
            self.nodes[loss.0].value.numel(),
            1,
            "backward requires a scalar loss"
        );
        self.nodes[loss.0].grad = Some(Tensor::ones(self.nodes[loss.0].value.dims()));
        for i in (0..=loss.0).rev() {
            let Some(gy) = self.nodes[i].grad.clone() else {
                continue;
            };
            let Some(back) = self.nodes[i].backward.take() else {
                continue;
            };
            let parents = self.nodes[i].parents.clone();
            let pgrads = back(&gy);
            assert_eq!(
                pgrads.len(),
                parents.len(),
                "backward arity mismatch at node {i}"
            );
            for (p, g) in parents.into_iter().zip(pgrads.into_iter()) {
                match &mut self.nodes[p.0].grad {
                    Some(acc) => {
                        for (a, b) in acc.data_mut().iter_mut().zip(g.data().iter()) {
                            *a += b;
                        }
                    }
                    slot @ None => *slot = Some(g),
                }
            }
        }
    }

    /// Flushes gradients of every parameter leaf used on this tape into the
    /// store's accumulators.
    pub fn write_param_grads(&self, store: &mut ParamStore) {
        for (&var_idx, &pid) in &self.param_of_var {
            if let Some(g) = &self.nodes[var_idx].grad {
                store.accumulate_grad(pid, g);
            }
        }
    }

    /// Number of recorded nodes (diagnostics).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;

    #[test]
    fn simple_chain_gradient() {
        // loss = sum((x * 3)^2) with x = [1, 2] -> d/dx = 2*3x*3 = 18x
        let mut t = Tape::new();
        let x = t.input(Tensor::from_vec(vec![1.0, 2.0], &[2]));
        let y = ops::scale(&mut t, x, 3.0);
        let z = ops::square(&mut t, y);
        let l = ops::sum_all(&mut t, z);
        t.backward(l);
        let gx = t.grad(x).unwrap();
        assert_eq!(gx.data(), &[18.0, 36.0]);
    }

    #[test]
    fn fan_out_accumulates() {
        // loss = sum(x) + sum(2x): grad = 3 everywhere.
        let mut t = Tape::new();
        let x = t.input(Tensor::ones(&[4]));
        let a = ops::sum_all(&mut t, x);
        let x2 = ops::scale(&mut t, x, 2.0);
        let b = ops::sum_all(&mut t, x2);
        let l = ops::add(&mut t, a, b);
        t.backward(l);
        assert_eq!(t.grad(x).unwrap().data(), &[3.0, 3.0, 3.0, 3.0]);
    }

    #[test]
    fn param_reuse_accumulates_across_uses() {
        let mut store = ParamStore::new();
        let pid = store.add("w", Tensor::from_vec(vec![2.0], &[1]), true);
        let mut t = Tape::new();
        let w1 = t.param(&store, pid);
        let w2 = t.param(&store, pid);
        assert_eq!(w1, w2, "same param must map to same var");
        let y = ops::mul(&mut t, w1, w2); // w^2
        let l = ops::sum_all(&mut t, y);
        t.backward(l);
        t.write_param_grads(&mut store);
        // d(w^2)/dw = 2w = 4
        assert_eq!(store.grad(pid).data(), &[4.0]);
    }

    #[test]
    fn sgd_step_moves_against_gradient() {
        let mut store = ParamStore::new();
        let pid = store.add("w", Tensor::from_vec(vec![1.0], &[1]), false);
        store.accumulate_grad(pid, &Tensor::from_vec(vec![0.5], &[1]));
        store.sgd_step(0.1, 0.0, 0.0);
        assert!((store.value(pid).data()[0] - 0.95).abs() < 1e-6);
    }

    #[test]
    fn weight_decay_only_on_flagged_params() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_vec(vec![1.0], &[1]), true);
        let b = store.add("b", Tensor::from_vec(vec![1.0], &[1]), false);
        store.sgd_step(0.1, 0.0, 1.0); // zero grads; only wd acts
        assert!((store.value(w).data()[0] - 0.9).abs() < 1e-6);
        assert!((store.value(b).data()[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn snapshot_restore_round_trips_values_and_velocity() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_vec(vec![1.0, 2.0], &[2]), true);
        // Build up momentum so the snapshot captures more than values.
        store.accumulate_grad(w, &Tensor::from_vec(vec![0.5, -0.5], &[2]));
        store.sgd_step(0.1, 0.9, 0.0);
        let snap = store.snapshot();
        let before = store.value(w).data().to_vec();
        // A later (poisoned) step…
        store.accumulate_grad(w, &Tensor::from_vec(vec![f32::NAN, 1.0], &[2]));
        assert!(!store.grads_finite());
        store.sgd_step(0.1, 0.9, 0.0);
        assert!(!store.values_finite());
        // …rolls back exactly.
        store.restore(&snap);
        assert!(store.values_finite());
        assert_eq!(store.value(w).data(), &before[..]);
        assert_eq!(store.grad(w).data(), &[0.0, 0.0], "restore zeroes grads");
        // The re-run step from the restored state matches a clean run.
        store.accumulate_grad(w, &Tensor::from_vec(vec![0.1, 0.1], &[2]));
        store.sgd_step(0.1, 0.9, 0.0);
        assert!(store.values_finite());
    }

    #[test]
    fn state_json_round_trip_is_bitwise() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_vec(vec![0.1, -3.25e-7, 1e30], &[3]), true);
        store.add("b", Tensor::from_vec(vec![42.0], &[1]), false);
        store.accumulate_grad(w, &Tensor::from_vec(vec![1.0, 1.0, 1.0], &[3]));
        store.sgd_step(0.01, 0.9, 1e-4);
        let saved = store.state_to_json().to_string();

        let mut fresh = ParamStore::new();
        let w2 = fresh.add("w", Tensor::zeros(&[3]), true);
        fresh.add("b", Tensor::zeros(&[1]), false);
        let parsed = defcon_support::json::Json::parse(&saved).unwrap();
        fresh.load_state_json(&parsed).unwrap();
        assert_eq!(fresh.value(w2).data(), store.value(w).data());
        // Bitwise: re-serializing the restored store reproduces the bytes.
        assert_eq!(fresh.state_to_json().to_string(), saved);
    }

    #[test]
    fn load_state_rejects_mismatched_model() {
        let mut store = ParamStore::new();
        store.add("w", Tensor::zeros(&[2]), true);
        let saved = store.state_to_json();
        let mut other = ParamStore::new();
        other.add("different", Tensor::zeros(&[2]), true);
        assert!(other.load_state_json(&saved).is_err());
        let mut fewer = ParamStore::new();
        fewer.add("w", Tensor::zeros(&[3]), true); // wrong shape
        assert!(fewer.load_state_json(&saved).is_err());
    }

    #[test]
    #[should_panic(expected = "scalar loss")]
    fn backward_rejects_non_scalar() {
        let mut t = Tape::new();
        let x = t.input(Tensor::ones(&[2]));
        t.backward(x);
    }
}
