//! SGD with momentum and the paper's step-decay learning-rate schedule.

use crate::graph::ParamStore;

/// SGD configuration (paper §IV-A: momentum 0.9, initial LR 1e-2, decay by
/// 0.1 at milestones, saturating at 1e-6).
#[derive(Clone, Debug)]
pub struct Sgd {
    /// Base learning rate.
    pub lr: f32,
    /// Momentum coefficient.
    pub momentum: f32,
    /// Weight decay applied to decay-flagged parameters.
    pub weight_decay: f32,
    /// Iterations at which the LR is multiplied by `gamma`.
    pub milestones: Vec<usize>,
    /// Multiplicative decay at each milestone.
    pub gamma: f32,
    /// LR floor.
    pub min_lr: f32,
    step_count: usize,
    /// Multiplicative backoff applied on top of the schedule by recovery
    /// paths (1.0 = none). See [`Sgd::backoff`].
    lr_scale: f32,
}

impl Sgd {
    /// Builds an optimizer; milestones are absolute step indices.
    pub fn new(lr: f32, momentum: f32, weight_decay: f32) -> Self {
        Sgd {
            lr,
            momentum,
            weight_decay,
            milestones: Vec::new(),
            gamma: 0.1,
            min_lr: 1e-6,
            step_count: 0,
            lr_scale: 1.0,
        }
    }

    /// The paper's training configuration scaled to a given run length:
    /// decay ×0.1 at 60 % and 85 % of `total_steps`.
    pub fn paper_schedule(lr: f32, total_steps: usize) -> Self {
        let mut s = Sgd::new(lr, 0.9, 5e-4);
        s.milestones = vec![(total_steps * 6) / 10, (total_steps * 17) / 20];
        s
    }

    /// Learning rate in effect at the current step.
    pub fn current_lr(&self) -> f32 {
        let decays = self
            .milestones
            .iter()
            .filter(|&&m| self.step_count >= m)
            .count();
        (self.lr * self.lr_scale * self.gamma.powi(decays as i32)).max(self.min_lr)
    }

    /// Multiplies the backoff scale by `factor` (0 < factor ≤ 1). Trainer
    /// recovery paths call this after rolling back a non-finite step:
    /// divergence from a too-hot LR re-runs at a gentler one. The scale
    /// composes with (does not replace) the milestone schedule.
    pub fn backoff(&mut self, factor: f32) {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "backoff factor must be in (0, 1]"
        );
        self.lr_scale *= factor;
    }

    /// Current backoff scale (1.0 when no backoff has been applied).
    pub fn lr_scale(&self) -> f32 {
        self.lr_scale
    }

    /// Restores schedule position and backoff scale (checkpoint resume).
    pub fn restore_schedule(&mut self, steps: usize, lr_scale: f32) {
        self.step_count = steps;
        self.lr_scale = lr_scale;
    }

    /// Applies one update from the accumulated gradients, then advances the
    /// schedule and zeroes the gradients.
    pub fn step(&mut self, store: &mut ParamStore) {
        let lr = self.current_lr();
        store.sgd_step(lr, self.momentum, self.weight_decay);
        self.step_count += 1;
        store.zero_grads();
    }

    /// Number of completed steps.
    pub fn steps(&self) -> usize {
        self.step_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use defcon_tensor::Tensor;

    #[test]
    fn lr_decays_at_milestones() {
        let mut s = Sgd::new(0.1, 0.9, 0.0);
        s.milestones = vec![2, 4];
        let mut store = ParamStore::new();
        store.add("w", Tensor::zeros(&[1]), true);
        assert!((s.current_lr() - 0.1).abs() < 1e-7);
        s.step(&mut store); // step 0 -> 1
        s.step(&mut store); // 1 -> 2
        assert!((s.current_lr() - 0.01).abs() < 1e-7);
        s.step(&mut store);
        s.step(&mut store);
        assert!((s.current_lr() - 0.001).abs() < 1e-7);
    }

    #[test]
    fn lr_floors_at_min() {
        let mut s = Sgd::new(1e-5, 0.9, 0.0);
        s.milestones = vec![0];
        s.step_count = 1;
        assert!((s.current_lr() - 1e-6).abs() < 1e-9);
    }

    #[test]
    fn momentum_accelerates_descent() {
        // Minimize f(w) = w² from w=1; with momentum the parameter should
        // move farther after two identical-gradient steps than without.
        let run = |mom: f32| {
            let mut store = ParamStore::new();
            let w = store.add("w", Tensor::from_vec(vec![1.0], &[1]), false);
            let mut opt = Sgd::new(0.1, mom, 0.0);
            for _ in 0..2 {
                let g = Tensor::from_vec(vec![2.0 * store.value(w).data()[0]], &[1]);
                store.accumulate_grad(w, &g);
                opt.step(&mut store);
            }
            store.value(w).data()[0]
        };
        assert!(run(0.9) < run(0.0));
    }

    #[test]
    fn backoff_scales_lr_and_composes_with_schedule() {
        let mut s = Sgd::new(0.1, 0.9, 0.0);
        s.milestones = vec![1];
        s.backoff(0.5);
        assert!((s.current_lr() - 0.05).abs() < 1e-7);
        s.step_count = 1; // past the milestone: gamma and backoff compose
        assert!((s.current_lr() - 0.005).abs() < 1e-7);
    }

    #[test]
    fn restore_schedule_reproduces_lr() {
        let mut a = Sgd::paper_schedule(0.01, 100);
        let mut store = ParamStore::new();
        store.add("w", Tensor::zeros(&[1]), true);
        for _ in 0..70 {
            a.step(&mut store);
        }
        a.backoff(0.25);
        let mut b = Sgd::paper_schedule(0.01, 100);
        b.restore_schedule(a.steps(), a.lr_scale());
        assert_eq!(a.current_lr(), b.current_lr());
        assert_eq!(a.steps(), b.steps());
    }

    #[test]
    fn paper_schedule_milestones_proportional() {
        let s = Sgd::paper_schedule(0.01, 100);
        assert_eq!(s.milestones, vec![60, 85]);
    }
}

/// Adam optimizer (Kingma & Ba) — an alternative to [`Sgd`] for the
/// ablation studies; maintains per-parameter first/second moment estimates
/// inside the optimizer (not the store).
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical epsilon.
    pub eps: f32,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
    t: i32,
}

impl Adam {
    /// Standard Adam with the usual defaults.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            m: Vec::new(),
            v: Vec::new(),
            t: 0,
        }
    }

    /// Applies one update from the accumulated gradients, then zeroes them.
    pub fn step(&mut self, store: &mut crate::graph::ParamStore) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t);
        let bc2 = 1.0 - self.beta2.powi(self.t);
        for i in 0..store.len() {
            let id = crate::graph::ParamId(i);
            if self.m.len() <= i {
                let n = store.value(id).numel();
                self.m.push(vec![0.0; n]);
                self.v.push(vec![0.0; n]);
            }
            let g: Vec<f32> = store.grad(id).data().to_vec();
            let (m, v) = (&mut self.m[i], &mut self.v[i]);
            let lr = self.lr;
            let (b1, b2, eps) = (self.beta1, self.beta2, self.eps);
            let p = store.value_mut(id);
            for (((pv, &gv), mv), vv) in p
                .data_mut()
                .iter_mut()
                .zip(g.iter())
                .zip(m.iter_mut())
                .zip(v.iter_mut())
            {
                *mv = b1 * *mv + (1.0 - b1) * gv;
                *vv = b2 * *vv + (1.0 - b2) * gv * gv;
                let mhat = *mv / bc1;
                let vhat = *vv / bc2;
                *pv -= lr * mhat / (vhat.sqrt() + eps);
            }
        }
        store.zero_grads();
    }
}

#[cfg(test)]
mod adam_tests {
    use super::*;
    use crate::graph::ParamStore;
    use defcon_tensor::Tensor;

    #[test]
    fn adam_minimizes_quadratic() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_vec(vec![3.0, -2.0], &[2]), false);
        let mut opt = Adam::new(0.1);
        for _ in 0..200 {
            let g = store.value(w).scale(2.0); // d/dw ||w||^2
            store.accumulate_grad(w, &g);
            opt.step(&mut store);
        }
        assert!(
            store.value(w).sq_norm() < 1e-3,
            "{:?}",
            store.value(w).data()
        );
    }

    #[test]
    fn adam_first_step_is_lr_sized() {
        // With bias correction the very first step has magnitude ≈ lr.
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_vec(vec![1.0], &[1]), false);
        let mut opt = Adam::new(0.05);
        store.accumulate_grad(w, &Tensor::from_vec(vec![123.0], &[1]));
        opt.step(&mut store);
        assert!((store.value(w).data()[0] - (1.0 - 0.05)).abs() < 1e-4);
    }
}
