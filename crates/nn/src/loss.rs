//! Loss functions, each recorded as a differentiable tape op.

use crate::graph::{Tape, Var};
use crate::ops;
use defcon_tensor::Tensor;

/// Mean softmax cross-entropy over a batch of logits `[N, K]` with integer
/// class labels.
pub fn softmax_cross_entropy(t: &mut Tape, logits: Var, labels: &[usize]) -> Var {
    let lv = t.value(logits).clone();
    let (n, k) = (lv.dims()[0], lv.dims()[1]);
    assert_eq!(labels.len(), n, "one label per batch row");
    assert!(labels.iter().all(|&l| l < k), "label out of range");

    // Forward: mean of -log softmax(logits)[label].
    let mut probs = vec![0.0f32; n * k];
    let mut loss = 0.0f32;
    for i in 0..n {
        let row = &lv.data()[i * k..(i + 1) * k];
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = row.iter().map(|v| (v - m).exp()).collect();
        let z: f32 = exps.iter().sum();
        for j in 0..k {
            probs[i * k + j] = exps[j] / z;
        }
        loss -= (probs[i * k + labels[i]].max(1e-12)).ln();
    }
    loss /= n as f32;

    let labels = labels.to_vec();
    t.push(
        Tensor::from_vec(vec![loss], &[1]),
        vec![logits],
        Some(Box::new(move |gy| {
            let g = gy.data()[0] / n as f32;
            let mut gl = probs;
            for (i, &lab) in labels.iter().enumerate() {
                gl[i * k + lab] -= 1.0;
            }
            for v in &mut gl {
                *v *= g;
            }
            vec![Tensor::from_vec(gl, &[n, k])]
        })),
    )
}

/// Mean binary cross-entropy with logits. `targets` must be the same shape
/// as `logits` with values in `[0, 1]`. Numerically stable formulation:
/// `max(x,0) − x·t + ln(1 + e^{−|x|})`.
pub fn bce_with_logits(t: &mut Tape, logits: Var, targets: &Tensor) -> Var {
    let lv = t.value(logits).clone();
    assert_eq!(lv.dims(), targets.dims(), "bce shape mismatch");
    let n = lv.numel() as f32;
    let mut loss = 0.0f32;
    for (&x, &tg) in lv.data().iter().zip(targets.data().iter()) {
        loss += x.max(0.0) - x * tg + (1.0 + (-x.abs()).exp()).ln();
    }
    loss /= n;
    let targets = targets.clone();
    t.push(
        Tensor::from_vec(vec![loss], &[1]),
        vec![logits],
        Some(Box::new(move |gy| {
            let g = gy.data()[0] / n;
            let gl: Vec<f32> = lv
                .data()
                .iter()
                .zip(targets.data().iter())
                .map(|(&x, &tg)| g * (1.0 / (1.0 + (-x).exp()) - tg))
                .collect();
            vec![Tensor::from_vec(gl, lv.dims())]
        })),
    )
}

/// Mean smooth-L1 (Huber) loss between `pred` and a constant target, the
/// standard box-regression loss:
/// `0.5 d²/β` for `|d| < β`, else `|d| − 0.5 β`.
pub fn smooth_l1(t: &mut Tape, pred: Var, target: &Tensor, beta: f32) -> Var {
    let pv = t.value(pred).clone();
    assert_eq!(pv.dims(), target.dims(), "smooth_l1 shape mismatch");
    assert!(beta > 0.0);
    let n = pv.numel() as f32;
    let mut loss = 0.0f32;
    for (&p, &tg) in pv.data().iter().zip(target.data().iter()) {
        let d = (p - tg).abs();
        loss += if d < beta {
            0.5 * d * d / beta
        } else {
            d - 0.5 * beta
        };
    }
    loss /= n;
    let target = target.clone();
    t.push(
        Tensor::from_vec(vec![loss], &[1]),
        vec![pred],
        Some(Box::new(move |gy| {
            let g = gy.data()[0] / n;
            let gp: Vec<f32> = pv
                .data()
                .iter()
                .zip(target.data().iter())
                .map(|(&p, &tg)| {
                    let d = p - tg;
                    g * if d.abs() < beta { d / beta } else { d.signum() }
                })
                .collect();
            vec![Tensor::from_vec(gp, pv.dims())]
        })),
    )
}

/// Mean squared error against a constant target.
pub fn mse(t: &mut Tape, pred: Var, target: &Tensor) -> Var {
    let tv = t.input(target.clone());
    let d = ops::sub(t, pred, tv);
    let s = ops::square(t, d);
    ops::mean_all(t, s)
}

/// L2 penalty `coef · mean(x²)` — used for *regularized training* of offsets
/// (paper Table V: an alternative to hard bounding).
pub fn l2_penalty(t: &mut Tape, x: Var, coef: f32) -> Var {
    let s = ops::square(t, x);
    let m = ops::mean_all(t, s);
    ops::scale(t, m, coef)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ce_uniform_logits_is_log_k() {
        let mut t = Tape::new();
        let logits = t.input(Tensor::zeros(&[2, 4]));
        let l = softmax_cross_entropy(&mut t, logits, &[0, 3]);
        assert!((t.value(l).data()[0] - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn ce_gradient_matches_fd() {
        let lv = Tensor::randn(&[2, 3], 0.0, 1.0, 70);
        let labels = [1usize, 2];
        let run = |lv: &Tensor| {
            let mut t = Tape::new();
            let x = t.input(lv.clone());
            let l = softmax_cross_entropy(&mut t, x, &labels);
            t.value(l).data()[0]
        };
        let mut t = Tape::new();
        let x = t.input(lv.clone());
        let l = softmax_cross_entropy(&mut t, x, &labels);
        t.backward(l);
        let g = t.grad(x).unwrap().clone();
        for i in 0..6 {
            let mut p = lv.clone();
            p.data_mut()[i] += 1e-3;
            let mut m = lv.clone();
            m.data_mut()[i] -= 1e-3;
            let fd = (run(&p) - run(&m)) / 2e-3;
            assert!((g.data()[i] - fd).abs() < 1e-3, "{} vs {fd}", g.data()[i]);
        }
    }

    #[test]
    fn ce_decreases_under_gradient_descent() {
        let mut lv = Tensor::randn(&[4, 5], 0.0, 0.5, 71);
        let labels = [0usize, 1, 2, 3];
        let mut prev = f32::MAX;
        for _ in 0..20 {
            let mut t = Tape::new();
            let x = t.input(lv.clone());
            let l = softmax_cross_entropy(&mut t, x, &labels);
            let loss = t.value(l).data()[0];
            assert!(loss <= prev + 1e-5);
            prev = loss;
            t.backward(l);
            let g = t.grad(x).unwrap().clone();
            for (v, gv) in lv.data_mut().iter_mut().zip(g.data().iter()) {
                *v -= 1.0 * gv;
            }
        }
        assert!(prev < 1.0);
    }

    #[test]
    fn bce_gradient_matches_fd() {
        let lv = Tensor::randn(&[6], 0.0, 1.5, 72);
        let tg = Tensor::from_vec(vec![0.0, 1.0, 0.5, 1.0, 0.0, 0.25], &[6]);
        let run = |lv: &Tensor| {
            let mut t = Tape::new();
            let x = t.input(lv.clone());
            let l = bce_with_logits(&mut t, x, &tg);
            t.value(l).data()[0]
        };
        let mut t = Tape::new();
        let x = t.input(lv.clone());
        let l = bce_with_logits(&mut t, x, &tg);
        t.backward(l);
        let g = t.grad(x).unwrap().clone();
        for i in 0..6 {
            let mut p = lv.clone();
            p.data_mut()[i] += 1e-3;
            let mut m = lv.clone();
            m.data_mut()[i] -= 1e-3;
            let fd = (run(&p) - run(&m)) / 2e-3;
            assert!((g.data()[i] - fd).abs() < 1e-3);
        }
    }

    #[test]
    fn smooth_l1_quadratic_then_linear() {
        let mut t = Tape::new();
        let p = t.input(Tensor::from_vec(vec![0.5, 3.0], &[2]));
        let tg = Tensor::zeros(&[2]);
        let l = smooth_l1(&mut t, p, &tg, 1.0);
        // (0.5*0.25 + (3-0.5)) / 2 = (0.125 + 2.5)/2
        assert!((t.value(l).data()[0] - 1.3125).abs() < 1e-5);
        t.backward(l);
        let g = t.grad(p).unwrap();
        assert!((g.data()[0] - 0.25).abs() < 1e-6); // d/2 within beta, /n
        assert!((g.data()[1] - 0.5).abs() < 1e-6); // sign/n outside
    }

    #[test]
    fn l2_penalty_scales() {
        let mut t = Tape::new();
        let x = t.input(Tensor::from_vec(vec![2.0, -2.0], &[2]));
        let l = l2_penalty(&mut t, x, 0.5);
        assert!((t.value(l).data()[0] - 2.0).abs() < 1e-6);
    }
}
