//! Layer shapes and thread-block tile configurations.

use defcon_tensor::conv::Conv2dParams;
use defcon_tensor::sample::DeformConv2dParams;

/// The shape of one deformable (or regular) convolution layer, the unit the
/// paper's layer-wise tables sweep over.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeformLayerShape {
    /// Batch size.
    pub n: usize,
    /// Input channels.
    pub c_in: usize,
    /// Output channels.
    pub c_out: usize,
    /// Input height.
    pub h: usize,
    /// Input width.
    pub w: usize,
    /// Square kernel extent.
    pub kernel: usize,
    /// Stride.
    pub stride: usize,
    /// Padding.
    pub pad: usize,
    /// Deformable groups.
    pub deform_groups: usize,
}

impl DeformLayerShape {
    /// A stride-1, same-padded 3×3 deformable layer (the paper's sweep
    /// rows).
    pub fn same3x3(c_in: usize, c_out: usize, h: usize, w: usize) -> Self {
        DeformLayerShape {
            n: 1,
            c_in,
            c_out,
            h,
            w,
            kernel: 3,
            stride: 1,
            pad: 1,
            deform_groups: 1,
        }
    }

    /// The convolution window as `Conv2dParams`.
    pub fn conv_params(&self) -> Conv2dParams {
        Conv2dParams {
            kernel: self.kernel,
            stride: self.stride,
            pad: self.pad,
            dilation: 1,
        }
    }

    /// The deformable parameters (window + groups).
    pub fn deform_params(&self) -> DeformConv2dParams {
        DeformConv2dParams {
            conv: self.conv_params(),
            deform_groups: self.deform_groups,
        }
    }

    /// Output spatial extent.
    pub fn out_hw(&self) -> (usize, usize) {
        self.conv_params().out_hw(self.h, self.w)
    }

    /// Offset-tensor channel count `2·G·k²`.
    pub fn offset_channels(&self) -> usize {
        2 * self.deform_groups * self.kernel * self.kernel
    }

    /// MACs of the main (deformable) convolution.
    pub fn conv_macs(&self) -> u64 {
        let (oh, ow) = self.out_hw();
        (self.n * self.c_out * self.c_in * self.kernel * self.kernel * oh * ow) as u64
    }
}

/// The six layer shapes of the paper's layer-wise speedup tables
/// (Table II on Xavier, Table IV on the 2080 Ti, Fig. 7/9/10).
pub fn paper_layer_sweep() -> Vec<DeformLayerShape> {
    vec![
        DeformLayerShape::same3x3(128, 128, 138, 138),
        DeformLayerShape::same3x3(128, 128, 69, 69),
        DeformLayerShape::same3x3(256, 256, 69, 69),
        DeformLayerShape::same3x3(256, 256, 35, 35),
        DeformLayerShape::same3x3(512, 512, 35, 35),
        DeformLayerShape::same3x3(512, 512, 18, 18),
    ]
}

/// Thread-block tile over the output plane for the sampling (im2col) stage —
/// the GPU-specific parameter the paper autotunes (Fig. 8).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TileConfig {
    /// Tile height in output rows.
    pub h: usize,
    /// Tile width in output columns.
    pub w: usize,
}

impl TileConfig {
    /// The default CUDA-ish 16×16 tile.
    pub fn default16() -> Self {
        TileConfig { h: 16, w: 16 }
    }

    /// Threads per block (one per tile element).
    pub fn threads(&self) -> usize {
        self.h * self.w
    }

    /// The tile search space explored by the autotuner: every (h, w) with
    /// 32 ≤ threads ≤ 1024, powers of two from 2 to 64 per side.
    pub fn search_space() -> Vec<TileConfig> {
        let sides = [2usize, 4, 8, 16, 32, 64];
        let mut out = Vec::new();
        for &h in &sides {
            for &w in &sides {
                let t = h * w;
                if (32..=1024).contains(&t) {
                    out.push(TileConfig { h, w });
                }
            }
        }
        out
    }
}

impl std::fmt::Display for TileConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}", self.h, self.w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_matches_paper_rows() {
        let s = paper_layer_sweep();
        assert_eq!(s.len(), 6);
        assert_eq!((s[0].c_in, s[0].h), (128, 138));
        assert_eq!((s[5].c_out, s[5].w), (512, 18));
        for l in &s {
            let (oh, ow) = l.out_hw();
            assert_eq!((oh, ow), (l.h, l.w), "stride-1 same conv preserves extent");
        }
    }

    #[test]
    fn offset_channels_18_for_3x3() {
        assert_eq!(paper_layer_sweep()[0].offset_channels(), 18);
    }

    #[test]
    fn macs_scale_with_channels() {
        let a = DeformLayerShape::same3x3(128, 128, 69, 69);
        let b = DeformLayerShape::same3x3(256, 256, 69, 69);
        assert_eq!(b.conv_macs(), 4 * a.conv_macs());
    }

    #[test]
    fn tile_space_is_bounded() {
        let space = TileConfig::search_space();
        assert!(!space.is_empty());
        for t in &space {
            assert!((32..=1024).contains(&t.threads()), "{t}");
        }
        assert!(space.contains(&TileConfig::default16()));
    }
}
