//! The complete deformable operation: offset prediction → deformable
//! sampling (im2col) → GEMM, composable in every configuration the paper
//! evaluates, with numeric execution and simulator timing.
//!
//! Every kernel this operator launches — the im2col sampling stage, the
//! fused texture kernel, the GEMM epilogue, and both offset-predictor
//! convolutions (regular and depthwise+pointwise) — stages its warp events
//! through the sink's fixed-capacity scratch (`global_load_into` /
//! `tex_fetch_warp_into`), so a simulated block allocates nothing on the
//! heap. `tests/zero_alloc.rs` pins that contract for each family.

use crate::gemm_kernel::{DepthwiseConvKernel, GemmKernel, RegularConvKernel};
use crate::im2col::{im2col_deform_numeric, Im2colDeformKernel, Sampling};
use crate::layer::{DeformLayerShape, TileConfig};
use defcon_gpusim::texture::TextureLimitError;
use defcon_gpusim::{Gpu, KernelReport};
use defcon_support::error::DefconError;
use defcon_support::json::Json;
use defcon_support::obs;
use defcon_tensor::sample::OffsetTransform;
use defcon_tensor::{gemm, Tensor};

/// Maps a texture-setup failure to the typed constraint error the
/// degradation layer dispatches on.
fn texture_constraint(e: TextureLimitError) -> DefconError {
    DefconError::Constraint {
        what: "texture-limit".into(),
        detail: e.message,
    }
}

/// The three sampling implementations of the paper's comparison.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SamplingMethod {
    /// PyTorch-style software bilinear interpolation from global memory.
    SoftwareBilinear,
    /// Layered-texture hardware bilinear (`tex2D`).
    Tex2d,
    /// Layered-texture hardware bilinear with reduced-precision filter
    /// arithmetic (`tex2D++`).
    Tex2dPlusPlus,
}

impl SamplingMethod {
    /// The im2col sampling configuration for this method.
    pub fn sampling(&self) -> Sampling {
        match self {
            SamplingMethod::SoftwareBilinear => Sampling::Software,
            SamplingMethod::Tex2d => Sampling::Texture { frac_bits: 23 },
            SamplingMethod::Tex2dPlusPlus => Sampling::Texture { frac_bits: 8 },
        }
    }

    /// Display name used in result tables.
    pub fn name(&self) -> &'static str {
        match self {
            SamplingMethod::SoftwareBilinear => "PyTorch",
            SamplingMethod::Tex2d => "tex2D",
            SamplingMethod::Tex2dPlusPlus => "tex2D++",
        }
    }

    /// One rung down the fallback ladder (`tex2D++` → `tex2D` → software);
    /// `None` once at the software floor. This is the same order
    /// [`simulate_deform_with_fallback`] walks on texture-constraint
    /// failures, reused by `core::serve` as its overload degradation.
    pub fn degrade(&self) -> Option<SamplingMethod> {
        match self {
            SamplingMethod::Tex2dPlusPlus => Some(SamplingMethod::Tex2d),
            SamplingMethod::Tex2d => Some(SamplingMethod::SoftwareBilinear),
            SamplingMethod::SoftwareBilinear => None,
        }
    }

    /// Every method, fallback-ladder-ordered (fastest first).
    pub fn ladder() -> [SamplingMethod; 3] {
        [
            SamplingMethod::Tex2dPlusPlus,
            SamplingMethod::Tex2d,
            SamplingMethod::SoftwareBilinear,
        ]
    }
}

/// The deformable-convolution operator family (the generation axis,
/// orthogonal to [`SamplingMethod`]).
///
/// * `DcnV1` — offsets only (the paper's operator).
/// * `DcnV2` — offsets plus a per-tap **sigmoid modulation mask**; the
///   kernel consumes the post-sigmoid mask (torchvision semantics), so an
///   all-ones mask reduces v2 to v1 byte-for-byte.
/// * `DcnV3` — offsets plus grouped **softmax-normalized** aggregation
///   weights; the kernel consumes raw logits and normalizes over the `k²`
///   taps of each deformable group internally. Constant logits reduce v3
///   to a uniform `1/k²` tap average.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpFamily {
    /// Offsets only.
    DcnV1,
    /// Offsets + sigmoid modulation mask (modulated DCN).
    DcnV2,
    /// Offsets + grouped softmax aggregation (sparse DCN).
    DcnV3,
}

impl OpFamily {
    /// Display name used in result tables and the serving canonical form.
    pub fn name(&self) -> &'static str {
        match self {
            OpFamily::DcnV1 => "DCNv1",
            OpFamily::DcnV2 => "DCNv2",
            OpFamily::DcnV3 => "DCNv3",
        }
    }

    /// Suffix appended to kernel labels (`""` for v1 so every legacy
    /// golden trace and report name stays byte-identical).
    pub fn label_suffix(&self) -> &'static str {
        match self {
            OpFamily::DcnV1 => "",
            OpFamily::DcnV2 => "_dcnv2",
            OpFamily::DcnV3 => "_dcnv3",
        }
    }

    /// Every family, generation-ordered.
    pub fn all() -> [OpFamily; 3] {
        [OpFamily::DcnV1, OpFamily::DcnV2, OpFamily::DcnV3]
    }

    /// Extra predictor output channels this family needs on top of the
    /// `2·G·k²` offset channels: `G·k²` mask (v2) or logit (v3) channels,
    /// zero for v1 (the Snippet-1 `conv_offset_mask` recipe: one joint
    /// conv emitting `3·G·k²` channels for v2/v3).
    pub fn modulation_channels(&self, shape: &DeformLayerShape) -> usize {
        match self {
            OpFamily::DcnV1 => 0,
            OpFamily::DcnV2 | OpFamily::DcnV3 => shape.deform_groups * shape.kernel * shape.kernel,
        }
    }
}

/// Which offset-predicting convolution precedes the deformable kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OffsetPredictorKind {
    /// Regular `k×k` convolution producing `2·G·k²` channels (the original
    /// DCN design).
    Standard,
    /// DEFCON's lightweight depthwise-3×3 + pointwise-1×1 pair (§III-A-b).
    Lightweight,
}

/// A fully-configured deformable convolution operator.
#[derive(Clone, Debug)]
pub struct DeformConvOp {
    /// Layer shape.
    pub shape: DeformLayerShape,
    /// Thread-block tile for the sampling stage (the Fig. 8 knob).
    pub tile: TileConfig,
    /// Sampling implementation.
    pub method: SamplingMethod,
    /// Offset predictor flavour.
    pub offset_predictor: OffsetPredictorKind,
    /// Offset post-processing (bounding / rounding).
    pub offset_transform: OffsetTransform,
    /// Operator generation (v1 / v2-modulated / v3-sparse).
    pub family: OpFamily,
    /// Modulation tensor `[N, G·k², outH, outW]`: the post-sigmoid mask
    /// for v2, raw aggregation logits for v3, ignored for v1. `None`
    /// means the family's neutral element (all-ones mask / constant
    /// logits) — the trace never reads these values, only the numeric
    /// path does, so serving can simulate any family without a tensor.
    pub modulation: Option<Tensor>,
}

impl DeformConvOp {
    /// A baseline operator: standard offset conv, software bilinear,
    /// 16×16 tiles, unbounded offsets, DCNv1.
    pub fn baseline(shape: DeformLayerShape) -> Self {
        DeformConvOp {
            shape,
            tile: TileConfig::default16(),
            method: SamplingMethod::SoftwareBilinear,
            offset_predictor: OffsetPredictorKind::Standard,
            offset_transform: OffsetTransform::Identity,
            family: OpFamily::DcnV1,
            modulation: None,
        }
    }

    /// Numeric execution of the deformable convolution proper (offsets are
    /// given, not predicted): column materialization with this operator's
    /// sampling semantics, then GEMM against `weight`.
    ///
    /// For `SoftwareBilinear` and `Tex2d` this is exactly
    /// `deform_conv2d_ref`; for `Tex2dPlusPlus` it reflects the reduced
    /// filter precision.
    pub fn execute(&self, x: &Tensor, offsets: &Tensor, weight: &Tensor, gpu: &Gpu) -> Tensor {
        let s = self.shape;
        let (oh, ow) = s.out_hw();
        let cfg = gpu.config();
        let kernel = Im2colDeformKernel::new_family(
            s,
            self.tile,
            x,
            offsets,
            self.offset_transform,
            self.method.sampling(),
            cfg.max_texture_layers,
            cfg.max_texture_dim,
            self.family,
            self.modulation.as_ref(),
        )
        .expect("texture limits exceeded");
        let krows = s.c_in * s.kernel * s.kernel;
        let cols_n = oh * ow;
        let mut out = Tensor::zeros(&[s.n, s.c_out, oh, ow]);
        for ni in 0..s.n {
            let cols = im2col_deform_numeric(&kernel, ni);
            let dst = &mut out.data_mut()[ni * s.c_out * cols_n..(ni + 1) * s.c_out * cols_n];
            gemm::gemm(weight.data(), &cols, dst, s.c_out, krows, cols_n);
        }
        out
    }

    /// Simulates the deformable stage on `gpu`, returning one report per
    /// kernel launch.
    ///
    /// The software baseline runs as PyTorch ships it — an im2col sampling
    /// kernel followed by a GEMM over the materialized column matrix. The
    /// texture variants run DEFCON's **fused** kernel (sampling feeds the
    /// convolution accumulators directly; no column buffer).
    ///
    /// Panics when the shape exceeds the device's texture limits; see
    /// [`DeformConvOp::try_simulate_deform`] for the fallible form.
    pub fn simulate_deform(&self, gpu: &Gpu, x: &Tensor, offsets: &Tensor) -> Vec<KernelReport> {
        self.try_simulate_deform(gpu, x, offsets)
            .expect("texture limits exceeded")
    }

    /// [`DeformConvOp::simulate_deform`] with the texture-limit failure
    /// surfaced as a typed [`DefconError::Constraint`] instead of a panic.
    pub fn try_simulate_deform(
        &self,
        gpu: &Gpu,
        x: &Tensor,
        offsets: &Tensor,
    ) -> Result<Vec<KernelReport>, DefconError> {
        let cfg = gpu.config();
        match self.method {
            SamplingMethod::SoftwareBilinear => {
                let im2col = Im2colDeformKernel::new_family(
                    self.shape,
                    self.tile,
                    x,
                    offsets,
                    self.offset_transform,
                    self.method.sampling(),
                    cfg.max_texture_layers,
                    cfg.max_texture_dim,
                    self.family,
                    self.modulation.as_ref(),
                )
                .map_err(texture_constraint)?;
                let gemm_stage = GemmKernel::for_conv(&self.shape);
                Ok(vec![
                    gpu.launch_checked(&im2col)?,
                    gpu.launch_checked(&gemm_stage)?,
                ])
            }
            SamplingMethod::Tex2d | SamplingMethod::Tex2dPlusPlus => {
                let frac_bits = match self.method.sampling() {
                    Sampling::Texture { frac_bits } => frac_bits,
                    Sampling::Software => unreachable!(),
                };
                let mut fused = crate::fused::FusedTexDeformKernel::new_family(
                    self.shape,
                    self.tile,
                    x,
                    offsets,
                    self.offset_transform,
                    frac_bits,
                    cfg.max_texture_layers,
                    cfg.max_texture_dim,
                    self.family,
                    self.modulation.as_ref(),
                )
                .map_err(texture_constraint)?;
                fused.co_blocks =
                    crate::fused::FusedTexDeformKernel::pick_co_blocks(&self.shape, self.tile, cfg);
                Ok(vec![gpu.launch_checked(&fused)?])
            }
        }
    }

    /// Simulates the offset-predicting convolution on `gpu`.
    ///
    /// For v2/v3 the predictor is the joint `conv_offset_mask` design:
    /// one convolution emitting `2·G·k²` offset channels **plus** `G·k²`
    /// mask/logit channels (`3·G·k²` total), so the family's predictor
    /// cost is honestly wider than v1's.
    pub fn simulate_offset_conv(&self, gpu: &Gpu) -> Vec<KernelReport> {
        let s = self.shape;
        let pred_channels = s.offset_channels() + self.family.modulation_channels(&s);
        match self.offset_predictor {
            OffsetPredictorKind::Standard => {
                let shape = DeformLayerShape {
                    c_out: pred_channels,
                    ..s
                };
                vec![gpu.launch(&RegularConvKernel::new(shape, "offset_conv"))]
            }
            OffsetPredictorKind::Lightweight => {
                // Depthwise 3×3 keeps channels; pointwise 1×1 projects to
                // 2Gk² channels (plus Gk² modulation channels for v2/v3).
                let dw_shape = DeformLayerShape { c_out: s.c_in, ..s };
                let (oh, ow) = s.out_hw();
                let pw = GemmKernel {
                    m: pred_channels,
                    k: s.c_in,
                    n: oh * ow,
                    batch: s.n,
                    a_base: crate::im2col::address_map::WEIGHTS,
                    b_base: crate::im2col::address_map::INPUT,
                    c_base: crate::im2col::address_map::OFFSETS,
                    name: "offset_pointwise".into(),
                };
                vec![
                    gpu.launch(&DepthwiseConvKernel { shape: dw_shape }),
                    gpu.launch(&pw),
                ]
            }
        }
    }

    /// Simulates the complete deformable operation (offset prediction +
    /// sampling + GEMM). Returns total milliseconds and per-kernel reports.
    pub fn simulate_total(
        &self,
        gpu: &Gpu,
        x: &Tensor,
        offsets: &Tensor,
    ) -> (f64, Vec<KernelReport>) {
        let mut reports = self.simulate_offset_conv(gpu);
        reports.extend(self.simulate_deform(gpu, x, offsets));
        let total = reports.iter().map(|r| r.time_ms).sum();
        (total, reports)
    }
}

/// Simulated latency of a plain (rigid) convolution at `shape`, timed as
/// an implicit GEMM — the same matrix engine the deformable op's epilogue
/// uses, so "replace this conv with a DCN" comparisons are apples to
/// apples.
pub fn simulate_regular_conv_ms(gpu: &Gpu, shape: &DeformLayerShape) -> f64 {
    gpu.launch(&GemmKernel::for_conv(shape)).time_ms
}

/// Deterministic synthetic inputs for latency experiments: an activation
/// tensor and an offset field with components in `[-spread, spread]`.
/// (Trained DCN offsets concentrate within a few pixels; `spread` models
/// how diffuse the learned deformation is, which is what offset bounding
/// changes at the memory-system level.)
pub fn synthetic_inputs(shape: &DeformLayerShape, spread: f32, seed: u64) -> (Tensor, Tensor) {
    let (oh, ow) = shape.out_hw();
    let x = Tensor::randn(&[shape.n, shape.c_in, shape.h, shape.w], 0.0, 1.0, seed);
    let offsets = Tensor::rand_uniform(
        &[shape.n, shape.offset_channels(), oh, ow],
        -spread,
        spread,
        seed ^ 0x5eed,
    );
    (x, offsets)
}

/// Deterministic synthetic modulation tensor for `family` at `shape`:
/// `None` for v1; a `[N, G·k², outH, outW]` mask in `(0, 1)` (as if
/// post-sigmoid) for v2; raw logits in `[-2, 2]` for v3. Same seeding
/// discipline as [`synthetic_inputs`].
pub fn synthetic_modulation(
    shape: &DeformLayerShape,
    family: OpFamily,
    seed: u64,
) -> Option<Tensor> {
    let (oh, ow) = shape.out_hw();
    let dims = [
        shape.n,
        shape.deform_groups * shape.kernel * shape.kernel,
        oh,
        ow,
    ];
    match family {
        OpFamily::DcnV1 => None,
        OpFamily::DcnV2 => Some(Tensor::rand_uniform(&dims, 0.05, 0.95, seed ^ 0x3a5c)),
        OpFamily::DcnV3 => Some(Tensor::rand_uniform(&dims, -2.0, 2.0, seed ^ 0x3a5c)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use defcon_gpusim::DeviceConfig;
    use defcon_tensor::sample::deform_conv2d_ref;

    fn small() -> (DeformLayerShape, Tensor, Tensor, Tensor) {
        let shape = DeformLayerShape::same3x3(4, 6, 10, 10);
        let (x, offsets) = synthetic_inputs(&shape, 2.0, 42);
        let w = Tensor::randn(&[6, 4, 3, 3], 0.0, 0.3, 43);
        (shape, x, offsets, w)
    }

    #[test]
    fn software_execute_matches_reference() {
        let (shape, x, offsets, w) = small();
        let gpu = Gpu::new(DeviceConfig::xavier_agx());
        let op = DeformConvOp::baseline(shape);
        let got = op.execute(&x, &offsets, &w, &gpu);
        let expect = deform_conv2d_ref(
            &x,
            &offsets,
            &w,
            None,
            &shape.deform_params(),
            OffsetTransform::Identity,
        );
        defcon_tensor::assert_close(&got, &expect, 1e-3, 1e-3);
    }

    #[test]
    fn tex2d_execute_matches_reference() {
        let (shape, x, offsets, w) = small();
        let gpu = Gpu::new(DeviceConfig::xavier_agx());
        let op = DeformConvOp {
            method: SamplingMethod::Tex2d,
            ..DeformConvOp::baseline(shape)
        };
        let got = op.execute(&x, &offsets, &w, &gpu);
        let expect = deform_conv2d_ref(
            &x,
            &offsets,
            &w,
            None,
            &shape.deform_params(),
            OffsetTransform::Identity,
        );
        defcon_tensor::assert_close(&got, &expect, 1e-3, 1e-3);
    }

    #[test]
    fn tex2dpp_execute_close_to_reference() {
        let (shape, x, offsets, w) = small();
        let gpu = Gpu::new(DeviceConfig::xavier_agx());
        let op = DeformConvOp {
            method: SamplingMethod::Tex2dPlusPlus,
            ..DeformConvOp::baseline(shape)
        };
        let got = op.execute(&x, &offsets, &w, &gpu);
        let expect = deform_conv2d_ref(
            &x,
            &offsets,
            &w,
            None,
            &shape.deform_params(),
            OffsetTransform::Identity,
        );
        // Reduced filter precision: small relative error, never wild.
        defcon_tensor::assert_close(&got, &expect, 0.05, 0.02);
    }

    #[test]
    fn texture_methods_beat_software_on_xavier() {
        // One of the paper's Table II rows (texture wins grow with channel
        // count; tiny layers are launch-overhead bound either way).
        let shape = DeformLayerShape::same3x3(128, 128, 69, 69);
        let (x, offsets) = synthetic_inputs(&shape, 4.0, 7);
        let gpu = Gpu::new(DeviceConfig::xavier_agx());
        let time = |method| {
            let op = DeformConvOp {
                method,
                ..DeformConvOp::baseline(shape)
            };
            op.simulate_total(&gpu, &x, &offsets).0
        };
        let sw = time(SamplingMethod::SoftwareBilinear);
        let t2 = time(SamplingMethod::Tex2d);
        let tpp = time(SamplingMethod::Tex2dPlusPlus);
        assert!(t2 < sw, "tex2D {t2} !< PyTorch {sw}");
        assert!(tpp <= t2, "tex2D++ {tpp} !<= tex2D {t2}");
    }

    #[test]
    fn lightweight_offset_conv_is_faster() {
        let shape = DeformLayerShape::same3x3(128, 128, 35, 35);
        let gpu = Gpu::new(DeviceConfig::xavier_agx());
        let t = |kind| {
            let op = DeformConvOp {
                offset_predictor: kind,
                ..DeformConvOp::baseline(shape)
            };
            op.simulate_offset_conv(&gpu)
                .iter()
                .map(|r| r.time_ms)
                .sum::<f64>()
        };
        let std = t(OffsetPredictorKind::Standard);
        let lw = t(OffsetPredictorKind::Lightweight);
        assert!(lw < std, "lightweight {lw} !< standard {std}");
    }

    #[test]
    fn simulate_total_composes_kernels() {
        let (shape, x, offsets, _) = small();
        let gpu = Gpu::new(DeviceConfig::xavier_agx());
        let op = DeformConvOp::baseline(shape);
        let (total, reports) = op.simulate_total(&gpu, &x, &offsets);
        assert_eq!(reports.len(), 3); // offset conv + im2col + gemm (software baseline)
        assert!((total - reports.iter().map(|r| r.time_ms).sum::<f64>()).abs() < 1e-12);
    }

    #[test]
    fn synthetic_inputs_respect_spread() {
        let shape = DeformLayerShape::same3x3(2, 2, 8, 8);
        let (_, off) = synthetic_inputs(&shape, 3.0, 1);
        assert!(off.data().iter().all(|v| v.abs() <= 3.0));
        assert!(off.data().iter().any(|v| v.abs() > 2.0));
    }

    #[test]
    fn degrade_walks_the_ladder_to_the_software_floor() {
        let mut rungs = vec![SamplingMethod::Tex2dPlusPlus];
        while let Some(next) = rungs[rungs.len() - 1].degrade() {
            rungs.push(next);
        }
        assert_eq!(rungs, SamplingMethod::ladder().to_vec());
        assert_eq!(SamplingMethod::SoftwareBilinear.degrade(), None);
    }
}

// ---------------------------------------------------------------------------
// Mini-batch partitioning over the layered-texture limit (paper §III-B's
// "future work": when batch × channels exceeds the 2048-layer limit, load
// a subset of mini-batches at a time and pay the extra kernel launches)
// ---------------------------------------------------------------------------

impl DeformConvOp {
    /// Like [`DeformConvOp::simulate_deform`], but transparently partitions
    /// the batch when `N × C_in` exceeds the device's layered-texture limit
    /// (paper §III-B): each partition is uploaded and launched separately,
    /// which "results in the overhead associated with multiple invocations
    /// of the GPU kernel". Returns the per-launch reports (one partition ⇒
    /// identical to `simulate_deform`).
    pub fn simulate_deform_partitioned(
        &self,
        gpu: &Gpu,
        x: &Tensor,
        offsets: &Tensor,
    ) -> Vec<KernelReport> {
        self.try_simulate_deform_partitioned(gpu, x, offsets)
            .expect("texture limits exceeded")
    }

    /// [`DeformConvOp::simulate_deform_partitioned`] with texture-limit
    /// failures surfaced as typed [`DefconError::Constraint`]s instead of
    /// panics — including the unpartitionable case where a *single*
    /// image's channel count already exceeds the layer limit.
    pub fn try_simulate_deform_partitioned(
        &self,
        gpu: &Gpu,
        x: &Tensor,
        offsets: &Tensor,
    ) -> Result<Vec<KernelReport>, DefconError> {
        let max_layers = gpu.config().max_texture_layers;
        let s = self.shape;
        let needs_partition = matches!(
            self.method,
            SamplingMethod::Tex2d | SamplingMethod::Tex2dPlusPlus
        ) && s.n * s.c_in > max_layers;
        if !needs_partition {
            return self.try_simulate_deform(gpu, x, offsets);
        }
        if s.c_in > max_layers {
            return Err(DefconError::Constraint {
                what: "texture-limit".into(),
                detail: format!(
                    "a single image's channels ({}) exceed the texture layer limit ({max_layers})",
                    s.c_in
                ),
            });
        }
        let per_chunk = max_layers / s.c_in;
        let (oh, ow) = s.out_hw();
        let mut reports = Vec::new();
        let mut n0 = 0usize;
        while n0 < s.n {
            let n_here = per_chunk.min(s.n - n0);
            let chunk_shape = DeformLayerShape { n: n_here, ..s };
            // Slice the batch range out of x and offsets.
            let x_stride = s.c_in * s.h * s.w;
            let o_stride = s.offset_channels() * oh * ow;
            let x_chunk = Tensor::from_vec(
                x.data()[n0 * x_stride..(n0 + n_here) * x_stride].to_vec(),
                &[n_here, s.c_in, s.h, s.w],
            );
            let o_chunk = Tensor::from_vec(
                offsets.data()[n0 * o_stride..(n0 + n_here) * o_stride].to_vec(),
                &[n_here, s.offset_channels(), oh, ow],
            );
            let m_chunk = self.modulation.as_ref().map(|m| {
                let mc = self.family.modulation_channels(&s);
                let m_stride = mc * oh * ow;
                Tensor::from_vec(
                    m.data()[n0 * m_stride..(n0 + n_here) * m_stride].to_vec(),
                    &[n_here, mc, oh, ow],
                )
            });
            let op = DeformConvOp {
                shape: chunk_shape,
                modulation: m_chunk,
                ..self.clone()
            };
            reports.extend(op.try_simulate_deform(gpu, &x_chunk, &o_chunk)?);
            n0 += n_here;
        }
        Ok(reports)
    }

    /// Simulates the deformable stage with graceful degradation along the
    /// paper's method ladder: `tex2D++ → tex2D → software`. Each rung uses
    /// the batch-partitioned launcher; a rung that fails its texture setup
    /// (layer/dimension limits, or an injected `texture.limit` fault) is
    /// recorded in `degradations` and the next rung is tried. The software
    /// rung reads global memory and cannot hit texture limits, so a
    /// texture-capable op always completes — at reduced fidelity to the
    /// requested configuration.
    pub fn simulate_deform_with_fallback(
        &self,
        gpu: &Gpu,
        x: &Tensor,
        offsets: &Tensor,
    ) -> Result<DeformFallback, DefconError> {
        let chain: &[SamplingMethod] = match self.method {
            SamplingMethod::Tex2dPlusPlus => &[
                SamplingMethod::Tex2dPlusPlus,
                SamplingMethod::Tex2d,
                SamplingMethod::SoftwareBilinear,
            ],
            SamplingMethod::Tex2d => &[SamplingMethod::Tex2d, SamplingMethod::SoftwareBilinear],
            SamplingMethod::SoftwareBilinear => &[SamplingMethod::SoftwareBilinear],
        };
        let ladder_span = obs::span_with("kernels.fallback_ladder", || {
            vec![
                ("requested", Json::str(self.method.name())),
                ("rungs", Json::from(chain.len())),
            ]
        });
        let mut degradations = Vec::new();
        let mut last = None;
        for &method in chain {
            let op = DeformConvOp {
                method,
                ..self.clone()
            };
            match op.try_simulate_deform_partitioned(gpu, x, offsets) {
                Ok(reports) => {
                    ladder_span.record("selected", Json::str(method.name()));
                    ladder_span.record("degradations", Json::from(degradations.len()));
                    return Ok(DeformFallback {
                        reports,
                        method,
                        degradations,
                    });
                }
                Err(e) if e.is_degradable() => {
                    obs::event_with("kernels.fallback", || {
                        vec![
                            ("from", Json::str(method.name())),
                            ("error", Json::str(e.to_string())),
                        ]
                    });
                    degradations.push(format!("{} unavailable: {e}", method.name()));
                    last = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
        ladder_span.record("selected", Json::str("none"));
        Err(last.unwrap_or(DefconError::Constraint {
            what: "deform-fallback".into(),
            detail: "empty fallback chain".into(),
        }))
    }
}

/// Result of [`DeformConvOp::simulate_deform_with_fallback`]: the reports
/// of the rung that ran, which rung it was, and why earlier rungs were
/// skipped (empty when the requested method ran as configured).
#[derive(Clone, Debug)]
pub struct DeformFallback {
    /// Per-launch reports from the method that succeeded.
    pub reports: Vec<KernelReport>,
    /// The sampling method that actually ran.
    pub method: SamplingMethod,
    /// One line per skipped rung, in ladder order.
    pub degradations: Vec<String>,
}

#[cfg(test)]
mod partition_tests {
    use super::*;
    use defcon_gpusim::DeviceConfig;

    #[test]
    fn small_batches_are_single_launch() {
        let gpu = Gpu::new(DeviceConfig::xavier_agx());
        let shape = DeformLayerShape::same3x3(16, 16, 12, 12);
        let (x, off) = synthetic_inputs(&shape, 2.0, 1);
        let op = DeformConvOp {
            method: SamplingMethod::Tex2d,
            ..DeformConvOp::baseline(shape)
        };
        let reports = op.simulate_deform_partitioned(&gpu, &x, &off);
        assert_eq!(reports.len(), 1, "fused kernel, one launch");
    }

    #[test]
    fn oversized_batch_partitions_and_pays_launches() {
        // 8 images × 512 channels = 4096 layers > 2048 → two partitions.
        let gpu = Gpu::new(DeviceConfig::xavier_agx());
        let shape = DeformLayerShape {
            n: 8,
            ..DeformLayerShape::same3x3(512, 16, 6, 6)
        };
        let (x, off) = synthetic_inputs(&shape, 2.0, 2);
        let op = DeformConvOp {
            method: SamplingMethod::Tex2dPlusPlus,
            ..DeformConvOp::baseline(shape)
        };
        let reports = op.simulate_deform_partitioned(&gpu, &x, &off);
        assert_eq!(reports.len(), 2, "expected two texture partitions");
        // Each partition carries its own launch overhead — the cost the
        // paper predicts for partitioned training batches.
        let total: f64 = reports.iter().map(|r| r.time_ms).sum();
        let single_overhead = gpu.config().launch_overhead_us * 1e-3;
        assert!(total > 2.0 * single_overhead);
    }

    /// A shape with `n × c_in` texture layers and a tiny spatial extent.
    fn layered_shape(n: usize, c_in: usize) -> DeformLayerShape {
        DeformLayerShape {
            n,
            ..DeformLayerShape::same3x3(c_in, 4, 4, 4)
        }
    }

    #[test]
    fn layer_limit_boundary_is_exact() {
        // Xavier's layered-texture limit is 2048. One layer under, at, and
        // over the limit must partition into exactly 1, 1, and 2 launches.
        let gpu = Gpu::new(DeviceConfig::xavier_agx());
        let max = gpu.config().max_texture_layers;
        assert_eq!(max, 2048, "boundary cases assume the Xavier limit");
        let launches = |n: usize, c_in: usize| {
            let shape = layered_shape(n, c_in);
            let (x, off) = synthetic_inputs(&shape, 2.0, 9);
            let op = DeformConvOp {
                method: SamplingMethod::Tex2d,
                ..DeformConvOp::baseline(shape)
            };
            op.try_simulate_deform_partitioned(&gpu, &x, &off)
                .unwrap()
                .len()
        };
        assert_eq!(launches(1, 2047), 1, "under the limit: single launch");
        assert_eq!(launches(1, 2048), 1, "exactly at the limit: single launch");
        // 3 × 683 = 2049: per-chunk capacity is ⌊2048/683⌋ = 2 images.
        assert_eq!(launches(3, 683), 2, "one over the limit: two launches");
    }

    #[test]
    fn unpartitionable_channels_are_a_typed_constraint() {
        // 2100 channels in a single image cannot be split across launches:
        // the old assert is now a degradable Constraint error.
        let gpu = Gpu::new(DeviceConfig::xavier_agx());
        let shape = layered_shape(2, 2100);
        let (x, off) = synthetic_inputs(&shape, 2.0, 10);
        let op = DeformConvOp {
            method: SamplingMethod::Tex2dPlusPlus,
            ..DeformConvOp::baseline(shape)
        };
        let err = op
            .try_simulate_deform_partitioned(&gpu, &x, &off)
            .unwrap_err();
        assert!(matches!(err, DefconError::Constraint { .. }), "{err}");
        assert!(err.is_degradable());
    }

    #[test]
    fn fallback_ladder_lands_on_software_when_textures_cannot_hold_the_layer() {
        let gpu = Gpu::new(DeviceConfig::xavier_agx());
        let shape = layered_shape(1, 2100);
        let (x, off) = synthetic_inputs(&shape, 2.0, 11);
        let op = DeformConvOp {
            method: SamplingMethod::Tex2dPlusPlus,
            ..DeformConvOp::baseline(shape)
        };
        let fb = op.simulate_deform_with_fallback(&gpu, &x, &off).unwrap();
        assert_eq!(fb.method, SamplingMethod::SoftwareBilinear);
        assert_eq!(fb.degradations.len(), 2, "{:?}", fb.degradations);
        assert!(fb.degradations[0].starts_with("tex2D++ unavailable"));
        assert!(fb.degradations[1].starts_with("tex2D unavailable"));
        assert_eq!(fb.reports.len(), 2, "software im2col + GEMM");
    }

    #[test]
    fn fallback_is_a_no_op_when_the_requested_method_fits() {
        let gpu = Gpu::new(DeviceConfig::xavier_agx());
        let shape = layered_shape(2, 16);
        let (x, off) = synthetic_inputs(&shape, 2.0, 12);
        let op = DeformConvOp {
            method: SamplingMethod::Tex2dPlusPlus,
            ..DeformConvOp::baseline(shape)
        };
        let fb = op.simulate_deform_with_fallback(&gpu, &x, &off).unwrap();
        assert_eq!(fb.method, SamplingMethod::Tex2dPlusPlus);
        assert!(fb.degradations.is_empty());
        let direct = op.simulate_deform(&gpu, &x, &off);
        assert_eq!(fb.reports.len(), direct.len());
        assert_eq!(fb.reports[0].time_ms, direct[0].time_ms);
    }

    #[test]
    fn software_path_never_partitions() {
        let gpu = Gpu::new(DeviceConfig::xavier_agx());
        let shape = DeformLayerShape {
            n: 8,
            ..DeformLayerShape::same3x3(512, 16, 6, 6)
        };
        let (x, off) = synthetic_inputs(&shape, 2.0, 3);
        let op = DeformConvOp::baseline(shape);
        // Software bilinear reads global memory; the texture limit is
        // irrelevant (2 launches = im2col + GEMM, not partitions).
        let reports = op.simulate_deform_partitioned(&gpu, &x, &off);
        assert_eq!(reports.len(), 2);
        assert!(reports.iter().any(|r| r.kernel == "deform_im2col_sw"));
    }
}
