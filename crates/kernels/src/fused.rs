//! The fused texture deformable-convolution kernel — DEFCON's inference
//! kernel.
//!
//! Once sampling is a single hardware-filtered texture fetch, there is no
//! reason to materialize the im2col column matrix at all: the fetched value
//! can feed the convolution's FMAs directly. This fused implicit-GEMM
//! structure eliminates the column buffer's DRAM round trip (write in the
//! sampling kernel + read in the GEMM kernel — by far the largest traffic
//! of the baseline at `C_in·k²` floats per output position) and is how one
//! would actually write the kernel the paper describes ("load channel-wise
//! coordinate offsets to the GPU texture units and perform bilinear
//! interpolation using GPU hardware").
//!
//! Mapping: grid = `N ×` spatial output tiles; one thread per output
//! position; each thread accumulates **all** `C_out` outputs of its position
//! in registers while looping over `(tap, c_in)`, fetching each sample
//! exactly once.

use crate::im2col::address_map;
use crate::layer::{DeformLayerShape, TileConfig};
use crate::op::OpFamily;
use defcon_gpusim::texture::{AddressMode, FilterMode, LayeredTexture2d, TextureLimitError};
use defcon_gpusim::trace::{BlockTrace, LaneBuf, TraceSink};
use defcon_tensor::sample::OffsetTransform;
use defcon_tensor::Tensor;

/// The fused deformable convolution kernel over a layered texture.
pub struct FusedTexDeformKernel<'a> {
    /// Layer shape.
    pub shape: DeformLayerShape,
    /// Spatial thread-block tile (the Fig. 8 search knob).
    pub tile: TileConfig,
    /// Offsets `[N, 2·G·k², outH, outW]`.
    pub offsets: &'a Tensor,
    /// Offset post-processing.
    pub offset_transform: OffsetTransform,
    /// Input feature map bound as a layered texture.
    pub texture: LayeredTexture2d,
    /// Filter-fraction bits (23 = `tex2D`, 8 = `tex2D++`).
    pub frac_bits: u32,
    /// Output-channel blocking factor: the grid is additionally split into
    /// `co_blocks` channel groups so small feature maps still fill every
    /// SM; each group re-fetches the samples (the honest cost of the
    /// split). Pick with [`FusedTexDeformKernel::pick_co_blocks`].
    pub co_blocks: usize,
    /// Operator generation; gates the modulation loads and arithmetic
    /// (v1 traces are byte-identical to the pre-family kernel).
    pub family: OpFamily,
    /// Modulation tensor `[N, G·k², outH, outW]` (mask for v2, logits for
    /// v3); `None` is the neutral element. Values only matter to the
    /// numeric path (`DeformConvOp::execute`), never to the trace.
    pub modulation: Option<&'a Tensor>,
}

impl<'a> FusedTexDeformKernel<'a> {
    /// Builds the DCNv1 kernel, binding `x` as a layered texture with
    /// border addressing and the requested filter precision.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        shape: DeformLayerShape,
        tile: TileConfig,
        x: &Tensor,
        offsets: &'a Tensor,
        offset_transform: OffsetTransform,
        frac_bits: u32,
        max_layers: usize,
        max_dim: usize,
    ) -> Result<Self, TextureLimitError> {
        Self::new_family(
            shape,
            tile,
            x,
            offsets,
            offset_transform,
            frac_bits,
            max_layers,
            max_dim,
            OpFamily::DcnV1,
            None,
        )
    }

    /// [`FusedTexDeformKernel::new`] generalized over the operator family,
    /// with an optional borrowed modulation tensor (mask / logits).
    #[allow(clippy::too_many_arguments)]
    pub fn new_family(
        shape: DeformLayerShape,
        tile: TileConfig,
        x: &Tensor,
        offsets: &'a Tensor,
        offset_transform: OffsetTransform,
        frac_bits: u32,
        max_layers: usize,
        max_dim: usize,
        family: OpFamily,
        modulation: Option<&'a Tensor>,
    ) -> Result<Self, TextureLimitError> {
        let (n, c, h, w) = x.shape().nchw();
        let mut texture = LayeredTexture2d::new(
            x.data().to_vec(),
            n * c,
            h,
            w,
            address_map::TEXTURE,
            max_layers,
            max_dim,
        )?;
        texture.filter_mode = FilterMode::Linear { frac_bits };
        texture.address_mode = AddressMode::Border;
        Ok(FusedTexDeformKernel {
            shape,
            tile,
            offsets,
            offset_transform,
            texture,
            frac_bits,
            co_blocks: 1,
            family,
            modulation,
        })
    }

    /// Channel-blocking factor minimizing a first-order time estimate:
    /// splitting output channels across `B` blocks fills more SMs and
    /// shrinks per-block compute, but re-fetches every sample `B` times.
    /// The estimate mirrors the engine's wave/roofline model.
    pub fn pick_co_blocks(
        shape: &DeformLayerShape,
        tile: TileConfig,
        cfg: &defcon_gpusim::DeviceConfig,
    ) -> usize {
        let (oh, ow) = shape.out_hw();
        let spatial = (shape.n * oh.div_ceil(tile.h) * ow.div_ceil(tile.w)).max(1);
        let tile_elems = tile.threads() as f64;
        let fetches_per_block = (shape.c_in * shape.kernel * shape.kernel) as f64 * tile_elems;
        let macs = shape.conv_macs() as f64;
        let mut best = (f64::INFINITY, 1usize);
        let mut b = 1usize;
        while b <= 32 && shape.c_out / b >= 8 {
            let blocks = (spatial * b) as f64;
            let tex_blk = fetches_per_block / cfg.tex_filter_rate_fp32;
            let fma_blk = macs / blocks / (2.0 * cfg.fp32_lanes_per_sm as f64);
            let block_time =
                tex_blk.max(fma_blk) + (1.0 - cfg.overlap_efficiency) * (tex_blk.min(fma_blk));
            // The engine spreads block work evenly over SMs (no wave
            // quantization), but a grid smaller than the SM count leaves
            // chips idle — mirror both behaviours.
            let waves = (blocks / cfg.num_sms as f64).max(1.0);
            let t = waves * block_time;
            if t < best.0 {
                best = (t, b);
            }
            b *= 2;
        }
        best.1
    }

    fn tiles_xy(&self) -> (usize, usize) {
        let (oh, ow) = self.shape.out_hw();
        (oh.div_ceil(self.tile.h), ow.div_ceil(self.tile.w))
    }

    #[inline]
    fn offset_addr(&self, ni: usize, ch: usize, oy: usize, ox: usize) -> u64 {
        let (oh, ow) = self.shape.out_hw();
        let oc = self.shape.offset_channels();
        address_map::OFFSETS + 4 * (((ni * oc + ch) * oh + oy) * ow + ox) as u64
    }

    #[inline]
    fn modulation_addr(&self, ni: usize, ch: usize, oy: usize, ox: usize) -> u64 {
        let (oh, ow) = self.shape.out_hw();
        let mc = self.shape.deform_groups * self.shape.kernel * self.shape.kernel;
        address_map::MODULATION + 4 * (((ni * mc + ch) * oh + oy) * ow + ox) as u64
    }
}

impl BlockTrace for FusedTexDeformKernel<'_> {
    fn grid_blocks(&self) -> usize {
        let (ty, tx) = self.tiles_xy();
        self.shape.n * self.co_blocks * ty * tx
    }

    fn block_threads(&self) -> usize {
        self.tile.threads()
    }

    fn label(&self) -> String {
        let base = if self.frac_bits <= 10 {
            "deform_fused_tex2dpp"
        } else {
            "deform_fused_tex2d"
        };
        format!("{base}{}", self.family.label_suffix())
    }

    fn trace_block(&self, block: usize, sink: &mut TraceSink) {
        let s = self.shape;
        let (oh, ow) = s.out_hw();
        let (ty_count, tx_count) = self.tiles_xy();
        let per_n = self.co_blocks * ty_count * tx_count;
        let ni = block / per_n;
        let rem = block % per_n;
        let co_blk = rem / (ty_count * tx_count);
        let t = rem % (ty_count * tx_count);
        let (tile_y, tile_x) = (t / tx_count, t % tx_count);
        let kk = s.kernel * s.kernel;
        let ch_per_group = s.c_in / s.deform_groups;
        // This block's slice of output channels.
        let co_per_blk = s.c_out.div_ceil(self.co_blocks);
        let co_lo = co_blk * co_per_blk;
        let co_here = co_per_blk.min(s.c_out.saturating_sub(co_lo));
        if co_here == 0 {
            return;
        }

        // All warp events are staged through fixed-capacity `LaneBuf`s /
        // sink iterators — no heap allocation per block (see
        // `tests/zero_alloc.rs`).
        let threads = self.tile.threads();
        let mut lanes: LaneBuf<(usize, usize)> = LaneBuf::new();
        let mut coords: LaneBuf<(f32, f32)> = LaneBuf::new();
        for warp_start in (0..threads).step_by(32) {
            lanes.fill_from(
                (warp_start..(warp_start + 32).min(threads)).filter_map(|tid| {
                    let oy = tile_y * self.tile.h + tid / self.tile.w;
                    let ox = tile_x * self.tile.w + tid % self.tile.w;
                    (oy < oh && ox < ow).then_some((oy, ox))
                }),
            );
            if lanes.is_empty() {
                continue;
            }
            let nl = lanes.len() as u64;

            for g in 0..s.deform_groups {
                for tap in 0..kk {
                    let ch = 2 * (g * kk + tap);
                    // Offsets loaded once per (group, tap) — coalesced.
                    sink.global_load_into(
                        lanes
                            .iter()
                            .map(|&(oy, ox)| self.offset_addr(ni, ch, oy, ox)),
                    );
                    sink.global_load_into(
                        lanes
                            .iter()
                            .map(|&(oy, ox)| self.offset_addr(ni, ch + 1, oy, ox)),
                    );
                    sink.alu(4 * nl);
                    sink.flop(4 * nl); // p = p_o + p_i + Δp

                    // Family-specific modulation traffic, once per
                    // (group, tap) — the factor is shared by every channel
                    // of the group, exactly like the coordinates below.
                    // Gated on family so v1 stays byte-identical.
                    match self.family {
                        OpFamily::DcnV1 => {}
                        OpFamily::DcnV2 => {
                            sink.global_load_into(
                                lanes.iter().map(|&(oy, ox)| {
                                    self.modulation_addr(ni, g * kk + tap, oy, ox)
                                }),
                            );
                            sink.flop(nl);
                        }
                        OpFamily::DcnV3 => {
                            sink.global_load_into(
                                lanes.iter().map(|&(oy, ox)| {
                                    self.modulation_addr(ni, g * kk + tap, oy, ox)
                                }),
                            );
                            sink.flop(3 * nl);
                            sink.alu(nl);
                        }
                    }

                    let (ki, kj) = (tap / s.kernel, tap % s.kernel);
                    // Every channel of this deformable group samples at the
                    // same coordinates, so compute them once per (g, tap)
                    // instead of once per channel — `ch_per_group`× fewer
                    // offset reads and coordinate transforms, identical
                    // values fed to every fetch.
                    coords.fill_from(lanes.iter().map(|&(oy, ox)| {
                        let dy = self
                            .offset_transform
                            .apply(self.offsets.at4(ni, ch, oy, ox));
                        let dx = self
                            .offset_transform
                            .apply(self.offsets.at4(ni, ch + 1, oy, ox));
                        let py = (oy * s.stride + ki) as f32 - s.pad as f32 + dy;
                        let px = (ox * s.stride + kj) as f32 - s.pad as f32 + dx;
                        (py, px)
                    }));
                    // Stage the warp's fetch plans once per (g, tap): the
                    // floor/quantize/address-mode work is shared by every
                    // channel of the group (the layers differ, the plans do
                    // not), so each per-channel fetch below is just a plan
                    // replay — a weighted sum plus the cache walk.
                    sink.tex_stage_warp(&self.texture, coords.iter().copied());
                    // Each sample feeds C_out FMAs.
                    for ci in g * ch_per_group..(g + 1) * ch_per_group {
                        let layer = ni * s.c_in + ci;
                        sink.tex_fetch_staged_warp(&self.texture, layer);
                        // The fetched sample multiplies into this block's
                        // output-channel register accumulators.
                        sink.fma(nl * co_here as u64);
                    }
                }
            }
        }
        // Weight streaming: each (ci, tap, co) weight read once per block,
        // coalesced (served from L2 after the first block touches it).
        let wf = s.c_in * kk * co_here;
        for w0 in (0..wf).step_by(32) {
            let lanes_w = 32.min(wf - w0);
            sink.global_load_into(
                (0..lanes_w).map(|l| address_map::WEIGHTS + ((w0 + l) * 4) as u64),
            );
        }
        // Output stores: C_out values per covered position.
        for warp_start in (0..threads).step_by(32) {
            lanes.fill_from(
                (warp_start..(warp_start + 32).min(threads)).filter_map(|tid| {
                    let oy = tile_y * self.tile.h + tid / self.tile.w;
                    let ox = tile_x * self.tile.w + tid % self.tile.w;
                    (oy < oh && ox < ow).then_some((oy, ox))
                }),
            );
            if lanes.is_empty() {
                continue;
            }
            for co in co_lo..co_lo + co_here {
                sink.global_store_into(lanes.iter().map(|&(oy, ox)| {
                    address_map::OUTPUT + 4 * (((ni * s.c_out + co) * oh + oy) * ow + ox) as u64
                }));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::synthetic_inputs;
    use defcon_gpusim::{DeviceConfig, Gpu};

    fn build<'a>(
        frac_bits: u32,
        shape: DeformLayerShape,
        x: &Tensor,
        off: &'a Tensor,
    ) -> FusedTexDeformKernel<'a> {
        FusedTexDeformKernel::new(
            shape,
            TileConfig::default16(),
            x,
            off,
            OffsetTransform::Identity,
            frac_bits,
            2048,
            32768,
        )
        .unwrap()
    }

    #[test]
    fn grid_is_spatial_only() {
        let shape = DeformLayerShape::same3x3(32, 32, 33, 33);
        let (x, off) = synthetic_inputs(&shape, 2.0, 1);
        let k = build(23, shape, &x, &off);
        // 33x33 output, 16x16 tiles -> 3x3 tiles, one batch.
        assert_eq!(k.grid_blocks(), 9);
    }

    #[test]
    fn fetch_count_is_cin_k2_per_output() {
        let shape = DeformLayerShape::same3x3(8, 4, 16, 16);
        let (x, off) = synthetic_inputs(&shape, 2.0, 2);
        let k = build(23, shape, &x, &off);
        let gpu = Gpu::with_policy(
            DeviceConfig::xavier_agx(),
            defcon_gpusim::SamplePolicy::exhaustive(),
        );
        let r = gpu.launch(&k);
        let expect = (8 * 9 * 16 * 16) as u64; // C_in · k² · outH · outW lane-fetches
                                               // tex_requests counts warp instructions; fetch lanes are grouped by
                                               // 32-thread warps over a 256-thread tile -> expect/lanes rounded up.
        assert!(
            r.counters.tex_requests >= expect / 32,
            "{} < {}",
            r.counters.tex_requests,
            expect / 32
        );
        // FMA accounting: one FMA per fetched sample per output channel
        // (c_out = 4), counted as 2 flops, plus a small coordinate-math tax.
        let conv_flops = 2 * expect * 4;
        assert!(
            r.counters.flops >= conv_flops,
            "{} < {conv_flops}",
            r.counters.flops
        );
        assert!(
            (r.counters.flops as f64) < 1.2 * conv_flops as f64,
            "{} vs {conv_flops}",
            r.counters.flops
        );
    }

    #[test]
    fn no_column_traffic() {
        let shape = DeformLayerShape::same3x3(16, 16, 32, 32);
        let (x, off) = synthetic_inputs(&shape, 2.0, 3);
        let gpu = Gpu::new(DeviceConfig::xavier_agx());
        let r = gpu.launch(&build(23, shape, &x, &off));
        // Global stores are exactly the output tensor (per simulated share).
        let out_bytes = r.counters.gst_requested_bytes;
        let expect = (16 * 32 * 32 * 4) as u64;
        assert!(
            ((out_bytes as f64) - (expect as f64)).abs() / (expect as f64) < 0.1,
            "store bytes {out_bytes} vs output size {expect}"
        );
    }

    #[test]
    fn tex2dpp_not_slower_than_tex2d() {
        let shape = DeformLayerShape::same3x3(64, 64, 35, 35);
        let (x, off) = synthetic_inputs(&shape, 4.0, 4);
        let gpu = Gpu::new(DeviceConfig::xavier_agx());
        let t2 = gpu.launch(&build(23, shape, &x, &off));
        let tpp = gpu.launch(&build(8, shape, &x, &off));
        assert!(
            tpp.time_ms <= t2.time_ms,
            "tex2D++ {} > tex2D {}",
            tpp.time_ms,
            t2.time_ms
        );
    }

    #[test]
    fn gld_efficiency_is_high() {
        // The fused kernel's only global loads are coalesced offsets and
        // weights — Fig. 10's "GLD efficiency reaches 100%".
        let shape = DeformLayerShape::same3x3(32, 32, 32, 32);
        let (x, off) = synthetic_inputs(&shape, 4.0, 5);
        let gpu = Gpu::new(DeviceConfig::xavier_agx());
        let r = gpu.launch(&build(23, shape, &x, &off));
        assert!(
            r.counters.gld_efficiency() > 95.0,
            "{}",
            r.counters.gld_efficiency()
        );
    }
}
