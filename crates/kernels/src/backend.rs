//! The execution-backend abstraction.
//!
//! DEFCON's Tables II–IV compare sampling *methods* on one execution
//! substrate — the trace-driven GPU simulator. The related accelerator
//! work (Huang et al.'s algorithm–hardware co-design, Xu et al.'s
//! energy-efficient DCN accelerator) adds a third column: a tiled
//! on-chip-buffer dataflow machine. [`Backend`] is the seam that makes
//! that column pluggable: configure → launch → [`KernelReport`], plus a
//! numeric `execute` so a differential suite can assert that **every**
//! backend computes the same deformable convolution bit for bit.
//!
//! `gpusim::Gpu` implements the trait here (kernels already depends on
//! gpusim); the `defcon-accel` crate provides the dataflow model.
//!
//! ## Cross-backend determinism contract
//!
//! For a fixed `(op, x, offsets, weight)`, `Backend::execute` must return
//! byte-identical tensors on every backend. The contract is achievable
//! because the numeric pipeline is shared: per-element sampling goes
//! through `Im2colDeformKernel`'s coordinate/modulation/sampler path, and
//! the GEMM epilogue's per-element reduction order is blocking-invariant
//! (see `defcon_tensor::gemm`). Timing (`launch_*`) is backend-specific
//! by design — that is the point of having backends.

use defcon_gpusim::{Gpu, KernelReport};
use defcon_support::env;
use defcon_support::error::DefconError;
use defcon_tensor::Tensor;

use crate::layer::DeformLayerShape;
use crate::op::{simulate_regular_conv_ms, DeformConvOp, DeformFallback};

/// Which execution backend a request or experiment targets, addressed by
/// canonical name (`"gpusim"` / `"accel"`). The default is the GPU
/// simulator — the pre-backend behaviour — so every serialized form that
/// omits the field keeps its meaning (and its content address).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// The trace-driven GPU timing simulator (`defcon-gpusim`).
    #[default]
    Gpusim,
    /// The tiled dataflow accelerator model (`defcon-accel`).
    Accel,
}

impl BackendKind {
    /// The canonical name, used in request canonical forms, report JSON,
    /// and the `DEFCON_BACKEND` knob.
    pub fn name(&self) -> &'static str {
        match self {
            BackendKind::Gpusim => "gpusim",
            BackendKind::Accel => "accel",
        }
    }

    /// Resolves a canonical name back to a kind.
    pub fn from_name(name: &str) -> Option<BackendKind> {
        BackendKind::all().into_iter().find(|k| k.name() == name)
    }

    /// Every backend.
    pub fn all() -> [BackendKind; 2] {
        [BackendKind::Gpusim, BackendKind::Accel]
    }

    /// Reads the `DEFCON_BACKEND` knob: unset or empty means the default
    /// [`BackendKind::Gpusim`]; an unknown name is a typed env error.
    pub fn from_env() -> Result<BackendKind, DefconError> {
        match std::env::var(env::BACKEND) {
            Err(_) => Ok(BackendKind::default()),
            Ok(v) if v.trim().is_empty() => Ok(BackendKind::default()),
            Ok(v) => BackendKind::from_name(v.trim()).ok_or(DefconError::Env {
                var: env::BACKEND.to_string(),
                value: v,
                expected: "a backend name (gpusim or accel)",
            }),
        }
    }
}

/// An execution backend for the deformable-convolution operator: a thing
/// that can validate an operator configuration, *time* it (producing the
/// same [`KernelReport`] currency the rest of the stack consumes — LUTs,
/// serving, goldens), and *execute* it numerically under the cross-backend
/// determinism contract described at the module level.
pub trait Backend {
    /// The canonical backend name (`"gpusim"` / `"accel"`).
    fn backend_name(&self) -> &'static str;

    /// The device/model name stamped into reports.
    fn device_name(&self) -> String;

    /// Validates `op` against this backend's constraints without
    /// launching. Degradable errors ([`DefconError::is_degradable`]) mean
    /// a fallback (another rung, or another backend) may be tried.
    fn configure(&self, op: &DeformConvOp) -> Result<(), DefconError>;

    /// Times the deformable stage (sampling + GEMM), degrading gracefully
    /// where the backend supports it. Returns the reports of whatever
    /// configuration actually ran plus one line per degradation.
    fn launch_deform(
        &self,
        op: &DeformConvOp,
        x: &Tensor,
        offsets: &Tensor,
    ) -> Result<DeformFallback, DefconError>;

    /// Times the complete operation (offset prediction + deformable
    /// stage). Returns total milliseconds and the per-launch reports.
    fn launch_total(
        &self,
        op: &DeformConvOp,
        x: &Tensor,
        offsets: &Tensor,
    ) -> Result<(f64, Vec<KernelReport>), DefconError>;

    /// Times a plain (rigid) convolution at `shape` — the LUT baseline.
    fn regular_conv_ms(&self, shape: &DeformLayerShape) -> f64;

    /// Numeric execution of the deformable convolution proper. Subject to
    /// the cross-backend determinism contract: byte-identical across
    /// backends for identical inputs.
    fn execute(&self, op: &DeformConvOp, x: &Tensor, offsets: &Tensor, weight: &Tensor) -> Tensor;
}

impl Backend for Gpu {
    fn backend_name(&self) -> &'static str {
        BackendKind::Gpusim.name()
    }

    fn device_name(&self) -> String {
        self.config().name.clone()
    }

    fn configure(&self, op: &DeformConvOp) -> Result<(), DefconError> {
        self.config().validate()?;
        // Texture methods need at least one batch partition to fit the
        // device's layer limit; a single image's channel planes are the
        // indivisible unit (op-level partitioning splits on images only).
        if op.method != crate::op::SamplingMethod::SoftwareBilinear
            && op.shape.c_in > self.config().max_texture_layers
        {
            return Err(DefconError::Constraint {
                what: "texture-limit".into(),
                detail: format!(
                    "c_in {} exceeds max_texture_layers {}",
                    op.shape.c_in,
                    self.config().max_texture_layers
                ),
            });
        }
        Ok(())
    }

    fn launch_deform(
        &self,
        op: &DeformConvOp,
        x: &Tensor,
        offsets: &Tensor,
    ) -> Result<DeformFallback, DefconError> {
        op.simulate_deform_with_fallback(self, x, offsets)
    }

    fn launch_total(
        &self,
        op: &DeformConvOp,
        x: &Tensor,
        offsets: &Tensor,
    ) -> Result<(f64, Vec<KernelReport>), DefconError> {
        let mut reports = op.simulate_offset_conv(self);
        let fb = op.simulate_deform_with_fallback(self, x, offsets)?;
        reports.extend(fb.reports);
        let total = reports.iter().map(|r| r.time_ms).sum();
        Ok((total, reports))
    }

    fn regular_conv_ms(&self, shape: &DeformLayerShape) -> f64 {
        simulate_regular_conv_ms(self, shape)
    }

    fn execute(&self, op: &DeformConvOp, x: &Tensor, offsets: &Tensor, weight: &Tensor) -> Tensor {
        op.execute(x, offsets, weight, self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{synthetic_inputs, SamplingMethod};
    use defcon_gpusim::DeviceConfig;

    #[test]
    fn backend_kind_names_round_trip() {
        for kind in BackendKind::all() {
            assert_eq!(BackendKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(BackendKind::from_name("tpu"), None);
        assert_eq!(BackendKind::default(), BackendKind::Gpusim);
    }

    #[test]
    fn backend_env_parses_and_rejects() {
        // Unique var handling is inside from_env (DEFCON_BACKEND is
        // process-global); restore the unset state afterwards.
        std::env::remove_var(env::BACKEND);
        assert_eq!(BackendKind::from_env().unwrap(), BackendKind::Gpusim);
        std::env::set_var(env::BACKEND, "accel");
        assert_eq!(BackendKind::from_env().unwrap(), BackendKind::Accel);
        std::env::set_var(env::BACKEND, "quantum");
        assert!(BackendKind::from_env().is_err());
        std::env::remove_var(env::BACKEND);
    }

    #[test]
    fn gpu_implements_the_backend_trait() {
        let gpu = Gpu::new(DeviceConfig::xavier_agx());
        let shape = DeformLayerShape::same3x3(4, 4, 10, 10);
        let op = DeformConvOp {
            method: SamplingMethod::Tex2dPlusPlus,
            ..DeformConvOp::baseline(shape)
        };
        let backend: &dyn Backend = &gpu;
        assert_eq!(backend.backend_name(), "gpusim");
        backend.configure(&op).unwrap();
        let (x, offsets) = synthetic_inputs(&shape, 2.0, 7);
        let fb = backend.launch_deform(&op, &x, &offsets).unwrap();
        assert_eq!(fb.method, SamplingMethod::Tex2dPlusPlus);
        let (total, reports) = backend.launch_total(&op, &x, &offsets).unwrap();
        assert!(total > 0.0 && reports.len() >= 2);
        assert!(backend.regular_conv_ms(&shape) > 0.0);
    }

    #[test]
    fn gpu_configure_rejects_unpartitionable_texture_shapes() {
        let gpu = Gpu::new(DeviceConfig::xavier_agx());
        let shape = DeformLayerShape::same3x3(4096, 4, 4, 4);
        let op = DeformConvOp {
            method: SamplingMethod::Tex2d,
            ..DeformConvOp::baseline(shape)
        };
        let e = gpu.configure(&op).unwrap_err();
        assert!(e.is_degradable(), "texture-limit must stay degradable");
    }
}
