//! Trace models for the dense stages: the GEMM that consumes the deformable
//! column matrix, plain (implicit-GEMM) convolutions, depthwise and
//! pointwise convolutions.
//!
//! These stages are identical across the deformable variants, so they are
//! modelled with regular, well-coalesced access streams — real addresses,
//! but no per-element irregularity. The interesting physics (Fig. 7–10)
//! lives in `im2col.rs`.

use crate::im2col::address_map;
use crate::layer::DeformLayerShape;
use defcon_gpusim::trace::{BlockTrace, LaneBuf, TraceSink};

/// Output tile side of the GEMM blocking (64×64 output tile per block).
const GEMM_TILE: usize = 64;
/// K-chunk loaded per iteration.
const GEMM_KSTEP: usize = 8;

/// A tiled SGEMM `C[m×n] = A[m×k] · B[k×n]`, 256 threads per block, each
/// block computing a 64×64 output tile by marching over k in chunks.
pub struct GemmKernel {
    /// Rows of A / C.
    pub m: usize,
    /// Inner dimension.
    pub k: usize,
    /// Columns of B / C.
    pub n: usize,
    /// Batch count (independent GEMMs; e.g. one per image).
    pub batch: usize,
    /// Base address of A (weights by default).
    pub a_base: u64,
    /// Base address of B (column matrix by default).
    pub b_base: u64,
    /// Base address of C.
    pub c_base: u64,
    /// Report label.
    pub name: String,
}

impl GemmKernel {
    /// GEMM for the deformable/regular convolution epilogue: weights
    /// `[c_out × c_in·k²]` times columns `[c_in·k² × outH·outW]`.
    pub fn for_conv(shape: &DeformLayerShape) -> Self {
        let (oh, ow) = shape.out_hw();
        GemmKernel {
            m: shape.c_out,
            k: shape.c_in * shape.kernel * shape.kernel,
            n: oh * ow,
            batch: shape.n,
            a_base: address_map::WEIGHTS,
            b_base: address_map::COLUMNS,
            c_base: address_map::OUTPUT,
            name: "conv_gemm".into(),
        }
    }

    fn tiles(&self) -> (usize, usize) {
        (self.m.div_ceil(GEMM_TILE), self.n.div_ceil(GEMM_TILE))
    }
}

impl BlockTrace for GemmKernel {
    fn grid_blocks(&self) -> usize {
        let (tm, tn) = self.tiles();
        self.batch * tm * tn
    }

    fn block_threads(&self) -> usize {
        256
    }

    fn label(&self) -> String {
        self.name.clone()
    }

    fn trace_block(&self, block: usize, sink: &mut TraceSink) {
        let (tm, tn) = self.tiles();
        let b = block % (tm * tn);
        let batch = block / (tm * tn);
        let (ti, tj) = (b / tn, b % tn);
        let rows = GEMM_TILE.min(self.m - ti * GEMM_TILE);
        let cols = GEMM_TILE.min(self.n - tj * GEMM_TILE);

        let a_batch = self.a_base; // weights shared across the batch
        let b_batch = self.b_base + (batch * self.k * self.n * 4) as u64;
        let c_batch = self.c_base + (batch * self.m * self.n * 4) as u64;

        for k0 in (0..self.k).step_by(GEMM_KSTEP) {
            let ksz = GEMM_KSTEP.min(self.k - k0);
            // Stage A panel (rows × ksz) and B panel (ksz × cols) through
            // global memory. The 256 threads load the panel cooperatively:
            // lane addresses are gathered panel-wide and issued as full
            // 32-lane warp instructions (each lane one float), the way a
            // real tiled GEMM stages its shared-memory tiles.
            // The panel's lane addresses are streamed straight into the
            // sink in the same flattened row-major order — and the same
            // 32-lane warp boundaries — the old collect-then-`chunks(32)`
            // produced, without materializing the panel address list.
            let mut stage = |base: u64,
                             row_len: usize,
                             rows_here: usize,
                             row0: usize,
                             col0: usize,
                             width: usize| {
                let total = rows_here * width;
                for chunk0 in (0..total).step_by(32) {
                    sink.global_load_into((chunk0..(chunk0 + 32).min(total)).map(|i| {
                        let (r, w0) = (i / width, i % width);
                        base + (((row0 + r) * row_len + col0 + w0) * 4) as u64
                    }));
                }
            };
            stage(a_batch, self.k, rows, ti * GEMM_TILE, k0, ksz);
            stage(b_batch, self.n, ksz, k0, tj * GEMM_TILE, cols);
            // Each output element accumulates ksz FMAs.
            sink.fma((rows * cols * ksz) as u64);
            // Loop/address overhead.
            sink.alu((rows * cols) as u64 / 4);
        }
        // Write the output tile.
        for r in 0..rows {
            let row_addr = c_batch + (((ti * GEMM_TILE + r) * self.n + tj * GEMM_TILE) * 4) as u64;
            for w0 in (0..cols).step_by(32) {
                let lanes = 32.min(cols - w0);
                sink.global_store_into((0..lanes).map(|l| row_addr + ((w0 + l) * 4) as u64));
            }
        }
    }
}

/// Output channels computed per block by the implicit-GEMM convolution
/// (register/shared-memory tiling amortizes each loaded input tap over this
/// many output accumulators, as cuDNN-style kernels do).
const CO_PER_BLOCK: usize = 32;

/// A plain (rigid) convolution modelled as implicit GEMM: the tap loads are
/// regular and cacheable, there is no offset tensor and no interpolation.
/// Used for the offset-predicting convolutions and every non-DCN layer in
/// the end-to-end model simulations.
pub struct RegularConvKernel {
    /// Layer shape (kernel/stride/pad fields describe the window).
    pub shape: DeformLayerShape,
    /// Report label.
    pub name: String,
}

impl RegularConvKernel {
    /// Standard constructor.
    pub fn new(shape: DeformLayerShape, name: &str) -> Self {
        RegularConvKernel {
            shape,
            name: name.into(),
        }
    }

    fn tiles(&self) -> (usize, usize) {
        let (oh, ow) = self.shape.out_hw();
        (oh.div_ceil(8), ow.div_ceil(32))
    }

    #[inline]
    fn input_addr(&self, ni: usize, ci: usize, y: usize, x: usize) -> u64 {
        let s = &self.shape;
        address_map::INPUT + 4 * (((ni * s.c_in + ci) * s.h + y) * s.w + x) as u64
    }
}

impl BlockTrace for RegularConvKernel {
    fn grid_blocks(&self) -> usize {
        let (ty, tx) = self.tiles();
        self.shape.n * self.shape.c_out.div_ceil(CO_PER_BLOCK) * ty * tx
    }

    fn block_threads(&self) -> usize {
        256
    }

    fn label(&self) -> String {
        self.name.clone()
    }

    fn trace_block(&self, block: usize, sink: &mut TraceSink) {
        let s = &self.shape;
        let (oh, ow) = s.out_hw();
        let (ty_count, tx_count) = self.tiles();
        let per_n = s.c_out.div_ceil(CO_PER_BLOCK) * ty_count * tx_count;
        let ni = block / per_n;
        let rem = block % per_n;
        let co_blk = rem / (ty_count * tx_count);
        let t = rem % (ty_count * tx_count);
        let (tile_y, tile_x) = (t / tx_count, t % tx_count);
        let co_here = CO_PER_BLOCK.min(s.c_out - co_blk * CO_PER_BLOCK);

        // 8 rows × 32 cols of output positions per block; each warp is one
        // output row (32 consecutive columns). Lane staging is `LaneBuf` /
        // iterator based — no heap allocation per block.
        let mut lanes: LaneBuf<usize> = LaneBuf::new();
        for r in 0..8usize {
            let oy = tile_y * 8 + r;
            if oy >= oh {
                continue;
            }
            lanes.fill_from((0..32).map(|l| tile_x * 32 + l).filter(|&ox| ox < ow));
            if lanes.is_empty() {
                continue;
            }
            let nl = lanes.len() as u64;
            for ci in 0..s.c_in {
                for ki in 0..s.kernel {
                    let iy = oy * s.stride + ki;
                    if iy < s.pad || iy - s.pad >= s.h {
                        continue;
                    }
                    for kj in 0..s.kernel {
                        // One coalesced warp load per (ci, tap): lanes read
                        // consecutive x.
                        sink.global_load_into(lanes.iter().filter_map(|&ox| {
                            let ix = ox * s.stride + kj;
                            (ix >= s.pad && ix - s.pad < s.w)
                                .then(|| self.input_addr(ni, ci, iy - s.pad, ix - s.pad))
                        }));
                        // co_here output channels accumulate from this tap.
                        sink.fma(nl * co_here as u64);
                    }
                }
            }
            // Weight traffic: per block, each (ci, tap, co) weight is read
            // once into registers/smem — model one coalesced stream.
            let wf = s.c_in * s.kernel * s.kernel * co_here;
            for w0 in (0..wf).step_by(32) {
                let lanes_w = 32.min(wf - w0);
                sink.global_load_into(
                    (0..lanes_w).map(|l| address_map::WEIGHTS + ((w0 + l) * 4) as u64),
                );
            }
            // Output stores.
            for co in 0..co_here {
                sink.global_store_into(lanes.iter().map(|&ox| {
                    address_map::OUTPUT
                        + 4 * (((ni * s.c_out + co_blk * CO_PER_BLOCK + co) * oh + oy) * ow + ox)
                            as u64
                }));
            }
        }
    }
}

/// Depthwise 3×3 convolution trace (one channel per block row-group).
pub struct DepthwiseConvKernel {
    /// Layer shape; `c_out` is ignored (depthwise keeps channels).
    pub shape: DeformLayerShape,
}

impl BlockTrace for DepthwiseConvKernel {
    fn grid_blocks(&self) -> usize {
        let (oh, ow) = self.shape.out_hw();
        self.shape.n * self.shape.c_in * oh.div_ceil(8) * ow.div_ceil(32)
    }

    fn block_threads(&self) -> usize {
        256
    }

    fn label(&self) -> String {
        "depthwise_conv".into()
    }

    fn trace_block(&self, block: usize, sink: &mut TraceSink) {
        let s = &self.shape;
        let (oh, ow) = s.out_hw();
        let (ty_count, tx_count) = (oh.div_ceil(8), ow.div_ceil(32));
        let per_c = ty_count * tx_count;
        let ci = (block / per_c) % s.c_in;
        let ni = block / (s.c_in * per_c);
        let t = block % per_c;
        let (tile_y, tile_x) = (t / tx_count, t % tx_count);
        let mut lanes: LaneBuf<usize> = LaneBuf::new();
        for r in 0..8usize {
            let oy = tile_y * 8 + r;
            if oy >= oh {
                continue;
            }
            lanes.fill_from((0..32).map(|l| tile_x * 32 + l).filter(|&ox| ox < ow));
            if lanes.is_empty() {
                continue;
            }
            let nl = lanes.len() as u64;
            for ki in 0..s.kernel {
                let iy = oy * s.stride + ki;
                if iy < s.pad || iy - s.pad >= s.h {
                    continue;
                }
                for kj in 0..s.kernel {
                    sink.global_load_into(lanes.iter().filter_map(|&ox| {
                        let ix = ox * s.stride + kj;
                        (ix >= s.pad && ix - s.pad < s.w).then(|| {
                            address_map::INPUT
                                + 4 * (((ni * s.c_in + ci) * s.h + iy - s.pad) * s.w + ix - s.pad)
                                    as u64
                        })
                    }));
                    sink.fma(nl);
                }
            }
            sink.global_store_into(lanes.iter().map(|&ox| {
                address_map::OUTPUT + 4 * (((ni * s.c_in + ci) * oh + oy) * ow + ox) as u64
            }));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use defcon_gpusim::{DeviceConfig, Gpu, SamplePolicy};

    #[test]
    fn gemm_flop_count_is_2mnk() {
        let k = GemmKernel {
            m: 64,
            k: 128,
            n: 64,
            batch: 1,
            a_base: 0,
            b_base: 1 << 24,
            c_base: 1 << 25,
            name: "t".into(),
        };
        let gpu = Gpu::with_policy(DeviceConfig::xavier_agx(), SamplePolicy::exhaustive());
        let r = gpu.launch(&k);
        assert_eq!(r.counters.flops, 2 * 64 * 128 * 64);
    }

    #[test]
    fn gemm_loads_are_fully_coalesced() {
        let k = GemmKernel {
            m: 128,
            k: 64,
            n: 128,
            batch: 1,
            a_base: 0,
            b_base: 1 << 24,
            c_base: 1 << 25,
            name: "t".into(),
        };
        let r = Gpu::new(DeviceConfig::xavier_agx()).launch(&k);
        assert!(
            r.counters.gld_efficiency() > 99.0,
            "{}",
            r.counters.gld_efficiency()
        );
    }

    #[test]
    fn bigger_gemm_takes_longer() {
        let mk = |m: usize| GemmKernel {
            m,
            k: 256,
            n: 1024,
            batch: 1,
            a_base: 0,
            b_base: 1 << 24,
            c_base: 1 << 25,
            name: "t".into(),
        };
        let gpu = Gpu::new(DeviceConfig::xavier_agx());
        assert!(gpu.launch(&mk(256)).time_ms > gpu.launch(&mk(64)).time_ms);
    }

    #[test]
    fn regular_conv_flops_match_macs() {
        let shape = DeformLayerShape::same3x3(16, 16, 32, 32);
        let k = RegularConvKernel::new(shape, "conv");
        let gpu = Gpu::with_policy(DeviceConfig::xavier_agx(), SamplePolicy::exhaustive());
        let r = gpu.launch(&k);
        // FMA counted as 2 flops; boundary taps are branched around, so the
        // count sits just below the dense-MAC bound.
        let dense = 2 * shape.conv_macs();
        assert!(r.counters.flops <= dense, "{} > {dense}", r.counters.flops);
        assert!(
            r.counters.flops as f64 > 0.95 * dense as f64,
            "{} vs {dense}",
            r.counters.flops
        );
    }

    #[test]
    fn regular_conv_is_well_coalesced() {
        let shape = DeformLayerShape::same3x3(8, 8, 64, 64);
        let r = Gpu::new(DeviceConfig::xavier_agx()).launch(&RegularConvKernel::new(shape, "conv"));
        assert!(
            r.counters.gld_efficiency() > 85.0,
            "{}",
            r.counters.gld_efficiency()
        );
    }

    #[test]
    fn depthwise_much_cheaper_than_full_conv() {
        let shape = DeformLayerShape::same3x3(64, 64, 32, 32);
        let gpu = Gpu::new(DeviceConfig::xavier_agx());
        let full = gpu.launch(&RegularConvKernel::new(shape, "conv"));
        let dw = gpu.launch(&DepthwiseConvKernel { shape });
        assert!(dw.counters.flops * 32 < full.counters.flops);
        assert!(dw.time_ms < full.time_ms);
    }
}
