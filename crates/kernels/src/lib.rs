//! # defcon-kernels
//!
//! GPU kernel implementations of the deformable convolution operator, in the
//! three flavours the paper compares, each with **two interpretations**:
//!
//! 1. **Numeric** — compute the actual output tensor on the CPU, so every
//!    variant can be validated against the reference implementation in
//!    `defcon-tensor` (and `tex2D++`'s reduced filter precision can be
//!    measured, not assumed);
//! 2. **Trace** — describe the kernel's per-thread-block work (FLOPs, warp
//!    loads with real addresses, texture fetches with real coordinates) to
//!    the `defcon-gpusim` engine, which times it and produces
//!    nvprof-style counters.
//!
//! The three flavours:
//!
//! * [`SamplingMethod::SoftwareBilinear`] — the PyTorch/mmcv baseline: an
//!   im2col kernel whose sampling taps issue **4 scattered global loads**
//!   plus ~10 FLOPs of software interpolation and boundary branching per
//!   tap (paper §II-B);
//! * [`SamplingMethod::Tex2d`] — DEFCON's layered-texture kernel: 1 texture
//!   fetch per tap, hardware bilinear filter, boundary handling absorbed by
//!   the border addressing mode (paper §III-B);
//! * [`SamplingMethod::Tex2dPlusPlus`] — same, with reduced-precision
//!   filter arithmetic (the `tex2D++` variant), which doubles filter-pipe
//!   throughput and is shown not to affect accuracy.
//!
//! All flavours share the same downstream GEMM stage (filter matrix ×
//! column matrix) — the speedups of Fig. 7 / Tables II & IV come entirely
//! from the sampling stage, which is exactly how the paper frames them.

pub mod backend;
pub mod fused;
pub mod gemm_kernel;
pub mod im2col;
pub mod layer;
pub mod op;

pub use backend::{Backend, BackendKind};
pub use layer::{paper_layer_sweep, DeformLayerShape, TileConfig};
pub use op::{DeformConvOp, OpFamily, SamplingMethod};
