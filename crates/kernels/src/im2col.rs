//! The sampling (im2col) stage of deformable convolution.
//!
//! This is the kernel DEFCON rewrites: for every output position and kernel
//! tap it computes the deformed sampling coordinate and materializes the
//! bilinearly-interpolated value into the column matrix consumed by the
//! GEMM stage. The *software* variant (what PyTorch/mmcv ship) performs the
//! interpolation manually from global memory; the *texture* variants bind
//! the input feature map as a layered 2-D texture and let the texture unit
//! filter.

use crate::layer::{DeformLayerShape, TileConfig};
use crate::op::OpFamily;
use defcon_gpusim::texture::LayeredTexture2d;
use defcon_gpusim::trace::{BlockTrace, LaneBuf, TraceSink};
use defcon_tensor::sample::{tap_softmax, OffsetTransform};
use defcon_tensor::Tensor;

/// Simulated address-space bases (one region per buffer, far apart so cache
/// sets are shared realistically but regions never alias).
pub mod address_map {
    /// Input feature map (NCHW, row-major).
    pub const INPUT: u64 = 0x1000_0000;
    /// Offset tensor.
    pub const OFFSETS: u64 = 0x2000_0000;
    /// Column buffer.
    pub const COLUMNS: u64 = 0x3000_0000;
    /// Filter weights.
    pub const WEIGHTS: u64 = 0x4000_0000;
    /// Output tensor.
    pub const OUTPUT: u64 = 0x5000_0000;
    /// Modulation tensor (DCNv2 mask / DCNv3 logits).
    pub const MODULATION: u64 = 0x6000_0000;
    /// Texture storage.
    pub const TEXTURE: u64 = 0x8000_0000;
}

/// How the sampling stage reads the input feature map.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Sampling {
    /// Software bilinear from global memory (PyTorch baseline).
    Software,
    /// Hardware-filtered fetches from a layered texture; `frac_bits`
    /// controls the filter precision (23 = `tex2D`, 8 = `tex2D++`).
    Texture {
        /// Interpolation-fraction bits.
        frac_bits: u32,
    },
}

/// The deformable im2col kernel: grid = `N × C_in × output tiles`, one
/// thread per output position in the tile, each thread materializing all
/// `k²` taps of its position for its channel.
pub struct Im2colDeformKernel<'a> {
    /// Layer shape.
    pub shape: DeformLayerShape,
    /// Thread-block tile over the output plane.
    pub tile: TileConfig,
    /// Input feature map `[N, C_in, H, W]`.
    pub x: &'a Tensor,
    /// Offsets `[N, 2·G·k², outH, outW]` (already transformed if bounding /
    /// rounding applies — see `offset_transform`).
    pub offsets: &'a Tensor,
    /// Transform applied to raw offsets when computing sample coordinates.
    pub offset_transform: OffsetTransform,
    /// Sampling implementation.
    pub sampling: Sampling,
    /// The layered texture holding `x` (required iff `sampling` is
    /// `Texture`).
    pub texture: Option<LayeredTexture2d>,
    /// Operator generation; gates the modulation loads and arithmetic
    /// (v1 traces are byte-identical to the pre-family kernel).
    pub family: OpFamily,
    /// Modulation tensor `[N, G·k², outH, outW]` — post-sigmoid mask for
    /// v2, raw logits for v3. `None` is the family's neutral element
    /// (all-ones mask / constant logits); the trace never reads the
    /// values, only the numeric path does.
    pub modulation: Option<&'a Tensor>,
}

impl<'a> Im2colDeformKernel<'a> {
    /// Builds the DCNv1 kernel, constructing the layered texture when
    /// needed. `max_layers` / `max_dim` are the device texture limits.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        shape: DeformLayerShape,
        tile: TileConfig,
        x: &'a Tensor,
        offsets: &'a Tensor,
        offset_transform: OffsetTransform,
        sampling: Sampling,
        max_layers: usize,
        max_dim: usize,
    ) -> Result<Self, defcon_gpusim::texture::TextureLimitError> {
        Self::new_family(
            shape,
            tile,
            x,
            offsets,
            offset_transform,
            sampling,
            max_layers,
            max_dim,
            OpFamily::DcnV1,
            None,
        )
    }

    /// [`Im2colDeformKernel::new`] generalized over the operator family,
    /// with an optional borrowed modulation tensor (mask / logits).
    #[allow(clippy::too_many_arguments)]
    pub fn new_family(
        shape: DeformLayerShape,
        tile: TileConfig,
        x: &'a Tensor,
        offsets: &'a Tensor,
        offset_transform: OffsetTransform,
        sampling: Sampling,
        max_layers: usize,
        max_dim: usize,
        family: OpFamily,
        modulation: Option<&'a Tensor>,
    ) -> Result<Self, defcon_gpusim::texture::TextureLimitError> {
        let texture = match sampling {
            Sampling::Software => None,
            Sampling::Texture { frac_bits } => {
                let (n, c, h, w) = x.shape().nchw();
                let mut t = LayeredTexture2d::new(
                    x.data().to_vec(),
                    n * c,
                    h,
                    w,
                    address_map::TEXTURE,
                    max_layers,
                    max_dim,
                )?;
                t.filter_mode = defcon_gpusim::texture::FilterMode::Linear { frac_bits };
                t.address_mode = defcon_gpusim::texture::AddressMode::Border;
                Some(t)
            }
        };
        Ok(Im2colDeformKernel {
            shape,
            tile,
            x,
            offsets,
            offset_transform,
            sampling,
            texture,
            family,
            modulation,
        })
    }

    fn tiles_xy(&self) -> (usize, usize) {
        let (oh, ow) = self.shape.out_hw();
        (oh.div_ceil(self.tile.h), ow.div_ceil(self.tile.w))
    }

    #[inline]
    fn input_addr(&self, ni: usize, ci: usize, y: usize, x: usize) -> u64 {
        let s = self.shape;
        address_map::INPUT + 4 * (((ni * s.c_in + ci) * s.h + y) * s.w + x) as u64
    }

    #[inline]
    fn offset_addr(&self, ni: usize, ch: usize, oy: usize, ox: usize) -> u64 {
        let (oh, ow) = self.shape.out_hw();
        let oc = self.shape.offset_channels();
        address_map::OFFSETS + 4 * (((ni * oc + ch) * oh + oy) * ow + ox) as u64
    }

    #[inline]
    fn col_addr(&self, ni: usize, row: usize, col: usize) -> u64 {
        let (oh, ow) = self.shape.out_hw();
        let rows = self.shape.c_in * self.shape.kernel * self.shape.kernel;
        address_map::COLUMNS + 4 * ((ni * rows + row) * oh * ow + col) as u64
    }

    #[inline]
    fn modulation_addr(&self, ni: usize, ch: usize, oy: usize, ox: usize) -> u64 {
        let (oh, ow) = self.shape.out_hw();
        let mc = self.shape.deform_groups * self.shape.kernel * self.shape.kernel;
        address_map::MODULATION + 4 * (((ni * mc + ch) * oh + oy) * ow + ox) as u64
    }

    /// The numeric per-tap modulation factor: `1` for v1, the mask value
    /// for v2 (1 when `modulation` is `None`), and the grouped softmax
    /// weight of the tap for v3 (`fl(1/k²)` when `None` — exactly what
    /// [`tap_softmax`] yields for constant logits, so the None/constant
    /// reduction is byte-exact).
    pub fn modulation_factor(&self, ni: usize, g: usize, tap: usize, oy: usize, ox: usize) -> f32 {
        let kk = self.shape.kernel * self.shape.kernel;
        match (self.family, self.modulation) {
            (OpFamily::DcnV1, _) => 1.0,
            (OpFamily::DcnV2, None) => 1.0,
            (OpFamily::DcnV2, Some(m)) => m.at4(ni, g * kk + tap, oy, ox),
            (OpFamily::DcnV3, None) => (1.0f64 / kk as f64) as f32,
            (OpFamily::DcnV3, Some(logits)) => {
                let group: Vec<f32> = (0..kk)
                    .map(|t| logits.at4(ni, g * kk + t, oy, ox))
                    .collect();
                tap_softmax(&group)[tap] as f32
            }
        }
    }

    /// The sampling coordinate of `tap` at output `(oy, ox)` for deformable
    /// group `g`: `p = p_o + p_i + Δp_i` with the offset transform applied.
    fn sample_coord(&self, ni: usize, g: usize, tap: usize, oy: usize, ox: usize) -> (f32, f32) {
        let s = self.shape;
        let kk = s.kernel * s.kernel;
        let (ki, kj) = (tap / s.kernel, tap % s.kernel);
        let ch = 2 * (g * kk + tap);
        let dy = self
            .offset_transform
            .apply(self.offsets.at4(ni, ch, oy, ox));
        let dx = self
            .offset_transform
            .apply(self.offsets.at4(ni, ch + 1, oy, ox));
        let py = (oy * s.stride + ki) as f32 - s.pad as f32 + dy;
        let px = (ox * s.stride + kj) as f32 - s.pad as f32 + dx;
        (py, px)
    }
}

impl BlockTrace for Im2colDeformKernel<'_> {
    fn grid_blocks(&self) -> usize {
        let (ty, tx) = self.tiles_xy();
        self.shape.n * self.shape.c_in * ty * tx
    }

    fn block_threads(&self) -> usize {
        self.tile.threads()
    }

    fn label(&self) -> String {
        let base = match self.sampling {
            Sampling::Software => "deform_im2col_sw",
            Sampling::Texture { frac_bits } if frac_bits <= 10 => "deform_im2col_tex2dpp",
            Sampling::Texture { .. } => "deform_im2col_tex2d",
        };
        format!("{base}{}", self.family.label_suffix())
    }

    fn trace_block(&self, block: usize, sink: &mut TraceSink) {
        let s = self.shape;
        let (oh, ow) = s.out_hw();
        let (ty_count, tx_count) = self.tiles_xy();
        let blocks_per_channel = ty_count * tx_count;
        let ci = (block / blocks_per_channel) % s.c_in;
        let ni = block / (s.c_in * blocks_per_channel);
        let t = block % blocks_per_channel;
        let (tile_y, tile_x) = (t / tx_count, t % tx_count);
        let g = ci / (s.c_in / s.deform_groups);
        let kk = s.kernel * s.kernel;

        // Threads cover the tile row-major; lanes of one warp are
        // consecutive threads (so consecutive output columns, wrapping at
        // tile width — the standard CUDA mapping). All warp-level event
        // staging goes through fixed-capacity `LaneBuf`s / sink iterators:
        // this loop performs no heap allocation (see `tests/zero_alloc.rs`).
        let threads = self.tile.threads();
        let mut lanes: LaneBuf<(usize, usize)> = LaneBuf::new();
        for warp_start in (0..threads).step_by(32) {
            // Gather the warp's valid output positions.
            lanes.fill_from(
                (warp_start..(warp_start + 32).min(threads)).filter_map(|tid| {
                    let oy = tile_y * self.tile.h + tid / self.tile.w;
                    let ox = tile_x * self.tile.w + tid % self.tile.w;
                    (oy < oh && ox < ow).then_some((oy, ox))
                }),
            );
            if lanes.is_empty() {
                continue;
            }
            let nl = lanes.len() as u64;

            for tap in 0..kk {
                let ch = 2 * (g * kk + tap);
                // Two warp loads for (Δy, Δx) — coalesced along ox.
                sink.global_load_into(
                    lanes
                        .iter()
                        .map(|&(oy, ox)| self.offset_addr(ni, ch, oy, ox)),
                );
                sink.global_load_into(
                    lanes
                        .iter()
                        .map(|&(oy, ox)| self.offset_addr(ni, ch + 1, oy, ox)),
                );
                // Address arithmetic for the sampling position.
                sink.alu(4 * nl);
                sink.flop(4 * nl); // p = p_o + p_i + Δp (fp adds, x and y)

                // Family-specific modulation traffic and arithmetic. Gated
                // on the family (not on `modulation` being present) so a
                // served request without a tensor still traces honestly;
                // `DcnV1` emits nothing and stays byte-identical to the
                // pre-family kernel.
                match self.family {
                    OpFamily::DcnV1 => {}
                    OpFamily::DcnV2 => {
                        // One coalesced mask load per (group, tap) and the
                        // per-lane modulation multiply.
                        sink.global_load_into(
                            lanes
                                .iter()
                                .map(|&(oy, ox)| self.modulation_addr(ni, g * kk + tap, oy, ox)),
                        );
                        sink.flop(nl);
                    }
                    OpFamily::DcnV3 => {
                        // Logit load plus the tap's share of the grouped
                        // softmax: exp, normalizing accumulate, weighted
                        // multiply (≈3 flops/lane) and the max-subtract
                        // bookkeeping.
                        sink.global_load_into(
                            lanes
                                .iter()
                                .map(|&(oy, ox)| self.modulation_addr(ni, g * kk + tap, oy, ox)),
                        );
                        sink.flop(3 * nl);
                        sink.alu(nl);
                    }
                }

                match self.sampling {
                    Sampling::Software => {
                        // 4 neighbour loads; out-of-bounds neighbours are
                        // branched around (no load, but branch ALU cost).
                        let mut neigh: [LaneBuf<u64>; 4] = [LaneBuf::new(); 4];
                        for &(oy, ox) in lanes.iter() {
                            let (py, px) = self.sample_coord(ni, g, tap, oy, ox);
                            let (y0, x0) = (py.floor() as isize, px.floor() as isize);
                            for (slot, (qy, qx)) in
                                [(y0, x0), (y0, x0 + 1), (y0 + 1, x0), (y0 + 1, x0 + 1)]
                                    .iter()
                                    .enumerate()
                            {
                                if *qy >= 0 && *qy < s.h as isize && *qx >= 0 && *qx < s.w as isize
                                {
                                    neigh[slot].push(self.input_addr(
                                        ni,
                                        ci,
                                        *qy as usize,
                                        *qx as usize,
                                    ));
                                }
                            }
                        }
                        for addrs in &neigh {
                            sink.global_load(addrs);
                        }
                        // Software bilinear: weight computation (2 sub, 2
                        // one-minus) + 4 mul + 3 add ≈ 8 flops, plus the
                        // boundary branches (≈6 int ops).
                        sink.flop(8 * nl);
                        sink.alu(6 * nl);
                    }
                    Sampling::Texture { .. } => {
                        let tex = self
                            .texture
                            .as_ref()
                            .expect("texture sampling without texture");
                        let layer = ni * s.c_in + ci;
                        sink.tex_fetch_warp_into(
                            tex,
                            layer,
                            lanes
                                .iter()
                                .map(|&(oy, ox)| self.sample_coord(ni, g, tap, oy, ox)),
                        );
                    }
                }

                // One coalesced column store per tap.
                let row = ci * kk + tap;
                sink.global_store_into(
                    lanes
                        .iter()
                        .map(|&(oy, ox)| self.col_addr(ni, row, oy * ow + ox)),
                );
            }
        }
    }
}

/// Numeric companion of [`Im2colDeformKernel`]: materializes the column
/// matrix `[C_in·k², outH·outW]` for batch item `ni`, using exactly the same
/// sampling semantics as the trace (including texture filter precision).
///
/// For v2/v3 each column value is pre-multiplied by the tap's modulation
/// factor (mask / grouped-softmax weight), so the GEMM epilogue is family
/// agnostic. A v2 all-ones mask multiplies by exactly `1.0` and therefore
/// reproduces the v1 columns byte-for-byte.
pub fn im2col_deform_numeric(kernel: &Im2colDeformKernel<'_>, ni: usize) -> Vec<f32> {
    let s = kernel.shape;
    let (oh, ow) = s.out_hw();
    let kk = s.kernel * s.kernel;
    let neutral = kernel.family == OpFamily::DcnV1;
    let mut cols = vec![0.0f32; s.c_in * kk * oh * ow];
    for ci in 0..s.c_in {
        let g = ci / (s.c_in / s.deform_groups);
        for tap in 0..kk {
            let row = ci * kk + tap;
            for oy in 0..oh {
                for ox in 0..ow {
                    let (py, px) = kernel.sample_coord(ni, g, tap, oy, ox);
                    let v = match (&kernel.sampling, &kernel.texture) {
                        (Sampling::Software, _) => {
                            defcon_tensor::sample::bilinear_sample(kernel.x, ni, ci, py, px)
                        }
                        (Sampling::Texture { .. }, Some(tex)) => {
                            tex.fetch(ni * s.c_in + ci, py, px).value
                        }
                        _ => unreachable!("texture sampling without texture"),
                    };
                    let v = if neutral {
                        v
                    } else {
                        kernel.modulation_factor(ni, g, tap, oy, ox) * v
                    };
                    cols[row * oh * ow + oy * ow + ox] = v;
                }
            }
        }
    }
    cols
}

/// Tiled form of [`im2col_deform_numeric`]: materializes only the columns
/// of the output window `[oy0, oy0+th) × [ox0, ox0+tw)` for batch item
/// `ni`, as a `[C_in·k², th·tw]` row-major matrix (window-local column
/// index `ty·tw + tx`).
///
/// Every element is computed by **exactly** the per-element pipeline of
/// the full-plane function — same `sample_coord`, same sampler, same
/// modulation factor, same v1 neutral-skip — so a GEMM over a tile's
/// columns produces byte-identical output values to the corresponding
/// columns of a full-plane GEMM (the blocked GEMM's per-element reduction
/// order is independent of which columns are present; see
/// `defcon_tensor::gemm`). This is the accel backend's tile kernel.
pub fn im2col_deform_numeric_tile(
    kernel: &Im2colDeformKernel<'_>,
    ni: usize,
    oy0: usize,
    ox0: usize,
    th: usize,
    tw: usize,
) -> Vec<f32> {
    let s = kernel.shape;
    let kk = s.kernel * s.kernel;
    let neutral = kernel.family == OpFamily::DcnV1;
    let mut cols = vec![0.0f32; s.c_in * kk * th * tw];
    for ci in 0..s.c_in {
        let g = ci / (s.c_in / s.deform_groups);
        for tap in 0..kk {
            let row = ci * kk + tap;
            for ty in 0..th {
                let oy = oy0 + ty;
                for tx in 0..tw {
                    let ox = ox0 + tx;
                    let (py, px) = kernel.sample_coord(ni, g, tap, oy, ox);
                    let v = match (&kernel.sampling, &kernel.texture) {
                        (Sampling::Software, _) => {
                            defcon_tensor::sample::bilinear_sample(kernel.x, ni, ci, py, px)
                        }
                        (Sampling::Texture { .. }, Some(tex)) => {
                            tex.fetch(ni * s.c_in + ci, py, px).value
                        }
                        _ => unreachable!("texture sampling without texture"),
                    };
                    let v = if neutral {
                        v
                    } else {
                        kernel.modulation_factor(ni, g, tap, oy, ox) * v
                    };
                    cols[row * th * tw + ty * tw + tx] = v;
                }
            }
        }
    }
    cols
}

#[cfg(test)]
mod tests {
    use super::*;
    use defcon_gpusim::{DeviceConfig, Gpu};

    fn small_kernel(sampling: Sampling) -> (Tensor, Tensor, DeformLayerShape) {
        let shape = DeformLayerShape::same3x3(4, 4, 12, 12);
        let x = Tensor::randn(&[1, 4, 12, 12], 0.0, 1.0, 100);
        let offsets = Tensor::rand_uniform(&[1, 18, 12, 12], -2.0, 2.0, 101);
        let _ = sampling;
        (x, offsets, shape)
    }

    #[test]
    fn grid_covers_output() {
        let (x, off, shape) = small_kernel(Sampling::Software);
        let k = Im2colDeformKernel::new(
            shape,
            TileConfig { h: 8, w: 8 },
            &x,
            &off,
            OffsetTransform::Identity,
            Sampling::Software,
            2048,
            32768,
        )
        .unwrap();
        // 12x12 output with 8x8 tiles -> 2x2 tiles per channel, 4 channels.
        assert_eq!(k.grid_blocks(), 16);
        assert_eq!(k.block_threads(), 64);
    }

    #[test]
    fn numeric_software_matches_reference_columns() {
        let (x, off, shape) = small_kernel(Sampling::Software);
        let k = Im2colDeformKernel::new(
            shape,
            TileConfig::default16(),
            &x,
            &off,
            OffsetTransform::Identity,
            Sampling::Software,
            2048,
            32768,
        )
        .unwrap();
        let cols = im2col_deform_numeric(&k, 0);
        // Spot-check one element against the reference bilinear sampler.
        let (oh, ow) = shape.out_hw();
        let (ci, tap, oy, ox) = (2usize, 4usize, 5usize, 7usize);
        let (py, px) = k.sample_coord(0, 0, tap, oy, ox);
        let expect = defcon_tensor::sample::bilinear_sample(&x, 0, ci, py, px);
        assert_eq!(cols[(ci * 9 + tap) * oh * ow + oy * ow + ox], expect);
    }

    #[test]
    fn texture_numeric_matches_software_at_full_precision() {
        let (x, off, shape) = small_kernel(Sampling::Software);
        let mk = |sampling| {
            Im2colDeformKernel::new(
                shape,
                TileConfig::default16(),
                &x,
                &off,
                OffsetTransform::Identity,
                sampling,
                2048,
                32768,
            )
            .unwrap()
        };
        let sw = mk(Sampling::Software);
        let tx = mk(Sampling::Texture { frac_bits: 23 });
        let a = im2col_deform_numeric(&sw, 0);
        let b = im2col_deform_numeric(&tx, 0);
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            assert!((x - y).abs() < 1e-5, "col[{i}]: {x} vs {y}");
        }
    }

    #[test]
    fn tex2dpp_numeric_error_is_small() {
        let (x, off, shape) = small_kernel(Sampling::Software);
        let mk = |sampling| {
            Im2colDeformKernel::new(
                shape,
                TileConfig::default16(),
                &x,
                &off,
                OffsetTransform::Identity,
                sampling,
                2048,
                32768,
            )
            .unwrap()
        };
        let sw = mk(Sampling::Software);
        let pp = mk(Sampling::Texture { frac_bits: 8 });
        let a = im2col_deform_numeric(&sw, 0);
        let b = im2col_deform_numeric(&pp, 0);
        let max_err = a
            .iter()
            .zip(b.iter())
            .map(|(x, y)| (x - y).abs())
            .fold(0.0f32, f32::max);
        assert!(max_err < 0.05, "tex2D++ max error {max_err}");
        assert!(max_err > 0.0, "reduced precision should differ somewhere");
    }

    #[test]
    fn software_kernel_produces_global_loads_texture_kernel_does_not_sample_input_globally() {
        let (x, off, shape) = small_kernel(Sampling::Software);
        let gpu = Gpu::new(DeviceConfig::xavier_agx());
        let mk = |sampling| {
            Im2colDeformKernel::new(
                shape,
                TileConfig::default16(),
                &x,
                &off,
                OffsetTransform::Identity,
                sampling,
                2048,
                32768,
            )
            .unwrap()
        };
        let sw_report = gpu.launch(&mk(Sampling::Software));
        let tx_report = gpu.launch(&mk(Sampling::Texture { frac_bits: 23 }));
        assert!(sw_report.counters.tex_requests == 0);
        assert!(tx_report.counters.tex_requests > 0);
        // Texture kernel still loads offsets from global memory, but far
        // fewer global loads than the software kernel's 4-per-tap.
        assert!(tx_report.counters.gld_requests < sw_report.counters.gld_requests);
        // FLOP reduction ≈ 4x on the sampling stage (paper Fig. 10).
        assert!(sw_report.counters.flops as f64 > 2.0 * tx_report.counters.flops as f64);
    }

    #[test]
    fn bounded_offsets_do_not_change_in_range_numerics() {
        let (x, off, shape) = small_kernel(Sampling::Software);
        let mk = |tr| {
            Im2colDeformKernel::new(
                shape,
                TileConfig::default16(),
                &x,
                &off,
                tr,
                Sampling::Software,
                2048,
                32768,
            )
            .unwrap()
        };
        // Offsets are within [-2, 2]; bounding at 7 is a no-op.
        let a = im2col_deform_numeric(&mk(OffsetTransform::Identity), 0);
        let b = im2col_deform_numeric(&mk(OffsetTransform::Bounded(7.0)), 0);
        assert_eq!(a, b);
    }
}
