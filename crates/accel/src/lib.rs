//! # defcon-accel
//!
//! A deterministic tiled dataflow/systolic accelerator model for the
//! deformable convolution operator — the "third column" next to the
//! paper's software and GPU-texture kernels, in the spirit of the DCN
//! accelerator literature (algorithm–hardware co-design with bounded
//! offsets; energy-efficient tiled DCN engines).
//!
//! The machine: a `pe_rows × pe_cols` MAC array fed by explicit on-chip
//! **input**, **weight**, and **output** buffers, driven by the
//! double-buffered tile scheduler in [`scheduler`]. The paper's `P = 7`
//! offset clamp bounds each output tile's input **halo**, so halo
//! staging and reuse are modeled analytically per tile (no per-lane
//! simulation) — which is exactly what makes the model cheap, integer,
//! and byte-deterministic.
//!
//! Two faces, mirroring `defcon-gpusim`:
//!
//! * **Timing** — [`Accel`] implements the [`Backend`] trait: analytic
//!   cycle totals rendered as the same [`KernelReport`] currency the
//!   LUT, serving, and golden layers consume.
//! * **Numeric** — [`Backend::execute`] runs the operator tile by tile
//!   through the *same* per-element sampling pipeline as the GPU path
//!   and a per-tile GEMM whose per-element reduction order equals the
//!   full-plane GEMM's, so accel outputs are **byte-identical** to
//!   gpusim outputs for every op family and kernel path (the
//!   cross-backend conformance suite pins this).
//!
//! Degradation: any configuration the buffers cannot hold — or an armed
//! `accel.tile` fault — surfaces as a degradable [`DefconError`], and
//! [`launch_with_gpu_fallback`] steps over to the gpusim fallback
//! ladder, recording the transition like any other rung skip.

pub mod scheduler;

use defcon_gpusim::{Gpu, KernelReport};
use defcon_kernels::backend::{Backend, BackendKind};
use defcon_kernels::im2col::{im2col_deform_numeric_tile, Im2colDeformKernel};
use defcon_kernels::op::{DeformConvOp, DeformFallback, SamplingMethod};
use defcon_kernels::{DeformLayerShape, TileConfig};
use defcon_support::error::DefconError;
use defcon_support::json::Json;
use defcon_support::{fault, obs};
use defcon_tensor::{gemm, Tensor};

pub use scheduler::{CycleModel, Occupancy, Tile, TileCycles, TilePlan, Totals};

/// The offset bound the halo model assumes — the paper's `P = 7` clamp.
pub const OFFSET_BOUND: usize = 7;

/// One accelerator configuration: PE-array geometry, clock, on-chip
/// buffer capacities, DRAM bandwidth, and the offset bound the halo
/// model assumes.
#[derive(Clone, Debug, PartialEq)]
pub struct AccelConfig {
    /// Model name, stamped into reports.
    pub name: String,
    /// PE-array rows (output-channel dimension).
    pub pe_rows: usize,
    /// PE-array columns (output-pixel dimension; also the interpolator
    /// lane count of the sampling front end).
    pub pe_cols: usize,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// On-chip input (halo) buffer capacity in bytes.
    pub input_buffer_bytes: usize,
    /// On-chip weight buffer capacity in bytes.
    pub weight_buffer_bytes: usize,
    /// On-chip output buffer capacity in bytes.
    pub output_buffer_bytes: usize,
    /// DRAM bandwidth in GB/s.
    pub dram_gbytes_per_s: f64,
    /// Offset bound `P` (pixels) the tile halos assume.
    pub offset_bound: usize,
    /// Per-launch host overhead in microseconds.
    pub launch_overhead_us: f64,
}

impl AccelConfig {
    /// The edge-class preset: a 16×16 array at 1 GHz with LPDDR-class
    /// bandwidth — the natural sparring partner for the Xavier preset.
    pub fn edge() -> AccelConfig {
        AccelConfig {
            name: "DCN-Accel-Edge".into(),
            pe_rows: 16,
            pe_cols: 16,
            clock_ghz: 1.0,
            input_buffer_bytes: 2 * 1024 * 1024,
            weight_buffer_bytes: 1024 * 1024,
            output_buffer_bytes: 512 * 1024,
            dram_gbytes_per_s: 25.6,
            offset_bound: OFFSET_BOUND,
            launch_overhead_us: 10.0,
        }
    }

    /// The datacenter-class preset: a 32×32 array at 1.2 GHz with HBM-
    /// class bandwidth — the sparring partner for the 2080 Ti preset.
    pub fn datacenter() -> AccelConfig {
        AccelConfig {
            name: "DCN-Accel-DC".into(),
            pe_rows: 32,
            pe_cols: 32,
            clock_ghz: 1.2,
            input_buffer_bytes: 8 * 1024 * 1024,
            weight_buffer_bytes: 4 * 1024 * 1024,
            output_buffer_bytes: 2 * 1024 * 1024,
            dram_gbytes_per_s: 100.0,
            offset_bound: OFFSET_BOUND,
            launch_overhead_us: 5.0,
        }
    }

    /// The accelerator paired with a serving device's canonical name
    /// (`"xavier-agx"` / `"rtx2080ti"`), matching the device's deployment
    /// class. `None` for unknown names.
    pub fn for_serve_device(canonical: &str) -> Option<AccelConfig> {
        match canonical {
            "xavier-agx" => Some(AccelConfig::edge()),
            "rtx2080ti" => Some(AccelConfig::datacenter()),
            _ => None,
        }
    }

    /// Validates the configuration's structural invariants.
    pub fn validate(&self) -> Result<(), DefconError> {
        let positive = [
            ("pe_rows", self.pe_rows),
            ("pe_cols", self.pe_cols),
            ("input_buffer_bytes", self.input_buffer_bytes),
            ("weight_buffer_bytes", self.weight_buffer_bytes),
            ("output_buffer_bytes", self.output_buffer_bytes),
        ];
        for (field, v) in positive {
            if v == 0 {
                return Err(DefconError::Constraint {
                    what: "accel-config".into(),
                    detail: format!("{field} must be positive"),
                });
            }
        }
        for (field, v) in [
            ("clock_ghz", self.clock_ghz),
            ("dram_gbytes_per_s", self.dram_gbytes_per_s),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(DefconError::Constraint {
                    what: "accel-config".into(),
                    detail: format!("{field} must be finite and positive"),
                });
            }
        }
        Ok(())
    }

    /// DRAM bytes per core cycle as a Q16 fixed-point constant — the only
    /// place a float touches the cycle model, evaluated once.
    pub fn bytes_per_cycle_q16(&self) -> u64 {
        ((self.dram_gbytes_per_s / self.clock_ghz) * 65536.0)
            .round()
            .max(1.0) as u64
    }

    /// Converts core cycles to milliseconds (excluding launch overhead).
    pub fn cycles_to_ms(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.clock_ghz * 1e6)
    }
}

/// The accelerator backend: an [`AccelConfig`] plus the scheduling and
/// reporting logic that makes it a [`Backend`].
#[derive(Clone, Debug)]
pub struct Accel {
    config: AccelConfig,
}

impl Accel {
    /// A backend over `config`.
    pub fn new(config: AccelConfig) -> Accel {
        Accel { config }
    }

    /// The configuration.
    pub fn config(&self) -> &AccelConfig {
        &self.config
    }

    /// The tile plan `op` schedules under this configuration.
    pub fn plan(&self, op: &DeformConvOp) -> TilePlan {
        TilePlan::new(op.shape, op.tile, self.config.offset_bound)
    }

    /// The cycle/occupancy model of `op` on this configuration.
    pub fn cycle_model(&self, op: &DeformConvOp) -> CycleModel {
        CycleModel::new(&self.config, op)
    }

    /// Schedule totals for the deformable stage of `op`, after
    /// configuration checks. Timing is analytic: it depends on shapes
    /// and the method's interpolation precision, never on tensor values.
    pub fn deform_totals(&self, op: &DeformConvOp) -> Result<Totals, DefconError> {
        self.configure_op(op)?;
        let plan = self.plan(op);
        Ok(self.cycle_model(op).totals(&plan))
    }

    fn configure_op(&self, op: &DeformConvOp) -> Result<(), DefconError> {
        self.config.validate()?;
        // The injectable tile-scheduler fault: configuration-time, so
        // every launch path (deform, total, autotune objective) degrades
        // through the same gate.
        if fault::fires("accel.tile") {
            return Err(DefconError::Constraint {
                what: "accel-tile".into(),
                detail: "injected tile-scheduler fault".into(),
            });
        }
        let plan = self.plan(op);
        self.cycle_model(op).check_occupancy(&plan)
    }

    /// Renders schedule totals as a launch report.
    fn report(&self, label: String, totals: &Totals) -> KernelReport {
        let mut counters = defcon_gpusim::Counters::default();
        counters.flops = 2 * totals.macs + 6 * totals.samples;
        counters.alu_ops = totals.samples;
        counters.dram_read_bytes = totals.load_bytes;
        counters.dram_write_bytes = totals.store_bytes;
        KernelReport {
            device: self.config.name.clone(),
            kernel: label,
            time_ms: self.config.cycles_to_ms(totals.total_cycles)
                + self.config.launch_overhead_us / 1000.0,
            cycles: totals.total_cycles as f64,
            grid_blocks: totals.tiles as usize,
            simulated_blocks: totals.tiles as usize,
            counters,
        }
    }

    fn deform_label(&self, op: &DeformConvOp) -> String {
        let method = match op.method {
            SamplingMethod::SoftwareBilinear => "sw",
            SamplingMethod::Tex2d => "tex2d",
            SamplingMethod::Tex2dPlusPlus => "tex2dpp",
        };
        format!("accel_deform_{method}{}", op.family.label_suffix())
    }

    /// A plain dense convolution pass on the array (weight-streaming,
    /// halo-free tiles): the offset predictor and the LUT's rigid-conv
    /// baseline both use this model.
    fn conv_totals(&self, shape: &DeformLayerShape, c_out: usize) -> Totals {
        let (oh, ow) = shape.out_hw();
        let pe = (self.config.pe_rows * self.config.pe_cols) as u64;
        let bpc = self.config.bytes_per_cycle_q16();
        let dram = |bytes: u64| (bytes << 16).div_ceil(bpc);
        let kk = (shape.kernel * shape.kernel) as u64;
        let pixels = (shape.n * oh * ow) as u64;
        let macs = (c_out * shape.c_in) as u64 * kk * pixels;
        let load_bytes = (shape.n * shape.c_in * shape.h * shape.w * 4) as u64
            + (c_out * shape.c_in * 4) as u64 * kk;
        let store_bytes = c_out as u64 * pixels * 4;
        let (load, compute, store) = (dram(load_bytes), macs.div_ceil(pe), dram(store_bytes));
        Totals {
            tiles: 1,
            steady_cycles: load.max(compute).max(store),
            fill_cycles: load,
            drain_cycles: store,
            weight_cycles: 0,
            total_cycles: load.max(compute).max(store) + load + store,
            load_bytes,
            store_bytes,
            halo_bytes: 0,
            macs,
            samples: 0,
        }
    }

    /// The offset-predictor launch report (the joint `conv_offset_mask`
    /// widening for v2/v3, same as the GPU backend's predictor).
    fn offset_report(&self, op: &DeformConvOp) -> KernelReport {
        let s = op.shape;
        let pred_channels = s.offset_channels() + op.family.modulation_channels(&s);
        let totals = self.conv_totals(&s, pred_channels);
        self.report("accel_offset_conv".into(), &totals)
    }

    /// The `TileConfig` candidates of the standard search space that this
    /// configuration can actually buffer for `op` — the accel tile space
    /// the autotuner searches.
    pub fn tile_space(&self, op: &DeformConvOp) -> Vec<TileConfig> {
        TileConfig::search_space()
            .into_iter()
            .filter(|&tile| {
                let candidate = DeformConvOp { tile, ..op.clone() };
                let plan = self.plan(&candidate);
                self.cycle_model(&candidate).check_occupancy(&plan).is_ok()
            })
            .collect()
    }

    /// An autotuner objective over the accel tile space: deformable-stage
    /// cycles for `op` at the candidate tile (`+inf` when the buffers
    /// cannot hold the candidate, so infeasible tiles lose any search).
    pub fn tile_objective<'a>(
        &'a self,
        op: &'a DeformConvOp,
    ) -> impl Fn(TileConfig) -> f64 + Sync + 'a {
        move |tile| {
            let candidate = DeformConvOp { tile, ..op.clone() };
            match self.deform_totals(&candidate) {
                Ok(totals) => totals.total_cycles as f64,
                Err(_) => f64::INFINITY,
            }
        }
    }
}

impl Backend for Accel {
    fn backend_name(&self) -> &'static str {
        BackendKind::Accel.name()
    }

    fn device_name(&self) -> String {
        self.config.name.clone()
    }

    fn configure(&self, op: &DeformConvOp) -> Result<(), DefconError> {
        self.configure_op(op)
    }

    fn launch_deform(
        &self,
        op: &DeformConvOp,
        _x: &Tensor,
        _offsets: &Tensor,
    ) -> Result<DeformFallback, DefconError> {
        // Admission (validation, fault point, buffer occupancy) happens
        // before the span opens: a declined launch leaves no launch span.
        let totals = self.deform_totals(op)?;
        let span = obs::span_with("accel.launch", || {
            vec![
                ("method", Json::str(op.method.name())),
                ("family", Json::str(op.family.name())),
            ]
        });
        span.record("tiles", Json::from(totals.tiles));
        span.record("cycles", Json::from(totals.total_cycles));
        obs::counter_add("accel.tiles", totals.tiles);
        obs::counter_add("accel.halo_bytes", totals.halo_bytes);
        obs::counter_add("accel.refetch_bytes", self.plan(op).refetch_bytes());
        Ok(DeformFallback {
            reports: vec![self.report(self.deform_label(op), &totals)],
            method: op.method,
            degradations: Vec::new(),
        })
    }

    fn launch_total(
        &self,
        op: &DeformConvOp,
        x: &Tensor,
        offsets: &Tensor,
    ) -> Result<(f64, Vec<KernelReport>), DefconError> {
        let mut reports = vec![self.offset_report(op)];
        reports.extend(self.launch_deform(op, x, offsets)?.reports);
        let total = reports.iter().map(|r| r.time_ms).sum();
        Ok((total, reports))
    }

    fn regular_conv_ms(&self, shape: &DeformLayerShape) -> f64 {
        let totals = self.conv_totals(shape, shape.c_out);
        self.report("accel_regular_conv".into(), &totals).time_ms
    }

    /// Tile-by-tile numeric execution. Byte-identical to the GPU
    /// backend's full-plane execution: each tile's columns come from the
    /// identical per-element sampling pipeline
    /// ([`im2col_deform_numeric_tile`]), and the blocked GEMM's
    /// per-output-element reduction order is independent of which columns
    /// are present (see `defcon_tensor::gemm`), so scattering per-tile
    /// GEMM results reproduces the full-plane result bit for bit.
    fn execute(&self, op: &DeformConvOp, x: &Tensor, offsets: &Tensor, weight: &Tensor) -> Tensor {
        let s = op.shape;
        let (oh, ow) = s.out_hw();
        let kernel = Im2colDeformKernel::new_family(
            s,
            op.tile,
            x,
            offsets,
            op.offset_transform,
            op.method.sampling(),
            // The accelerator has no texture unit: the sampler pipeline
            // is modeled directly, so there is no layer/dimension limit.
            usize::MAX,
            usize::MAX,
            op.family,
            op.modulation.as_ref(),
        )
        .expect("unlimited texture layers cannot be exceeded");
        let krows = s.c_in * s.kernel * s.kernel;
        let plan = self.plan(op);
        let mut out = Tensor::zeros(&[s.n, s.c_out, oh, ow]);
        let mut dst_tile = vec![0.0f32; s.c_out * op.tile.h * op.tile.w];
        for t in plan.tiles() {
            let cols = im2col_deform_numeric_tile(&kernel, t.n, t.oy0, t.ox0, t.th, t.tw);
            let pixels = t.pixels();
            let dst = &mut dst_tile[..s.c_out * pixels];
            dst.fill(0.0);
            gemm::gemm(weight.data(), &cols, dst, s.c_out, krows, pixels);
            let data = out.data_mut();
            for co in 0..s.c_out {
                for ty in 0..t.th {
                    let src = &dst[(co * t.th + ty) * t.tw..(co * t.th + ty + 1) * t.tw];
                    let base = ((t.n * s.c_out + co) * oh + t.oy0 + ty) * ow + t.ox0;
                    data[base..base + t.tw].copy_from_slice(src);
                }
            }
        }
        out
    }
}

/// Runs the deformable stage on `accel`, stepping over to the gpusim
/// fallback ladder when the accelerator declines (buffer constraints or
/// an armed `accel.tile` fault). The accel rung's skip is recorded as a
/// `kernels.fallback` event and a leading degradation line, exactly like
/// a texture-rung skip; non-degradable errors propagate.
pub fn launch_with_gpu_fallback(
    accel: &Accel,
    gpu: &Gpu,
    op: &DeformConvOp,
    x: &Tensor,
    offsets: &Tensor,
) -> Result<DeformFallback, DefconError> {
    match accel.launch_deform(op, x, offsets) {
        Ok(fb) => Ok(fb),
        Err(e) if e.is_degradable() => {
            obs::event_with("kernels.fallback", || {
                vec![
                    ("from", Json::str("accel")),
                    ("error", Json::str(e.to_string())),
                ]
            });
            let mut fb = op.simulate_deform_with_fallback(gpu, x, offsets)?;
            fb.degradations.insert(0, format!("accel unavailable: {e}"));
            Ok(fb)
        }
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use defcon_gpusim::DeviceConfig;
    use defcon_kernels::op::synthetic_inputs;

    fn small_op(method: SamplingMethod) -> DeformConvOp {
        DeformConvOp {
            method,
            ..DeformConvOp::baseline(DeformLayerShape::same3x3(4, 6, 12, 12))
        }
    }

    #[test]
    fn presets_validate_and_pair_with_serve_devices() {
        AccelConfig::edge().validate().unwrap();
        AccelConfig::datacenter().validate().unwrap();
        assert_eq!(
            AccelConfig::for_serve_device("xavier-agx").map(|c| c.name),
            Some("DCN-Accel-Edge".to_string())
        );
        assert_eq!(
            AccelConfig::for_serve_device("rtx2080ti").map(|c| c.name),
            Some("DCN-Accel-DC".to_string())
        );
        assert_eq!(AccelConfig::for_serve_device("cpu"), None);
    }

    #[test]
    fn launch_reports_are_deterministic_and_labeled() {
        let accel = Accel::new(AccelConfig::edge());
        let op = small_op(SamplingMethod::Tex2dPlusPlus);
        let (x, off) = synthetic_inputs(&op.shape, 2.0, 3);
        let a = accel.launch_deform(&op, &x, &off).unwrap();
        let b = accel.launch_deform(&op, &x, &off).unwrap();
        assert_eq!(a.reports[0], b.reports[0], "analytic model must be pure");
        assert_eq!(a.reports[0].kernel, "accel_deform_tex2dpp");
        assert_eq!(a.reports[0].device, "DCN-Accel-Edge");
        assert!(a.reports[0].time_ms > 0.0 && a.reports[0].cycles > 0.0);
        assert_eq!(
            a.reports[0].grid_blocks,
            accel.plan(&op).num_tiles(),
            "one grid block per scheduled tile"
        );
    }

    #[test]
    fn interpolation_precision_orders_the_methods() {
        let accel = Accel::new(AccelConfig::edge());
        let (x, off) = synthetic_inputs(&small_op(SamplingMethod::Tex2d).shape, 2.0, 4);
        let ms = |m| accel.launch_deform(&small_op(m), &x, &off).unwrap().reports[0].time_ms;
        let (sw, t2, tpp) = (
            ms(SamplingMethod::SoftwareBilinear),
            ms(SamplingMethod::Tex2d),
            ms(SamplingMethod::Tex2dPlusPlus),
        );
        assert!(
            sw >= t2 && t2 >= tpp,
            "sampling cost must order methods: {sw} {t2} {tpp}"
        );
    }

    #[test]
    fn oversized_tiles_degrade_and_fall_back_to_the_gpu() {
        // 64×64 tiles on a wide layer blow the edge input buffer.
        let shape = DeformLayerShape::same3x3(256, 16, 96, 96);
        let op = DeformConvOp {
            tile: TileConfig { h: 64, w: 64 },
            method: SamplingMethod::Tex2dPlusPlus,
            ..DeformConvOp::baseline(shape)
        };
        let accel = Accel::new(AccelConfig::edge());
        let e = accel.configure(&op).unwrap_err();
        assert!(e.is_degradable(), "buffer overflow must be degradable");
        let gpu = Gpu::new(DeviceConfig::xavier_agx());
        let (x, off) = synthetic_inputs(&shape, 2.0, 5);
        let fb = launch_with_gpu_fallback(&accel, &gpu, &op, &x, &off).unwrap();
        assert_eq!(fb.method, SamplingMethod::Tex2dPlusPlus);
        assert!(fb.degradations[0].starts_with("accel unavailable:"));
    }

    #[test]
    fn tile_space_is_nonempty_and_feasible() {
        let accel = Accel::new(AccelConfig::edge());
        let op = small_op(SamplingMethod::Tex2dPlusPlus);
        let space = accel.tile_space(&op);
        assert!(!space.is_empty());
        let objective = accel.tile_objective(&op);
        for &tile in &space {
            assert!(
                objective(tile).is_finite(),
                "feasible tile {tile} scored inf"
            );
        }
    }

    #[test]
    fn launch_total_includes_the_offset_predictor() {
        let accel = Accel::new(AccelConfig::edge());
        let op = small_op(SamplingMethod::Tex2d);
        let (x, off) = synthetic_inputs(&op.shape, 2.0, 6);
        let (total, reports) = accel.launch_total(&op, &x, &off).unwrap();
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].kernel, "accel_offset_conv");
        assert!((total - reports.iter().map(|r| r.time_ms).sum::<f64>()).abs() < 1e-12);
        assert!(accel.regular_conv_ms(&op.shape) > 0.0);
    }
}
