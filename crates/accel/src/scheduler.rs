//! The double-buffered tile scheduler and its analytic cycle model.
//!
//! The accelerator processes the output plane in `tile.h × tile.w`
//! windows (the same tile space the GPU kernels use, so the autotuner's
//! search transfers wholesale). For each output tile the scheduler
//! stages the tile's **input halo** into the on-chip input buffer,
//! streams weights through the PE array, and drains the finished output
//! block — with loads of tile *i+1* overlapped against compute of tile
//! *i* (double buffering).
//!
//! ## Bounded-offset halo
//!
//! The paper's `P = 7` offset clamp is what makes the halo *finite*: a
//! deformable tap at output `(oy, ox)` can reach at most `P` pixels past
//! its rigid receptive field, so an output tile's input footprint is the
//! rigid footprint dilated by `P` (plus one row/column of bilinear
//! support) and clamped to the feature map — the locality lever of
//! Huang et al.'s algorithm–hardware co-design, modeled analytically per
//! tile instead of per-lane.
//!
//! ## Determinism
//!
//! Every quantity here is integer arithmetic over shapes (bandwidth uses
//! a Q16 fixed-point bytes-per-cycle constant), and the aggregate cost is
//!
//! ```text
//! total = Σᵢ max(loadᵢ, computeᵢ, storeᵢ)  +  maxᵢ loadᵢ  +  maxᵢ storeᵢ
//!         (steady state, tile i overlapped)   (pipeline fill)  (drain)
//! ```
//!
//! — a sum and two maxes over the tile set, so the model is invariant
//! under tile *visit order* by construction (the property suite pins
//! this).

use defcon_kernels::op::{DeformConvOp, OpFamily, SamplingMethod};
use defcon_kernels::{DeformLayerShape, TileConfig};
use defcon_support::error::DefconError;

use crate::AccelConfig;

/// One unit of scheduled work: an output window of batch item `n`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Tile {
    /// Batch item.
    pub n: usize,
    /// First output row of the window.
    pub oy0: usize,
    /// First output column of the window.
    pub ox0: usize,
    /// Window height (edge tiles are clamped to the output plane).
    pub th: usize,
    /// Window width (edge tiles are clamped).
    pub tw: usize,
}

impl Tile {
    /// Output positions in this tile.
    pub fn pixels(&self) -> usize {
        self.th * self.tw
    }
}

/// The tile decomposition of a layer's output plane: a pure function of
/// `(shape, tile, bound)` that can enumerate tiles and compute each
/// tile's input halo without allocating.
#[derive(Clone, Copy, Debug)]
pub struct TilePlan {
    /// Layer shape being decomposed.
    pub shape: DeformLayerShape,
    /// Output tile size.
    pub tile: TileConfig,
    /// Offset bound `P` (pixels) the halo assumes; offsets beyond it are
    /// clamped by the operator's offset transform.
    pub bound: usize,
    tiles_y: usize,
    tiles_x: usize,
}

impl TilePlan {
    /// Decomposes `shape`'s output plane into `tile`-sized windows under
    /// offset bound `bound`.
    pub fn new(shape: DeformLayerShape, tile: TileConfig, bound: usize) -> TilePlan {
        let (oh, ow) = shape.out_hw();
        TilePlan {
            shape,
            tile,
            bound,
            tiles_y: oh.div_ceil(tile.h),
            tiles_x: ow.div_ceil(tile.w),
        }
    }

    /// Tile-grid height.
    pub fn tiles_y(&self) -> usize {
        self.tiles_y
    }

    /// Tile-grid width.
    pub fn tiles_x(&self) -> usize {
        self.tiles_x
    }

    /// Total scheduled tiles (`n × tiles_y × tiles_x`).
    pub fn num_tiles(&self) -> usize {
        self.shape.n * self.tiles_y * self.tiles_x
    }

    /// The `idx`-th tile in canonical (batch-major, row-major) order.
    /// Pure index arithmetic — no allocation.
    pub fn tile_at(&self, idx: usize) -> Tile {
        let (oh, ow) = self.shape.out_hw();
        let per_image = self.tiles_y * self.tiles_x;
        let n = idx / per_image;
        let rem = idx % per_image;
        let ty = rem / self.tiles_x;
        let tx = rem % self.tiles_x;
        let oy0 = ty * self.tile.h;
        let ox0 = tx * self.tile.w;
        Tile {
            n,
            oy0,
            ox0,
            th: self.tile.h.min(oh - oy0),
            tw: self.tile.w.min(ow - ox0),
        }
    }

    /// Iterates the tiles in canonical order without allocating.
    pub fn tiles(&self) -> impl Iterator<Item = Tile> + '_ {
        (0..self.num_tiles()).map(|i| self.tile_at(i))
    }

    /// Input rows a tile's halo spans along one axis: the rigid footprint
    /// `[o0·s − pad, o_last·s + k−1 − pad]` dilated by `bound` on both
    /// sides plus one pixel of bilinear support, clamped to `[0, dim)`.
    /// Monotone non-decreasing in `bound` by construction.
    fn halo_extent(&self, o0: usize, len: usize, dim: usize) -> usize {
        let s = self.shape;
        let lo = (o0 * s.stride) as i64 - s.pad as i64 - self.bound as i64;
        let hi = ((o0 + len - 1) * s.stride + s.kernel - 1) as i64 - s.pad as i64
            + self.bound as i64
            + 2;
        let lo = lo.max(0);
        let hi = hi.min(dim as i64);
        (hi - lo).max(0) as usize
    }

    /// Input rows the tile's halo spans.
    pub fn halo_rows(&self, t: &Tile) -> usize {
        self.halo_extent(t.oy0, t.th, self.shape.h)
    }

    /// Input columns the tile's halo spans.
    pub fn halo_cols(&self, t: &Tile) -> usize {
        self.halo_extent(t.ox0, t.tw, self.shape.w)
    }

    /// Bytes of input feature map staged for this tile: the halo window
    /// across all `C_in` planes, fp32.
    pub fn halo_bytes(&self, t: &Tile) -> u64 {
        (self.halo_rows(t) * self.halo_cols(t) * self.shape.c_in * 4) as u64
    }

    /// Bytes of input the tile set fetches beyond one copy of the feature
    /// map — the halo-overlap refetch traffic the on-chip buffers pay for
    /// bounded offsets. Zero when tiles don't overlap (single tile).
    pub fn refetch_bytes(&self) -> u64 {
        let s = self.shape;
        let unique = (s.n * s.c_in * s.h * s.w * 4) as u64;
        let total: u64 = self.tiles().map(|t| self.halo_bytes(&t)).sum();
        total.saturating_sub(unique)
    }
}

/// Worst-case on-chip working set of one scheduled tile, per buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Occupancy {
    /// Input buffer: current + prefetched halo (double buffered).
    pub input_bytes: u64,
    /// Weight buffer: the resident filter bank, or two streamed panels.
    pub weight_bytes: u64,
    /// Output buffer: two in-flight `pe_rows`-channel output blocks.
    pub output_bytes: u64,
}

/// Per-tile pipeline-stage costs in accelerator cycles.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TileCycles {
    /// DRAM → input buffer staging (halo + offsets + modulation, plus
    /// weight panels when the filter bank doesn't fit resident).
    pub load: u64,
    /// PE-array + sampling-pipeline cycles.
    pub compute: u64,
    /// Output drain cycles.
    pub store: u64,
}

/// Aggregate schedule cost; see the module docs for the formula.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Totals {
    /// Tiles scheduled.
    pub tiles: u64,
    /// Σ max(load, compute, store) over tiles.
    pub steady_cycles: u64,
    /// Pipeline fill: max load over tiles.
    pub fill_cycles: u64,
    /// Pipeline drain: max store over tiles.
    pub drain_cycles: u64,
    /// One-time resident-weight staging (0 when weights stream per tile).
    pub weight_cycles: u64,
    /// `steady + fill + drain + weight`.
    pub total_cycles: u64,
    /// DRAM bytes read (halos + offsets + modulation + weights).
    pub load_bytes: u64,
    /// DRAM bytes written (output).
    pub store_bytes: u64,
    /// Σ halo bytes (input staging only, for reuse accounting).
    pub halo_bytes: u64,
    /// Multiply-accumulates performed.
    pub macs: u64,
    /// Deformable samples taken (bilinear interpolations).
    pub samples: u64,
}

/// The analytic cycle/occupancy model of one operator on one accelerator
/// configuration. All per-tile quantities are integer arithmetic over
/// precomputed constants, so evaluating a plan is allocation-free and
/// byte-deterministic.
#[derive(Clone, Copy, Debug)]
pub struct CycleModel {
    pe: u64,
    pe_rows: u64,
    interp_lanes: u64,
    /// DRAM bytes per accelerator cycle, Q16 fixed point.
    bpc_q16: u64,
    c_out: u64,
    group_taps: u64,
    macs_per_pixel: u64,
    samples_per_pixel: u64,
    sample_cost: u64,
    family: OpFamily,
    weight_bytes: u64,
    weight_panel_bytes: u64,
    weight_resident: bool,
    input_capacity: u64,
    weight_capacity: u64,
    output_capacity: u64,
}

impl CycleModel {
    /// Builds the model for `op` on `cfg`.
    pub fn new(cfg: &AccelConfig, op: &DeformConvOp) -> CycleModel {
        let s = op.shape;
        let kk = (s.kernel * s.kernel) as u64;
        let weight_bytes = (s.c_out * s.c_in * s.kernel * s.kernel * 4) as u64;
        // Streamed weights move through the array one pe_rows-wide output-
        // channel panel at a time; resident weights are staged once.
        let weight_panel_bytes = (s.c_in * s.kernel * s.kernel * cfg.pe_rows * 4) as u64;
        CycleModel {
            pe: (cfg.pe_rows * cfg.pe_cols) as u64,
            pe_rows: cfg.pe_rows as u64,
            interp_lanes: cfg.pe_cols as u64,
            bpc_q16: cfg.bytes_per_cycle_q16(),
            c_out: s.c_out as u64,
            group_taps: (s.deform_groups as u64) * kk,
            macs_per_pixel: (s.c_out * s.c_in) as u64 * kk,
            samples_per_pixel: s.c_in as u64 * kk,
            sample_cost: match op.method {
                // No texture unit: software bilinear is lane-serial; the
                // fp32 filter path halves interpolator throughput exactly
                // like the GPU's texture filter rate; tex2D++-precision
                // interpolation runs at full rate.
                SamplingMethod::SoftwareBilinear => 4,
                SamplingMethod::Tex2d => 2,
                SamplingMethod::Tex2dPlusPlus => 1,
            },
            family: op.family,
            weight_bytes,
            weight_panel_bytes,
            weight_resident: weight_bytes <= cfg.weight_buffer_bytes as u64,
            input_capacity: cfg.input_buffer_bytes as u64,
            weight_capacity: cfg.weight_buffer_bytes as u64,
            output_capacity: cfg.output_buffer_bytes as u64,
        }
    }

    fn dram_cycles(&self, bytes: u64) -> u64 {
        (bytes << 16).div_ceil(self.bpc_q16)
    }

    /// Bytes staged for one tile besides the input halo: the tile's
    /// offset field, the family's modulation channels, and (when the
    /// filter bank streams) the full weight pass.
    fn side_load_bytes(&self, t: &Tile) -> u64 {
        let pixels = t.pixels() as u64;
        let offset_bytes = 2 * self.group_taps * pixels * 4;
        let modulation_bytes = match self.family {
            OpFamily::DcnV1 => 0,
            OpFamily::DcnV2 | OpFamily::DcnV3 => self.group_taps * pixels * 4,
        };
        let weight_stream = if self.weight_resident {
            0
        } else {
            self.weight_bytes
        };
        offset_bytes + modulation_bytes + weight_stream
    }

    /// The three pipeline-stage costs of one tile.
    pub fn tile_cycles(&self, plan: &TilePlan, t: &Tile) -> TileCycles {
        let pixels = t.pixels() as u64;
        let load_bytes = plan.halo_bytes(t) + self.side_load_bytes(t);
        let samples = self.samples_per_pixel * pixels;
        let mac_cycles = (self.macs_per_pixel * pixels).div_ceil(self.pe);
        let sample_cycles = (samples * self.sample_cost).div_ceil(self.interp_lanes);
        // v2 pays a mask multiply per sample on the PE array; v3 pays the
        // same plus a grouped softmax (exp + normalize) per output pixel.
        let family_cycles = match self.family {
            OpFamily::DcnV1 => 0,
            OpFamily::DcnV2 => samples.div_ceil(self.pe),
            OpFamily::DcnV3 => {
                samples.div_ceil(self.pe)
                    + (2 * self.group_taps * pixels).div_ceil(self.interp_lanes)
            }
        };
        TileCycles {
            load: self.dram_cycles(load_bytes),
            compute: mac_cycles.max(sample_cycles) + family_cycles,
            store: self.dram_cycles(self.c_out * pixels * 4),
        }
    }

    /// Worst-case buffer working set while this tile is in flight.
    pub fn tile_occupancy(&self, plan: &TilePlan, t: &Tile) -> Occupancy {
        Occupancy {
            input_bytes: 2 * plan.halo_bytes(t),
            weight_bytes: if self.weight_resident {
                self.weight_bytes
            } else {
                2 * self.weight_panel_bytes
            },
            output_bytes: 2 * self.pe_rows * t.pixels() as u64 * 4,
        }
    }

    /// Checks the worst-case (full-size, corner-interior) tile's working
    /// set against the configured buffer capacities. Occupancy shrinks
    /// with tile size, so passing here bounds every tile of the plan.
    pub fn check_occupancy(&self, plan: &TilePlan) -> Result<(), DefconError> {
        if plan.num_tiles() == 0 {
            return Err(DefconError::Constraint {
                what: "accel-buffer".into(),
                detail: "empty tile plan".into(),
            });
        }
        let worst = self.tile_occupancy(plan, &plan.tile_at(0));
        let checks = [
            ("input", worst.input_bytes, self.input_capacity),
            ("weight", worst.weight_bytes, self.weight_capacity),
            ("output", worst.output_bytes, self.output_capacity),
        ];
        for (buffer, need, cap) in checks {
            if need > cap {
                return Err(DefconError::Constraint {
                    what: "accel-buffer".into(),
                    detail: format!(
                        "{buffer} buffer needs {need} bytes for a {}x{} tile (capacity {cap})",
                        plan.tile.h, plan.tile.w
                    ),
                });
            }
        }
        Ok(())
    }

    /// Aggregates the whole plan. Allocation-free: one pass over the
    /// index-computed tile stream with integer accumulators.
    pub fn totals(&self, plan: &TilePlan) -> Totals {
        let mut acc = Totals {
            tiles: plan.num_tiles() as u64,
            ..Totals::default()
        };
        for t in plan.tiles() {
            let c = self.tile_cycles(plan, &t);
            let pixels = t.pixels() as u64;
            let halo = plan.halo_bytes(&t);
            acc.steady_cycles += c.load.max(c.compute).max(c.store);
            acc.fill_cycles = acc.fill_cycles.max(c.load);
            acc.drain_cycles = acc.drain_cycles.max(c.store);
            acc.load_bytes += halo + self.side_load_bytes(&t);
            acc.store_bytes += self.c_out * pixels * 4;
            acc.halo_bytes += halo;
            acc.macs += self.macs_per_pixel * pixels;
            acc.samples += self.samples_per_pixel * pixels;
        }
        if self.weight_resident {
            acc.weight_cycles = self.dram_cycles(self.weight_bytes);
            acc.load_bytes += self.weight_bytes;
        }
        acc.total_cycles =
            acc.steady_cycles + acc.fill_cycles + acc.drain_cycles + acc.weight_cycles;
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use defcon_support::prop::{self, Config};
    use defcon_support::rng::{Rng, StdRng};
    use defcon_support::{prop_assert, prop_assert_eq};

    fn gen_shape(rng: &mut StdRng) -> DeformLayerShape {
        DeformLayerShape {
            n: rng.gen_range(1usize..3),
            c_in: rng.gen_range(1usize..48),
            c_out: rng.gen_range(1usize..48),
            h: rng.gen_range(3usize..56),
            w: rng.gen_range(3usize..56),
            kernel: rng.gen_range(1usize..4),
            stride: rng.gen_range(1usize..3),
            pad: rng.gen_range(0usize..2),
            deform_groups: 1,
        }
    }

    fn gen_tile(rng: &mut StdRng) -> TileConfig {
        let sides = [2usize, 4, 8, 16, 32, 64];
        TileConfig {
            h: sides[rng.gen_range(0..sides.len())],
            w: sides[rng.gen_range(0..sides.len())],
        }
    }

    fn gen_case(rng: &mut StdRng) -> (DeformLayerShape, TileConfig, usize) {
        (gen_shape(rng), gen_tile(rng), rng.gen_range(0usize..12))
    }

    /// Every output position of every batch item is covered by exactly
    /// one tile — the scheduler neither drops nor double-schedules work.
    #[test]
    fn tile_coverage_is_exact_and_non_overlapping() {
        prop::check(
            "accel_tile_coverage",
            &Config::cases(96),
            gen_case,
            |&(shape, tile, bound)| {
                let plan = TilePlan::new(shape, tile, bound);
                let (oh, ow) = shape.out_hw();
                let mut hits = vec![0u32; shape.n * oh * ow];
                for t in plan.tiles() {
                    prop_assert!(t.th > 0 && t.tw > 0, "degenerate tile {t:?}");
                    prop_assert!(t.oy0 + t.th <= oh && t.ox0 + t.tw <= ow);
                    for dy in 0..t.th {
                        for dx in 0..t.tw {
                            hits[(t.n * oh + t.oy0 + dy) * ow + t.ox0 + dx] += 1;
                        }
                    }
                }
                prop_assert!(
                    hits.iter().all(|&c| c == 1),
                    "coverage counts off: min {:?} max {:?}",
                    hits.iter().min(),
                    hits.iter().max()
                );
                Ok(())
            },
        );
    }

    /// A larger offset bound can only widen a tile's input halo: the
    /// bounded-offset locality argument is monotone in `P`.
    #[test]
    fn halo_bytes_are_monotone_in_the_offset_bound() {
        prop::check(
            "accel_halo_monotone",
            &Config::cases(96),
            |rng| {
                let (shape, tile, p1) = gen_case(rng);
                (shape, tile, p1, p1 + rng.gen_range(1usize..8))
            },
            |&(shape, tile, p1, p2)| {
                let a = TilePlan::new(shape, tile, p1);
                let b = TilePlan::new(shape, tile, p2);
                prop_assert_eq!(a.num_tiles(), b.num_tiles());
                for i in 0..a.num_tiles() {
                    let t = a.tile_at(i);
                    prop_assert!(
                        a.halo_bytes(&t) <= b.halo_bytes(&b.tile_at(i)),
                        "halo shrank when P grew {p1}->{p2} at tile {t:?}"
                    );
                }
                Ok(())
            },
        );
    }

    /// When the model admits a plan, no scheduled tile's working set
    /// exceeds any configured buffer capacity.
    #[test]
    fn admitted_plans_never_exceed_buffer_capacity() {
        prop::check(
            "accel_occupancy_bounded",
            &Config::cases(96),
            gen_case,
            |&(shape, tile, bound)| {
                let cfg = AccelConfig::edge();
                let op = DeformConvOp {
                    tile,
                    ..DeformConvOp::baseline(shape)
                };
                let model = CycleModel::new(&cfg, &op);
                let plan = TilePlan::new(shape, tile, bound);
                if model.check_occupancy(&plan).is_err() {
                    return Ok(()); // rejected plans never run
                }
                for t in plan.tiles() {
                    let occ = model.tile_occupancy(&plan, &t);
                    prop_assert!(occ.input_bytes <= cfg.input_buffer_bytes as u64);
                    prop_assert!(occ.weight_bytes <= cfg.weight_buffer_bytes as u64);
                    prop_assert!(occ.output_bytes <= cfg.output_buffer_bytes as u64);
                }
                Ok(())
            },
        );
    }

    /// The aggregate cost is a sum and two maxes over the tile set, so
    /// visiting tiles in any order produces identical totals.
    #[test]
    fn cycle_totals_are_invariant_under_tile_visit_order() {
        prop::check(
            "accel_order_invariance",
            &Config::cases(64),
            |rng| {
                let (shape, tile, bound) = gen_case(rng);
                let n = TilePlan::new(shape, tile, bound).num_tiles();
                // A random permutation of the tile indices.
                let mut order: Vec<usize> = (0..n).collect();
                for i in (1..n).rev() {
                    order.swap(i, rng.gen_range(0..i + 1));
                }
                (shape, tile, bound, order)
            },
            |&(shape, tile, bound, ref order)| {
                let cfg = AccelConfig::edge();
                let op = DeformConvOp {
                    tile,
                    ..DeformConvOp::baseline(shape)
                };
                let model = CycleModel::new(&cfg, &op);
                let plan = TilePlan::new(shape, tile, bound);
                let canonical = model.totals(&plan);
                let mut steady = 0u64;
                let mut fill = 0u64;
                let mut drain = 0u64;
                for &i in order {
                    let c = model.tile_cycles(&plan, &plan.tile_at(i));
                    steady += c.load.max(c.compute).max(c.store);
                    fill = fill.max(c.load);
                    drain = drain.max(c.store);
                }
                prop_assert_eq!(steady, canonical.steady_cycles);
                prop_assert_eq!(fill, canonical.fill_cycles);
                prop_assert_eq!(drain, canonical.drain_cycles);
                prop_assert_eq!(
                    steady + fill + drain + canonical.weight_cycles,
                    canonical.total_cycles
                );
                Ok(())
            },
        );
    }

    #[test]
    fn halo_clamps_to_the_feature_map() {
        let shape = DeformLayerShape::same3x3(4, 4, 10, 10);
        let plan = TilePlan::new(shape, TileConfig { h: 64, w: 64 }, 7);
        assert_eq!(plan.num_tiles(), 1);
        let t = plan.tile_at(0);
        // One tile covers the whole plane; the halo is the whole input.
        assert_eq!((plan.halo_rows(&t), plan.halo_cols(&t)), (10, 10));
        assert_eq!(plan.refetch_bytes(), 0);
    }

    #[test]
    fn refetch_traffic_appears_once_tiles_overlap() {
        let shape = DeformLayerShape::same3x3(4, 4, 32, 32);
        let whole = TilePlan::new(shape, TileConfig { h: 32, w: 32 }, 7);
        let tiled = TilePlan::new(shape, TileConfig { h: 8, w: 8 }, 7);
        assert_eq!(whole.refetch_bytes(), 0);
        assert!(tiled.refetch_bytes() > 0, "overlapping halos must refetch");
    }
}
