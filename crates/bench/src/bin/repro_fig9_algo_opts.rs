//! Reproduces **Fig. 9**: per-layer speedup of the algorithmic
//! optimizations on Xavier — for each Table II layer shape, the deformable
//! operation under {interval-search baseline, +bounded, +lightweight} ×
//! {PyTorch, tex2D, tex2D++}.
//!
//! Paper findings reproduced here: (1) texture kernels speed up every
//! configuration; (2) the lightweight offset predictor delivers the largest
//! jump (>2×); (3) *bounded offsets do not speed up the GPU* (unlike on
//! FPGA accelerators) — bounding changes access locality slightly but the
//! texture cache already absorbs it.

use defcon_bench::{speedup, Table};
use defcon_gpusim::{DeviceConfig, Gpu};
use defcon_kernels::op::{synthetic_inputs, OffsetPredictorKind};
use defcon_kernels::{paper_layer_sweep, DeformConvOp, SamplingMethod};
use defcon_tensor::sample::OffsetTransform;

fn main() {
    // Must be first and live for the whole run: the guard writes the
    // DEFCON_TRACE Chrome trace when it drops.
    let _obs = defcon_bench::obs_scope();
    let gpu = Gpu::new(DeviceConfig::xavier_agx());
    println!("# Fig. 9 — speedup of algorithmic optimizations on {} (baseline = PyTorch, unbounded, standard offset conv; per layer)\n", gpu.config().name);

    let variants: [(&str, Option<f32>, OffsetPredictorKind); 3] = [
        ("search", None, OffsetPredictorKind::Standard),
        ("bounded", Some(7.0), OffsetPredictorKind::Standard),
        ("light", None, OffsetPredictorKind::Lightweight),
    ];
    let methods = [
        SamplingMethod::SoftwareBilinear,
        SamplingMethod::Tex2d,
        SamplingMethod::Tex2dPlusPlus,
    ];

    let mut headers = vec!["Layer".to_string()];
    for (vname, _, _) in &variants {
        for m in &methods {
            headers.push(format!("{vname}+{}", m.name()));
        }
    }
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(&header_refs);

    for shape in paper_layer_sweep() {
        let baseline = {
            let (x, offsets) = synthetic_inputs(&shape, 8.0, 99);
            DeformConvOp::baseline(shape)
                .simulate_total(&gpu, &x, &offsets)
                .0
        };
        let mut row = vec![format!(
            "{},{},{},{}",
            shape.c_in, shape.c_out, shape.h, shape.w
        )];
        for (_, bounded, predictor) in &variants {
            for method in &methods {
                // Bounding constrains the learned offsets the kernel sees.
                let spread = bounded.unwrap_or(8.0).min(8.0);
                let (x, offsets) = synthetic_inputs(&shape, spread, 99);
                let transform = match bounded {
                    Some(p) => OffsetTransform::Bounded(*p),
                    None => OffsetTransform::Identity,
                };
                let ms = DeformConvOp {
                    method: *method,
                    offset_predictor: *predictor,
                    offset_transform: transform,
                    ..DeformConvOp::baseline(shape)
                }
                .simulate_total(&gpu, &x, &offsets)
                .0;
                row.push(speedup(baseline / ms));
            }
        }
        table.row(&row);
    }
    table.print();
}
