//! Reproduces **Table V**: the offsets ablation on the searched
//! architecture — boundary only, boundary + regularized training, and
//! boundary + integer rounding.
//!
//! Paper findings reproduced: regularized training is accuracy-neutral
//! relative to plain bounding, while rounding the sampling coordinates to
//! integers loses accuracy ("a significant loss of accuracy … without
//! significant performance benefits").
//!
//! `DEFCON_FAST=1` shrinks the training budget.

use defcon_bench::{f2, Table};
use defcon_models::backbone::BackboneConfig;
use defcon_models::dataset::DeformedShapesConfig;
use defcon_models::trainer::{evaluate_detector, prepare, train_detector_reg, TrainConfig};
use defcon_models::YolactLite;
use defcon_nn::graph::ParamStore;
use defcon_tensor::sample::OffsetTransform;

fn main() {
    // Must be first and live for the whole run: the guard writes the
    // DEFCON_TRACE Chrome trace when it drops.
    let _obs = defcon_bench::obs_scope();
    let fast = defcon_bench::fast_mode();
    let dataset = DeformedShapesConfig {
        deformation: 1.0,
        ..Default::default()
    };
    let cfg = TrainConfig {
        epochs: if fast { 3 } else { 14 },
        batch_size: 8,
        lr: 0.02,
        train_size: if fast { 48 } else { 320 },
        val_size: if fast { 24 } else { 96 },
        dataset,
        seed: 0x5EED,
    };
    println!("# Table V — offsets ablation (interval-3 DCN placement)\n");

    let mut table = Table::new(&["Boundary", "Regularization", "Round", "Box mAP", "Mask mAP"]);
    let check = |b: bool| if b { "x".to_string() } else { String::new() };
    for (reg, round) in [(false, false), (true, false), (false, true)] {
        let mut bb = BackboneConfig::mini(48, BackboneConfig::interval_slots(5, 3));
        bb.lightweight_offsets = false;
        bb.offset_transform = if round {
            OffsetTransform::BoundedRounded(7.0)
        } else {
            OffsetTransform::Bounded(7.0)
        };
        let mut store = ParamStore::new();
        let mut det = YolactLite::new(&mut store, bb);
        train_detector_reg(&mut det, &mut store, &cfg, if reg { 0.01 } else { 0.0 });
        let val = prepare(&cfg.dataset, cfg.val_size, cfg.seed ^ 0xFFFF_0000).samples;
        let map = evaluate_detector(&mut det, &store, &val, 0.05);
        table.row(&[
            check(true),
            check(reg),
            check(round),
            f2(map.box_map),
            f2(map.mask_map),
        ]);
    }
    table.print();
}
