//! `repro_serving` — a fixed 16-request throughput-serving session.
//!
//! Eight distinct `(device, layer, kernel-family)` requests are submitted
//! twice through a capacity-8 admission queue: the 9th submission
//! overflows, forcing a mid-session drain, so the first half simulates
//! cold (8 misses) and the replayed half is answered entirely from the
//! content-addressed report cache (8 hits, hit rate 0.50, 1 shed).
//!
//! The session is fully deterministic — it backs the golden obs trace in
//! `crates/bench/tests/golden/serving_trace.json`. `DEFCON_TINY=1` uses
//! the tiny layer sweep; `DEFCON_SERVE_QUEUE` / `DEFCON_SERVE_CACHE`
//! override the server sizing; `DEFCON_JSON=1` appends a JSON report
//! line; `DEFCON_TRACE=<path>` records the trace.

use defcon_bench::{emit_json, f2, Table};
use defcon_core::serve::{fnv1a64, RequestPolicy, ServeConfig, ServeDevice, SimRequest, SimServer};
use defcon_kernels::backend::BackendKind;
use defcon_kernels::op::{OpFamily, SamplingMethod};
use defcon_support::env;
use defcon_support::json::Json;

/// 16 requests: 8 distinct, then the same 8 again.
fn session_requests() -> Vec<SimRequest> {
    // `DEFCON_BACKEND` reroutes the whole session; unset keeps the
    // default gpusim substrate so the golden trace bytes are stable.
    let backend = env::or_die(BackendKind::from_env());
    let sweep = defcon_bench::layer_sweep();
    let devices = ServeDevice::all();
    let families = SamplingMethod::ladder();
    let distinct: Vec<SimRequest> = (0..8)
        .map(|i| SimRequest {
            device: devices[(i / 2) % devices.len()],
            layer: sweep[i % sweep.len()],
            kernel_family: families[i % families.len()],
            // Pinned to v1: the session backs the serving golden trace,
            // whose canonical request bytes predate the op_family field.
            op_family: OpFamily::DcnV1,
            backend,
            policy: RequestPolicy::default(),
        })
        .collect();
    let mut reqs = distinct.clone();
    reqs.extend(distinct);
    reqs
}

fn main() {
    let _obs = defcon_bench::obs_scope();
    println!("DEFCON throughput-mode serving: 16 requests, capacity-8 queue");
    println!("=============================================================");

    let cfg = env::or_die(
        ServeConfig {
            queue_capacity: 8,
            ..ServeConfig::default()
        }
        .with_env_overrides(),
    );
    let mut server = SimServer::new(cfg);
    let reqs = session_requests();
    let responses = server.serve(&reqs);

    let mut table = Table::new(&[
        "#",
        "device",
        "layer",
        "requested",
        "served",
        "cache",
        "sim ms",
    ]);
    for (i, r) in responses.iter().enumerate() {
        let l = &r.request.layer;
        let ms: f64 = r.reports.iter().map(|k| k.time_ms).sum();
        table.row(&[
            format!("{i}"),
            r.request.device.canonical_name().to_string(),
            format!("{}x{}x{}x{}", l.c_in, l.c_out, l.h, l.w),
            r.request.kernel_family.name().to_string(),
            r.method.name().to_string(),
            if r.from_cache { "hit" } else { "miss" }.to_string(),
            f2(ms),
        ]);
    }
    table.print();

    let mut contents: Vec<String> = responses.iter().map(|r| r.content_string()).collect();
    contents.sort();
    let digest = fnv1a64(contents.join("\n").as_bytes());

    let cache = server.cache();
    println!();
    println!(
        "requests {}  hits {}  misses {}  hit-rate {:.2}  sheds {}  evictions {}",
        responses.len(),
        cache.hits(),
        cache.misses(),
        cache.hit_rate(),
        server.sheds(),
        cache.evictions(),
    );
    println!("report digest {digest:016x}");

    emit_json(&Json::obj(vec![
        ("experiment", Json::str("serving")),
        ("requests", Json::from(responses.len())),
        ("cache_hits", Json::from(server.cache().hits())),
        ("cache_misses", Json::from(server.cache().misses())),
        ("hit_rate", Json::from(server.cache().hit_rate())),
        ("sheds", Json::from(server.sheds())),
        ("digest", Json::str(format!("{digest:016x}"))),
    ]));
}
