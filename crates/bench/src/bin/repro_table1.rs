//! Reproduces **Table I**: instance-segmentation accuracy vs. number and
//! placement of deformable layers, on the synthetic deformed-shapes dataset
//! (the COCO substitute — see DESIGN.md §2).
//!
//! Paper reference (R101): YOLACT (0 DCN) ≪ YOLACT++ (30 DCN) ≈ YOLACT++
//! interval-3 (10 DCN) ≤ Ours (searched, 8 DCN). We reproduce the ordering:
//! deformable placements beat the rigid baseline, and the searched
//! placement matches or beats hand placement with fewer DCNs.
//!
//! Budget: set `DEFCON_FAST=1` for a quick smoke run (lower accuracy,
//! ~1 min); the default takes several minutes per row on one core.

use defcon_bench::{f2, Table};
use defcon_core::lut::LatencyLut;
use defcon_core::search::{IntervalSearch, SearchConfig};
use defcon_gpusim::{DeviceConfig, Gpu};
use defcon_kernels::op::{OffsetPredictorKind, SamplingMethod};
use defcon_models::backbone::{BackboneConfig, SlotKind};
use defcon_models::dataset::DeformedShapesConfig;
use defcon_models::trainer::{
    evaluate_detector, prepare, train_and_eval, DetectorSuperNet, TrainConfig,
};
use defcon_nn::graph::ParamStore;

fn main() {
    // Must be first and live for the whole run: the guard writes the
    // DEFCON_TRACE Chrome trace when it drops.
    let _obs = defcon_bench::obs_scope();
    let fast = defcon_bench::fast_mode();
    let dataset = DeformedShapesConfig {
        deformation: 1.0,
        ..Default::default()
    };
    let cfg = TrainConfig {
        epochs: if fast { 3 } else { 14 },
        batch_size: 8,
        lr: 0.02,
        train_size: if fast { 48 } else { 320 },
        val_size: if fast { 24 } else { 96 },
        dataset,
        seed: 0x5EED,
    };
    println!("# Table I — accuracy vs. DCN count/placement on deformed-shapes (backbone: mini, 5 slots)\n");

    let mut table = Table::new(&["Method", "# of DCNs", "Box mAP", "Mask mAP", "Mask AP50"]);
    let run = |name: &str, slots: Vec<SlotKind>, table: &mut Table| {
        let mut bb = BackboneConfig::mini(48, slots);
        bb.lightweight_offsets = false;
        let n_dcn = bb
            .slots
            .iter()
            .filter(|s| **s == SlotKind::Deformable)
            .count();
        let (_, _, map) = train_and_eval(bb, &cfg);
        table.row(&[
            name.into(),
            n_dcn.to_string(),
            f2(map.box_map),
            f2(map.mask_map),
            f2(map.mask_ap50),
        ]);
    };

    run(
        "YOLACT-like (rigid)",
        BackboneConfig::uniform_slots(5, SlotKind::Regular),
        &mut table,
    );
    run(
        "YOLACT++-like (dense DCN)",
        BackboneConfig::uniform_slots(5, SlotKind::Deformable),
        &mut table,
    );
    run(
        "YOLACT++-like (interval 3)",
        BackboneConfig::interval_slots(5, 3),
        &mut table,
    );

    // Ours: interval-searched placement, then fine-tuned (the searched
    // architecture is trained with the same budget as the baselines).
    {
        let mut store = ParamStore::new();
        let mut bb =
            BackboneConfig::mini(48, BackboneConfig::uniform_slots(5, SlotKind::Searchable));
        bb.lightweight_offsets = false;
        let data = prepare(&cfg.dataset, cfg.train_size, cfg.seed);
        let mut net = DetectorSuperNet::new(&mut store, bb, data, cfg.batch_size);
        let gpu = Gpu::new(DeviceConfig::xavier_agx());
        let keys = net.detector.backbone.all_latency_keys();
        let lut = LatencyLut::build(
            &gpu,
            &keys,
            SamplingMethod::Tex2dPlusPlus,
            OffsetPredictorKind::Lightweight,
        );
        let iters = cfg.train_size / cfg.batch_size;
        let search_cfg = SearchConfig {
            search_epochs: if fast { 2 } else { 6 },
            finetune_epochs: if fast { 1 } else { 8 },
            iters_per_epoch: iters,
            beta: 0.5,
            target_latency_ms: 0.05,
            lr: cfg.lr,
            ..Default::default()
        };
        let outcome = IntervalSearch::new(search_cfg, lut).run(&mut net, &mut store);
        let val = prepare(&cfg.dataset, cfg.val_size, cfg.seed ^ 0xFFFF_0000).samples;
        let map = evaluate_detector(&mut net.detector, &store, &val, 0.05);
        table.row(&[
            format!("Ours (searched: {})", net.detector.backbone.layout()),
            outcome.num_dcn().to_string(),
            f2(map.box_map),
            f2(map.mask_map),
            f2(map.mask_ap50),
        ]);
    }
    table.print();
}
