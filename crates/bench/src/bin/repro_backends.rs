//! Cross-backend analogue of Tables II–IV: the paper's per-layer
//! deformable-operation latency sweep, run through the `Backend` trait on
//! both execution substrates — the warp-level GPU timing simulator
//! (Jetson AGX Xavier, RTX 2080 Ti) and its paired tiled-dataflow
//! accelerator model (DCN-Accel-Edge, DCN-Accel-DC).
//!
//! For every layer the three kernel paths (PyTorch-style software
//! bilinear, `tex2D`, `tex2D++`) are timed end to end (offset conv +
//! deformable sampling + GEMM) on each substrate; the last column is the
//! cross-substrate ratio at the best path, gpusim `tex2D++` over accel
//! `tex2D++`. Both substrates run the *same* operator — the functional
//! outputs are byte-identical (`tests/backend_conformance.rs`); only the
//! timing models differ.
//!
//! `DEFCON_TINY=1` shrinks the sweep; `DEFCON_JSON=1` appends a one-line
//! JSON report; `DEFCON_BENCH_OUT=<path>` also writes that report to a
//! file (the CI release gate runs the binary twice and byte-compares the
//! two files).

use defcon_accel::{Accel, AccelConfig};
use defcon_bench::{emit_json, f2, layer_sweep, speedup, Table};
use defcon_core::autotune::{Autotuner, Strategy};
use defcon_gpusim::{DeviceConfig, Gpu};
use defcon_kernels::backend::Backend;
use defcon_kernels::op::synthetic_inputs;
use defcon_kernels::{DeformConvOp, SamplingMethod};
use defcon_support::env;
use defcon_support::json::Json;

/// Times one `(layer, method)` cell on a backend: total milliseconds for
/// the offset conv plus the deformable stage, through the trait surface.
fn time_cell(backend: &dyn Backend, op: &DeformConvOp) -> f64 {
    let (x, offsets) = synthetic_inputs(&op.shape, 4.0, 2024);
    backend
        .launch_total(op, &x, &offsets)
        .unwrap_or_else(|e| {
            eprintln!(
                "{} cannot run {}x{} {}: {e}",
                backend.backend_name(),
                op.shape.c_in,
                op.shape.c_out,
                op.method.name()
            );
            std::process::exit(1);
        })
        .0
}

/// The accel runs each layer at its exhaustively tuned tile: the standard
/// autotuner search space, filtered to what the on-chip buffers admit
/// (`tile_space`), minimized under the analytic cycle objective. This is
/// the paper's tile search transferred wholesale to the accel substrate —
/// and it is what makes the full 512-channel layers schedulable at all
/// (their 16×16 default halo overflows the edge-class input buffer).
fn tuned_tile(accel: &Accel, op: &DeformConvOp) -> defcon_kernels::TileConfig {
    let space = accel.tile_space(op);
    if space.is_empty() {
        eprintln!(
            "{}: no admissible tile for {}x{} {}x{}",
            accel.config().name,
            op.shape.c_in,
            op.shape.c_out,
            op.shape.h,
            op.shape.w
        );
        std::process::exit(1);
    }
    let tuner = Autotuner {
        strategy: Strategy::Exhaustive,
        budget: 0,
        seed: 0,
    };
    tuner.run(&space, accel.tile_objective(op)).best
}

/// Sweeps one gpusim/accel device pairing and returns its JSON section.
fn sweep_pair(gpu: &Gpu, accel: &Accel) -> Json {
    println!(
        "# Backends — deformable operation latency: {} vs {}",
        gpu.config().name,
        accel.config().name
    );
    println!("# (offset conv + deformable sampling + GEMM, batch 1, 3x3, G=1)\n");
    let mut table = Table::new(&[
        "In ch",
        "Out ch",
        "H",
        "W",
        "gpusim sw (ms)",
        "gpusim t2 (ms)",
        "gpusim t2++ (ms)",
        "accel tile",
        "accel sw (ms)",
        "accel t2 (ms)",
        "accel t2++ (ms)",
        "gpusim/accel",
    ]);
    let mut rows = Vec::new();
    for shape in layer_sweep() {
        let op_for = |m| DeformConvOp {
            method: m,
            ..DeformConvOp::baseline(shape)
        };
        let g = |m| time_cell(gpu, &op_for(m));
        // One tile search per layer (the objective is method-independent
        // in the halo/buffer dimension that decides admission).
        let tile = tuned_tile(accel, &op_for(SamplingMethod::Tex2dPlusPlus));
        let a = |m| time_cell(accel, &DeformConvOp { tile, ..op_for(m) });
        let (gsw, gt2, gtpp) = (
            g(SamplingMethod::SoftwareBilinear),
            g(SamplingMethod::Tex2d),
            g(SamplingMethod::Tex2dPlusPlus),
        );
        let (asw, at2, atpp) = (
            a(SamplingMethod::SoftwareBilinear),
            a(SamplingMethod::Tex2d),
            a(SamplingMethod::Tex2dPlusPlus),
        );
        table.row(&[
            shape.c_in.to_string(),
            shape.c_out.to_string(),
            shape.h.to_string(),
            shape.w.to_string(),
            f2(gsw),
            f2(gt2),
            f2(gtpp),
            format!("{}x{}", tile.h, tile.w),
            f2(asw),
            f2(at2),
            f2(atpp),
            speedup(gtpp / atpp),
        ]);
        rows.push(Json::obj(vec![
            ("c_in", Json::from(shape.c_in)),
            ("c_out", Json::from(shape.c_out)),
            ("h", Json::from(shape.h)),
            ("w", Json::from(shape.w)),
            ("gpusim_pytorch_ms", Json::from(gsw)),
            ("gpusim_tex2d_ms", Json::from(gt2)),
            ("gpusim_tex2dpp_ms", Json::from(gtpp)),
            ("accel_tile_h", Json::from(tile.h)),
            ("accel_tile_w", Json::from(tile.w)),
            ("accel_pytorch_ms", Json::from(asw)),
            ("accel_tex2d_ms", Json::from(at2)),
            ("accel_tex2dpp_ms", Json::from(atpp)),
            ("cross_speedup", Json::from(gtpp / atpp)),
        ]));
    }
    table.print();
    println!();
    Json::obj(vec![
        ("gpu", Json::str(&gpu.config().name)),
        ("accel", Json::str(&accel.config().name)),
        ("rows", Json::Arr(rows)),
    ])
}

fn main() {
    // Must be first and live for the whole run: the guard writes the
    // DEFCON_TRACE Chrome trace when it drops.
    let _obs = defcon_bench::obs_scope();
    let pairs = [
        (DeviceConfig::xavier_agx(), AccelConfig::edge()),
        (DeviceConfig::rtx2080ti(), AccelConfig::datacenter()),
    ];
    let mut sections = Vec::new();
    for (dev, acfg) in pairs {
        let gpu = Gpu::new(dev);
        let accel = Accel::new(acfg);
        sections.push(sweep_pair(&gpu, &accel));
    }
    let report = Json::obj(vec![
        ("experiment", Json::str("backends")),
        ("device", Json::str("Jetson-AGX-Xavier")),
        ("pairs", Json::Arr(sections)),
    ]);
    if let Some(path) = env::or_die(env::path(env::BENCH_OUT)) {
        std::fs::write(&path, format!("{report}\n")).unwrap_or_else(|e| {
            eprintln!("cannot write {}: {e}", path.display());
            std::process::exit(1);
        });
        println!("report written to {}", path.display());
    }
    emit_json(&report);
}
