//! Reproduces **Table IV** (and the timing series behind **Fig. 7**):
//! per-layer deformable-operation latency on the RTX 2080 Ti (PyTorch 2.1
//! in the paper) for the PyTorch baseline, `tex2D`, and `tex2D++`.
//!
//! Paper reference rows: speedups 1.10-1.30x, smaller than on Xavier
//! because the discrete GPU's bandwidth and SM count hide more of the
//! sampling inefficiency. We reproduce the shape: tex2D < PyTorch,
//! tex2D++ <= tex2D, with a thinner margin than Table II.

use defcon_bench::{f2, speedup, Table};
use defcon_gpusim::{DeviceConfig, Gpu};
use defcon_kernels::op::synthetic_inputs;
use defcon_kernels::{paper_layer_sweep, DeformConvOp, SamplingMethod};

fn main() {
    // Must be first and live for the whole run: the guard writes the
    // DEFCON_TRACE Chrome trace when it drops.
    let _obs = defcon_bench::obs_scope();
    let gpu = Gpu::new(DeviceConfig::rtx2080ti());
    println!(
        "# Table IV — deformable operation latency on {}",
        gpu.config().name
    );
    println!("# (offset conv + deformable sampling + GEMM, batch 1, 3x3, G=1)\n");

    let mut table = Table::new(&[
        "In ch",
        "Out ch",
        "H",
        "W",
        "PyTorch (ms)",
        "tex2D (ms)",
        "tex2D++ (ms)",
        "Speedup w.r. Torch",
    ]);
    for shape in paper_layer_sweep() {
        let (x, offsets) = synthetic_inputs(&shape, 4.0, 2024);
        let time = |method: SamplingMethod| {
            let op = DeformConvOp {
                method,
                ..DeformConvOp::baseline(shape)
            };
            op.simulate_total(&gpu, &x, &offsets).0
        };
        let sw = time(SamplingMethod::SoftwareBilinear);
        let t2 = time(SamplingMethod::Tex2d);
        let tpp = time(SamplingMethod::Tex2dPlusPlus);
        table.row(&[
            shape.c_in.to_string(),
            shape.c_out.to_string(),
            shape.h.to_string(),
            shape.w.to_string(),
            f2(sw),
            f2(t2),
            f2(tpp),
            speedup(sw / tpp),
        ]);
    }
    table.print();
}
