//! Reproduces **Fig. 7**: layer-wise speedup of the deformable operation on
//! the Xavier model — `tex2D` and `tex2D++` relative to the PyTorch
//! baseline, per Table II layer shape.
//!
//! Paper reference: geometric-mean speedups ≈ 1.27× (tex2D) and ≈ 1.39×
//! (tex2D++), roughly flat across layer shapes with a dip at the largest
//! feature map.
//!
//! `DEFCON_TINY=1` shrinks the sweep; `DEFCON_JSON=1` appends a one-line
//! JSON report (see `defcon_bench` docs).

use defcon_bench::{emit_json, layer_sweep, speedup, Table};
use defcon_gpusim::{DeviceConfig, Gpu};
use defcon_kernels::op::synthetic_inputs;
use defcon_kernels::{DeformConvOp, SamplingMethod};
use defcon_support::json::Json;

fn main() {
    // Must be first and live for the whole run: the guard writes the
    // DEFCON_TRACE Chrome trace when it drops.
    let _obs = defcon_bench::obs_scope();
    let gpu = Gpu::new(DeviceConfig::xavier_agx());
    println!(
        "# Fig. 7 — deformable operation speedup over PyTorch on {}\n",
        gpu.config().name
    );

    let mut table = Table::new(&["Layer (In,Out,H,W)", "tex2D", "tex2D++"]);
    let mut json_rows = Vec::new();
    let mut geo2 = 1.0f64;
    let mut geopp = 1.0f64;
    let sweep = layer_sweep();
    let n = sweep.len() as f64;
    for shape in sweep {
        let (x, offsets) = synthetic_inputs(&shape, 4.0, 2024);
        let time = |method: SamplingMethod| {
            DeformConvOp {
                method,
                ..DeformConvOp::baseline(shape)
            }
            .simulate_total(&gpu, &x, &offsets)
            .0
        };
        let sw = time(SamplingMethod::SoftwareBilinear);
        let s2 = sw / time(SamplingMethod::Tex2d);
        let spp = sw / time(SamplingMethod::Tex2dPlusPlus);
        geo2 *= s2.powf(1.0 / n);
        geopp *= spp.powf(1.0 / n);
        let layer = format!("{},{},{},{}", shape.c_in, shape.c_out, shape.h, shape.w);
        table.row(&[layer.clone(), speedup(s2), speedup(spp)]);
        json_rows.push(Json::obj(vec![
            ("layer", Json::str(layer)),
            ("tex2d", Json::from(s2)),
            ("tex2dpp", Json::from(spp)),
        ]));
    }
    table.row(&["geo-mean".into(), speedup(geo2), speedup(geopp)]);
    table.print();
    emit_json(&Json::obj(vec![
        ("experiment", Json::str("fig7")),
        ("device", Json::str(&gpu.config().name)),
        ("rows", Json::Arr(json_rows)),
        ("geomean_tex2d", Json::from(geo2)),
        ("geomean_tex2dpp", Json::from(geopp)),
    ]));
}
