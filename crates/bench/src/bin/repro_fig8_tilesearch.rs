//! Reproduces **Fig. 8**: tile-size selection for `tex2D` and `tex2D++`.
//!
//! Sweeps the whole thread-block tile space exhaustively (ground truth),
//! then shows the Bayesian autotuner reaching the best tile within a small
//! evaluation budget — the paper's ytopt workflow. The paper's takeaway:
//! "tile size significantly affects the resulting speedup, and our
//! autotuning-based tile size search results in the best performance."

use defcon_bench::{f2, speedup, Table};
use defcon_core::autotune::{Autotuner, Strategy};
use defcon_gpusim::{DeviceConfig, Gpu};
use defcon_kernels::op::synthetic_inputs;
use defcon_kernels::{DeformConvOp, DeformLayerShape, SamplingMethod, TileConfig};

fn main() {
    // Must be first and live for the whole run: the guard writes the
    // DEFCON_TRACE Chrome trace when it drops.
    let _obs = defcon_bench::obs_scope();
    let gpu = Gpu::new(DeviceConfig::xavier_agx());
    // A representative mid-network layer.
    let shape = DeformLayerShape::same3x3(256, 256, 69, 69);
    let (x, offsets) = synthetic_inputs(&shape, 4.0, 88);
    println!(
        "# Fig. 8 — tile-size selection for tex2D / tex2D++ on {} (layer 256,256,69,69)\n",
        gpu.config().name
    );

    // Baseline for the speedup axis: the PyTorch operator at default tiles.
    let baseline_ms = DeformConvOp::baseline(shape)
        .simulate_total(&gpu, &x, &offsets)
        .0;

    let time = |t: TileConfig, method: SamplingMethod| -> f64 {
        DeformConvOp {
            tile: t,
            method,
            ..DeformConvOp::baseline(shape)
        }
        .simulate_total(&gpu, &x, &offsets)
        .0
    };

    for method in [SamplingMethod::Tex2d, SamplingMethod::Tex2dPlusPlus] {
        let space = TileConfig::search_space();
        let exhaustive = Autotuner {
            strategy: Strategy::Exhaustive,
            budget: 0,
            seed: 0,
        }
        .run(&space, |t| time(t, method));
        println!(
            "## {} — speedup over PyTorch per tile (exhaustive sweep)",
            method.name()
        );
        let mut table = Table::new(&["tile", "ms", "speedup"]);
        let mut evs = exhaustive.evaluations.clone();
        evs.sort_by(|a, b| a.1.total_cmp(&b.1));
        for (t, ms) in &evs {
            table.row(&[t.to_string(), f2(*ms), speedup(baseline_ms / ms)]);
        }
        table.print();

        let bo = Autotuner::bayesian(10, 42).run(&space, |t| time(t, method));
        println!(
            "\nBayesian autotuner (budget 10/{}): best tile {} at {} ms (exhaustive best: {} at {} ms)\n",
            space.len(),
            bo.best,
            f2(bo.best_value),
            exhaustive.best,
            f2(exhaustive.best_value),
        );
        let worst = evs.last().unwrap();
        println!(
            "tile choice spread: best {} = {}, worst {} = {} ({:.2}x apart)\n",
            exhaustive.best,
            f2(exhaustive.best_value),
            worst.0,
            f2(worst.1),
            worst.1 / exhaustive.best_value
        );
    }
}
