//! Reproduces **Table II** (and the timing series behind **Fig. 7**):
//! per-layer deformable-operation latency on the Jetson AGX Xavier for the
//! PyTorch baseline, `tex2D`, and `tex2D++`.
//!
//! Paper reference rows (In, Out, H, W → PyTorch / tex2D / tex2D++ ms):
//! `128,128,138 → 6.87/6.01/4.89`, …, `512,512,18 → 97.0/72.33/69.48`,
//! speedups 1.33–1.41×. We reproduce the *shape*: tex2D < PyTorch,
//! tex2D++ ≤ tex2D, speedups in the same band.
//!
//! `DEFCON_TINY=1` shrinks the sweep; `DEFCON_JSON=1` appends a one-line
//! JSON report (see `defcon_bench` docs).

use defcon_bench::{emit_json, f2, layer_sweep, speedup, Table};
use defcon_gpusim::{DeviceConfig, Gpu};
use defcon_kernels::op::synthetic_inputs;
use defcon_kernels::{DeformConvOp, SamplingMethod};
use defcon_support::json::Json;

fn main() {
    // Must be first and live for the whole run: the guard writes the
    // DEFCON_TRACE Chrome trace when it drops.
    let _obs = defcon_bench::obs_scope();
    let gpu = Gpu::new(DeviceConfig::xavier_agx());
    println!(
        "# Table II — deformable operation latency on {}",
        gpu.config().name
    );
    println!("# (offset conv + deformable sampling + GEMM, batch 1, 3x3, G=1)\n");

    let mut table = Table::new(&[
        "In ch",
        "Out ch",
        "H",
        "W",
        "PyTorch (ms)",
        "tex2D (ms)",
        "tex2D++ (ms)",
        "Speedup w.r. Torch",
    ]);
    let mut json_rows = Vec::new();
    for shape in layer_sweep() {
        let (x, offsets) = synthetic_inputs(&shape, 4.0, 2024);
        let time = |method: SamplingMethod| {
            let op = DeformConvOp {
                method,
                ..DeformConvOp::baseline(shape)
            };
            op.simulate_total(&gpu, &x, &offsets).0
        };
        let sw = time(SamplingMethod::SoftwareBilinear);
        let t2 = time(SamplingMethod::Tex2d);
        let tpp = time(SamplingMethod::Tex2dPlusPlus);
        table.row(&[
            shape.c_in.to_string(),
            shape.c_out.to_string(),
            shape.h.to_string(),
            shape.w.to_string(),
            f2(sw),
            f2(t2),
            f2(tpp),
            speedup(sw / tpp),
        ]);
        json_rows.push(Json::obj(vec![
            ("c_in", Json::from(shape.c_in)),
            ("c_out", Json::from(shape.c_out)),
            ("h", Json::from(shape.h)),
            ("w", Json::from(shape.w)),
            ("pytorch_ms", Json::from(sw)),
            ("tex2d_ms", Json::from(t2)),
            ("tex2dpp_ms", Json::from(tpp)),
            ("speedup", Json::from(sw / tpp)),
        ]));
    }
    table.print();
    emit_json(&Json::obj(vec![
        ("experiment", Json::str("table2")),
        ("device", Json::str(&gpu.config().name)),
        ("rows", Json::Arr(json_rows)),
    ]));
}
