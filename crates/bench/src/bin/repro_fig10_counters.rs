//! Reproduces **Fig. 10**: nvprof-style hardware counters of the
//! *sampling stage* — MFLOP, global-load transactions per request, GLD
//! efficiency, and texture load requests — for the PyTorch software-bilinear
//! kernel vs. `tex2D` / `tex2D++`.
//!
//! Paper findings reproduced: PyTorch issues no texture requests and has
//! degraded GLD efficiency from the scattered 4-neighbour gathers; the
//! texture kernels issue texture requests, reach ~100 % GLD efficiency
//! (their only global loads are coalesced offsets/weights), and execute
//! roughly 4× fewer floating-point operations because bilinear interpolation
//! moved into the texture filter hardware.
//!
//! `DEFCON_TINY=1` shrinks the sweep; `DEFCON_JSON=1` appends a one-line
//! JSON report (see `defcon_bench` docs).

use defcon_bench::{emit_json, f2, layer_sweep, Table};
use defcon_gpusim::{DeviceConfig, Gpu, KernelReport};
use defcon_kernels::fused::FusedTexDeformKernel;
use defcon_kernels::im2col::{Im2colDeformKernel, Sampling};
use defcon_kernels::op::synthetic_inputs;
use defcon_kernels::TileConfig;
use defcon_support::json::Json;
use defcon_tensor::sample::OffsetTransform;

fn counter_row(layer: &str, name: &str, r: &KernelReport) -> Json {
    Json::obj(vec![
        ("layer", Json::str(layer)),
        ("impl", Json::str(name)),
        ("mflop", Json::from(r.counters.mflop())),
        (
            "gld_trans_per_req",
            Json::from(r.counters.gld_transactions_per_request()),
        ),
        ("gld_efficiency", Json::from(r.counters.gld_efficiency())),
        ("tex_requests", Json::from(r.counters.tex_requests)),
        ("tex_hit_rate", Json::from(r.counters.tex_hit_rate())),
    ])
}

fn main() {
    // Must be first and live for the whole run: the guard writes the
    // DEFCON_TRACE Chrome trace when it drops.
    let _obs = defcon_bench::obs_scope();
    let gpu = Gpu::new(DeviceConfig::xavier_agx());
    println!(
        "# Fig. 10 — sampling-stage counters on {} (per layer, per implementation)\n",
        gpu.config().name
    );

    let mut table = Table::new(&[
        "Layer",
        "impl",
        "MFLOP",
        "GLD trans/req",
        "GLD eff (%)",
        "tex requests",
        "tex hit rate",
    ]);
    let mut json_rows = Vec::new();
    for shape in layer_sweep() {
        let (x, offsets) = synthetic_inputs(&shape, 4.0, 123);
        let layer = format!("{},{},{},{}", shape.c_in, shape.c_out, shape.h, shape.w);
        for (name, sampling) in [
            ("PyTorch", Sampling::Software),
            ("tex2D", Sampling::Texture { frac_bits: 23 }),
            ("tex2D++", Sampling::Texture { frac_bits: 8 }),
        ] {
            let kernel = Im2colDeformKernel::new(
                shape,
                TileConfig::default16(),
                &x,
                &offsets,
                OffsetTransform::Identity,
                sampling,
                gpu.config().max_texture_layers,
                gpu.config().max_texture_dim,
            )
            .expect("texture limits");
            let r = gpu.launch(&kernel);
            table.row(&[
                layer.clone(),
                name.into(),
                f2(r.counters.mflop()),
                f2(r.counters.gld_transactions_per_request()),
                f2(r.counters.gld_efficiency()),
                r.counters.tex_requests.to_string(),
                f2(r.counters.tex_hit_rate()),
            ]);
            json_rows.push(counter_row(&layer, name, &r));
        }
        // DEFCON's deployed kernel fuses sampling into the convolution; its
        // only global loads are fully coalesced offsets and weights — this
        // is the configuration whose GLD efficiency the paper reports as
        // reaching 100 %.
        let fused = FusedTexDeformKernel::new(
            shape,
            TileConfig::default16(),
            &x,
            &offsets,
            OffsetTransform::Identity,
            23,
            gpu.config().max_texture_layers,
            gpu.config().max_texture_dim,
        )
        .expect("texture limits");
        let r = gpu.launch(&fused);
        table.row(&[
            layer.clone(),
            "tex2D fused".into(),
            f2(r.counters.mflop()),
            f2(r.counters.gld_transactions_per_request()),
            f2(r.counters.gld_efficiency()),
            r.counters.tex_requests.to_string(),
            f2(r.counters.tex_hit_rate()),
        ]);
        json_rows.push(counter_row(&layer, "tex2D fused", &r));
    }
    table.print();
    emit_json(&Json::obj(vec![
        ("experiment", Json::str("fig10")),
        ("device", Json::str(&gpu.config().name)),
        ("rows", Json::Arr(json_rows)),
    ]));
}
