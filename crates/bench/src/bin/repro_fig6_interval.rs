//! Reproduces **Fig. 6**: the interval-search placement map.
//!
//! Runs the gradient-based interval search on a searchable supernet and
//! prints the discovered layer layout next to the hand-placed interval-3
//! layout, with the latency budget each implies. Paper findings reproduced:
//! the search prefers **downsampling slots** and the **last layers**, and
//! reaches its accuracy with fewer DCNs than the hand placement.
//!
//! `DEFCON_FAST=1` shrinks the training budget.

use defcon_core::lut::LatencyLut;
use defcon_core::search::{IntervalSearch, SearchConfig};
use defcon_gpusim::{DeviceConfig, Gpu};
use defcon_kernels::op::{OffsetPredictorKind, SamplingMethod};
use defcon_models::backbone::{BackboneConfig, SlotKind};
use defcon_models::dataset::DeformedShapesConfig;
use defcon_models::trainer::{prepare, DetectorSuperNet, TrainConfig};
use defcon_nn::graph::ParamStore;

fn main() {
    // Must be first and live for the whole run: the guard writes the
    // DEFCON_TRACE Chrome trace when it drops.
    let _obs = defcon_bench::obs_scope();
    let fast = defcon_bench::fast_mode();
    let dataset = DeformedShapesConfig {
        deformation: 1.0,
        ..Default::default()
    };
    let cfg = TrainConfig {
        epochs: 0,
        batch_size: 8,
        lr: 0.02,
        train_size: if fast { 48 } else { 240 },
        val_size: 0,
        dataset,
        seed: 0x5EED,
    };

    let mut store = ParamStore::new();
    let mut bb = BackboneConfig::mini(48, BackboneConfig::uniform_slots(5, SlotKind::Searchable));
    bb.lightweight_offsets = false;
    let data = prepare(&cfg.dataset, cfg.train_size, cfg.seed);
    let mut net = DetectorSuperNet::new(&mut store, bb, data, cfg.batch_size);

    let gpu = Gpu::new(DeviceConfig::xavier_agx());
    let keys = net.detector.backbone.all_latency_keys();
    let lut = LatencyLut::build(
        &gpu,
        &keys,
        SamplingMethod::Tex2dPlusPlus,
        OffsetPredictorKind::Lightweight,
    );

    println!("# Fig. 6 — interval-search placement (mini backbone, 5 slots; 'v' marks stride-2 downsampling slots)\n");
    let strides: String = keys
        .iter()
        .map(|k| if k.stride == 2 { 'v' } else { ' ' })
        .collect();
    println!("slot strides:   {strides}");
    println!("interval-3:     {}", {
        let slots = BackboneConfig::interval_slots(5, 3);
        slots
            .iter()
            .map(|s| if *s == SlotKind::Deformable { 'D' } else { '.' })
            .collect::<String>()
    });

    let iters = cfg.train_size / cfg.batch_size;
    let search_cfg = SearchConfig {
        search_epochs: if fast { 2 } else { 6 },
        finetune_epochs: if fast { 1 } else { 4 },
        iters_per_epoch: iters,
        beta: 0.5,
        target_latency_ms: 0.05,
        lr: cfg.lr,
        ..Default::default()
    };
    let outcome = IntervalSearch::new(search_cfg, lut).run(&mut net, &mut store);
    println!("searched:       {}", net.detector.backbone.layout());
    println!(
        "\nsearched placement: {} DCNs, DCN latency overhead {:.3} ms (budget T = 0.05 ms)",
        outcome.num_dcn(),
        outcome.dcn_overhead_ms
    );
    println!("loss trajectory (per epoch): {:?}", outcome.loss_history);
}
