//! Reproduces the latency side of **Table III**: end-to-end YOLACT++
//! (ResNet-101, 550×550) time on the Xavier model under the DEFCON
//! optimization lattice, with speedups over the YOLACT++ hand-placed
//! interval-3 baseline.
//!
//! Paper reference: baseline 478 ms; interval search alone 1.25×; search +
//! tex2D 1.44×; + boundary 1.45×; + lightweight 2.79×; everything 2.80×.
//! Accuracy columns of Table III are reproduced by `repro_table1` /
//! `repro_table5` on the trainable mini models (the full-size network is
//! latency-only on the simulator).

use defcon_bench::{f2, speedup, Table};
use defcon_core::pipeline::{DefconConfig, TileChoice};
use defcon_gpusim::{DeviceConfig, Gpu};
use defcon_kernels::{SamplingMethod, TileConfig};
use defcon_models::zoo::{num_dcn, resnet_3x3_slots, simulate_network, DcnLayout};

fn main() {
    // Must be first and live for the whole run: the guard writes the
    // DEFCON_TRACE Chrome trace when it drops.
    let _obs = defcon_bench::obs_scope();
    let gpu = Gpu::new(DeviceConfig::xavier_agx());
    println!(
        "# Table III — end-to-end YOLACT++ (R101 @ 550) on {}",
        gpu.config().name
    );
    println!("# baseline = hand-placed interval-3 DCNs (10 layers), PyTorch kernels\n");

    let baseline_slots = resnet_3x3_slots(101, DcnLayout::Interval(3));
    let searched_slots = resnet_3x3_slots(101, DcnLayout::Searched);

    let sw = |bounded: Option<f32>, light: bool| DefconConfig {
        interval_search: true,
        bounded,
        lightweight: light,
        method: SamplingMethod::SoftwareBilinear,
        tile: TileChoice::Fixed(TileConfig::default16()),
        ..DefconConfig::baseline()
    };
    let tex = |method: SamplingMethod, bounded: Option<f32>, light: bool| DefconConfig {
        interval_search: true,
        bounded,
        lightweight: light,
        method,
        tile: TileChoice::Fixed(TileConfig::default16()),
        ..DefconConfig::baseline()
    };

    let baseline_ms = simulate_network(&gpu, &baseline_slots, &DefconConfig::baseline());
    println!(
        "YOLACT++ baseline: {} ms ({} DCN layers)\n",
        f2(baseline_ms),
        num_dcn(&baseline_slots)
    );

    let mut table = Table::new(&[
        "Search",
        "Boundary",
        "Light",
        "tex2D",
        "B.L. (ms)",
        "tex2D (ms)",
        "tex2D++ (ms)",
        "Speedup over YOLACT++",
    ]);
    let check = |b: bool| if b { "x".to_string() } else { String::new() };

    // Row: baseline itself.
    table.row(&[
        check(false),
        check(false),
        check(false),
        check(false),
        f2(baseline_ms),
        "-".into(),
        "-".into(),
        speedup(1.0),
    ]);

    // Rows over the searched placement.
    for (bounded, light, use_tex) in [
        (None, false, false),
        (None, false, true),
        (Some(7.0f32), false, true),
        (None, true, true),
        (Some(7.0), true, true),
    ] {
        let bl_ms = simulate_network(&gpu, &searched_slots, &sw(bounded, light));
        let (t2_ms, tpp_ms) = if use_tex {
            (
                simulate_network(
                    &gpu,
                    &searched_slots,
                    &tex(SamplingMethod::Tex2d, bounded, light),
                ),
                simulate_network(
                    &gpu,
                    &searched_slots,
                    &tex(SamplingMethod::Tex2dPlusPlus, bounded, light),
                ),
            )
        } else {
            (f64::NAN, f64::NAN)
        };
        let best = if use_tex { tpp_ms } else { bl_ms };
        table.row(&[
            check(true),
            check(bounded.is_some()),
            check(light),
            check(use_tex),
            f2(bl_ms),
            if use_tex { f2(t2_ms) } else { "-".into() },
            if use_tex { f2(tpp_ms) } else { "-".into() },
            speedup(baseline_ms / best),
        ]);
    }
    table.print();
    println!(
        "\n(searched placement uses {} DCN layers vs {} in the baseline)",
        num_dcn(&searched_slots),
        num_dcn(&baseline_slots)
    );
}
