//! `repro_chaos` — a seeded chaos-soak session over the serving layer.
//!
//! Serves a randomized multi-hundred-request stream through a small
//! `SimServer` while every serving-path fault point is armed with seeded
//! probabilistic schedules (`core::chaos`), then checks the session
//! invariants (none lost, no `failed` outcome, cache accounting balance,
//! legal breaker walk) and prints the deterministic summary.
//!
//! The whole session — responses, fault log, breaker transitions — is a
//! pure function of the seed, so CI runs the binary twice and `cmp`s the
//! summary JSON byte-for-byte.
//!
//! * `DEFCON_CHAOS_SEED=<n>` — session seed (default 0xC4A05);
//! * `DEFCON_FAST=1` — 60-request session instead of 200;
//! * `DEFCON_JSON=1` — emit the summary JSON as the last stdout line;
//! * `DEFCON_BENCH_OUT=<path>` — additionally write the summary JSON to
//!   `path` (what CI compares across runs).

use defcon_bench::{emit_json, Table};
use defcon_core::chaos::{self, ChaosConfig};
use defcon_support::env;

fn main() {
    let _obs = defcon_bench::obs_scope();
    let seed = env::or_die(env::u64_value(env::CHAOS_SEED)).unwrap_or(0xC4A05);
    let requests = if defcon_bench::fast_mode() { 60 } else { 200 };
    println!("DEFCON chaos soak: {requests} requests, seed {seed:#x}, all fault points armed");
    println!("==========================================================================");

    let cfg = ChaosConfig {
        seed,
        requests,
        ..ChaosConfig::default()
    };
    let summary = chaos::run_session(&cfg);
    summary.assert_invariants();

    let mut table = Table::new(&["outcome", "count"]);
    for (name, count) in [
        ("served", summary.outcomes[0]),
        ("shed", summary.outcomes[1]),
        ("deadline_exceeded", summary.outcomes[2]),
        ("failed", summary.outcomes[3]),
    ] {
        table.row(&[name.to_string(), count.to_string()]);
    }
    table.print();

    println!();
    println!(
        "faults injected {}  breaker transitions {}  retries {}  degraded {}  terminal sheds {}",
        summary.fault_log.len(),
        summary.breaker_log.len(),
        summary.admission.retries,
        summary.admission.degraded_admissions,
        summary.admission.terminal_sheds,
    );
    println!(
        "cache: hits {}  misses {}  inserts {} (= len {} + evictions {} + drops {})",
        summary.cache.hits,
        summary.cache.misses,
        summary.cache.inserts,
        summary.cache.len,
        summary.cache.evictions,
        summary.cache.drops,
    );
    for line in &summary.breaker_log {
        println!("breaker {line}");
    }
    println!("response digest {:016x}", summary.digest);

    let report = summary.to_json();
    if let Some(path) = env::or_die(env::path(env::BENCH_OUT)) {
        std::fs::write(&path, format!("{report}\n")).unwrap_or_else(|e| {
            eprintln!("cannot write {}: {e}", path.display());
            std::process::exit(1);
        });
        println!("summary written to {}", path.display());
    }
    emit_json(&report);
}
