//! Reproduces **Fig. 5**: determining the bounded-deformation limit `P`.
//!
//! Trains one deformable detector, then evaluates it with the learned
//! offsets clamped to `P ∈ {3, 5, 7, 9, ∞}` (the lowest boundary is the
//! kernel size, per the paper). Paper finding: accuracy saturates at
//! `P = 7`; tighter bounds clip useful deformation, looser bounds buy
//! nothing.
//!
//! `DEFCON_FAST=1` shrinks the training budget.

use defcon_bench::{f2, Table};
use defcon_models::backbone::{BackboneConfig, SlotKind};
use defcon_models::dataset::DeformedShapesConfig;
use defcon_models::trainer::{evaluate_detector, prepare, train_detector, TrainConfig};
use defcon_models::YolactLite;
use defcon_nn::graph::ParamStore;
use defcon_tensor::sample::OffsetTransform;

fn main() {
    // Must be first and live for the whole run: the guard writes the
    // DEFCON_TRACE Chrome trace when it drops.
    let _obs = defcon_bench::obs_scope();
    let fast = defcon_bench::fast_mode();
    let dataset = DeformedShapesConfig {
        deformation: 1.0,
        ..Default::default()
    };
    let cfg = TrainConfig {
        epochs: if fast { 3 } else { 14 },
        batch_size: 8,
        lr: 0.02,
        train_size: if fast { 48 } else { 320 },
        val_size: if fast { 24 } else { 96 },
        dataset,
        seed: 0x5EED,
    };

    // Train once with unbounded offsets (dense DCN placement).
    let mut bb = BackboneConfig::mini(48, BackboneConfig::uniform_slots(5, SlotKind::Deformable));
    bb.lightweight_offsets = false;
    let mut store = ParamStore::new();
    let mut det = YolactLite::new(&mut store, bb);
    train_detector(&mut det, &mut store, &cfg);
    let val = prepare(&cfg.dataset, cfg.val_size, cfg.seed ^ 0xFFFF_0000).samples;

    println!("# Fig. 5 — accuracy vs. deformation bound P (evaluated with the offsets of one trained model clamped)\n");
    let mut table = Table::new(&["P", "Box mAP", "Mask mAP", "Mask AP50"]);
    let bounds: [(String, OffsetTransform); 5] = [
        ("3".into(), OffsetTransform::Bounded(3.0)),
        ("5".into(), OffsetTransform::Bounded(5.0)),
        ("7".into(), OffsetTransform::Bounded(7.0)),
        ("9".into(), OffsetTransform::Bounded(9.0)),
        ("inf".into(), OffsetTransform::Identity),
    ];
    for (name, tr) in bounds {
        det.backbone.set_offset_transform(tr);
        let map = evaluate_detector(&mut det, &store, &val, 0.05);
        table.row(&[name, f2(map.box_map), f2(map.mask_map), f2(map.mask_ap50)]);
    }
    table.print();
    println!("\n(the paper picks P = 7: bounds ≥ 7 are accuracy-neutral)");
}
