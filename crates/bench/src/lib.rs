//! # defcon-bench
//!
//! The reproduction harness: shared table formatting plus one `repro_*`
//! binary per table and figure of the paper (see DESIGN.md §5 for the
//! experiment index). Microbenchmarks live in `benches/`.
//!
//! Environment switches shared by the `repro_*` binaries:
//!
//! * `DEFCON_TINY=1` — swap the paper's layer sweep for two tiny shapes so
//!   a binary finishes in well under a second (smoke tests, CI);
//! * `DEFCON_JSON=1` — additionally emit the experiment's results as a
//!   single line of JSON (the last stdout line), for machine consumption.

use defcon_kernels::{paper_layer_sweep, DeformLayerShape};
use defcon_support::json::Json;
use std::fmt::Write as _;

/// True when `DEFCON_TINY=1`: sweep tiny layer shapes instead of the
/// paper's. A malformed value exits with a clear message rather than
/// being silently ignored.
pub fn tiny_mode() -> bool {
    defcon_support::env::or_die(defcon_support::env::flag(defcon_support::env::TINY))
}

/// True when `DEFCON_JSON=1`: emit a machine-readable report line.
pub fn json_mode() -> bool {
    defcon_support::env::or_die(defcon_support::env::flag(defcon_support::env::JSON))
}

/// True when `DEFCON_FAST=1`: shrink an example/repro training budget.
pub fn fast_mode() -> bool {
    defcon_support::env::or_die(defcon_support::env::flag(defcon_support::env::FAST))
}

/// Arms the observability layer from the environment. Every `repro_*`
/// binary calls this first: with `DEFCON_TRACE=<path>` set, the returned
/// guard records the run and writes a Chrome trace-event file to `path`
/// when it drops (bind it to a variable declared *before* any other work
/// so it drops last); `DEFCON_OBS_WALL=1` switches the span clock from
/// logical ticks to wall microseconds. `None` (and zero overhead) when
/// tracing is off; a malformed value exits with a clear message.
pub fn obs_scope() -> Option<defcon_support::obs::ObsGuard> {
    defcon_support::env::or_die(defcon_support::obs::arm_from_env())
}

/// The layer shapes a `repro_*` binary should sweep: the paper's Table II
/// set, or two tiny stand-ins under `DEFCON_TINY=1`.
pub fn layer_sweep() -> Vec<DeformLayerShape> {
    if tiny_mode() {
        vec![
            DeformLayerShape::same3x3(8, 8, 12, 12),
            DeformLayerShape::same3x3(16, 16, 9, 9),
        ]
    } else {
        paper_layer_sweep()
    }
}

/// Prints `report` as one line of JSON when [`json_mode`] is on. Call this
/// last so the JSON document is the final stdout line.
pub fn emit_json(report: &Json) {
    if json_mode() {
        println!("{report}");
    }
}

/// A minimal fixed-width table printer for harness output.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header count).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(out, "| {:>w$} ", c, w = widths[i]);
            }
            out.push_str("|\n");
        };
        line(&mut out, &self.headers);
        for (i, w) in widths.iter().enumerate() {
            let _ = write!(out, "|{:-<w$}", "", w = w + 2);
            if i == widths.len() - 1 {
                out.push_str("|\n");
            }
        }
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a float with 2 decimal places.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a speedup as `1.23x`.
pub fn speedup(v: f64) -> String {
    format!("{v:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["a", "bbbb"]);
        t.row(&["1".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("| bbbb |"));
        assert!(s.lines().count() == 3);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_bad_rows() {
        let mut t = Table::new(&["a"]);
        t.row(&["1".into(), "2".into()]);
    }
}
