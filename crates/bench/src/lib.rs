//! # defcon-bench
//!
//! The reproduction harness: shared table formatting plus one `repro_*`
//! binary per table and figure of the paper (see DESIGN.md §5 for the
//! experiment index). Criterion microbenchmarks live in `benches/`.

use std::fmt::Write as _;

/// A minimal fixed-width table printer for harness output.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table { headers: headers.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends one row (must match the header count).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(out, "| {:>w$} ", c, w = widths[i]);
            }
            out.push_str("|\n");
        };
        line(&mut out, &self.headers);
        for (i, w) in widths.iter().enumerate() {
            let _ = write!(out, "|{:-<w$}", "", w = w + 2);
            if i == widths.len() - 1 {
                out.push_str("|\n");
            }
        }
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a float with 2 decimal places.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a speedup as `1.23x`.
pub fn speedup(v: f64) -> String {
    format!("{v:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["a", "bbbb"]);
        t.row(&["1".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("| bbbb |"));
        assert!(s.lines().count() == 3);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_bad_rows() {
        let mut t = Table::new(&["a"]);
        t.row(&["1".into(), "2".into()]);
    }
}
