//! Smoke tests for the `repro_*` binaries: run them end to end on tiny
//! shapes (`DEFCON_TINY=1`) and check the machine-readable report
//! (`DEFCON_JSON=1`, last stdout line) parses with the expected keys.
//!
//! These tests exist so a refactor cannot silently break the executables the
//! reproduction is actually driven with — unit tests never run `main`.

use defcon_support::json::Json;
use std::process::Command;

/// Runs a repro binary in tiny+JSON mode with an explicit simulator thread
/// count and returns (full stdout, parsed report from the last line).
fn run_tiny_json_threads(bin: &str, threads: usize) -> (String, Json) {
    let out = Command::new(bin)
        .env("DEFCON_TINY", "1")
        .env("DEFCON_JSON", "1")
        .env("DEFCON_FAST", "1")
        .env("DEFCON_THREADS", threads.to_string())
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn {bin}: {e}"));
    assert!(
        out.status.success(),
        "{bin} exited with {:?}\nstderr:\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("repro output is UTF-8");
    let last = stdout
        .trim_end()
        .lines()
        .last()
        .expect("repro printed nothing");
    let json = Json::parse(last)
        .unwrap_or_else(|e| panic!("{bin}: last stdout line is not JSON ({e}): {last}"));
    (stdout, json)
}

/// Runs a repro binary in tiny+JSON mode, pinned to one simulator thread.
///
/// Pinning matters: the test *suite* runs under varying `DEFCON_THREADS`
/// (CI runs it at 1 and 4), and the golden snapshots below are recorded in
/// the serial-equivalent mode — single-threaded launches are byte-identical
/// to the serial engine by the determinism contract, so these outputs never
/// depend on the machine or the ambient env.
fn run_tiny_json(bin: &str) -> (String, Json) {
    run_tiny_json_threads(bin, 1)
}

/// Shared checks: experiment tag, device name, non-empty row array with the
/// given keys in every row.
fn assert_report(json: &Json, experiment: &str, row_keys: &[&str]) {
    assert_eq!(json.str_field("experiment").unwrap(), experiment);
    assert_eq!(json.str_field("device").unwrap(), "Jetson-AGX-Xavier");
    let rows = json.field("rows").unwrap().as_arr().unwrap();
    assert!(!rows.is_empty(), "{experiment}: no rows");
    for row in rows {
        for key in row_keys {
            assert!(
                row.get(key).is_some(),
                "{experiment}: row missing key '{key}': {row}"
            );
        }
    }
}

#[test]
fn table2_reports_layer_timings() {
    let (_, json) = run_tiny_json(env!("CARGO_BIN_EXE_repro_table2_xavier"));
    assert_report(
        &json,
        "table2",
        &[
            "c_in",
            "c_out",
            "h",
            "w",
            "pytorch_ms",
            "tex2d_ms",
            "tex2dpp_ms",
            "speedup",
        ],
    );
    for row in json.field("rows").unwrap().as_arr().unwrap() {
        assert!(row.num_field("pytorch_ms").unwrap() > 0.0);
        assert!(row.num_field("tex2d_ms").unwrap() > 0.0);
        assert!(row.num_field("tex2dpp_ms").unwrap() > 0.0);
    }
}

#[test]
fn fig7_reports_speedups_and_geomeans() {
    let (_, json) = run_tiny_json(env!("CARGO_BIN_EXE_repro_fig7_speedup"));
    assert_report(&json, "fig7", &["layer", "tex2d", "tex2dpp"]);
    assert!(json.num_field("geomean_tex2d").unwrap() > 0.0);
    assert!(json.num_field("geomean_tex2dpp").unwrap() > 0.0);
}

#[test]
fn fig10_reports_counters_per_impl() {
    let (_, json) = run_tiny_json(env!("CARGO_BIN_EXE_repro_fig10_counters"));
    assert_report(
        &json,
        "fig10",
        &[
            "layer",
            "impl",
            "mflop",
            "gld_trans_per_req",
            "gld_efficiency",
            "tex_requests",
            "tex_hit_rate",
        ],
    );
    // Every layer sweeps 4 implementations, and the software path must not
    // issue texture requests while the texture paths must.
    let rows = json.field("rows").unwrap().as_arr().unwrap();
    assert_eq!(rows.len() % 4, 0);
    for row in rows {
        let tex = row.u64_field("tex_requests").unwrap();
        match row.str_field("impl").unwrap() {
            "PyTorch" => assert_eq!(tex, 0, "software path issued texture requests"),
            _ => assert!(tex > 0, "texture path issued no texture requests"),
        }
    }
}

/// Compares two parsed reports with identical structure and strings, and
/// numbers within a relative tolerance (absolute for values near zero).
fn assert_json_close(a: &Json, b: &Json, rel_tol: f64, path: &str) {
    match (a, b) {
        (Json::Null, Json::Null) => {}
        (Json::Bool(x), Json::Bool(y)) => assert_eq!(x, y, "{path}: bool differs"),
        (Json::Str(x), Json::Str(y)) => assert_eq!(x, y, "{path}: string differs"),
        (Json::Num(x), Json::Num(y)) => {
            let scale = x.abs().max(y.abs());
            let diff = (x - y).abs();
            assert!(
                diff <= rel_tol * scale.max(1e-9),
                "{path}: {x} vs {y} differ by {:.3}% (tolerance {:.3}%)",
                100.0 * diff / scale.max(1e-9),
                100.0 * rel_tol
            );
        }
        (Json::Arr(x), Json::Arr(y)) => {
            assert_eq!(x.len(), y.len(), "{path}: array length differs");
            for (i, (p, q)) in x.iter().zip(y).enumerate() {
                assert_json_close(p, q, rel_tol, &format!("{path}[{i}]"));
            }
        }
        (Json::Obj(x), Json::Obj(y)) => {
            assert_eq!(x.len(), y.len(), "{path}: object size differs");
            for ((kx, vx), (ky, vy)) in x.iter().zip(y) {
                assert_eq!(kx, ky, "{path}: key order differs");
                assert_json_close(vx, vy, rel_tol, &format!("{path}.{kx}"));
            }
        }
        _ => panic!("{path}: JSON kind differs"),
    }
}

/// Golden-report snapshots: the single-thread tiny-mode JSON report of every
/// repro binary is checked in under `tests/golden/` and must match byte for
/// byte. Regenerate after an intentional model change with:
///
/// ```sh
/// DEFCON_BLESS=1 cargo test -p defcon-bench --offline golden
/// ```
#[test]
fn golden_reports_match_snapshots() {
    let cases = [
        (env!("CARGO_BIN_EXE_repro_table2_xavier"), "table2_xavier"),
        (env!("CARGO_BIN_EXE_repro_fig10_counters"), "fig10_counters"),
        (env!("CARGO_BIN_EXE_repro_fig7_speedup"), "fig7_speedup"),
    ];
    for (bin, name) in cases {
        let (stdout, _) = run_tiny_json(bin);
        let mut actual = stdout.trim_end().lines().last().unwrap().to_string();
        actual.push('\n');
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("tests/golden")
            .join(format!("{name}.json"));
        if defcon_support::env::or_die(defcon_support::env::flag(defcon_support::env::BLESS)) {
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(&path, &actual).unwrap();
            continue;
        }
        let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden snapshot {} ({e}); run with DEFCON_BLESS=1 to record it",
                path.display()
            )
        });
        assert_eq!(
            actual,
            golden,
            "{name}: report diverged from {}; if the model change is \
             intentional, re-bless with DEFCON_BLESS=1",
            path.display()
        );
    }
}

/// The new repro smoke path for parallel simulation: every repro binary must
/// produce the same report structure at `DEFCON_THREADS=4` as at 1, with all
/// numbers inside the documented L2-merge tolerance. (Tiny grids often fit
/// in one band per layer, so most values are exactly equal; the tolerance
/// covers the layers big enough to actually split.)
#[test]
fn reports_agree_across_thread_counts() {
    for bin in [
        env!("CARGO_BIN_EXE_repro_table2_xavier"),
        env!("CARGO_BIN_EXE_repro_fig10_counters"),
        env!("CARGO_BIN_EXE_repro_fig7_speedup"),
    ] {
        let (_, serial) = run_tiny_json_threads(bin, 1);
        let (_, parallel) = run_tiny_json_threads(bin, 4);
        assert_json_close(&serial, &parallel, 0.01, bin);
    }
}

#[test]
fn reports_are_byte_identical_across_runs() {
    // The acceptance bar for the hermetic build: same seed, same bytes.
    for bin in [
        env!("CARGO_BIN_EXE_repro_table2_xavier"),
        env!("CARGO_BIN_EXE_repro_fig7_speedup"),
    ] {
        let (a, _) = run_tiny_json(bin);
        let (b, _) = run_tiny_json(bin);
        assert_eq!(a, b, "{bin} output differs between identical runs");
    }
}
