//! Smoke tests for the `repro_*` binaries: run them end to end on tiny
//! shapes (`DEFCON_TINY=1`) and check the machine-readable report
//! (`DEFCON_JSON=1`, last stdout line) parses with the expected keys.
//!
//! These tests exist so a refactor cannot silently break the executables the
//! reproduction is actually driven with — unit tests never run `main`.

use defcon_support::json::Json;
use std::process::Command;

/// Runs a repro binary in tiny+JSON mode and returns (full stdout, parsed
/// report from the last line).
fn run_tiny_json(bin: &str) -> (String, Json) {
    let out = Command::new(bin)
        .env("DEFCON_TINY", "1")
        .env("DEFCON_JSON", "1")
        .env("DEFCON_FAST", "1")
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn {bin}: {e}"));
    assert!(
        out.status.success(),
        "{bin} exited with {:?}\nstderr:\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("repro output is UTF-8");
    let last = stdout
        .trim_end()
        .lines()
        .last()
        .expect("repro printed nothing");
    let json = Json::parse(last)
        .unwrap_or_else(|e| panic!("{bin}: last stdout line is not JSON ({e}): {last}"));
    (stdout, json)
}

/// Shared checks: experiment tag, device name, non-empty row array with the
/// given keys in every row.
fn assert_report(json: &Json, experiment: &str, row_keys: &[&str]) {
    assert_eq!(json.str_field("experiment").unwrap(), experiment);
    assert_eq!(json.str_field("device").unwrap(), "Jetson-AGX-Xavier");
    let rows = json.field("rows").unwrap().as_arr().unwrap();
    assert!(!rows.is_empty(), "{experiment}: no rows");
    for row in rows {
        for key in row_keys {
            assert!(
                row.get(key).is_some(),
                "{experiment}: row missing key '{key}': {row}"
            );
        }
    }
}

#[test]
fn table2_reports_layer_timings() {
    let (_, json) = run_tiny_json(env!("CARGO_BIN_EXE_repro_table2_xavier"));
    assert_report(
        &json,
        "table2",
        &[
            "c_in",
            "c_out",
            "h",
            "w",
            "pytorch_ms",
            "tex2d_ms",
            "tex2dpp_ms",
            "speedup",
        ],
    );
    for row in json.field("rows").unwrap().as_arr().unwrap() {
        assert!(row.num_field("pytorch_ms").unwrap() > 0.0);
        assert!(row.num_field("tex2d_ms").unwrap() > 0.0);
        assert!(row.num_field("tex2dpp_ms").unwrap() > 0.0);
    }
}

#[test]
fn fig7_reports_speedups_and_geomeans() {
    let (_, json) = run_tiny_json(env!("CARGO_BIN_EXE_repro_fig7_speedup"));
    assert_report(&json, "fig7", &["layer", "tex2d", "tex2dpp"]);
    assert!(json.num_field("geomean_tex2d").unwrap() > 0.0);
    assert!(json.num_field("geomean_tex2dpp").unwrap() > 0.0);
}

#[test]
fn fig10_reports_counters_per_impl() {
    let (_, json) = run_tiny_json(env!("CARGO_BIN_EXE_repro_fig10_counters"));
    assert_report(
        &json,
        "fig10",
        &[
            "layer",
            "impl",
            "mflop",
            "gld_trans_per_req",
            "gld_efficiency",
            "tex_requests",
            "tex_hit_rate",
        ],
    );
    // Every layer sweeps 4 implementations, and the software path must not
    // issue texture requests while the texture paths must.
    let rows = json.field("rows").unwrap().as_arr().unwrap();
    assert_eq!(rows.len() % 4, 0);
    for row in rows {
        let tex = row.u64_field("tex_requests").unwrap();
        match row.str_field("impl").unwrap() {
            "PyTorch" => assert_eq!(tex, 0, "software path issued texture requests"),
            _ => assert!(tex > 0, "texture path issued no texture requests"),
        }
    }
}

#[test]
fn reports_are_byte_identical_across_runs() {
    // The acceptance bar for the hermetic build: same seed, same bytes.
    for bin in [
        env!("CARGO_BIN_EXE_repro_table2_xavier"),
        env!("CARGO_BIN_EXE_repro_fig7_speedup"),
    ] {
        let (a, _) = run_tiny_json(bin);
        let (b, _) = run_tiny_json(bin);
        assert_eq!(a, b, "{bin} output differs between identical runs");
    }
}
