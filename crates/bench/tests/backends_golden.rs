//! Golden cross-backend table: `repro_backends` in tiny+JSON mode at
//! `DEFCON_THREADS=1` must reproduce the blessed report in
//! `tests/golden/backends_table.json` byte for byte. Both timing models
//! are closed-form deterministic (gpusim's engine at one thread is
//! byte-identical to the serial engine; the accel cycle model is
//! all-integer), so the table is a function of the code alone.
//!
//! Re-bless after an intentional timing-model change with:
//!
//! ```sh
//! DEFCON_BLESS=1 cargo test -p defcon-bench --offline --test backends_golden
//! ```

use defcon_support::json::Json;
use std::path::{Path, PathBuf};
use std::process::Command;

/// Runs `repro_backends` tiny+JSON at one simulator thread and returns the
/// report line (last stdout line, newline-terminated like the golden).
fn run_report() -> String {
    let bin = env!("CARGO_BIN_EXE_repro_backends");
    let out = Command::new(bin)
        .env("DEFCON_TINY", "1")
        .env("DEFCON_JSON", "1")
        .env("DEFCON_FAST", "1")
        .env("DEFCON_THREADS", "1")
        .env_remove("DEFCON_BLESS")
        .env_remove("DEFCON_BENCH_OUT")
        .env_remove("DEFCON_BACKEND")
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn {bin}: {e}"));
    assert!(
        out.status.success(),
        "{bin} exited with {:?}\nstderr:\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("repro output is UTF-8");
    let last = stdout
        .trim_end()
        .lines()
        .last()
        .expect("repro printed nothing");
    format!("{last}\n")
}

fn golden_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/backends_table.json")
}

#[test]
fn golden_backends_table_matches_snapshot() {
    let actual = run_report();
    let path = golden_path();
    if defcon_support::env::or_die(defcon_support::env::flag(defcon_support::env::BLESS)) {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &actual).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden table {} ({e}); run with DEFCON_BLESS=1 to record it",
            path.display()
        )
    });
    assert_eq!(
        actual,
        golden,
        "backends table diverged from {}; if the timing-model change is \
         intentional, re-bless with DEFCON_BLESS=1",
        path.display()
    );
}

#[test]
fn backends_table_is_byte_identical_across_runs() {
    assert_eq!(
        run_report(),
        run_report(),
        "backends report differs between identical runs"
    );
}

/// Structural checks on the report so a re-bless cannot silently drop a
/// device pairing or a timing column.
#[test]
fn backends_report_covers_both_pairings_with_all_columns() {
    let json = Json::parse(run_report().trim_end()).expect("report parses");
    assert_eq!(json.str_field("experiment").unwrap(), "backends");
    let pairs = json.field("pairs").unwrap().as_arr().unwrap();
    let names: Vec<(String, String)> = pairs
        .iter()
        .map(|p| {
            (
                p.str_field("gpu").unwrap().to_string(),
                p.str_field("accel").unwrap().to_string(),
            )
        })
        .collect();
    assert_eq!(
        names,
        vec![
            ("Jetson-AGX-Xavier".into(), "DCN-Accel-Edge".into()),
            ("RTX-2080Ti".into(), "DCN-Accel-DC".into()),
        ]
    );
    for pair in pairs {
        let rows = pair.field("rows").unwrap().as_arr().unwrap();
        assert!(!rows.is_empty(), "empty sweep in {pair}");
        for row in rows {
            for key in [
                "accel_tile_h",
                "accel_tile_w",
                "gpusim_pytorch_ms",
                "gpusim_tex2d_ms",
                "gpusim_tex2dpp_ms",
                "accel_pytorch_ms",
                "accel_tex2d_ms",
                "accel_tex2dpp_ms",
                "cross_speedup",
            ] {
                let v = row
                    .num_field(key)
                    .unwrap_or_else(|e| panic!("row missing numeric '{key}' ({e:?}): {row}"));
                assert!(v > 0.0, "{key} must be positive: {row}");
            }
        }
    }
}
