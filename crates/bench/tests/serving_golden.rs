//! Golden serving trace: `repro_serving`'s fixed 16-request session run
//! with `DEFCON_TRACE` at `DEFCON_THREADS=1` must reproduce the blessed
//! snapshot in `tests/golden/serving_trace.json` byte for byte, and its
//! embedded metrics must report the session's cache behaviour *exactly*
//! (8 hits / 8 misses through a capacity-8 queue; final queue depth 0).
//!
//! Re-bless after an intentional serving/instrumentation change with:
//!
//! ```sh
//! DEFCON_BLESS=1 cargo test -p defcon-bench --offline --test serving_golden
//! ```
//!
//! The byte-level comparison is only pinned at threads=1: the obs layer
//! records from the arming thread alone, so with more workers the
//! per-request simulation happens off-thread and the trace legitimately
//! contains fewer engine spans. The serving *content* across thread
//! counts is covered by `tests/serving_equivalence.rs`.

use defcon_support::json::Json;
use defcon_support::obs::{find_spans, forest_from_chrome};
use std::path::{Path, PathBuf};
use std::process::Command;

/// Runs `repro_serving` in tiny mode with tracing to a unique temp file.
/// Serving env knobs are stripped so the session shape is always the
/// fixed 16-request / capacity-8 one the golden was blessed from.
fn run_traced(threads: usize, tag: &str) -> String {
    let bin = env!("CARGO_BIN_EXE_repro_serving");
    let trace = std::env::temp_dir().join(format!(
        "defcon-serving-{}-{tag}-t{threads}.json",
        std::process::id()
    ));
    let out = Command::new(bin)
        .env("DEFCON_TINY", "1")
        .env("DEFCON_JSON", "1")
        .env("DEFCON_THREADS", threads.to_string())
        .env("DEFCON_TRACE", &trace)
        .env_remove("DEFCON_OBS_WALL")
        .env_remove("DEFCON_BLESS")
        .env_remove("DEFCON_SERVE_QUEUE")
        .env_remove("DEFCON_SERVE_CACHE")
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn {bin}: {e}"));
    assert!(
        out.status.success(),
        "{bin} exited with {:?}\nstderr:\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let bytes = std::fs::read_to_string(&trace)
        .unwrap_or_else(|e| panic!("{bin} did not write trace {}: {e}", trace.display()));
    let _ = std::fs::remove_file(&trace);
    assert!(!bytes.is_empty(), "empty trace file");
    bytes
}

fn golden_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/serving_trace.json")
}

#[test]
fn golden_serving_trace_matches_snapshot() {
    let actual = run_traced(1, "golden");
    let path = golden_path();
    if defcon_support::env::or_die(defcon_support::env::flag(defcon_support::env::BLESS)) {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &actual).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden trace {} ({e}); run with DEFCON_BLESS=1 to record it",
            path.display()
        )
    });
    assert_eq!(
        actual,
        golden,
        "serving trace diverged from {}; if the serving/instrumentation \
         change is intentional, re-bless with DEFCON_BLESS=1",
        path.display()
    );
}

#[test]
fn serving_trace_is_byte_identical_across_runs() {
    let a = run_traced(1, "runa");
    let b = run_traced(1, "runb");
    assert_eq!(a, b, "serving trace differs between identical runs");
}

/// The exact-counter satellite: cache-hit counters and queue-depth gauges
/// from the session's metrics block, pinned to the session's arithmetic
/// (16 requests = 8 misses + 8 hits; queue drained to 0; 1 shed).
#[test]
fn serving_trace_counters_and_gauges_are_exact() {
    let trace = run_traced(1, "metrics");
    let doc = Json::parse(&trace).expect("trace is valid JSON");
    let metrics = doc.field("metrics").expect("trace embeds metrics");
    let counters = metrics.field("counters").expect("metrics.counters");
    for (name, want) in [
        ("serve.requests", 16u64),
        ("serve.cache_hits", 8),
        ("serve.cache_misses", 8),
    ] {
        assert_eq!(
            counters.u64_field(name),
            Ok(want),
            "counter {name}: {counters}"
        );
    }
    let gauges = metrics.field("gauges").expect("metrics.gauges");
    assert_eq!(
        gauges.num_field("serve.queue_depth"),
        Ok(0.0),
        "queue must drain to empty"
    );
    assert_eq!(
        gauges.num_field("serve.hit_rate"),
        Ok(0.5),
        "8 hits over 16 lookups"
    );

    // Span structure: two drains (mid-session overflow + final), one
    // serve.request span per response, exactly one shed event.
    let forest = forest_from_chrome(&doc).expect("forest parses");
    assert_eq!(find_spans(&forest, "serve.drain").len(), 2);
    assert_eq!(find_spans(&forest, "serve.request").len(), 16);
    let sheds = find_spans(&forest, "serve.shed");
    assert_eq!(sheds.len(), 1, "exactly one admission overflow");
    // The first drain is all misses, the second all hits.
    let requests = find_spans(&forest, "serve.request");
    let from_cache: Vec<bool> = requests
        .iter()
        .map(|s| s.arg("from_cache") == Some(&Json::Bool(true)))
        .collect();
    assert_eq!(&from_cache[..8], &[false; 8]);
    assert_eq!(&from_cache[8..], &[true; 8]);
}
