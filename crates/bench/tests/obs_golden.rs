//! Golden-trace conformance tests: run the repro binaries with
//! `DEFCON_TRACE=<path>` and hold the emitted Chrome trace to the
//! determinism contract (DESIGN.md §8).
//!
//! * At `DEFCON_THREADS=1` the trace is **byte-identical** across runs and
//!   matches the blessed snapshot under `tests/golden/` byte for byte — the
//!   logical clock makes timestamps a pure function of the event sequence.
//! * At `DEFCON_THREADS=4` the band decomposition differs (more, smaller
//!   bands), so equality is **semantic**: the same launch sequence with the
//!   same kernel labels, exactly-equal L1/texture counters, and cycles
//!   within the documented 1% merge tolerance.
//!
//! Re-bless after an intentional instrumentation change with:
//!
//! ```sh
//! DEFCON_BLESS=1 cargo test -p defcon-bench --offline --test obs_golden
//! ```

use defcon_support::json::Json;
use defcon_support::obs::{find_spans, forest_from_chrome, SpanNode};
use std::path::{Path, PathBuf};
use std::process::Command;

/// Runs a repro binary in tiny mode with tracing to a unique temp file and
/// returns the raw trace bytes. The temp path encodes pid + tag so parallel
/// test binaries never collide.
fn run_traced(bin: &str, threads: usize, tag: &str) -> String {
    let trace = std::env::temp_dir().join(format!(
        "defcon-obs-{}-{tag}-t{threads}.json",
        std::process::id()
    ));
    let out = Command::new(bin)
        .env("DEFCON_TINY", "1")
        .env("DEFCON_JSON", "1")
        .env("DEFCON_FAST", "1")
        .env("DEFCON_THREADS", threads.to_string())
        .env("DEFCON_TRACE", &trace)
        .env_remove("DEFCON_OBS_WALL")
        .env_remove("DEFCON_BLESS")
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn {bin}: {e}"));
    assert!(
        out.status.success(),
        "{bin} exited with {:?}\nstderr:\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let bytes = std::fs::read_to_string(&trace)
        .unwrap_or_else(|e| panic!("{bin} did not write trace {}: {e}", trace.display()));
    let _ = std::fs::remove_file(&trace);
    assert!(!bytes.is_empty(), "{bin}: empty trace file");
    bytes
}

fn parse_forest(trace: &str) -> Vec<SpanNode> {
    let json = Json::parse(trace).expect("trace file is valid JSON");
    forest_from_chrome(&json).expect("trace round-trips through forest_from_chrome")
}

fn golden_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.json"))
}

const CASES: [(&str, &str); 2] = [
    (env!("CARGO_BIN_EXE_repro_table2_xavier"), "table2_trace"),
    (env!("CARGO_BIN_EXE_repro_fig7_speedup"), "fig7_trace"),
];

/// The single-thread trace must match the checked-in snapshot byte for byte.
#[test]
fn golden_traces_match_snapshots() {
    for (bin, name) in CASES {
        let actual = run_traced(bin, 1, name);
        let path = golden_path(name);
        if defcon_support::env::or_die(defcon_support::env::flag(defcon_support::env::BLESS)) {
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(&path, &actual).unwrap();
            continue;
        }
        let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden trace {} ({e}); run with DEFCON_BLESS=1 to record it",
                path.display()
            )
        });
        assert_eq!(
            actual,
            golden,
            "{name}: trace diverged from {}; if the instrumentation change is \
             intentional, re-bless with DEFCON_BLESS=1",
            path.display()
        );
    }
}

/// Two back-to-back single-thread runs emit identical bytes — the trace is a
/// pure function of the workload, not of scheduling or the clock.
#[test]
fn traces_are_byte_identical_across_runs() {
    for (bin, name) in CASES {
        let a = run_traced(bin, 1, &format!("{name}-runa"));
        let b = run_traced(bin, 1, &format!("{name}-runb"));
        assert_eq!(a, b, "{name}: trace differs between identical runs");
    }
}

/// Semantic equality across thread counts: threads=4 splits launches into
/// more bands, but the launch-level aggregates must agree with threads=1 —
/// same kernels in the same order, exactly-equal private-cache counters
/// (L1 and texture caches are flushed per block, so decomposition cannot
/// change them), exact L2 accesses, and cycles within the 1% tolerance the
/// parallel engine documents for cold-shard L2 drift.
#[test]
fn traces_agree_semantically_across_thread_counts() {
    for (bin, name) in CASES {
        let serial = parse_forest(&run_traced(bin, 1, &format!("{name}-sem1")));
        let parallel = parse_forest(&run_traced(bin, 4, &format!("{name}-sem4")));
        let s_launches = find_spans(&serial, "gpusim.launch");
        let p_launches = find_spans(&parallel, "gpusim.launch");
        assert!(
            !s_launches.is_empty(),
            "{name}: no launch spans at threads=1"
        );
        assert_eq!(
            s_launches.len(),
            p_launches.len(),
            "{name}: launch count differs across thread counts"
        );
        for (i, (s, p)) in s_launches.iter().zip(&p_launches).enumerate() {
            let at = format!("{name} launch[{i}]");
            assert_eq!(
                s.str_arg("kernel"),
                p.str_arg("kernel"),
                "{at}: kernel label differs"
            );
            assert_eq!(
                s.u64_arg("grid_blocks"),
                p.u64_arg("grid_blocks"),
                "{at}: grid differs"
            );
            for key in [
                "l1_hits",
                "l1_accesses",
                "tex_hits",
                "tex_line_accesses",
                // Texture-unit sampler stats: per-block exact, so the band
                // decomposition cannot change them either.
                "tex_fetch_lanes",
                "tex_filter_texels",
                "tex_plan_warps",
                "tex_plan_evals",
            ] {
                assert_eq!(
                    s.u64_arg(key),
                    p.u64_arg(key),
                    "{at}: private-cache counter '{key}' differs"
                );
            }
            assert_eq!(
                s.u64_arg("l2_accesses"),
                p.u64_arg("l2_accesses"),
                "{at}: l2_accesses differs"
            );
            let (sc, pc) = (
                s.num_arg("cycles").expect("launch span has cycles"),
                p.num_arg("cycles").expect("launch span has cycles"),
            );
            let drift = (sc - pc).abs() / sc.max(1.0);
            assert!(
                drift <= 0.01,
                "{at}: cycles drift {:.3}% exceeds 1% ({sc} vs {pc})",
                100.0 * drift
            );
        }
    }
}

/// Recombination: inside every launch span, the per-band child spans must
/// sum back exactly to the launch-level counter args — nothing is lost or
/// double-counted in the merge.
#[test]
fn band_spans_recombine_to_launch_aggregates() {
    for threads in [1usize, 4] {
        let forest = parse_forest(&run_traced(
            env!("CARGO_BIN_EXE_repro_table2_xavier"),
            threads,
            &format!("recombine-{threads}"),
        ));
        let launches = find_spans(&forest, "gpusim.launch");
        assert!(!launches.is_empty(), "no launch spans (threads={threads})");
        for (i, launch) in launches.iter().enumerate() {
            let bands: Vec<&SpanNode> = launch
                .children
                .iter()
                .filter(|c| c.name == "gpusim.band")
                .collect();
            assert!(!bands.is_empty(), "launch[{i}]: no band spans");
            // Counters are exact u64 sums across bands.
            for key in [
                "l1_hits",
                "l1_accesses",
                "tex_hits",
                "tex_line_accesses",
                "l2_hits",
                "l2_accesses",
            ] {
                let total: u64 = bands
                    .iter()
                    .map(|b| {
                        b.u64_arg(key)
                            .unwrap_or_else(|| panic!("band missing arg '{key}'"))
                    })
                    .sum();
                let expect = launch
                    .u64_arg(key)
                    .unwrap_or_else(|| panic!("launch[{i}] missing arg '{key}'"));
                assert_eq!(
                    total, expect,
                    "launch[{i}] (threads={threads}): band '{key}' sum {total} != launch {expect}"
                );
            }
            // Cycles are f64s summed in band order; allow only the JSON
            // round-trip rounding, not any real drift.
            let cycle_sum: f64 = bands
                .iter()
                .map(|b| b.num_arg("cycles").expect("band has cycles"))
                .sum();
            let expect = launch.num_arg("cycles").expect("launch has cycles");
            assert!(
                (cycle_sum - expect).abs() <= 1e-9 * expect.abs().max(1.0),
                "launch[{i}] (threads={threads}): band cycles sum {cycle_sum} != launch {expect}"
            );
            // The launch-level hit-rate gauges must recombine from the band
            // counter sums (hits / accesses), not from averaging band rates.
            for (rate, hits, accesses) in [
                ("l1_hit_rate", "l1_hits", "l1_accesses"),
                ("tex_hit_rate", "tex_hits", "tex_line_accesses"),
                ("l2_hit_rate", "l2_hits", "l2_accesses"),
            ] {
                let h: u64 = bands.iter().map(|b| b.u64_arg(hits).unwrap()).sum();
                let a: u64 = bands.iter().map(|b| b.u64_arg(accesses).unwrap()).sum();
                let want = if a == 0 { 0.0 } else { h as f64 / a as f64 };
                let got = launch
                    .num_arg(rate)
                    .unwrap_or_else(|| panic!("launch[{i}] missing '{rate}'"));
                assert!(
                    (got - want).abs() <= 1e-12,
                    "launch[{i}]: {rate} {got} != recombined {want}"
                );
            }
        }
    }
}
