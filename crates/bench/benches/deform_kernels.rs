//! Microbenchmarks of the deformable-operator implementations: numeric
//! execution throughput (CPU) and simulator launch cost for each sampling
//! method.

use defcon_gpusim::{DeviceConfig, Gpu};
use defcon_kernels::op::{synthetic_inputs, DeformConvOp, SamplingMethod};
use defcon_kernels::DeformLayerShape;
use defcon_support::bench::Bench;
use defcon_tensor::Tensor;

fn bench_numeric_execute(bench: &mut Bench) {
    let gpu = Gpu::new(DeviceConfig::xavier_agx());
    let shape = DeformLayerShape::same3x3(16, 16, 24, 24);
    let (x, offsets) = synthetic_inputs(&shape, 3.0, 1);
    let w = Tensor::randn(&[16, 16, 3, 3], 0.0, 0.2, 2);

    let mut group = bench.group("deform_numeric_execute");
    group.sample_size(10);
    for method in [
        SamplingMethod::SoftwareBilinear,
        SamplingMethod::Tex2d,
        SamplingMethod::Tex2dPlusPlus,
    ] {
        let op = DeformConvOp {
            method,
            ..DeformConvOp::baseline(shape)
        };
        group.bench_with_input(method.name(), &op, |b, op| {
            b.iter(|| op.execute(&x, &offsets, &w, &gpu));
        });
    }
    group.finish();
}

fn bench_simulator_launch(bench: &mut Bench) {
    let gpu = Gpu::new(DeviceConfig::xavier_agx());
    let shape = DeformLayerShape::same3x3(128, 128, 69, 69);
    let (x, offsets) = synthetic_inputs(&shape, 4.0, 3);

    let mut group = bench.group("simulator_launch");
    group.sample_size(10);
    for method in [
        SamplingMethod::SoftwareBilinear,
        SamplingMethod::Tex2d,
        SamplingMethod::Tex2dPlusPlus,
    ] {
        let op = DeformConvOp {
            method,
            ..DeformConvOp::baseline(shape)
        };
        group.bench_with_input(method.name(), &op, |b, op| {
            b.iter(|| op.simulate_deform(&gpu, &x, &offsets));
        });
    }
    group.finish();
}

fn main() {
    let mut bench = Bench::from_args();
    bench_numeric_execute(&mut bench);
    bench_simulator_launch(&mut bench);
    bench.finish();
}
