//! Wall-clock benchmark — and acceptance check — for the parallel
//! simulation engine: exhaustive-policy simulation of a 550×550 deformable
//! layer (the paper's full-resolution regime, where every one of the
//! thousands of grid blocks is traced) at 1 vs 4 worker threads.
//!
//! Run with:
//!
//! ```sh
//! cargo bench -p defcon-bench --offline --bench engine_parallel
//! ```
//!
//! Beyond the usual harness timings, `main` performs a hard check: on hosts
//! with ≥ 4 CPUs, the 4-thread launch must be ≥ 2× faster than the 1-thread
//! launch (the tentpole's speedup bar). On smaller hosts the measurement is
//! still printed, but the assertion is skipped — threads cannot beat the
//! physical core count.

use defcon_gpusim::{DeviceConfig, Gpu, SamplePolicy};
use defcon_kernels::fused::FusedTexDeformKernel;
use defcon_kernels::op::synthetic_inputs;
use defcon_kernels::{DeformLayerShape, TileConfig};
use defcon_support::bench::Bench;
use defcon_tensor::sample::OffsetTransform;
use std::time::Instant;

/// The 550×550 layer under test. 16 channels keeps a single exhaustive
/// launch in benchmark territory (seconds); the grid — ⌈550/16⌉² tiles —
/// is what exercises the banding, not the channel depth.
fn layer() -> DeformLayerShape {
    DeformLayerShape::same3x3(16, 16, 550, 550)
}

fn build_kernel<'a>(
    x: &'a defcon_tensor::Tensor,
    offsets: &'a defcon_tensor::Tensor,
    cfg: &DeviceConfig,
) -> FusedTexDeformKernel<'a> {
    let shape = layer();
    let tile = TileConfig::default16();
    let mut fused = FusedTexDeformKernel::new(
        shape,
        tile,
        x,
        offsets,
        OffsetTransform::Identity,
        23,
        cfg.max_texture_layers,
        cfg.max_texture_dim,
    )
    .expect("texture limits exceeded");
    fused.co_blocks = FusedTexDeformKernel::pick_co_blocks(&shape, tile, cfg);
    fused
}

fn gpu_with_threads(threads: usize) -> Gpu {
    Gpu::with_policy(
        DeviceConfig::xavier_agx(),
        SamplePolicy::exhaustive().with_threads(threads),
    )
}

fn bench_thread_scaling(bench: &mut Bench) {
    let (x, offsets) = synthetic_inputs(&layer(), 4.0, 0xBE);
    let cfg = DeviceConfig::xavier_agx();
    let kernel = build_kernel(&x, &offsets, &cfg);
    let mut group = bench.group("engine_parallel_550");
    group.sample_size(3);
    for threads in [1usize, 2, 4] {
        let gpu = gpu_with_threads(threads);
        group.bench_with_input(threads, &threads, |b, _| {
            b.iter(|| gpu.launch(&kernel));
        });
    }
    group.finish();
}

/// The tentpole's timed acceptance check.
fn speedup_check() {
    let (x, offsets) = synthetic_inputs(&layer(), 4.0, 0xBE);
    let cfg = DeviceConfig::xavier_agx();
    let kernel = build_kernel(&x, &offsets, &cfg);

    let time = |threads: usize| {
        let gpu = gpu_with_threads(threads);
        let start = Instant::now();
        let report = gpu.launch(&kernel);
        (start.elapsed().as_secs_f64(), report)
    };
    // One throwaway launch to warm allocator and page cache.
    let _ = time(1);
    let (t1, r1) = time(1);
    let (t4, r4) = time(4);
    let speedup = t1 / t4;
    let cycle_drift = (r4.cycles - r1.cycles).abs() / r1.cycles;
    println!(
        "engine_parallel_550 check: grid={} blocks, 1 thread {t1:.2}s, \
         4 threads {t4:.2}s, speedup {speedup:.2}x, cycle drift {:.4}%",
        r1.grid_blocks,
        cycle_drift * 100.0
    );
    assert!(
        cycle_drift <= 0.01,
        "parallel cycle estimate drifted {:.3}% (> 1% contract)",
        cycle_drift * 100.0
    );

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if cores >= 4 {
        assert!(
            speedup >= 2.0,
            "4-thread exhaustive simulation must be ≥2x faster than \
             1-thread on a {cores}-core host, measured {speedup:.2}x"
        );
    } else {
        println!(
            "engine_parallel_550 check: host has {cores} core(s) — \
             ≥2x speedup assertion requires ≥4, skipping"
        );
    }
}

fn main() {
    let mut bench = Bench::from_args();
    bench_thread_scaling(&mut bench);
    speedup_check();
    bench.finish();
}
