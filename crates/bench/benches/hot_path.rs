//! Old-vs-new benchmark for the zero-allocation trace hot path.
//!
//! Run with:
//!
//! ```sh
//! cargo bench -p defcon-bench --offline --bench hot_path
//! ```
//!
//! Measures serial (1-thread) blocks/sec on the paper's exhaustive 550×550
//! Table II layer for two kernel families — the software im2col sampling
//! kernel (the headline: scattered neighbour loads make it the hot path's
//! worst offender) and the fused texture kernel — comparing:
//!
//! * **legacy**: the full pre-optimization hot path — faithful copies of
//!   the old kernel bodies (per-instruction `Vec` collects), the allocating
//!   sort+dedup coalescer, and the old cache model (split `tags`/`stamps`
//!   arrays, `%`-based set indexing) in a bench-local [`legacy`] module;
//! * **current**: the shipped kernels on the `LaneBuf`/iterator staged path
//!   with the mask-indexed, move-to-front cache.
//!
//! Both sides run the exact per-block cadence of the serial engine (flush
//! L1 + texture cache, trace, merge counters). Two equivalence gates guard
//! the comparison: the legacy *bodies* must reproduce the shipped kernels'
//! serial reports byte-for-byte through the engine, and the legacy
//! *simulator* must produce identical counters and total exposed latency
//! over the timed grid — i.e. old and new disagree on nothing but speed.
//!
//! With `DEFCON_TINY` set (the CI smoke), a small layer runs the
//! equivalence gates only — for all three operator families at both one and
//! four engine threads. Otherwise full timings are written to
//! `BENCH_hotpath.json` at the repo root (`DEFCON_BENCH_OUT` overrides the
//! path) and the ratchets fire: the software im2col headline must show
//! ≥ 1.5× serial speedup and the fused tex2D kernel ≥ 1.4×.

use defcon_gpusim::cache::Cache;
use defcon_gpusim::report::Counters;
use defcon_gpusim::texture::LayeredTexture2d;
use defcon_gpusim::trace::{BlockTrace, TraceSink};
use defcon_gpusim::{DeviceConfig, Gpu, SamplePolicy};
use defcon_kernels::fused::FusedTexDeformKernel;
use defcon_kernels::im2col::{address_map, Im2colDeformKernel, Sampling};
use defcon_kernels::op::{synthetic_inputs, synthetic_modulation, OpFamily};
use defcon_kernels::{DeformLayerShape, TileConfig};
use defcon_support::json::{Json, ToJson};
use std::time::Instant;

// ---------------------------------------------------------------------------
// The pre-optimization memory system, kept verbatim in this bench so the old
// cost can still be measured after the library moved to the staged path.
// ---------------------------------------------------------------------------

mod legacy {
    use defcon_gpusim::coalesce::{coalesce, SECTOR_BYTES};
    use defcon_gpusim::device::{CacheGeometry, DeviceConfig};
    use defcon_gpusim::report::Counters;
    use defcon_gpusim::texture::{FilterMode, LayeredTexture2d};
    use defcon_gpusim::trace::BlockCost;

    /// The old set-associative LRU cache: two parallel arrays
    /// (`tags[set*ways+way]`, `stamps[...]`) and `line % sets` indexing on
    /// every access, power of two or not.
    pub struct LegacyCache {
        geometry: CacheGeometry,
        sets: usize,
        tags: Vec<u64>,
        stamps: Vec<u64>,
        clock: u64,
    }

    impl LegacyCache {
        pub fn new(geometry: CacheGeometry) -> Self {
            let sets = geometry.num_sets();
            LegacyCache {
                geometry,
                sets,
                tags: vec![u64::MAX; sets * geometry.ways],
                stamps: vec![0; sets * geometry.ways],
                clock: 0,
            }
        }

        pub fn line_bytes(&self) -> usize {
            self.geometry.line_bytes
        }

        /// Accesses one line; returns `true` on hit. Same LRU semantics as
        /// the shipped cache (first invalid way, else oldest stamp).
        pub fn access_line(&mut self, line: u64) -> bool {
            self.clock += 1;
            let set = (line % self.sets as u64) as usize;
            let base = set * self.geometry.ways;
            let ways = &mut self.tags[base..base + self.geometry.ways];

            if let Some(w) = ways.iter().position(|&t| t == line) {
                self.stamps[base + w] = self.clock;
                return true;
            }
            let mut victim = 0;
            let mut oldest = u64::MAX;
            for w in 0..self.geometry.ways {
                let s = self.stamps[base + w];
                if self.tags[base + w] == u64::MAX {
                    victim = w;
                    break;
                }
                if s < oldest {
                    oldest = s;
                    victim = w;
                }
            }
            self.tags[base + victim] = line;
            self.stamps[base + victim] = self.clock;
            false
        }

        pub fn flush(&mut self) {
            self.tags.fill(u64::MAX);
        }
    }

    /// The old event sink: allocating coalescer, old caches, per-fetch `Vec`
    /// in the texture path — a faithful copy of the pre-optimization
    /// accounting (same counters, same latency model).
    pub struct LegacySink<'a> {
        cfg: &'a DeviceConfig,
        l1: &'a mut LegacyCache,
        tex: &'a mut LegacyCache,
        l2: &'a mut LegacyCache,
        pub counters: Counters,
        pub cost: BlockCost,
    }

    impl<'a> LegacySink<'a> {
        pub fn new(
            cfg: &'a DeviceConfig,
            l1: &'a mut LegacyCache,
            tex: &'a mut LegacyCache,
            l2: &'a mut LegacyCache,
            warps: usize,
        ) -> Self {
            LegacySink {
                cfg,
                l1,
                tex,
                l2,
                counters: Counters::default(),
                cost: BlockCost {
                    warps,
                    ..Default::default()
                },
            }
        }

        pub fn fma(&mut self, n: u64) {
            self.counters.flops += 2 * n;
            self.cost.flop_units += n;
        }

        pub fn flop(&mut self, n: u64) {
            self.counters.flops += n;
            self.cost.flop_units += n;
        }

        pub fn alu(&mut self, n: u64) {
            self.counters.alu_ops += n;
            self.cost.alu_units += n;
        }

        pub fn global_load(&mut self, lane_addrs: &[u64]) {
            if lane_addrs.is_empty() {
                return;
            }
            let r = coalesce(lane_addrs, 4);
            self.counters.gld_requests += 1;
            self.counters.gld_transactions += r.transactions();
            self.counters.gld_requested_bytes += r.requested_bytes;
            let mut worst = 0u32;
            for &sector in &r.sectors {
                let line = sector * SECTOR_BYTES / self.l1.line_bytes() as u64;
                let lat = self.global_line_access(line);
                worst = worst.max(lat);
            }
            self.cost.lsu_sectors += r.transactions();
            self.cost.latency_cycles += worst as u64;
        }

        pub fn global_store(&mut self, lane_addrs: &[u64]) {
            if lane_addrs.is_empty() {
                return;
            }
            let r = coalesce(lane_addrs, 4);
            self.counters.gst_requests += 1;
            self.counters.gst_transactions += r.transactions();
            self.counters.gst_requested_bytes += r.requested_bytes;
            self.counters.dram_write_bytes += r.moved_bytes();
            self.cost.lsu_sectors += r.transactions();
        }

        fn global_line_access(&mut self, line: u64) -> u32 {
            self.counters.l1_accesses += 1;
            if self.l1.access_line(line) {
                self.counters.l1_hits += 1;
                return self.cfg.l1.hit_latency;
            }
            self.counters.l2_accesses += 1;
            if self.l2.access_line(line) {
                self.counters.l2_hits += 1;
                return self.cfg.l2.hit_latency;
            }
            self.counters.dram_read_bytes += SECTOR_BYTES;
            self.cfg.dram_latency
        }

        pub fn tex_fetch_warp(
            &mut self,
            tex: &LayeredTexture2d,
            layer: usize,
            coords: &[(f32, f32)],
            out: &mut Vec<f32>,
        ) {
            debug_assert!(coords.len() <= self.cfg.warp_size);
            if coords.is_empty() {
                return;
            }
            self.counters.tex_requests += 1;
            match tex.filter_mode {
                FilterMode::Linear { frac_bits } if frac_bits <= 10 => {
                    self.cost.tex_fetches_fp16 += coords.len() as u64
                }
                _ => self.cost.tex_fetches_fp32 += coords.len() as u64,
            }
            let mut worst = 0u32;
            for &(y, x) in coords {
                // The verbatim pre-optimization sampler: per-texel address
                // mode resolution, division-based quantization, per-call
                // layer stride recomputation.
                let f = tex.fetch_legacy(layer, y, x);
                out.push(f.value);
                let mut lines = [u64::MAX; 4];
                let mut n_lines = 0usize;
                for &a in &f.addresses[..f.len as usize] {
                    let line = a / self.tex.line_bytes() as u64;
                    if !lines[..n_lines].contains(&line) {
                        lines[n_lines] = line;
                        n_lines += 1;
                    }
                }
                for &line in &lines[..n_lines] {
                    self.counters.tex_line_accesses += 1;
                    let lat = if self.tex.access_line(line) {
                        self.counters.tex_hits += 1;
                        self.cfg.tex_hit_latency
                    } else {
                        self.counters.l2_accesses += 1;
                        if self.l2.access_line(line) {
                            self.counters.l2_hits += 1;
                            self.cfg.l2.hit_latency
                        } else {
                            self.counters.dram_read_bytes += self.tex.line_bytes() as u64;
                            self.cfg.dram_latency
                        }
                    };
                    worst = worst.max(lat);
                }
            }
            self.cost.latency_cycles += worst as u64;
        }
    }
}

// ---------------------------------------------------------------------------
// One legacy kernel body, two sinks: the same pre-optimization instruction
// stream drives either the old simulator (for timing) or the shipped sink's
// reference entry points (for the byte-identity gate through the engine).
// ---------------------------------------------------------------------------

trait EventSink {
    fn fma(&mut self, n: u64);
    fn flop(&mut self, n: u64);
    fn alu(&mut self, n: u64);
    fn global_load(&mut self, lane_addrs: &[u64]);
    fn global_store(&mut self, lane_addrs: &[u64]);
    fn tex_fetch_warp(
        &mut self,
        tex: &LayeredTexture2d,
        layer: usize,
        coords: &[(f32, f32)],
        out: &mut Vec<f32>,
    );
}

impl EventSink for TraceSink<'_> {
    fn fma(&mut self, n: u64) {
        TraceSink::fma(self, n)
    }
    fn flop(&mut self, n: u64) {
        TraceSink::flop(self, n)
    }
    fn alu(&mut self, n: u64) {
        TraceSink::alu(self, n)
    }
    fn global_load(&mut self, lane_addrs: &[u64]) {
        TraceSink::global_load_ref(self, lane_addrs)
    }
    fn global_store(&mut self, lane_addrs: &[u64]) {
        TraceSink::global_store_ref(self, lane_addrs)
    }
    fn tex_fetch_warp(
        &mut self,
        tex: &LayeredTexture2d,
        layer: usize,
        coords: &[(f32, f32)],
        out: &mut Vec<f32>,
    ) {
        TraceSink::tex_fetch_warp(self, tex, layer, coords, out)
    }
}

impl EventSink for legacy::LegacySink<'_> {
    fn fma(&mut self, n: u64) {
        legacy::LegacySink::fma(self, n)
    }
    fn flop(&mut self, n: u64) {
        legacy::LegacySink::flop(self, n)
    }
    fn alu(&mut self, n: u64) {
        legacy::LegacySink::alu(self, n)
    }
    fn global_load(&mut self, lane_addrs: &[u64]) {
        legacy::LegacySink::global_load(self, lane_addrs)
    }
    fn global_store(&mut self, lane_addrs: &[u64]) {
        legacy::LegacySink::global_store(self, lane_addrs)
    }
    fn tex_fetch_warp(
        &mut self,
        tex: &LayeredTexture2d,
        layer: usize,
        coords: &[(f32, f32)],
        out: &mut Vec<f32>,
    ) {
        legacy::LegacySink::tex_fetch_warp(self, tex, layer, coords, out)
    }
}

/// A legacy kernel body that can drive either sink.
trait LegacyKernel {
    fn grid_blocks(&self) -> usize;
    fn block_threads(&self) -> usize;
    fn trace_legacy(&self, block: usize, sink: &mut legacy::LegacySink);
}

/// The pre-optimization software im2col body: per-warp `Vec` collects for
/// lanes, offset addresses, the 4 neighbour slots and the column store.
struct LegacyIm2colSw<'a>(&'a Im2colDeformKernel<'a>);

impl LegacyIm2colSw<'_> {
    fn sample_coord(&self, ni: usize, g: usize, tap: usize, oy: usize, ox: usize) -> (f32, f32) {
        let k = self.0;
        let s = k.shape;
        let kk = s.kernel * s.kernel;
        let (ki, kj) = (tap / s.kernel, tap % s.kernel);
        let ch = 2 * (g * kk + tap);
        let dy = k.offset_transform.apply(k.offsets.at4(ni, ch, oy, ox));
        let dx = k.offset_transform.apply(k.offsets.at4(ni, ch + 1, oy, ox));
        let py = (oy * s.stride + ki) as f32 - s.pad as f32 + dy;
        let px = (ox * s.stride + kj) as f32 - s.pad as f32 + dx;
        (py, px)
    }

    fn trace_into<S: EventSink>(&self, block: usize, sink: &mut S) {
        let k = self.0;
        let s = k.shape;
        let (oh, ow) = s.out_hw();
        let (ty_count, tx_count) = (oh.div_ceil(k.tile.h), ow.div_ceil(k.tile.w));
        let blocks_per_channel = ty_count * tx_count;
        let ci = (block / blocks_per_channel) % s.c_in;
        let ni = block / (s.c_in * blocks_per_channel);
        let t = block % blocks_per_channel;
        let (tile_y, tile_x) = (t / tx_count, t % tx_count);
        let g = ci / (s.c_in / s.deform_groups);
        let kk = s.kernel * s.kernel;

        let offset_addr = |ni: usize, ch: usize, oy: usize, ox: usize| {
            let oc = s.offset_channels();
            address_map::OFFSETS + 4 * (((ni * oc + ch) * oh + oy) * ow + ox) as u64
        };
        let input_addr = |ni: usize, ci: usize, y: usize, x: usize| {
            address_map::INPUT + 4 * (((ni * s.c_in + ci) * s.h + y) * s.w + x) as u64
        };
        let col_addr = |ni: usize, row: usize, col: usize| {
            let rows = s.c_in * kk;
            address_map::COLUMNS + 4 * ((ni * rows + row) * oh * ow + col) as u64
        };
        let modulation_addr = |ni: usize, ch: usize, oy: usize, ox: usize| {
            let mc = s.deform_groups * kk;
            address_map::MODULATION + 4 * (((ni * mc + ch) * oh + oy) * ow + ox) as u64
        };

        let threads = k.tile.threads();
        for warp_start in (0..threads).step_by(32) {
            let lanes: Vec<(usize, usize)> = (warp_start..(warp_start + 32).min(threads))
                .filter_map(|tid| {
                    let oy = tile_y * k.tile.h + tid / k.tile.w;
                    let ox = tile_x * k.tile.w + tid % k.tile.w;
                    (oy < oh && ox < ow).then_some((oy, ox))
                })
                .collect();
            if lanes.is_empty() {
                continue;
            }
            let nl = lanes.len() as u64;

            for tap in 0..kk {
                let ch = 2 * (g * kk + tap);
                let dy_addrs: Vec<u64> = lanes
                    .iter()
                    .map(|&(oy, ox)| offset_addr(ni, ch, oy, ox))
                    .collect();
                let dx_addrs: Vec<u64> = lanes
                    .iter()
                    .map(|&(oy, ox)| offset_addr(ni, ch + 1, oy, ox))
                    .collect();
                sink.global_load(&dy_addrs);
                sink.global_load(&dx_addrs);
                sink.alu(4 * nl);
                sink.flop(4 * nl);

                // Family-specific modulation traffic, per-warp `Vec`
                // collects as everywhere else in the old body; same event
                // stream as the shipped kernel's family arms.
                match k.family {
                    OpFamily::DcnV1 => {}
                    OpFamily::DcnV2 => {
                        let m_addrs: Vec<u64> = lanes
                            .iter()
                            .map(|&(oy, ox)| modulation_addr(ni, g * kk + tap, oy, ox))
                            .collect();
                        sink.global_load(&m_addrs);
                        sink.flop(nl);
                    }
                    OpFamily::DcnV3 => {
                        let m_addrs: Vec<u64> = lanes
                            .iter()
                            .map(|&(oy, ox)| modulation_addr(ni, g * kk + tap, oy, ox))
                            .collect();
                        sink.global_load(&m_addrs);
                        sink.flop(3 * nl);
                        sink.alu(nl);
                    }
                }

                let mut neigh: [Vec<u64>; 4] = [
                    Vec::with_capacity(32),
                    Vec::with_capacity(32),
                    Vec::with_capacity(32),
                    Vec::with_capacity(32),
                ];
                for &(oy, ox) in &lanes {
                    let (py, px) = self.sample_coord(ni, g, tap, oy, ox);
                    let (y0, x0) = (py.floor() as isize, px.floor() as isize);
                    for (slot, (qy, qx)) in [(y0, x0), (y0, x0 + 1), (y0 + 1, x0), (y0 + 1, x0 + 1)]
                        .iter()
                        .enumerate()
                    {
                        if *qy >= 0 && *qy < s.h as isize && *qx >= 0 && *qx < s.w as isize {
                            neigh[slot].push(input_addr(ni, ci, *qy as usize, *qx as usize));
                        }
                    }
                }
                for addrs in &neigh {
                    sink.global_load(addrs);
                }
                sink.flop(8 * nl);
                sink.alu(6 * nl);

                let row = ci * kk + tap;
                let col_addrs: Vec<u64> = lanes
                    .iter()
                    .map(|&(oy, ox)| col_addr(ni, row, oy * ow + ox))
                    .collect();
                sink.global_store(&col_addrs);
            }
        }
    }
}

impl BlockTrace for LegacyIm2colSw<'_> {
    fn grid_blocks(&self) -> usize {
        self.0.grid_blocks()
    }

    fn block_threads(&self) -> usize {
        self.0.block_threads()
    }

    fn label(&self) -> String {
        self.0.label()
    }

    fn trace_block(&self, block: usize, sink: &mut TraceSink) {
        self.trace_into(block, sink);
    }
}

impl LegacyKernel for LegacyIm2colSw<'_> {
    fn grid_blocks(&self) -> usize {
        self.0.grid_blocks()
    }

    fn block_threads(&self) -> usize {
        self.0.block_threads()
    }

    fn trace_legacy(&self, block: usize, sink: &mut legacy::LegacySink) {
        self.trace_into(block, sink);
    }
}

/// The pre-optimization fused texture body: `Vec` collects for lanes and
/// addresses, the sampling coordinates recomputed for **every channel** of
/// the deform group (the hoist the shipped kernel applies), and a per-fetch
/// output `Vec` in the texture path.
struct LegacyFused<'a>(&'a FusedTexDeformKernel<'a>);

impl LegacyFused<'_> {
    fn trace_into<S: EventSink>(&self, block: usize, sink: &mut S) {
        let k = self.0;
        let s = k.shape;
        let (oh, ow) = s.out_hw();
        let (ty_count, tx_count) = (oh.div_ceil(k.tile.h), ow.div_ceil(k.tile.w));
        let per_n = k.co_blocks * ty_count * tx_count;
        let ni = block / per_n;
        let rem = block % per_n;
        let co_blk = rem / (ty_count * tx_count);
        let t = rem % (ty_count * tx_count);
        let (tile_y, tile_x) = (t / tx_count, t % tx_count);
        let kk = s.kernel * s.kernel;
        let ch_per_group = s.c_in / s.deform_groups;
        let co_per_blk = s.c_out.div_ceil(k.co_blocks);
        let co_lo = co_blk * co_per_blk;
        let co_here = co_per_blk.min(s.c_out.saturating_sub(co_lo));
        if co_here == 0 {
            return;
        }

        let offset_addr = |ni: usize, ch: usize, oy: usize, ox: usize| {
            let oc = s.offset_channels();
            address_map::OFFSETS + 4 * (((ni * oc + ch) * oh + oy) * ow + ox) as u64
        };
        let modulation_addr = |ni: usize, ch: usize, oy: usize, ox: usize| {
            let mc = s.deform_groups * kk;
            address_map::MODULATION + 4 * (((ni * mc + ch) * oh + oy) * ow + ox) as u64
        };

        let threads = k.tile.threads();
        let mut tex_out = Vec::with_capacity(32);
        for warp_start in (0..threads).step_by(32) {
            let lanes: Vec<(usize, usize)> = (warp_start..(warp_start + 32).min(threads))
                .filter_map(|tid| {
                    let oy = tile_y * k.tile.h + tid / k.tile.w;
                    let ox = tile_x * k.tile.w + tid % k.tile.w;
                    (oy < oh && ox < ow).then_some((oy, ox))
                })
                .collect();
            if lanes.is_empty() {
                continue;
            }
            let nl = lanes.len() as u64;

            for g in 0..s.deform_groups {
                for tap in 0..kk {
                    let ch = 2 * (g * kk + tap);
                    let dy_addrs: Vec<u64> = lanes
                        .iter()
                        .map(|&(oy, ox)| offset_addr(ni, ch, oy, ox))
                        .collect();
                    let dx_addrs: Vec<u64> = lanes
                        .iter()
                        .map(|&(oy, ox)| offset_addr(ni, ch + 1, oy, ox))
                        .collect();
                    sink.global_load(&dy_addrs);
                    sink.global_load(&dx_addrs);
                    sink.alu(4 * nl);
                    sink.flop(4 * nl);

                    // Family-specific modulation traffic, old-style `Vec`
                    // collects; same stream as the shipped family arms.
                    match k.family {
                        OpFamily::DcnV1 => {}
                        OpFamily::DcnV2 => {
                            let m_addrs: Vec<u64> = lanes
                                .iter()
                                .map(|&(oy, ox)| modulation_addr(ni, g * kk + tap, oy, ox))
                                .collect();
                            sink.global_load(&m_addrs);
                            sink.flop(nl);
                        }
                        OpFamily::DcnV3 => {
                            let m_addrs: Vec<u64> = lanes
                                .iter()
                                .map(|&(oy, ox)| modulation_addr(ni, g * kk + tap, oy, ox))
                                .collect();
                            sink.global_load(&m_addrs);
                            sink.flop(3 * nl);
                            sink.alu(nl);
                        }
                    }

                    let (ki, kj) = (tap / s.kernel, tap % s.kernel);
                    for ci in g * ch_per_group..(g + 1) * ch_per_group {
                        let layer = ni * s.c_in + ci;
                        let coords: Vec<(f32, f32)> = lanes
                            .iter()
                            .map(|&(oy, ox)| {
                                let dy = k.offset_transform.apply(k.offsets.at4(ni, ch, oy, ox));
                                let dx =
                                    k.offset_transform.apply(k.offsets.at4(ni, ch + 1, oy, ox));
                                let py = (oy * s.stride + ki) as f32 - s.pad as f32 + dy;
                                let px = (ox * s.stride + kj) as f32 - s.pad as f32 + dx;
                                (py, px)
                            })
                            .collect();
                        tex_out.clear();
                        sink.tex_fetch_warp(&k.texture, layer, &coords, &mut tex_out);
                        sink.fma(nl * co_here as u64);
                    }
                }
            }
        }
        let wf = s.c_in * kk * co_here;
        for w0 in (0..wf).step_by(32) {
            let lanes_w = 32.min(wf - w0);
            let addrs: Vec<u64> = (0..lanes_w)
                .map(|l| address_map::WEIGHTS + ((w0 + l) * 4) as u64)
                .collect();
            sink.global_load(&addrs);
        }
        for warp_start in (0..threads).step_by(32) {
            let lanes: Vec<(usize, usize)> = (warp_start..(warp_start + 32).min(threads))
                .filter_map(|tid| {
                    let oy = tile_y * k.tile.h + tid / k.tile.w;
                    let ox = tile_x * k.tile.w + tid % k.tile.w;
                    (oy < oh && ox < ow).then_some((oy, ox))
                })
                .collect();
            if lanes.is_empty() {
                continue;
            }
            for co in co_lo..co_lo + co_here {
                let addrs: Vec<u64> = lanes
                    .iter()
                    .map(|&(oy, ox)| {
                        address_map::OUTPUT + 4 * (((ni * s.c_out + co) * oh + oy) * ow + ox) as u64
                    })
                    .collect();
                sink.global_store(&addrs);
            }
        }
    }
}

impl BlockTrace for LegacyFused<'_> {
    fn grid_blocks(&self) -> usize {
        self.0.grid_blocks()
    }

    fn block_threads(&self) -> usize {
        self.0.block_threads()
    }

    fn label(&self) -> String {
        self.0.label()
    }

    fn trace_block(&self, block: usize, sink: &mut TraceSink) {
        self.trace_into(block, sink);
    }
}

impl LegacyKernel for LegacyFused<'_> {
    fn grid_blocks(&self) -> usize {
        self.0.grid_blocks()
    }

    fn block_threads(&self) -> usize {
        self.0.block_threads()
    }

    fn trace_legacy(&self, block: usize, sink: &mut legacy::LegacySink) {
        self.trace_into(block, sink);
    }
}

// ---------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------

struct Comparison {
    name: String,
    grid_blocks: usize,
    old_blocks_per_sec: f64,
    new_blocks_per_sec: f64,
}

impl Comparison {
    fn speedup(&self) -> f64 {
        self.new_blocks_per_sec / self.old_blocks_per_sec
    }
}

/// Byte-identity of the engine reports: the legacy body + reference
/// coalescer must tell exactly the same story as the staged path, both on
/// the serial engine and through the banded parallel partition.
fn check_equivalence(name: &str, legacy_body: &dyn BlockTrace, current: &dyn BlockTrace) {
    for threads in [1usize, 4] {
        let gpu = Gpu::with_policy(
            DeviceConfig::xavier_agx(),
            SamplePolicy::exhaustive().with_threads(threads),
        );
        let old = gpu.launch(legacy_body).to_json().to_string();
        let new = gpu.launch(current).to_json().to_string();
        assert_eq!(
            old, new,
            "{name}: legacy and staged paths diverged at {threads} threads"
        );
        println!(
            "hot_path: {name} equivalence OK at {threads} threads ({} bytes)",
            new.len()
        );
    }
}

/// What a timed pass observed: launch-wide counters plus the summed exposed
/// latency. Old and new must agree on this exactly — they may differ only
/// in how fast they computed it.
fn fingerprint(counters: &Counters, latency_cycles: u64) -> String {
    format!("{} latency_cycles={latency_cycles}", counters.to_json())
}

/// Serial blocks/sec of the shipped staged path, best of `reps` full-grid
/// passes with the engine's per-block cadence (flush L1 + texture cache,
/// fresh sink, merge counters).
fn time_current(kernel: &dyn BlockTrace, cfg: &DeviceConfig, reps: usize) -> (f64, String) {
    let warps = kernel.block_threads().div_ceil(cfg.warp_size);
    let grid = kernel.grid_blocks();
    let mut best = f64::INFINITY;
    let mut fp = String::new();
    for _ in 0..reps {
        let mut l1 = Cache::new(cfg.l1);
        let mut texc = Cache::new(cfg.tex_cache);
        let mut l2 = Cache::new(cfg.l2);
        let mut counters = Counters::default();
        let mut latency = 0u64;
        let start = Instant::now();
        for b in 0..grid {
            l1.flush();
            texc.flush();
            let mut sink = TraceSink::new(cfg, &mut l1, &mut texc, &mut l2, warps);
            kernel.trace_block(b, &mut sink);
            latency += sink.cost.latency_cycles;
            counters.merge(&sink.counters);
        }
        best = best.min(start.elapsed().as_secs_f64());
        fp = fingerprint(&counters, latency);
    }
    (grid as f64 / best, fp)
}

/// Serial blocks/sec of the pre-optimization path (old kernel body, old
/// coalescer, old caches), same cadence as [`time_current`].
fn time_legacy<K: LegacyKernel + ?Sized>(
    kernel: &K,
    cfg: &DeviceConfig,
    reps: usize,
) -> (f64, String) {
    let warps = kernel.block_threads().div_ceil(cfg.warp_size);
    let grid = kernel.grid_blocks();
    let mut best = f64::INFINITY;
    let mut fp = String::new();
    for _ in 0..reps {
        let mut l1 = legacy::LegacyCache::new(cfg.l1);
        let mut texc = legacy::LegacyCache::new(cfg.tex_cache);
        let mut l2 = legacy::LegacyCache::new(cfg.l2);
        let mut counters = Counters::default();
        let mut latency = 0u64;
        let start = Instant::now();
        for b in 0..grid {
            l1.flush();
            texc.flush();
            let mut sink = legacy::LegacySink::new(cfg, &mut l1, &mut texc, &mut l2, warps);
            kernel.trace_legacy(b, &mut sink);
            latency += sink.cost.latency_cycles;
            counters.merge(&sink.counters);
        }
        best = best.min(start.elapsed().as_secs_f64());
        fp = fingerprint(&counters, latency);
    }
    (grid as f64 / best, fp)
}

fn compare<K: LegacyKernel + BlockTrace>(
    name: String,
    legacy_kernel: &K,
    current: &dyn BlockTrace,
    cfg: &DeviceConfig,
    reps: usize,
) -> Comparison {
    // Interleave old/new passes (rather than all-old-then-all-new) so that
    // slow machine-load drift over the run hits both sides alike instead
    // of biasing whichever side ran in the slower window.
    let (mut old, mut new) = (0f64, 0f64);
    let (mut old_fp, mut new_fp) = (String::new(), String::new());
    for _ in 0..reps {
        let (o, fp) = time_legacy(legacy_kernel, cfg, 1);
        old = old.max(o);
        old_fp = fp;
        let (n, fp) = time_current(current, cfg, 1);
        new = new.max(n);
        new_fp = fp;
    }
    assert_eq!(
        old_fp, new_fp,
        "{name}: legacy simulator diverged from the shipped one"
    );
    let c = Comparison {
        name,
        grid_blocks: current.grid_blocks(),
        old_blocks_per_sec: old,
        new_blocks_per_sec: new,
    };
    println!(
        "hot_path: {} ({} blocks): old {:.0} blocks/s, new {:.0} blocks/s, speedup {:.2}x",
        c.name,
        c.grid_blocks,
        c.old_blocks_per_sec,
        c.new_blocks_per_sec,
        c.speedup()
    );
    c
}

fn main() {
    let tiny = defcon_bench::tiny_mode();
    let shape = if tiny {
        DeformLayerShape::same3x3(4, 4, 40, 40)
    } else {
        DeformLayerShape::same3x3(16, 16, 550, 550)
    };
    let cfg = DeviceConfig::xavier_agx();
    let (x, offsets) = synthetic_inputs(&shape, 4.0, 0xA11C);

    // Every family now has a legacy twin (the family arms were added to the
    // bench-local bodies in the same un-hoisted style as the rest), so all
    // three run the full old-vs-new pipeline: engine byte identity at 1 and
    // 4 threads, fingerprint identity, and (full mode) timed comparisons.
    let mut results: Vec<Comparison> = Vec::new();
    for family in OpFamily::all() {
        let modulation = synthetic_modulation(&shape, family, 0xA11C);
        let im2col = Im2colDeformKernel::new_family(
            shape,
            TileConfig::default16(),
            &x,
            &offsets,
            defcon_tensor::sample::OffsetTransform::Identity,
            Sampling::Software,
            cfg.max_texture_layers,
            cfg.max_texture_dim,
            family,
            modulation.as_ref(),
        )
        .expect("texture limits exceeded");
        let mut fused = FusedTexDeformKernel::new_family(
            shape,
            TileConfig::default16(),
            &x,
            &offsets,
            defcon_tensor::sample::OffsetTransform::Identity,
            23,
            cfg.max_texture_layers,
            cfg.max_texture_dim,
            family,
            modulation.as_ref(),
        )
        .expect("texture limits exceeded");
        fused.co_blocks =
            FusedTexDeformKernel::pick_co_blocks(&shape, TileConfig::default16(), &cfg);
        let legacy_im2col = LegacyIm2colSw(&im2col);
        let legacy_fused = LegacyFused(&fused);
        let im2col_name = format!("deform_im2col_sw{}", family.label_suffix());
        let fused_name = format!("deform_fused_tex2d{}", family.label_suffix());

        // Gate 1 (both modes): engine-level byte identity of the reports
        // at 1 and 4 threads.
        check_equivalence(&im2col_name, &legacy_im2col, &im2col);
        check_equivalence(&fused_name, &legacy_fused, &fused);
        if tiny {
            // Gate 2 on the tiny layer: the bench-local legacy simulator
            // must match the shipped one exactly (counters + latency),
            // without the cost of full timing runs.
            let (_, old_fp) = time_legacy(&legacy_im2col, &cfg, 1);
            let (_, new_fp) = time_current(&im2col, &cfg, 1);
            assert_eq!(old_fp, new_fp, "legacy simulator diverged ({im2col_name})");
            let (_, old_fp) = time_legacy(&legacy_fused, &cfg, 1);
            let (_, new_fp) = time_current(&fused, &cfg, 1);
            assert_eq!(old_fp, new_fp, "legacy simulator diverged ({fused_name})");
        } else {
            // Gate 2 runs inside `compare` on the full layer (the timed
            // passes already observe the launch-wide counters).
            results.push(compare(im2col_name, &legacy_im2col, &im2col, &cfg, 2));
            results.push(compare(fused_name, &legacy_fused, &fused, &cfg, 2));
        }
    }
    if tiny {
        println!("hot_path: DEFCON_TINY set — equivalence smoke only, no timings");
        return;
    }

    let out_path =
        defcon_support::env::or_die(defcon_support::env::path(defcon_support::env::BENCH_OUT))
            .unwrap_or_else(|| {
                std::path::PathBuf::from(concat!(
                    env!("CARGO_MANIFEST_DIR"),
                    "/../../BENCH_hotpath.json"
                ))
            });
    let kernels: Vec<(String, Json)> = results
        .iter()
        .map(|c| {
            (
                c.name.clone(),
                Json::obj(vec![
                    ("grid_blocks", Json::from(c.grid_blocks)),
                    ("old_blocks_per_sec", Json::from(c.old_blocks_per_sec)),
                    ("new_blocks_per_sec", Json::from(c.new_blocks_per_sec)),
                    ("speedup", Json::from(c.speedup())),
                ]),
            )
        })
        .collect();
    let doc = Json::obj(vec![
        ("layer", Json::str("same3x3(16,16,550,550)")),
        (
            "policy",
            Json::str("exhaustive, 1 thread (serial wall-clock)"),
        ),
        ("kernels", Json::Obj(kernels)),
    ]);
    std::fs::write(&out_path, format!("{}\n", doc)).expect("write BENCH_hotpath.json");
    println!("hot_path: wrote {}", out_path.display());

    // Ratchets: the software im2col headline keeps its 1.5× bar from the
    // original hot-path PR; the fused texture kernel — the subject of the
    // tex2D-gap work — must now clear 1.4×.
    let headline = &results[0];
    assert!(
        headline.speedup() >= 1.5,
        "headline {} speedup {:.2}x below the 1.5x bar",
        headline.name,
        headline.speedup()
    );
    let fused_v1 = &results[1];
    assert!(
        fused_v1.speedup() >= 1.4,
        "{} speedup {:.2}x below the 1.4x bar",
        fused_v1.name,
        fused_v1.speedup()
    );
}
