//! CPU GEMM throughput — the numeric workhorse behind every convolution in
//! the workspace.

use defcon_support::bench::Bench;
use defcon_tensor::gemm::gemm;

fn bench_gemm(bench: &mut Bench) {
    let mut group = bench.group("gemm");
    group.sample_size(10);
    for &n in &[64usize, 128, 256] {
        let a: Vec<f32> = (0..n * n).map(|i| (i % 13) as f32).collect();
        let b: Vec<f32> = (0..n * n).map(|i| (i % 7) as f32).collect();
        group.bench_with_input(n, &n, |bench, &n| {
            let mut out = vec![0.0f32; n * n];
            bench.iter(|| gemm(&a, &b, &mut out, n, n, n));
        });
    }
    group.finish();
}

fn bench_im2col_conv(bench: &mut Bench) {
    use defcon_tensor::conv::{conv2d, Conv2dParams};
    use defcon_tensor::Tensor;
    let x = Tensor::randn(&[1, 32, 32, 32], 0.0, 1.0, 1);
    let w = Tensor::randn(&[32, 32, 3, 3], 0.0, 0.1, 2);
    let p = Conv2dParams::same(3);
    let mut group = bench.group("conv2d_im2col");
    group.sample_size(10);
    group.bench_function("32ch_32x32", |b| b.iter(|| conv2d(&x, &w, None, &p)));
    group.finish();
}

fn main() {
    let mut bench = Bench::from_args();
    bench_gemm(&mut bench);
    bench_im2col_conv(&mut bench);
    bench.finish();
}
