//! Serving-throughput benchmark: drives a seeded randomized request
//! stream through `core::serve` at saturation and writes
//! `BENCH_serving.json` with blocks/sec plus p50/p99 request latency.
//!
//! Three passes gate correctness before any timing is reported:
//! a cold pass (fresh server), a warm pass (same server — every request
//! must be a cache hit), and a second cold pass on a fresh server. All
//! three must produce the same sorted-response digest, i.e. cache hits
//! and re-simulations are byte-identical and the whole pipeline is
//! deterministic. Wall-clock comparisons are hardware-gated (≥ 4 cores).
//!
//! `DEFCON_TINY=1` shrinks the stream; `DEFCON_BENCH_OUT=<path>` redirects
//! the JSON report (CI uses this to `cmp` two runs with timing stripped).
//! Under `DEFCON_TINY` without `DEFCON_BENCH_OUT`, the committed
//! `BENCH_serving.json` is left untouched.

use defcon_core::serve::{
    fnv1a64, percentile_ns, RequestPolicy, ServeConfig, ServeDevice, SimRequest, SimServer,
};
use defcon_kernels::backend::BackendKind;
use defcon_kernels::op::{OpFamily, SamplingMethod};
use defcon_kernels::DeformLayerShape;
use defcon_support::env;
use defcon_support::json::Json;
use defcon_support::rng::{Rng, SeedableRng, StdRng};
use std::time::Instant;

fn stream(n: usize, shapes: &[DeformLayerShape], seed: u64) -> Vec<SimRequest> {
    let mut rng = StdRng::seed_from_u64(seed);
    let devices = ServeDevice::all();
    let families = SamplingMethod::ladder();
    let ops = OpFamily::all();
    (0..n)
        .map(|_| SimRequest {
            device: devices[rng.gen_range(0..devices.len())],
            layer: shapes[rng.gen_range(0..shapes.len())],
            kernel_family: families[rng.gen_range(0..families.len())],
            op_family: ops[rng.gen_range(0..ops.len())],
            backend: BackendKind::Gpusim,
            policy: RequestPolicy {
                max_blocks: 32,
                ..RequestPolicy::default()
            },
        })
        .collect()
}

struct Pass {
    elapsed_s: f64,
    latencies_ns: Vec<u64>,
    digest: u64,
    grid_blocks: u64,
    hits: u64,
    misses: u64,
}

fn run_pass(server: &mut SimServer, reqs: &[SimRequest]) -> Pass {
    let (h0, m0) = (server.cache().hits(), server.cache().misses());
    let t0 = Instant::now();
    let responses = server.serve(reqs);
    let elapsed_s = t0.elapsed().as_secs_f64();
    assert_eq!(responses.len(), reqs.len(), "every request is answered");
    assert!(
        responses.iter().all(|r| r.error.is_none()),
        "no request may fail in this stream"
    );
    let mut contents: Vec<String> = responses.iter().map(|r| r.content_string()).collect();
    contents.sort();
    let digest = fnv1a64(contents.join("\n").as_bytes());
    let grid_blocks = responses
        .iter()
        .flat_map(|r| r.reports.iter())
        .map(|k| k.grid_blocks as u64)
        .sum();
    let mut latencies_ns: Vec<u64> = responses.iter().map(|r| r.latency_ns).collect();
    latencies_ns.sort_unstable();
    Pass {
        elapsed_s,
        latencies_ns,
        digest,
        grid_blocks,
        hits: server.cache().hits() - h0,
        misses: server.cache().misses() - m0,
    }
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

fn main() {
    let tiny = defcon_bench::tiny_mode();
    let shapes = if tiny {
        vec![
            DeformLayerShape::same3x3(8, 8, 12, 12),
            DeformLayerShape::same3x3(16, 16, 9, 9),
        ]
    } else {
        vec![
            DeformLayerShape::same3x3(32, 32, 35, 35),
            DeformLayerShape::same3x3(64, 64, 35, 35),
            DeformLayerShape::same3x3(64, 64, 18, 18),
            DeformLayerShape::same3x3(128, 128, 18, 18),
        ]
    };
    let n = if tiny { 32 } else { 96 };
    let reqs = stream(n, &shapes, 0x5E17E);
    // Queue capacity below the stream length keeps the server saturated:
    // admission overflows force mid-stream drains, exercising the full
    // submit → shed → drain → retry path under load.
    let cfg = ServeConfig {
        workers: defcon_gpusim::default_threads(),
        queue_capacity: 24.min(n / 2),
        cache_capacity: 64,
        ..ServeConfig::default()
    };

    let mut server = SimServer::new(cfg);
    let cold = run_pass(&mut server, &reqs);
    let warm = run_pass(&mut server, &reqs);
    let mut fresh = SimServer::new(cfg);
    let cold2 = run_pass(&mut fresh, &reqs);

    assert_eq!(
        cold.digest, cold2.digest,
        "two cold runs must produce byte-identical sorted responses"
    );
    assert_eq!(
        cold.digest, warm.digest,
        "cache hits must be byte-identical to fresh simulation"
    );
    assert_eq!(warm.misses, 0, "warm pass must be answered from cache");
    assert_eq!(warm.hits, n as u64);
    assert!(cold.misses > 0, "cold pass must simulate");

    let blocks_per_sec = cold.grid_blocks as f64 / cold.elapsed_s;
    let (p50, p99) = (
        percentile_ns(&cold.latencies_ns, 50.0),
        percentile_ns(&cold.latencies_ns, 99.0),
    );
    let (wp50, wp99) = (
        percentile_ns(&warm.latencies_ns, 50.0),
        percentile_ns(&warm.latencies_ns, 99.0),
    );
    println!(
        "serving: {} requests, {} workers, digest {:016x}",
        n, cfg.workers, cold.digest
    );
    println!(
        "  cold: {:.1} ms, {:.0} blocks/sec, p50 {:.3} ms, p99 {:.3} ms ({} misses)",
        cold.elapsed_s * 1e3,
        blocks_per_sec,
        ms(p50),
        ms(p99),
        cold.misses
    );
    println!(
        "  warm: {:.1} ms, p50 {:.3} ms, p99 {:.3} ms ({} hits)",
        warm.elapsed_s * 1e3,
        ms(wp50),
        ms(wp99),
        warm.hits
    );

    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    if cores >= 4 {
        assert!(
            warm.elapsed_s <= cold.elapsed_s,
            "an all-hit pass must not be slower than the cold pass \
             (warm {:.1} ms vs cold {:.1} ms)",
            warm.elapsed_s * 1e3,
            cold.elapsed_s * 1e3
        );
    } else {
        println!("  ({cores} core(s) — wall-clock assertions skipped, hardware-gated)");
    }

    // "report" holds only deterministic fields; "timing" comes last so CI
    // can strip it with a single sed before comparing two runs.
    let doc = Json::obj(vec![
        ("bench", Json::str("serving")),
        ("mode", Json::str(if tiny { "tiny" } else { "full" })),
        ("requests", Json::from(n)),
        ("queue_capacity", Json::from(cfg.queue_capacity)),
        ("cache_capacity", Json::from(cfg.cache_capacity)),
        (
            "report",
            Json::obj(vec![
                ("digest", Json::str(format!("{:016x}", cold.digest))),
                ("grid_blocks", Json::from(cold.grid_blocks)),
                ("cold_hits", Json::from(cold.hits)),
                ("cold_misses", Json::from(cold.misses)),
                ("warm_hits", Json::from(warm.hits)),
                ("warm_misses", Json::from(warm.misses)),
            ]),
        ),
        (
            "timing",
            Json::obj(vec![
                ("workers", Json::from(cfg.workers)),
                ("cold_elapsed_ms", Json::from(cold.elapsed_s * 1e3)),
                ("warm_elapsed_ms", Json::from(warm.elapsed_s * 1e3)),
                ("blocks_per_sec", Json::from(blocks_per_sec)),
                ("p50_ms", Json::from(ms(p50))),
                ("p99_ms", Json::from(ms(p99))),
                ("warm_p50_ms", Json::from(ms(wp50))),
                ("warm_p99_ms", Json::from(ms(wp99))),
            ]),
        ),
    ]);
    let override_path = env::or_die(env::path(env::BENCH_OUT));
    let out_path = match override_path {
        Some(p) => p,
        None if tiny => {
            println!("  (tiny mode without DEFCON_BENCH_OUT — BENCH_serving.json not rewritten)");
            return;
        }
        None => std::path::PathBuf::from(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_serving.json"
        )),
    };
    match std::fs::write(&out_path, format!("{doc}\n")) {
        Ok(()) => println!("  wrote {}", out_path.display()),
        Err(e) => {
            eprintln!("serving bench: cannot write {}: {e}", out_path.display());
            std::process::exit(1);
        }
    }
}
