//! Texture-path microbenchmarks: fetch throughput of the layered-texture
//! model and cache behaviour under 2-D vs. scattered walks.

use defcon_gpusim::cache::Cache;
use defcon_gpusim::device::DeviceConfig;
use defcon_gpusim::texture::{FilterMode, LayeredTexture2d};
use defcon_support::bench::Bench;

fn bench_fetch(bench: &mut Bench) {
    let data: Vec<f32> = (0..256 * 256).map(|v| v as f32).collect();
    let mut group = bench.group("texture_fetch");
    for (name, frac_bits) in [("fp32", 23u32), ("fp16", 8)] {
        let mut tex = LayeredTexture2d::new(data.clone(), 1, 256, 256, 0, 2048, 32768).unwrap();
        tex.filter_mode = FilterMode::Linear { frac_bits };
        group.bench_with_input(name, &tex, |b, tex| {
            b.iter(|| {
                let mut acc = 0.0f32;
                for i in 0..1000 {
                    let y = (i % 250) as f32 + 0.37;
                    let x = ((i * 7) % 250) as f32 + 0.61;
                    acc += tex.fetch(0, y, x).value;
                }
                acc
            });
        });
    }
    group.finish();
}

fn bench_cache_walks(bench: &mut Bench) {
    let cfg = DeviceConfig::xavier_agx();
    let mut group = bench.group("tex_cache_walk");
    group.bench_function("sequential_2d", |b| {
        b.iter(|| {
            let mut cache = Cache::new(cfg.tex_cache);
            for y in 0..64u64 {
                for x in 0..64u64 {
                    cache.access_line(y * 8 + x / 8);
                }
            }
            cache.hit_rate()
        });
    });
    group.bench_function("scattered", |b| {
        b.iter(|| {
            let mut cache = Cache::new(cfg.tex_cache);
            for i in 0..4096u64 {
                cache.access_line((i * 2654435761) % 100_000);
            }
            cache.hit_rate()
        });
    });
    group.finish();
}

fn main() {
    let mut bench = Bench::from_args();
    bench_fetch(&mut bench);
    bench_cache_walks(&mut bench);
    bench.finish();
}
