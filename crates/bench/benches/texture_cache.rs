//! Texture-path microbenchmarks: fetch throughput of the layered-texture
//! model and cache behaviour under 2-D vs. scattered walks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use defcon_gpusim::cache::Cache;
use defcon_gpusim::device::DeviceConfig;
use defcon_gpusim::texture::{FilterMode, LayeredTexture2d};

fn bench_fetch(c: &mut Criterion) {
    let data: Vec<f32> = (0..256 * 256).map(|v| v as f32).collect();
    let mut group = c.benchmark_group("texture_fetch");
    for (name, frac_bits) in [("fp32", 23u32), ("fp16", 8)] {
        let mut tex = LayeredTexture2d::new(data.clone(), 1, 256, 256, 0, 2048, 32768).unwrap();
        tex.filter_mode = FilterMode::Linear { frac_bits };
        group.bench_with_input(BenchmarkId::from_parameter(name), &tex, |b, tex| {
            b.iter(|| {
                let mut acc = 0.0f32;
                for i in 0..1000 {
                    let y = (i % 250) as f32 + 0.37;
                    let x = ((i * 7) % 250) as f32 + 0.61;
                    acc += tex.fetch(0, y, x).value;
                }
                acc
            });
        });
    }
    group.finish();
}

fn bench_cache_walks(c: &mut Criterion) {
    let cfg = DeviceConfig::xavier_agx();
    let mut group = c.benchmark_group("tex_cache_walk");
    group.bench_function("sequential_2d", |b| {
        b.iter(|| {
            let mut cache = Cache::new(cfg.tex_cache);
            for y in 0..64u64 {
                for x in 0..64u64 {
                    cache.access_line(y * 8 + x / 8);
                }
            }
            cache.hit_rate()
        });
    });
    group.bench_function("scattered", |b| {
        b.iter(|| {
            let mut cache = Cache::new(cfg.tex_cache);
            for i in 0..4096u64 {
                cache.access_line((i * 2654435761) % 100_000);
            }
            cache.hit_rate()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_fetch, bench_cache_walks);
criterion_main!(benches);
