//! Ablation benchmarks over the design choices DESIGN.md calls out:
//! offset spread (what bounding buys at the memory system), texture-cache
//! size, block-sampling rate of the engine — plus the **operator-family
//! ablation** (the repo's Table V analogue): DCNv1 vs DCNv2's modulation
//! mask vs DCNv3's softmax-sparse aggregation on the deformed-shapes set,
//! reporting per-family texture-path fidelity (max/mean abs error of
//! tex2D and tex2D++ against the family's software reference) and
//! simulated latency per sampling path.
//!
//! The family ablation is fully deterministic and golden-pinned: at
//! `DEFCON_THREADS=1` its JSON report must match
//! `crates/bench/tests/golden/ablation_table5.json` byte for byte
//! (re-bless with `DEFCON_BLESS=1`); at other thread counts the semantic
//! invariants (family latency ordering, fidelity bounds, the
//! v2-neutral≡v1 and v3-neutral≡uniform reduction digests) still hold.
//! `DEFCON_BENCH_OUT=<path>` additionally writes the report there — CI
//! uses it to `cmp` two runs. `DEFCON_TINY=1` skips the wall-clock
//! groups and runs only the golden-pinned ablation.

use defcon_core::serve::fnv1a64;
use defcon_gpusim::{DeviceConfig, Gpu, SamplePolicy};
use defcon_kernels::op::{
    synthetic_inputs, synthetic_modulation, DeformConvOp, OpFamily, SamplingMethod,
};
use defcon_kernels::DeformLayerShape;
use defcon_models::dataset::{batch_images, DeformedShapesConfig};
use defcon_support::bench::Bench;
use defcon_support::env;
use defcon_support::json::Json;
use defcon_tensor::sample::{
    deform_conv2d_ref, deform_conv2d_v2_ref, deform_conv2d_v3_ref, OffsetTransform,
};
use defcon_tensor::Tensor;

/// How much the *spread* of learned offsets (which bounding caps) changes
/// simulated time — the paper finds bounding is roughly speed-neutral on
/// GPUs, unlike on FPGA accelerators.
fn bench_offset_spread(bench: &mut Bench) {
    let gpu = Gpu::new(DeviceConfig::xavier_agx());
    let shape = DeformLayerShape::same3x3(64, 64, 35, 35);
    let mut group = bench.group("offset_spread_sim");
    group.sample_size(10);
    for spread in [1.0f32, 4.0, 12.0] {
        let (x, offsets) = synthetic_inputs(&shape, spread, 5);
        let op = DeformConvOp {
            method: SamplingMethod::Tex2d,
            offset_transform: OffsetTransform::Identity,
            ..DeformConvOp::baseline(shape)
        };
        group.bench_with_input(spread as u32, &op, |b, op| {
            b.iter(|| op.simulate_deform(&gpu, &x, &offsets));
        });
    }
    group.finish();
}

/// Simulation cost as a function of block-sampling budget (accuracy/cost
/// trade of the engine itself).
fn bench_sample_policy(bench: &mut Bench) {
    let shape = DeformLayerShape::same3x3(128, 128, 69, 69);
    let (x, offsets) = synthetic_inputs(&shape, 4.0, 6);
    let mut group = bench.group("engine_sampling");
    group.sample_size(10);
    for budget in [24usize, 96, 384] {
        let gpu = Gpu::with_policy(
            DeviceConfig::xavier_agx(),
            SamplePolicy {
                max_blocks: budget,
                ..SamplePolicy::default()
            },
        );
        let op = DeformConvOp {
            method: SamplingMethod::Tex2d,
            ..DeformConvOp::baseline(shape)
        };
        group.bench_with_input(budget, &budget, |b, _| {
            b.iter(|| op.simulate_deform(&gpu, &x, &offsets));
        });
    }
    group.finish();
}

// ---------------------------------------------------------------------------
// Operator-family ablation (Table V analogue)
// ---------------------------------------------------------------------------

/// FNV-1a over the raw little-endian f32 bytes of a tensor — the byte-level
/// anchor the golden pins per family and path.
fn tensor_digest(t: &Tensor) -> u64 {
    let mut bytes = Vec::with_capacity(t.data().len() * 4);
    for v in t.data() {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    fnv1a64(&bytes)
}

fn hex(d: u64) -> Json {
    Json::str(format!("{d:016x}"))
}

/// `(max, mean)` absolute error of `got` against `want`, accumulated in
/// f64 in index order so the result is bitwise reproducible.
fn abs_err(got: &Tensor, want: &Tensor) -> (f64, f64) {
    assert_eq!(got.data().len(), want.data().len());
    let mut max = 0.0f64;
    let mut sum = 0.0f64;
    for (g, w) in got.data().iter().zip(want.data()) {
        let e = (*g as f64 - *w as f64).abs();
        max = max.max(e);
        sum += e;
    }
    (max, sum / got.data().len() as f64)
}

/// One family row of the ablation: texture-path fidelity against the
/// family's software reference on the deformed-shapes batch, output
/// digests for the reduction identities, and simulated latency per path.
fn family_row(
    gpu: &Gpu,
    shape: DeformLayerShape,
    family: OpFamily,
    x: &Tensor,
    offsets: &Tensor,
    w: &Tensor,
) -> (Json, [f64; 3], u64, u64) {
    let p = shape.deform_params();
    let modulation = synthetic_modulation(&shape, family, 0xAB1A);
    let reference = match family {
        OpFamily::DcnV1 => deform_conv2d_ref(x, offsets, w, None, &p, OffsetTransform::Identity),
        OpFamily::DcnV2 => deform_conv2d_v2_ref(
            x,
            offsets,
            modulation.as_ref().expect("v2 mask"),
            w,
            None,
            &p,
            OffsetTransform::Identity,
        ),
        OpFamily::DcnV3 => deform_conv2d_v3_ref(
            x,
            offsets,
            modulation.as_ref().expect("v3 logits"),
            w,
            None,
            &p,
            OffsetTransform::Identity,
        ),
    };
    let op = |method: SamplingMethod, m: Option<Tensor>| DeformConvOp {
        family,
        method,
        modulation: m,
        ..DeformConvOp::baseline(shape)
    };

    let sw = op(SamplingMethod::SoftwareBilinear, modulation.clone()).execute(x, offsets, w, gpu);
    let t2 = op(SamplingMethod::Tex2d, modulation.clone()).execute(x, offsets, w, gpu);
    let tpp = op(SamplingMethod::Tex2dPlusPlus, modulation.clone()).execute(x, offsets, w, gpu);
    let (t2_max, t2_mean) = abs_err(&t2, &sw);
    let (tpp_max, tpp_mean) = abs_err(&tpp, &sw);
    // Fidelity bounds: tex2D carries fp32 filter fractions, tex2D++ the
    // documented 8-bit quantization. Modulation never widens the error
    // (masks are ≤ 1, softmax weights sum to 1).
    assert!(t2_max < 1e-3, "{}: tex2D drifted {t2_max}", family.name());
    assert!(
        tpp_max < 0.1,
        "{}: tex2D++ drifted {tpp_max}",
        family.name()
    );

    // The neutral (modulation-free) output backs the reduction identities
    // pinned below; digest over the software path.
    let neutral = op(SamplingMethod::SoftwareBilinear, None).execute(x, offsets, w, gpu);

    let mut latency = [0.0f64; 3];
    let mut latency_fields: Vec<(&str, Json)> = Vec::new();
    for (i, method) in SamplingMethod::ladder().into_iter().enumerate() {
        let (ms, _) = op(method, modulation.clone()).simulate_total(gpu, x, offsets);
        latency[i] = ms;
        latency_fields.push((method.name(), Json::from(ms)));
    }

    let row = Json::obj(vec![
        ("reference_digest", hex(tensor_digest(&reference))),
        ("software_digest", hex(tensor_digest(&sw))),
        ("neutral_digest", hex(tensor_digest(&neutral))),
        ("tex2d_max_abs_err", Json::from(t2_max)),
        ("tex2d_mean_abs_err", Json::from(t2_mean)),
        ("tex2dpp_max_abs_err", Json::from(tpp_max)),
        ("tex2dpp_mean_abs_err", Json::from(tpp_mean)),
        ("latency_ms", Json::obj(latency_fields)),
    ]);
    (row, latency, tensor_digest(&sw), tensor_digest(&neutral))
}

/// Builds the deterministic Table V analogue report and asserts its
/// semantic invariants (they hold at every thread count; the byte-level
/// golden is pinned at `DEFCON_THREADS=1` only).
fn table5_family_ablation() -> Json {
    let gpu = Gpu::new(DeviceConfig::xavier_agx());
    // Four deformed-shapes images (max deformation — the set the paper's
    // accuracy tables stress), batched into one grayscale input.
    let dataset = DeformedShapesConfig {
        size: 32,
        deformation: 1.0,
        ..Default::default()
    };
    let samples = dataset.generate(4, 0xAB1A);
    let x = batch_images(&samples);
    let shape = DeformLayerShape {
        n: 4,
        c_in: 1,
        c_out: 8,
        h: 32,
        w: 32,
        kernel: 3,
        stride: 1,
        pad: 1,
        deform_groups: 1,
    };
    let (_, offsets) = synthetic_inputs(&shape, 4.0, 0xAB1A);
    let w = Tensor::randn(&[8, 1, 3, 3], 0.0, 0.3, 0xAB1B);

    let mut rows: Vec<(String, Json)> = Vec::new();
    let mut latencies = Vec::new();
    let mut sw_digests = Vec::new();
    let mut neutral_digests = Vec::new();
    for family in OpFamily::all() {
        let (row, lat, sw_digest, neutral) = family_row(&gpu, shape, family, &x, &offsets, &w);
        rows.push((family.name().to_string(), row));
        latencies.push(lat);
        sw_digests.push(sw_digest);
        neutral_digests.push(neutral);
    }

    // Semantic invariants, independent of thread count:
    // 1. the modulated families never get cheaper climbing v1 → v2 → v3;
    //    the v1 → v2 step is strictly slower on every path (the mask loads
    //    plus the widened predictor always cost), while v2 → v3's extra
    //    softmax arithmetic may hide entirely under memory latency on this
    //    small layer — so it is bounded below, and the *work* ordering is
    //    pinned exactly on the deform-stage flop counters instead;
    for path in 0..3 {
        assert!(
            latencies[0][path] < latencies[1][path],
            "v2 not slower than v1 on path {path}"
        );
        assert!(
            latencies[1][path] <= latencies[2][path],
            "v3 cheaper than v2 on path {path}"
        );
    }
    let deform_flops = |family: OpFamily| -> u64 {
        let op = DeformConvOp {
            family,
            method: SamplingMethod::SoftwareBilinear,
            modulation: None,
            ..DeformConvOp::baseline(shape)
        };
        op.simulate_deform(&gpu, &x, &offsets)
            .iter()
            .map(|r| r.counters.flops)
            .sum()
    };
    let (f1, f2, f3) = (
        deform_flops(OpFamily::DcnV1),
        deform_flops(OpFamily::DcnV2),
        deform_flops(OpFamily::DcnV3),
    );
    assert!(f1 < f2, "v2 flops {f2} not above v1 {f1}");
    assert!(f2 < f3, "v3 flops {f3} not above v2 {f2}");
    // 2. the reduction identities, as byte digests: a neutral DCNv2 (no
    //    mask) is exactly DCNv1, and a neutral DCNv3 is the uniform
    //    average — which for constant logits equals the flat-mask DCNv2,
    //    checked in tests/operator_conformance.rs; here we pin that the
    //    neutral v2 digest equals v1's output digest.
    assert_eq!(
        neutral_digests[1], sw_digests[0],
        "neutral DCNv2 must reduce to DCNv1 byte-for-byte"
    );
    assert_eq!(
        neutral_digests[0], sw_digests[0],
        "DCNv1 ignores modulation by definition"
    );

    Json::obj(vec![
        ("bench", Json::str("ablation_table5")),
        (
            "dataset",
            Json::str("deformed-shapes 4x32x32 deformation=1.0 seed=0xAB1A"),
        ),
        ("layer", Json::str("n4 1->8 32x32 k3 s1 p1 g1")),
        ("device", Json::str(gpu.config().name.clone())),
        ("families", Json::Obj(rows)),
    ])
}

/// Runs the family ablation, writes/compares the golden, and honours
/// `DEFCON_BENCH_OUT` for CI's two-run reproducibility `cmp`.
fn run_table5_golden() {
    let doc = table5_family_ablation();
    let rendered = format!("{doc}\n");
    if let Some(path) = env::or_die(env::path(env::BENCH_OUT)) {
        std::fs::write(&path, &rendered)
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        println!("ablations: wrote {}", path.display());
    }
    let golden =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/ablation_table5.json");
    if env::or_die(env::flag(env::BLESS)) {
        std::fs::create_dir_all(golden.parent().expect("golden has a parent")).expect("mkdir");
        std::fs::write(&golden, &rendered).expect("write golden");
        println!("ablations: blessed {}", golden.display());
        return;
    }
    if defcon_gpusim::default_threads() == 1 {
        let want = std::fs::read_to_string(&golden).unwrap_or_else(|e| {
            panic!(
                "missing golden {} ({e}); record it with DEFCON_BLESS=1 at DEFCON_THREADS=1",
                golden.display()
            )
        });
        assert_eq!(
            rendered,
            want,
            "family ablation diverged from {}; if intentional, re-bless with DEFCON_BLESS=1",
            golden.display()
        );
        println!("ablations: table5 golden OK ({} bytes)", rendered.len());
    } else {
        println!("ablations: table5 semantic checks OK (byte golden pinned at DEFCON_THREADS=1)");
    }
}

fn main() {
    let tiny = defcon_bench::tiny_mode();
    run_table5_golden();
    if tiny {
        println!("ablations: DEFCON_TINY set — skipping wall-clock groups");
        return;
    }
    let mut bench = Bench::from_args();
    bench_offset_spread(&mut bench);
    bench_sample_policy(&mut bench);
    bench.finish();
}
