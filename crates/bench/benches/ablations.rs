//! Ablation benchmarks over the design choices DESIGN.md calls out:
//! offset spread (what bounding buys at the memory system), texture-cache
//! size, and block-sampling rate of the engine.

use defcon_gpusim::{DeviceConfig, Gpu, SamplePolicy};
use defcon_kernels::op::{synthetic_inputs, DeformConvOp, SamplingMethod};
use defcon_kernels::DeformLayerShape;
use defcon_support::bench::Bench;
use defcon_tensor::sample::OffsetTransform;

/// How much the *spread* of learned offsets (which bounding caps) changes
/// simulated time — the paper finds bounding is roughly speed-neutral on
/// GPUs, unlike on FPGA accelerators.
fn bench_offset_spread(bench: &mut Bench) {
    let gpu = Gpu::new(DeviceConfig::xavier_agx());
    let shape = DeformLayerShape::same3x3(64, 64, 35, 35);
    let mut group = bench.group("offset_spread_sim");
    group.sample_size(10);
    for spread in [1.0f32, 4.0, 12.0] {
        let (x, offsets) = synthetic_inputs(&shape, spread, 5);
        let op = DeformConvOp {
            method: SamplingMethod::Tex2d,
            offset_transform: OffsetTransform::Identity,
            ..DeformConvOp::baseline(shape)
        };
        group.bench_with_input(spread as u32, &op, |b, op| {
            b.iter(|| op.simulate_deform(&gpu, &x, &offsets));
        });
    }
    group.finish();
}

/// Simulation cost as a function of block-sampling budget (accuracy/cost
/// trade of the engine itself).
fn bench_sample_policy(bench: &mut Bench) {
    let shape = DeformLayerShape::same3x3(128, 128, 69, 69);
    let (x, offsets) = synthetic_inputs(&shape, 4.0, 6);
    let mut group = bench.group("engine_sampling");
    group.sample_size(10);
    for budget in [24usize, 96, 384] {
        let gpu = Gpu::with_policy(
            DeviceConfig::xavier_agx(),
            SamplePolicy {
                max_blocks: budget,
                ..SamplePolicy::default()
            },
        );
        let op = DeformConvOp {
            method: SamplingMethod::Tex2d,
            ..DeformConvOp::baseline(shape)
        };
        group.bench_with_input(budget, &budget, |b, _| {
            b.iter(|| op.simulate_deform(&gpu, &x, &offsets));
        });
    }
    group.finish();
}

fn main() {
    let mut bench = Bench::from_args();
    bench_offset_spread(&mut bench);
    bench_sample_policy(&mut bench);
    bench.finish();
}
