//! Full-size network inventories for the latency experiments.
//!
//! Table III and Fig. 9 time the whole YOLACT++ network at 550×550. No
//! training is needed for that — only the per-layer shapes and which 3×3
//! slots are deformable. This module enumerates the ResNet-50/101 backbone
//! convolutions (plus an FPN/protonet/head tail) and simulates the network
//! end to end on the GPU model under any DEFCON configuration.

use defcon_core::pipeline::DefconConfig;
use defcon_gpusim::Gpu;
use defcon_kernels::gemm_kernel::{GemmKernel, RegularConvKernel};
use defcon_kernels::im2col::address_map;
use defcon_kernels::op::{simulate_regular_conv_ms, synthetic_inputs};
use defcon_kernels::DeformLayerShape;

/// One convolution of the full network.
#[derive(Clone, Copy, Debug)]
pub struct NetLayer {
    /// The convolution shape.
    pub shape: DeformLayerShape,
    /// Whether this 3×3 slot runs the deformable operator.
    pub dcn: bool,
}

/// Which 3×3 slots are deformable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DcnLayout {
    /// No deformable layers (plain YOLACT).
    None,
    /// Every 3×3 in the last `stages` stages (YOLACT++ R101 "30 DCNs").
    DenseLastStages(usize),
    /// Every `interval`-th 3×3 counted from the back (YOLACT++'s
    /// interval-3 hand placement, 10 DCNs on R101).
    Interval(usize),
    /// The paper's searched placement (Fig. 6): the stride-2 downsampling
    /// slots of conv3/4/5 plus the last blocks of conv4/conv5 — 8 DCNs on
    /// R101, "particularly beneficial in the downsampling layers".
    Searched,
}

/// ResNet bottleneck-stage description: `(blocks, width of the 3×3)`.
fn resnet_stages(depth: usize) -> Vec<(usize, usize)> {
    match depth {
        50 => vec![(3, 64), (4, 128), (6, 256), (3, 512)],
        101 => vec![(3, 64), (4, 128), (23, 256), (3, 512)],
        other => panic!("unsupported ResNet depth {other} (want 50 or 101)"),
    }
}

/// Enumerates the 3×3 bottleneck convolutions of a ResNet backbone at
/// 550×550 input, tagging each slot deformable per the layout. The spatial
/// extents follow the paper's Table II rows (138 → 69 → 35 → 18).
pub fn resnet_3x3_slots(depth: usize, layout: DcnLayout) -> Vec<NetLayer> {
    let stages = resnet_stages(depth);
    let extents = [138usize, 69, 35, 18];
    let mut slots = Vec::new();
    for (si, &(blocks, width)) in stages.iter().enumerate() {
        for b in 0..blocks {
            // The first block of stages ≥ 1 downsamples from the previous
            // extent with its 3×3 (stride 2).
            let (h, stride) = if b == 0 && si > 0 {
                (extents[si - 1], 2)
            } else {
                (extents[si], 1)
            };
            slots.push(NetLayer {
                shape: DeformLayerShape {
                    n: 1,
                    c_in: width,
                    c_out: width,
                    h,
                    w: h,
                    kernel: 3,
                    stride,
                    pad: 1,
                    deform_groups: 1,
                },
                dcn: false,
            });
        }
    }
    apply_layout(&mut slots, &stages, layout);
    slots
}

fn apply_layout(slots: &mut [NetLayer], stages: &[(usize, usize)], layout: DcnLayout) {
    let n = slots.len();
    match layout {
        DcnLayout::None => {}
        DcnLayout::DenseLastStages(k) => {
            let skip: usize = stages
                .iter()
                .take(stages.len().saturating_sub(k))
                .map(|s| s.0)
                .sum();
            for s in slots.iter_mut().skip(skip) {
                s.dcn = true;
            }
        }
        DcnLayout::Interval(interval) => {
            // Applied within the last three stages, as YOLACT++ does.
            let skip: usize = stages.first().map(|s| s.0).unwrap_or(0);
            let mut i = n as isize - 1;
            while i >= skip as isize {
                slots[i as usize].dcn = true;
                i -= interval as isize;
            }
        }
        DcnLayout::Searched => {
            // Stage-entry (downsampling) slots of stages 1..: conv3/4/5.
            let mut idx = 0usize;
            let mut starts = Vec::new();
            for (si, &(blocks, _)) in stages.iter().enumerate() {
                if si > 0 {
                    starts.push(idx);
                }
                idx += blocks;
            }
            for &s in &starts {
                slots[s].dcn = true;
            }
            // Last two blocks of the final stage and last three of the
            // penultimate stage ("the latter part of the network").
            let last_stage_start = idx - stages.last().unwrap().0;
            for s in slots[last_stage_start..].iter_mut().rev().take(2) {
                s.dcn = true;
            }
            let pen_start = last_stage_start - stages[stages.len() - 2].0;
            for s in slots[pen_start..last_stage_start].iter_mut().rev().take(3) {
                s.dcn = true;
            }
        }
    }
}

/// Number of deformable slots in an inventory.
pub fn num_dcn(slots: &[NetLayer]) -> usize {
    slots.iter().filter(|s| s.dcn).count()
}

/// Simulates the whole network under a DEFCON configuration; returns total
/// milliseconds.
///
/// Non-DCN 3×3 slots run as regular convolutions. The non-slot work —
/// bottleneck 1×1s, the stem, FPN, protonet and heads — is timed once as a
/// set of GEMM-shaped kernels and added to every configuration (it is
/// identical across configurations, exactly as in the paper's Table III
/// where only DCN handling varies).
pub fn simulate_network(gpu: &Gpu, slots: &[NetLayer], config: &DefconConfig) -> f64 {
    let mut total = 0.0f64;
    for layer in slots {
        if layer.dcn {
            let op = config.build_op(layer.shape, gpu);
            let (x, offsets) = synthetic_inputs(
                &layer.shape,
                config.bounded.unwrap_or(8.0),
                0xE2E ^ (layer.shape.c_in as u64),
            );
            total += op.simulate_total(gpu, &x, &offsets).0;
        } else {
            total += simulate_regular_conv_ms(gpu, &layer.shape);
        }
    }
    total + fixed_tail_ms(gpu, slots)
}

/// The configuration-independent remainder of the network: bottleneck 1×1
/// convolutions paired with each 3×3 slot, plus an FPN/protonet/head block
/// at 550-scale resolutions.
fn fixed_tail_ms(gpu: &Gpu, slots: &[NetLayer]) -> f64 {
    let mut total = 0.0;
    for layer in slots {
        let s = layer.shape;
        let (oh, ow) = s.out_hw();
        // Bottleneck reduce (4w → w) and expand (w → 4w) 1×1s.
        for (m, k) in [(s.c_in, 4 * s.c_in), (4 * s.c_out, s.c_out)] {
            let g = GemmKernel {
                m,
                k,
                n: oh * ow,
                batch: s.n,
                a_base: address_map::WEIGHTS,
                b_base: address_map::INPUT,
                c_base: address_map::OUTPUT,
                name: "bottleneck_1x1".into(),
            };
            total += gpu.launch(&g).time_ms;
        }
    }
    // FPN laterals + protonet + prediction heads at P3 resolution (69²),
    // approximated as three 256-channel 3×3 convolutions.
    let head = DeformLayerShape::same3x3(256, 256, 69, 69);
    for _ in 0..3 {
        total += gpu
            .launch(&RegularConvKernel::new(head, "head_conv"))
            .time_ms;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use defcon_gpusim::DeviceConfig;

    #[test]
    fn r101_has_33_slots() {
        let slots = resnet_3x3_slots(101, DcnLayout::None);
        assert_eq!(slots.len(), 3 + 4 + 23 + 3);
        assert_eq!(num_dcn(&slots), 0);
    }

    #[test]
    fn dense_last_three_stages_is_30_dcns() {
        // Paper Table I: YOLACT++ R101 with DCN in the last 3 stages = 30.
        let slots = resnet_3x3_slots(101, DcnLayout::DenseLastStages(3));
        assert_eq!(num_dcn(&slots), 30);
    }

    #[test]
    fn interval_3_is_10_dcns() {
        // Paper: "interval of 3 … resulting in a total of 10 deformable
        // layers" on R101.
        let slots = resnet_3x3_slots(101, DcnLayout::Interval(3));
        assert_eq!(num_dcn(&slots), 10);
    }

    #[test]
    fn searched_is_8_dcns_and_includes_downsamplers() {
        // Paper Fig. 6: searched placement uses 2 fewer DCNs than the
        // interval-3 hand placement.
        let slots = resnet_3x3_slots(101, DcnLayout::Searched);
        assert_eq!(num_dcn(&slots), 8);
        // The stride-2 slots of conv3/4/5 are deformable.
        for s in slots.iter().filter(|s| s.shape.stride == 2) {
            assert!(s.dcn, "downsampling slot not deformable: {:?}", s.shape);
        }
    }

    #[test]
    fn r50_dense_is_13_dcns() {
        // Paper Table I: YOLACT++ R50 row lists 13 DCNs (last 3 stages).
        let slots = resnet_3x3_slots(50, DcnLayout::DenseLastStages(3));
        assert_eq!(num_dcn(&slots), 13);
    }

    #[test]
    fn downsampling_extents_follow_paper_rows() {
        let slots = resnet_3x3_slots(101, DcnLayout::None);
        // conv3 entry downsamples from 138², conv4 from 69², conv5 from 35².
        let strided: Vec<usize> = slots
            .iter()
            .filter(|s| s.shape.stride == 2)
            .map(|s| s.shape.h)
            .collect();
        assert_eq!(strided, vec![138, 69, 35]);
    }

    #[test]
    fn more_dcns_cost_more_baseline_time() {
        let gpu = Gpu::new(DeviceConfig::xavier_agx());
        let cfg = DefconConfig::baseline();
        let t_none = simulate_network(&gpu, &resnet_3x3_slots(50, DcnLayout::None), &cfg);
        let t_interval =
            simulate_network(&gpu, &resnet_3x3_slots(50, DcnLayout::Interval(3)), &cfg);
        assert!(t_interval > t_none, "{t_interval} vs {t_none}");
    }

    #[test]
    fn operator_family_orders_network_time() {
        use defcon_kernels::OpFamily;
        // v2 pays modulation loads + a widened predictor on every DCN
        // slot; v3 additionally pays the in-kernel softmax. Non-DCN slots
        // are family-independent, so the end-to-end times must be
        // strictly ordered v1 < v2 < v3 on any layout with DCNs.
        let gpu = Gpu::new(DeviceConfig::xavier_agx());
        let slots = resnet_3x3_slots(50, DcnLayout::Interval(3));
        let t = |family: OpFamily| {
            let cfg = DefconConfig {
                op_family: family,
                ..DefconConfig::baseline()
            };
            simulate_network(&gpu, &slots, &cfg)
        };
        let (t1, t2, t3) = (t(OpFamily::DcnV1), t(OpFamily::DcnV2), t(OpFamily::DcnV3));
        assert!(t1 < t2, "{t1} vs {t2}");
        assert!(t2 < t3, "{t2} vs {t3}");
    }
}
