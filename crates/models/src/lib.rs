//! # defcon-models
//!
//! The model substrate for DEFCON's accuracy experiments:
//!
//! * [`dataset`] — a synthetic *deformed shapes* instance-segmentation
//!   dataset: geometric classes under strong random warps (rotation,
//!   anisotropic scale, shear, sinusoidal bending). It exercises exactly
//!   the inductive bias deformable convolution adds — flexible spatial
//!   sampling — on the same code paths a COCO pipeline would use
//!   (offset learning, bilinear sampling, boxes, masks, mAP).
//! * [`backbone`] — a residual backbone whose 3×3 convolutions are *slots*
//!   that can be a regular conv, a fixed DCN, or a searchable dual-path
//!   layer (for the interval search).
//! * [`detector`] — `YolactLite`, a single-shot instance segmenter in the
//!   YOLACT mould: backbone → FPN-lite → shared prediction head (class +
//!   box + mask coefficients) + prototype branch, trained with CE /
//!   smooth-L1 / mask-BCE losses, decoded with NMS.
//! * [`map`] — COCO-style box and mask mAP@[.5:.95] and AP50.
//! * [`trainer`] — training / evaluation drivers, including the supernet
//!   adapter that plugs `YolactLite` into `defcon-core`'s interval search.
//! * [`zoo`] — layer inventories of the paper's full-size networks
//!   (YOLACT++ with ResNet-50/101 at 550×550) used for the *latency*
//!   experiments (Table III) on the GPU simulator, where no training is
//!   required.

pub mod backbone;
pub mod dataset;
pub mod detector;
pub mod map;
pub mod trainer;
pub mod zoo;

pub use backbone::{Backbone, BackboneConfig, SlotKind};
pub use dataset::{DeformedShapesConfig, Sample, ShapeClass};
pub use detector::YolactLite;
pub use map::{evaluate_map, MapResult};
