//! Residual backbone with per-layer operator slots.
//!
//! Every residual block carries exactly one 3×3 convolution — the *slot*
//! the paper's interval search decides on. A slot is either a regular
//! convolution, a (fixed) deformable convolution, or a searchable dual-path
//! layer. The first block of each stage downsamples (stride 2), mirroring
//! where the paper finds DCNs most beneficial.

use defcon_core::lut::LatencyKey;
use defcon_nn::graph::{ParamId, ParamStore, Tape, Var};
use defcon_nn::modules::{
    BatchNorm2d, Conv2d, ConvBnRelu, DeformConv2d, DualPathConv, LayerChoice, Module,
};
use defcon_nn::ops;
use defcon_tensor::conv::Conv2dParams;
use defcon_tensor::sample::{DeformConv2dParams, OffsetTransform};

/// What occupies a 3×3 slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SlotKind {
    /// Rigid 3×3 convolution.
    Regular,
    /// Deformable 3×3 convolution (fixed choice).
    Deformable,
    /// Dual-path searchable layer (interval search decides).
    Searchable,
}

/// Backbone configuration.
#[derive(Clone, Debug)]
pub struct BackboneConfig {
    /// Input image channels.
    pub in_channels: usize,
    /// Input image side (needed to derive per-slot latency keys).
    pub input_size: usize,
    /// Stem output channels (stem is a stride-1 3×3).
    pub stem_channels: usize,
    /// Channels per stage.
    pub stage_channels: Vec<usize>,
    /// Residual blocks per stage (first block of each stage has stride 2).
    pub blocks_per_stage: Vec<usize>,
    /// One slot kind per block, flattened over stages; length must equal
    /// `blocks_per_stage.iter().sum()`.
    pub slots: Vec<SlotKind>,
    /// Use the lightweight offset predictor in deformable slots.
    pub lightweight_offsets: bool,
    /// Offset transform for deformable slots (bounding / rounding).
    pub offset_transform: OffsetTransform,
    /// Init seed.
    pub seed: u64,
}

impl BackboneConfig {
    /// A small 3-stage backbone (for trainable experiments) with the given
    /// slot layout.
    pub fn mini(input_size: usize, slots: Vec<SlotKind>) -> Self {
        let cfg = BackboneConfig {
            in_channels: 1,
            input_size,
            stem_channels: 8,
            stage_channels: vec![8, 16, 32],
            blocks_per_stage: vec![1, 2, 2],
            slots,
            lightweight_offsets: true,
            offset_transform: OffsetTransform::Identity,
            seed: 0xB0B,
        };
        assert_eq!(cfg.slots.len(), cfg.num_blocks(), "one slot kind per block");
        cfg
    }

    /// Total residual blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks_per_stage.iter().sum()
    }

    /// A uniform layout (all blocks the same kind).
    pub fn uniform_slots(n: usize, kind: SlotKind) -> Vec<SlotKind> {
        vec![kind; n]
    }

    /// YOLACT++-style hand placement: deformable every `interval`-th block,
    /// counted from the last block backwards (the paper's "interval of 3"
    /// in the last stages).
    pub fn interval_slots(n: usize, interval: usize) -> Vec<SlotKind> {
        let mut v = vec![SlotKind::Regular; n];
        let mut i = n as isize - 1;
        while i >= 0 {
            v[i as usize] = SlotKind::Deformable;
            i -= interval as isize;
        }
        v
    }
}

/// One slot's operator.
enum SlotLayer {
    Regular(Conv2d),
    Deformable(DeformConv2d),
    Dual(DualPathConv),
}

/// One residual block: slot conv → BN (→ +skip) → ReLU.
struct ResBlock {
    slot: SlotLayer,
    bn: BatchNorm2d,
    /// 1×1 projection when the shape changes across the block.
    proj: Option<(Conv2d, BatchNorm2d)>,
    key: LatencyKey,
}

/// The backbone network.
pub struct Backbone {
    /// Configuration it was built from.
    pub config: BackboneConfig,
    stem: ConvBnRelu,
    blocks: Vec<ResBlock>,
    /// Block indices that end a stage (their outputs are the feature maps).
    stage_ends: Vec<usize>,
}

impl Backbone {
    /// Builds the backbone, registering parameters in `store`.
    pub fn new(store: &mut ParamStore, cfg: BackboneConfig) -> Self {
        assert_eq!(cfg.slots.len(), cfg.num_blocks());
        let stem = ConvBnRelu::new(
            store,
            "stem",
            cfg.in_channels,
            cfg.stem_channels,
            Conv2dParams::same(3),
            true,
            cfg.seed,
        );
        let mut blocks = Vec::with_capacity(cfg.num_blocks());
        let mut stage_ends = Vec::new();
        let mut c_in = cfg.stem_channels;
        let mut hw = cfg.input_size;
        let mut slot_idx = 0usize;
        for (stage, (&c_out, &n_blocks)) in cfg
            .stage_channels
            .iter()
            .zip(cfg.blocks_per_stage.iter())
            .enumerate()
        {
            for b in 0..n_blocks {
                let stride = if b == 0 { 2 } else { 1 };
                let name = format!("s{stage}b{b}");
                let conv_p = Conv2dParams {
                    kernel: 3,
                    stride,
                    pad: 1,
                    dilation: 1,
                };
                let deform_p = DeformConv2dParams {
                    conv: conv_p,
                    deform_groups: 1,
                };
                let kind = cfg.slots[slot_idx];
                let seed = cfg.seed.wrapping_add(slot_idx as u64 * 7919);
                let slot = match kind {
                    SlotKind::Regular => SlotLayer::Regular(Conv2d::new(
                        store,
                        &format!("{name}.conv"),
                        c_in,
                        c_out,
                        conv_p,
                        false,
                        seed,
                    )),
                    SlotKind::Deformable => {
                        let mut d = if cfg.lightweight_offsets {
                            DeformConv2d::new_lightweight(
                                store,
                                &format!("{name}.dcn"),
                                c_in,
                                c_out,
                                deform_p,
                                seed,
                            )
                        } else {
                            DeformConv2d::new_standard(
                                store,
                                &format!("{name}.dcn"),
                                c_in,
                                c_out,
                                deform_p,
                                seed,
                            )
                        };
                        d.transform = cfg.offset_transform;
                        SlotLayer::Deformable(d)
                    }
                    SlotKind::Searchable => {
                        let mut d = DualPathConv::new(
                            store,
                            &format!("{name}.dual"),
                            c_in,
                            c_out,
                            deform_p,
                            cfg.lightweight_offsets,
                            seed,
                        );
                        d.deform.transform = cfg.offset_transform;
                        SlotLayer::Dual(d)
                    }
                };
                let key = LatencyKey {
                    c_in,
                    c_out,
                    h: hw,
                    w: hw,
                    stride,
                };
                let proj = if stride != 1 || c_in != c_out {
                    let p = Conv2dParams {
                        kernel: 1,
                        stride,
                        pad: 0,
                        dilation: 1,
                    };
                    Some((
                        Conv2d::new(
                            store,
                            &format!("{name}.proj"),
                            c_in,
                            c_out,
                            p,
                            false,
                            seed ^ 0xFF,
                        ),
                        BatchNorm2d::new(store, &format!("{name}.proj_bn"), c_out),
                    ))
                } else {
                    None
                };
                blocks.push(ResBlock {
                    slot,
                    bn: BatchNorm2d::new(store, &format!("{name}.bn"), c_out),
                    proj,
                    key,
                });
                hw = defcon_tensor::shape::conv_out_dim(hw, 3, stride, 1, 1);
                c_in = c_out;
                slot_idx += 1;
            }
            stage_ends.push(blocks.len() - 1);
        }
        Backbone {
            config: cfg,
            stem,
            blocks,
            stage_ends,
        }
    }

    /// Forward pass; returns one feature Var per stage.
    pub fn forward(&mut self, tape: &mut Tape, store: &ParamStore, x: Var) -> Vec<Var> {
        let mut h = self.stem.forward(tape, store, x);
        let mut outs = Vec::with_capacity(self.stage_ends.len());
        for (i, block) in self.blocks.iter_mut().enumerate() {
            let conv = match &mut block.slot {
                SlotLayer::Regular(c) => c.forward(tape, store, h),
                SlotLayer::Deformable(d) => d.forward(tape, store, h),
                SlotLayer::Dual(d) => d.forward(tape, store, h),
            };
            let normed = block.bn.forward(tape, store, conv);
            let skip = match &mut block.proj {
                Some((proj, proj_bn)) => {
                    let p = proj.forward(tape, store, h);
                    proj_bn.forward(tape, store, p)
                }
                None => h,
            };
            let sum = ops::add(tape, normed, skip);
            h = ops::relu(tape, sum);
            if self.stage_ends.contains(&i) {
                outs.push(h);
            }
        }
        outs
    }

    /// Train/eval switch for every BN in the backbone.
    pub fn set_training(&mut self, training: bool) {
        self.stem.set_training(training);
        for b in &mut self.blocks {
            b.bn.training = training;
            if let Some((_, pbn)) = &mut b.proj {
                pbn.training = training;
            }
            match &mut b.slot {
                SlotLayer::Deformable(d) => d.set_training(training),
                SlotLayer::Dual(d) => {
                    d.deform.set_training(training);
                }
                SlotLayer::Regular(_) => {}
            }
        }
    }

    /// Indices of searchable slots.
    pub fn searchable_slots(&self) -> Vec<usize> {
        self.blocks
            .iter()
            .enumerate()
            .filter(|(_, b)| matches!(b.slot, SlotLayer::Dual(_)))
            .map(|(i, _)| i)
            .collect()
    }

    /// α parameter of searchable slot `i` (backbone block index).
    pub fn alpha_of(&self, block: usize) -> ParamId {
        match &self.blocks[block].slot {
            SlotLayer::Dual(d) => d.alpha,
            _ => panic!("block {block} is not searchable"),
        }
    }

    /// Latency key of any block.
    pub fn latency_key_of(&self, block: usize) -> LatencyKey {
        self.blocks[block].key
    }

    /// Latency keys of every block (for LUT collection).
    pub fn all_latency_keys(&self) -> Vec<LatencyKey> {
        self.blocks.iter().map(|b| b.key).collect()
    }

    /// Sets the Gumbel temperature on every dual-path slot.
    pub fn set_temperature(&mut self, tau: f32) {
        for b in &mut self.blocks {
            if let SlotLayer::Dual(d) = &mut b.slot {
                d.tau = tau;
            }
        }
    }

    /// Freezes every dual-path slot to its α decision; returns the choices
    /// in block order.
    pub fn freeze(&mut self, store: &ParamStore) -> Vec<LayerChoice> {
        let mut out = Vec::new();
        for b in &mut self.blocks {
            if let SlotLayer::Dual(d) = &mut b.slot {
                out.push(d.freeze(store));
            }
        }
        out
    }

    /// Number of blocks currently running a deformable operator (fixed DCN
    /// slots plus dual slots frozen to deformable).
    pub fn num_dcn(&self) -> usize {
        self.blocks
            .iter()
            .filter(|b| match &b.slot {
                SlotLayer::Deformable(_) => true,
                SlotLayer::Dual(d) => d.frozen == Some(LayerChoice::Deformable),
                SlotLayer::Regular(_) => false,
            })
            .count()
    }

    /// The offset Vars produced by every active deformable slot in the most
    /// recent forward pass (for offset regularization, paper Table V).
    pub fn dcn_offsets(&self) -> Vec<Var> {
        self.blocks
            .iter()
            .filter_map(|b| match &b.slot {
                SlotLayer::Deformable(d) => d.last_offsets,
                SlotLayer::Dual(dp) => dp.deform.last_offsets,
                SlotLayer::Regular(_) => None,
            })
            .collect()
    }

    /// Sets the offset transform on every deformable slot (bounding /
    /// rounding sweeps re-use one trained architecture).
    pub fn set_offset_transform(&mut self, tr: OffsetTransform) {
        for b in &mut self.blocks {
            match &mut b.slot {
                SlotLayer::Deformable(d) => d.transform = tr,
                SlotLayer::Dual(dp) => dp.deform.transform = tr,
                SlotLayer::Regular(_) => {}
            }
        }
    }

    /// Fig. 6-style layout string: `D` deformable, `.` regular, `?`
    /// undecided dual-path.
    pub fn layout(&self) -> String {
        self.blocks
            .iter()
            .map(|b| match &b.slot {
                SlotLayer::Regular(_) => '.',
                SlotLayer::Deformable(_) => 'D',
                SlotLayer::Dual(d) => match d.frozen {
                    Some(LayerChoice::Deformable) => 'D',
                    Some(LayerChoice::Regular) => '.',
                    None => '?',
                },
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use defcon_tensor::Tensor;

    #[test]
    fn forward_shapes_per_stage() {
        let mut store = ParamStore::new();
        let cfg = BackboneConfig::mini(48, BackboneConfig::uniform_slots(5, SlotKind::Regular));
        let mut bb = Backbone::new(&mut store, cfg);
        let mut tape = Tape::new();
        let x = tape.input(Tensor::randn(&[2, 1, 48, 48], 0.0, 1.0, 1));
        let feats = bb.forward(&mut tape, &store, x);
        assert_eq!(feats.len(), 3);
        assert_eq!(tape.value(feats[0]).dims(), &[2, 8, 24, 24]);
        assert_eq!(tape.value(feats[1]).dims(), &[2, 16, 12, 12]);
        assert_eq!(tape.value(feats[2]).dims(), &[2, 32, 6, 6]);
    }

    #[test]
    fn interval_slots_counted_from_the_back() {
        let v = BackboneConfig::interval_slots(7, 3);
        // Blocks 6, 3, 0 deformable.
        let expect = [
            SlotKind::Deformable,
            SlotKind::Regular,
            SlotKind::Regular,
            SlotKind::Deformable,
            SlotKind::Regular,
            SlotKind::Regular,
            SlotKind::Deformable,
        ];
        assert_eq!(v, expect);
    }

    #[test]
    fn deformable_backbone_forward_and_layout() {
        let mut store = ParamStore::new();
        let slots = BackboneConfig::interval_slots(5, 3);
        let cfg = BackboneConfig::mini(32, slots);
        let mut bb = Backbone::new(&mut store, cfg);
        assert_eq!(bb.layout(), ".D..D");
        assert_eq!(bb.num_dcn(), 2);
        let mut tape = Tape::new();
        let x = tape.input(Tensor::randn(&[1, 1, 32, 32], 0.0, 1.0, 2));
        let feats = bb.forward(&mut tape, &store, x);
        assert_eq!(tape.value(feats[2]).dims(), &[1, 32, 4, 4]);
    }

    #[test]
    fn searchable_backbone_exposes_alphas_and_freezes() {
        let mut store = ParamStore::new();
        let cfg = BackboneConfig::mini(32, BackboneConfig::uniform_slots(5, SlotKind::Searchable));
        let mut bb = Backbone::new(&mut store, cfg);
        let slots = bb.searchable_slots();
        assert_eq!(slots.len(), 5);
        for &s in &slots {
            let _ = bb.alpha_of(s);
            let key = bb.latency_key_of(s);
            assert!(key.c_in >= 8);
        }
        assert_eq!(bb.layout(), "?????");
        let choices = bb.freeze(&store);
        assert_eq!(choices.len(), 5);
        assert!(!bb.layout().contains('?'));
    }

    #[test]
    fn latency_keys_track_downsampling() {
        let mut store = ParamStore::new();
        let cfg = BackboneConfig::mini(48, BackboneConfig::uniform_slots(5, SlotKind::Regular));
        let bb = Backbone::new(&mut store, cfg);
        let keys = bb.all_latency_keys();
        assert_eq!(
            keys[0],
            LatencyKey {
                c_in: 8,
                c_out: 8,
                h: 48,
                w: 48,
                stride: 2
            }
        );
        assert_eq!(
            keys[1],
            LatencyKey {
                c_in: 8,
                c_out: 16,
                h: 24,
                w: 24,
                stride: 2
            }
        );
        assert_eq!(
            keys[2],
            LatencyKey {
                c_in: 16,
                c_out: 16,
                h: 12,
                w: 12,
                stride: 1
            }
        );
    }

    #[test]
    fn backbone_trains() {
        // Tiny regression: mean of last feature should fit a target.
        let mut store = ParamStore::new();
        let cfg = BackboneConfig::mini(16, BackboneConfig::uniform_slots(5, SlotKind::Regular));
        let mut bb = Backbone::new(&mut store, cfg);
        let x_data = Tensor::rand_uniform(&[2, 1, 16, 16], 0.0, 1.0, 3);
        let mut last = f32::MAX;
        for _ in 0..25 {
            store.zero_grads();
            let mut tape = Tape::new();
            let x = tape.input(x_data.clone());
            let feats = bb.forward(&mut tape, &store, x);
            let g = defcon_nn::ops::global_avg_pool_op(&mut tape, feats[2]);
            let l = defcon_nn::loss::mse(&mut tape, g, &Tensor::full(&[2, 32], 0.5));
            last = tape.value(l).data()[0];
            tape.backward(l);
            tape.write_param_grads(&mut store);
            store.sgd_step(0.1, 0.9, 0.0);
        }
        assert!(last < 0.05, "backbone failed to fit: {last}");
    }
}
