//! COCO-style mean Average Precision for boxes and masks.
//!
//! mAP is averaged over IoU thresholds `{0.50, 0.55, …, 0.95}`; AP50 is the
//! 0.50 column. AP per (class, threshold) uses all-point interpolation (the
//! precision envelope), matching `pycocotools` up to its 101-point
//! quantization.

use crate::dataset::Sample;
use crate::detector::{box_iou, Detection};

/// mAP evaluation results.
#[derive(Clone, Copy, Debug, Default)]
pub struct MapResult {
    /// Box mAP@[.5:.95] × 100.
    pub box_map: f64,
    /// Mask mAP@[.5:.95] × 100.
    pub mask_map: f64,
    /// Box AP50 × 100.
    pub box_ap50: f64,
    /// Mask AP50 × 100.
    pub mask_ap50: f64,
}

/// IoU of two boolean masks.
pub fn mask_iou(a: &[bool], b: &[bool]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut inter = 0usize;
    let mut union = 0usize;
    for (&x, &y) in a.iter().zip(b.iter()) {
        if x && y {
            inter += 1;
        }
        if x || y {
            union += 1;
        }
    }
    if union == 0 {
        0.0
    } else {
        inter as f32 / union as f32
    }
}

/// One scored detection attempt against one image's ground truth.
struct Flagged {
    score: f32,
    /// True positive at each IoU threshold index.
    tp: Vec<bool>,
}

/// Average precision from a set of flagged detections and a GT count, via
/// the precision envelope.
fn average_precision(mut flags: Vec<(f32, bool)>, num_gt: usize) -> f64 {
    if num_gt == 0 {
        return f64::NAN; // class absent: skipped in the mean
    }
    if flags.is_empty() {
        return 0.0;
    }
    flags.sort_by(|a, b| b.0.total_cmp(&a.0));
    let mut tp_cum = 0usize;
    let mut points: Vec<(f64, f64)> = Vec::with_capacity(flags.len()); // (recall, precision)
    for (i, (_, tp)) in flags.iter().enumerate() {
        if *tp {
            tp_cum += 1;
        }
        points.push((
            tp_cum as f64 / num_gt as f64,
            tp_cum as f64 / (i + 1) as f64,
        ));
    }
    // Precision envelope (monotone non-increasing from the right).
    for i in (0..points.len().saturating_sub(1)).rev() {
        points[i].1 = points[i].1.max(points[i + 1].1);
    }
    // Integrate over recall.
    let mut ap = 0.0;
    let mut prev_r = 0.0;
    for (r, p) in points {
        ap += (r - prev_r) * p;
        prev_r = r;
    }
    ap
}

/// Evaluates detections against ground truth over a dataset split.
///
/// `detections[i]` are the decoded detections of `samples[i]`.
pub fn evaluate_map(
    samples: &[Sample],
    detections: &[Vec<Detection>],
    num_classes: usize,
) -> MapResult {
    assert_eq!(samples.len(), detections.len());
    let thresholds: Vec<f32> = (0..10).map(|i| 0.5 + 0.05 * i as f32).collect();

    // Per class: flagged detections (box and mask variants) and GT counts.
    let mut box_flags: Vec<Vec<Flagged>> = (0..num_classes).map(|_| Vec::new()).collect();
    let mut mask_flags: Vec<Vec<Flagged>> = (0..num_classes).map(|_| Vec::new()).collect();
    let mut gt_count = vec![0usize; num_classes];

    for (sample, dets) in samples.iter().zip(detections.iter()) {
        for o in &sample.objects {
            gt_count[o.class] += 1;
        }
        // Greedy match per threshold: each GT claimed at most once.
        for class in 0..num_classes {
            let gts: Vec<usize> = (0..sample.objects.len())
                .filter(|&g| sample.objects[g].class == class)
                .collect();
            let mut class_dets: Vec<&Detection> =
                dets.iter().filter(|d| d.class == class).collect();
            class_dets.sort_by(|a, b| b.score.total_cmp(&a.score));

            for (kind, flags) in [(0usize, &mut box_flags), (1usize, &mut mask_flags)] {
                let mut claimed = vec![vec![false; gts.len()]; thresholds.len()];
                for d in &class_dets {
                    let mut tp = Vec::with_capacity(thresholds.len());
                    for (ti, &thr) in thresholds.iter().enumerate() {
                        // Best unclaimed GT by IoU.
                        let mut best = (0usize, 0.0f32);
                        for (gi_local, &g) in gts.iter().enumerate() {
                            if claimed[ti][gi_local] {
                                continue;
                            }
                            let iou = if kind == 0 {
                                box_iou(&d.bbox, &sample.objects[g].bbox)
                            } else {
                                mask_iou(&d.mask, &sample.objects[g].mask)
                            };
                            if iou > best.1 {
                                best = (gi_local, iou);
                            }
                        }
                        if best.1 >= thr {
                            claimed[ti][best.0] = true;
                            tp.push(true);
                        } else {
                            tp.push(false);
                        }
                    }
                    flags[class].push(Flagged { score: d.score, tp });
                }
            }
        }
    }

    // AP per class per threshold, averaged.
    let summarize = |flags: &[Vec<Flagged>]| -> (f64, f64) {
        let mut aps = Vec::new();
        let mut ap50s = Vec::new();
        for class in 0..num_classes {
            if gt_count[class] == 0 {
                continue;
            }
            let mut per_thr = Vec::with_capacity(thresholds.len());
            for ti in 0..thresholds.len() {
                let fl: Vec<(f32, bool)> =
                    flags[class].iter().map(|f| (f.score, f.tp[ti])).collect();
                per_thr.push(average_precision(fl, gt_count[class]));
            }
            ap50s.push(per_thr[0]);
            aps.push(per_thr.iter().sum::<f64>() / per_thr.len() as f64);
        }
        if aps.is_empty() {
            (0.0, 0.0)
        } else {
            (
                100.0 * aps.iter().sum::<f64>() / aps.len() as f64,
                100.0 * ap50s.iter().sum::<f64>() / ap50s.len() as f64,
            )
        }
    };
    let (box_map, box_ap50) = summarize(&box_flags);
    let (mask_map, mask_ap50) = summarize(&mask_flags);
    MapResult {
        box_map,
        mask_map,
        box_ap50,
        mask_ap50,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{DeformedShapesConfig, GtObject};
    use defcon_tensor::Tensor;

    fn sample_with(objects: Vec<GtObject>, size: usize) -> Sample {
        Sample {
            image: Tensor::zeros(&[1, 1, size, size]),
            objects,
        }
    }

    fn rect_mask(size: usize, bbox: &[f32; 4]) -> Vec<bool> {
        let mut m = vec![false; size * size];
        for y in 0..size {
            for x in 0..size {
                if (y as f32) >= bbox[0]
                    && (y as f32) < bbox[2]
                    && (x as f32) >= bbox[1]
                    && (x as f32) < bbox[3]
                {
                    m[y * size + x] = true;
                }
            }
        }
        m
    }

    #[test]
    fn perfect_detections_score_100() {
        let size = 32;
        let bbox = [4.0, 4.0, 20.0, 20.0];
        let mask = rect_mask(size, &bbox);
        let s = sample_with(
            vec![GtObject {
                class: 0,
                bbox,
                mask: mask.clone(),
            }],
            size,
        );
        let d = Detection {
            class: 0,
            score: 0.9,
            bbox,
            mask,
        };
        let r = evaluate_map(&[s], &[vec![d]], 3);
        assert!((r.box_map - 100.0).abs() < 1e-9, "{}", r.box_map);
        assert!((r.mask_map - 100.0).abs() < 1e-9);
        assert!((r.box_ap50 - 100.0).abs() < 1e-9);
    }

    #[test]
    fn missed_detection_scores_0() {
        let size = 32;
        let bbox = [4.0, 4.0, 20.0, 20.0];
        let s = sample_with(
            vec![GtObject {
                class: 1,
                bbox,
                mask: rect_mask(size, &bbox),
            }],
            size,
        );
        let r = evaluate_map(&[s], &[vec![]], 3);
        assert_eq!(r.box_map, 0.0);
        assert_eq!(r.mask_map, 0.0);
    }

    #[test]
    fn slightly_offset_box_passes_50_but_not_95() {
        let size = 32;
        let gt = [4.0, 4.0, 20.0, 20.0];
        // Shift by 2px: IoU = (14*14)/(16*16*2 - 14*14) ≈ 0.62.
        let pred = [6.0, 6.0, 22.0, 22.0];
        let s = sample_with(
            vec![GtObject {
                class: 0,
                bbox: gt,
                mask: rect_mask(size, &gt),
            }],
            size,
        );
        let d = Detection {
            class: 0,
            score: 0.9,
            bbox: pred,
            mask: rect_mask(size, &pred),
        };
        let r = evaluate_map(&[s], &[vec![d]], 3);
        assert!((r.box_ap50 - 100.0).abs() < 1e-9, "AP50 {}", r.box_ap50);
        // Passes thresholds 0.50..0.60 → 3 of 10 columns.
        assert!((r.box_map - 30.0).abs() < 1e-6, "mAP {}", r.box_map);
    }

    #[test]
    fn false_positives_lower_precision() {
        let size = 32;
        let gt = [4.0, 4.0, 20.0, 20.0];
        let s = sample_with(
            vec![GtObject {
                class: 0,
                bbox: gt,
                mask: rect_mask(size, &gt),
            }],
            size,
        );
        // One perfect detection with low score, one confident FP elsewhere.
        let good = Detection {
            class: 0,
            score: 0.3,
            bbox: gt,
            mask: rect_mask(size, &gt),
        };
        let fp_box = [24.0, 24.0, 30.0, 30.0];
        let fp = Detection {
            class: 0,
            score: 0.9,
            bbox: fp_box,
            mask: rect_mask(size, &fp_box),
        };
        let r = evaluate_map(&[s], &[vec![good, fp]], 3);
        // Recall reaches 1 at precision 1/2 → AP = 0.5.
        assert!((r.box_ap50 - 50.0).abs() < 1e-6, "{}", r.box_ap50);
    }

    #[test]
    fn duplicate_detections_count_once() {
        let size = 32;
        let gt = [4.0, 4.0, 20.0, 20.0];
        let s = sample_with(
            vec![GtObject {
                class: 0,
                bbox: gt,
                mask: rect_mask(size, &gt),
            }],
            size,
        );
        let d1 = Detection {
            class: 0,
            score: 0.9,
            bbox: gt,
            mask: rect_mask(size, &gt),
        };
        let d2 = Detection {
            class: 0,
            score: 0.8,
            bbox: gt,
            mask: rect_mask(size, &gt),
        };
        let r = evaluate_map(&[s], &[vec![d1, d2]], 3);
        // The duplicate is a false positive beyond recall 1 — AP stays 1.
        assert!((r.box_ap50 - 100.0).abs() < 1e-6, "{}", r.box_ap50);
    }

    #[test]
    fn mask_iou_basics() {
        let a = vec![true, true, false, false];
        let b = vec![true, false, true, false];
        assert!((mask_iou(&a, &b) - 1.0 / 3.0).abs() < 1e-6);
        assert_eq!(mask_iou(&[false; 4], &[false; 4]), 0.0);
    }

    #[test]
    fn evaluates_generated_dataset_without_panicking() {
        let cfg = DeformedShapesConfig::default();
        let samples = cfg.generate(5, 3);
        let dets: Vec<Vec<Detection>> = samples.iter().map(|_| Vec::new()).collect();
        let r = evaluate_map(&samples, &dets, 3);
        assert_eq!(r.box_map, 0.0);
    }
}
