//! Training / evaluation drivers and the interval-search supernet adapter.

use crate::backbone::BackboneConfig;
use crate::dataset::{batch_images, DeformedShapesConfig, Sample};
use crate::detector::{
    assign_anchors, build_anchors, decode_detections, detection_loss, Anchor, Assignment,
    YolactLite, NUM_CLASSES,
};
use crate::map::{evaluate_map, MapResult};
use defcon_core::lut::LatencyKey;
use defcon_core::search::SearchModel;
use defcon_nn::graph::{ParamId, ParamStore, Tape, Var};
use defcon_nn::modules::LayerChoice;
use defcon_nn::optim::Sgd;
use defcon_support::ckpt;
use defcon_support::error::DefconError;
use defcon_support::fault;
use defcon_support::json::{Json, JsonError};
use defcon_support::obs;
use std::path::PathBuf;

/// Training hyper-parameters.
#[derive(Clone, Debug)]
pub struct TrainConfig {
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Base learning rate (paper: 1e-2, step decay).
    pub lr: f32,
    /// Training images.
    pub train_size: usize,
    /// Validation images.
    pub val_size: usize,
    /// Dataset generator.
    pub dataset: DeformedShapesConfig,
    /// Seed for data generation.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 6,
            batch_size: 8,
            lr: 0.02,
            train_size: 64,
            val_size: 32,
            dataset: DeformedShapesConfig::default(),
            seed: 0x5EED,
        }
    }
}

/// A dataset split with precomputed anchor assignments.
pub struct PreparedData {
    /// The samples.
    pub samples: Vec<Sample>,
    /// Per-sample anchor assignments.
    pub assignments: Vec<Assignment>,
    /// The anchor grid.
    pub anchors: Vec<Anchor>,
}

/// Generates and assigns a split.
pub fn prepare(cfg: &DeformedShapesConfig, n: usize, seed: u64) -> PreparedData {
    let samples = cfg.generate(n, seed);
    let feat = cfg.size / crate::detector::STRIDE;
    let anchors = build_anchors(feat, feat);
    let assignments = samples
        .iter()
        .map(|s| assign_anchors(&anchors, s))
        .collect();
    PreparedData {
        samples,
        assignments,
        anchors,
    }
}

/// Trains `det` on freshly generated data; returns per-epoch mean losses.
pub fn train_detector(det: &mut YolactLite, store: &mut ParamStore, cfg: &TrainConfig) -> Vec<f32> {
    train_detector_reg(det, store, cfg, 0.0)
}

/// [`train_detector`] with an L2 penalty of `offset_reg` on every DCN
/// layer's predicted offsets — the *regularized training* alternative to
/// hard bounding (paper Table V).
pub fn train_detector_reg(
    det: &mut YolactLite,
    store: &mut ParamStore,
    cfg: &TrainConfig,
    offset_reg: f32,
) -> Vec<f32> {
    train_detector_robust(det, store, cfg, offset_reg, &RobustTrainConfig::default())
        .expect("detector training could not recover from non-finite steps")
}

/// Robustness knobs for [`train_detector_robust`].
#[derive(Clone, Debug)]
pub struct RobustTrainConfig {
    /// Where to checkpoint after every epoch (atomic write + CRC). `None`
    /// disables checkpointing. An existing valid checkpoint at this path
    /// is resumed (completed epochs are skipped); a corrupt or truncated
    /// one is discarded and training restarts from scratch — with a fresh
    /// model this deterministically reproduces the uninterrupted run.
    pub checkpoint: Option<PathBuf>,
    /// Extra attempts per mini-batch step after a non-finite loss or
    /// gradient, before [`DefconError::RetriesExhausted`].
    pub max_step_retries: usize,
    /// LR backoff factor applied via [`Sgd::backoff`] on every rollback.
    pub lr_backoff: f32,
}

impl Default for RobustTrainConfig {
    fn default() -> Self {
        RobustTrainConfig {
            checkpoint: None,
            max_step_retries: 3,
            lr_backoff: 0.5,
        }
    }
}

/// [`train_detector_reg`] with graceful degradation: non-finite loss or
/// gradient guards with snapshot rollback + LR backoff per mini-batch
/// step, and atomic per-epoch checkpoint/resume.
///
/// Checkpoints carry the `ParamStore` (values + momentum) and the LR
/// schedule, which is everything the optimizer needs; BatchNorm running
/// statistics and Gumbel noise streams live outside the store, so a
/// mid-run resume continues training correctly but does not replay the
/// uninterrupted trajectory bit-for-bit. Restarting from scratch (the
/// corrupt-checkpoint path) with a freshly built detector *is*
/// bit-reproducible, since every source of randomness is seeded.
pub fn train_detector_robust(
    det: &mut YolactLite,
    store: &mut ParamStore,
    cfg: &TrainConfig,
    offset_reg: f32,
    robust: &RobustTrainConfig,
) -> Result<Vec<f32>, DefconError> {
    let run_span = obs::span_with("trainer.run", || {
        vec![
            ("epochs", Json::from(cfg.epochs)),
            ("train_size", Json::from(cfg.train_size)),
            ("batch_size", Json::from(cfg.batch_size)),
            ("offset_reg", Json::from(offset_reg as f64)),
        ]
    });
    let data = prepare(&cfg.dataset, cfg.train_size, cfg.seed);
    let steps = cfg.epochs * cfg.train_size.div_ceil(cfg.batch_size);
    let mut opt = Sgd::paper_schedule(cfg.lr, steps);
    det.set_training(true);
    let mut history: Vec<f32> = Vec::with_capacity(cfg.epochs);

    if let Some(path) = &robust.checkpoint {
        if let Some(payload) = ckpt::load_or_discard(path)? {
            let pre = store.snapshot();
            match parse_train_checkpoint(&payload, store) {
                Ok((hist, opt_steps, opt_lr_scale)) => {
                    history = hist;
                    opt.restore_schedule(opt_steps, opt_lr_scale);
                }
                // CRC-valid but stale (e.g. different architecture):
                // degrade to a fresh start, discarding any partial load.
                Err(_) => store.restore(&pre),
            }
        }
    }

    for epoch in 0..cfg.epochs {
        if history.len() > epoch {
            continue; // resumed past this epoch
        }
        let epoch_span = obs::span_with("trainer.epoch", || vec![("epoch", Json::from(epoch))]);
        let mut epoch_loss = 0.0f32;
        let mut batches = 0usize;
        for chunk_start in (0..cfg.train_size).step_by(cfg.batch_size) {
            let end = (chunk_start + cfg.batch_size).min(cfg.train_size);
            let samples = &data.samples[chunk_start..end];
            let assignments = &data.assignments[chunk_start..end];
            let mut step_ok = false;
            for attempt in 0..=robust.max_step_retries {
                let snap = store.snapshot();
                store.zero_grads();
                let mut tape = Tape::new();
                let x = tape.input(batch_images(samples));
                let out = det.forward(&mut tape, store, x);
                let mut loss = detection_loss(&mut tape, &out, &data.anchors, assignments, samples);
                if offset_reg > 0.0 {
                    for off in det.backbone.dcn_offsets() {
                        let pen = defcon_nn::loss::l2_penalty(&mut tape, off, offset_reg);
                        loss = defcon_nn::ops::add(&mut tape, loss, pen);
                    }
                }
                let mut loss_val = tape.value(loss).data()[0];
                fault::nonfinite_f32("trainer.loss", &mut loss_val);
                if loss_val.is_finite() {
                    tape.backward(loss);
                    tape.write_param_grads(store);
                    if fault::fires("trainer.grad") && !store.is_empty() {
                        // Inject an exploded gradient for the guard to catch.
                        let id = store.param_id(0);
                        let poisoned = store.value(id).scale(f32::NAN);
                        store.accumulate_grad(id, &poisoned);
                    }
                    if store.grads_finite() {
                        opt.step(store);
                        epoch_loss += loss_val;
                        step_ok = true;
                        break;
                    }
                }
                // Degradation path: roll back parameters and momentum,
                // gear the LR down, retry the same mini-batch.
                store.restore(&snap);
                opt.backoff(robust.lr_backoff);
                obs::event_with("trainer.rollback", || {
                    vec![
                        ("samples_start", Json::from(chunk_start)),
                        ("attempt", Json::from(attempt)),
                        ("lr_backoff", Json::from(robust.lr_backoff as f64)),
                    ]
                });
            }
            if !step_ok {
                return Err(DefconError::RetriesExhausted {
                    what: format!(
                        "training step on samples {chunk_start}..{end} (non-finite loss/gradient)"
                    ),
                    attempts: robust.max_step_retries + 1,
                });
            }
            batches += 1;
        }
        let mean_loss = epoch_loss / batches.max(1) as f32;
        epoch_span.record("loss", Json::from(mean_loss as f64));
        drop(epoch_span);
        history.push(mean_loss);
        if let Some(path) = &robust.checkpoint {
            let doc = Json::obj(vec![
                ("epochs_done", Json::from(history.len())),
                (
                    "loss_history",
                    Json::Arr(history.iter().map(|&v| Json::from(v as f64)).collect()),
                ),
                ("opt_steps", Json::from(opt.steps())),
                ("opt_lr_scale", Json::from(opt.lr_scale() as f64)),
                ("params", store.state_to_json()),
            ]);
            ckpt::save(path, &doc.to_string())?;
            obs::event_with("trainer.checkpoint", || {
                vec![("epochs_done", Json::from(history.len()))]
            });
        }
    }
    run_span.record("epochs_done", Json::from(history.len()));
    Ok(history)
}

/// Parses a CRC-valid trainer checkpoint and loads the parameter state
/// into `store`; on error the caller restores a pre-parse snapshot.
fn parse_train_checkpoint(
    payload: &str,
    store: &mut ParamStore,
) -> Result<(Vec<f32>, usize, f32), JsonError> {
    let doc = Json::parse(payload)?;
    let epochs_done = doc
        .field("epochs_done")?
        .as_usize()
        .ok_or_else(|| JsonError::msg("epochs_done must be a non-negative integer"))?;
    let hist = doc
        .field("loss_history")?
        .as_arr()
        .ok_or_else(|| JsonError::msg("loss_history must be an array"))?;
    let mut history = Vec::with_capacity(hist.len());
    for v in hist {
        history.push(
            v.as_f64()
                .ok_or_else(|| JsonError::msg("loss_history entries must be numbers"))?
                as f32,
        );
    }
    if history.len() != epochs_done {
        return Err(JsonError::msg("epochs_done disagrees with loss_history"));
    }
    let opt_steps = doc
        .field("opt_steps")?
        .as_usize()
        .ok_or_else(|| JsonError::msg("opt_steps must be a non-negative integer"))?;
    let opt_lr_scale =
        doc.field("opt_lr_scale")?
            .as_f64()
            .ok_or_else(|| JsonError::msg("opt_lr_scale must be a number"))? as f32;
    store.load_state_json(doc.field("params")?)?;
    Ok((history, opt_steps, opt_lr_scale))
}

/// Runs inference on a validation split and computes box/mask mAP.
pub fn evaluate_detector(
    det: &mut YolactLite,
    store: &ParamStore,
    samples: &[Sample],
    score_threshold: f32,
) -> MapResult {
    det.set_training(false);
    let img_size = samples[0].image.dims()[3];
    let mut all_dets = Vec::with_capacity(samples.len());
    for s in samples {
        let mut tape = Tape::new();
        let x = tape.input(s.image.clone());
        let out = det.forward(&mut tape, store, x);
        let dets = decode_detections(
            tape.value(out.cls),
            tape.value(out.boxes),
            tape.value(out.coeffs),
            tape.value(out.protos),
            0,
            img_size,
            score_threshold,
            0.5,
        );
        all_dets.push(dets);
    }
    det.set_training(true);
    evaluate_map(samples, &all_dets, NUM_CLASSES)
}

/// Convenience: build → train → evaluate one backbone layout; returns the
/// trained detector and its validation mAP.
pub fn train_and_eval(
    backbone: BackboneConfig,
    cfg: &TrainConfig,
) -> (YolactLite, ParamStore, MapResult) {
    let mut store = ParamStore::new();
    let mut det = YolactLite::new(&mut store, backbone);
    train_detector(&mut det, &mut store, cfg);
    let val = prepare(&cfg.dataset, cfg.val_size, cfg.seed ^ 0xFFFF_0000).samples;
    let map = evaluate_detector(&mut det, &store, &val, 0.05);
    (det, store, map)
}

/// The supernet adapter: plugs a `YolactLite` with searchable backbone
/// slots into `defcon-core`'s interval search.
pub struct DetectorSuperNet {
    /// The detector under search.
    pub detector: YolactLite,
    /// Training data for the search phase.
    pub data: PreparedData,
    /// Mini-batch size.
    pub batch_size: usize,
    searchable_blocks: Vec<usize>,
}

impl DetectorSuperNet {
    /// Builds the supernet (backbone slots should be `SlotKind::Searchable`).
    pub fn new(
        store: &mut ParamStore,
        backbone: BackboneConfig,
        data: PreparedData,
        batch_size: usize,
    ) -> Self {
        let detector = YolactLite::new(store, backbone);
        let searchable_blocks = detector.backbone.searchable_slots();
        DetectorSuperNet {
            detector,
            data,
            batch_size,
            searchable_blocks,
        }
    }
}

impl SearchModel for DetectorSuperNet {
    fn num_slots(&self) -> usize {
        self.searchable_blocks.len()
    }

    fn alpha(&self, i: usize) -> ParamId {
        self.detector.backbone.alpha_of(self.searchable_blocks[i])
    }

    fn latency_key(&self, i: usize) -> LatencyKey {
        self.detector
            .backbone
            .latency_key_of(self.searchable_blocks[i])
    }

    fn set_temperature(&mut self, tau: f32) {
        self.detector.backbone.set_temperature(tau);
    }

    fn forward_loss(&mut self, tape: &mut Tape, store: &ParamStore, batch: usize) -> Var {
        let n = self.data.samples.len();
        let start = (batch * self.batch_size) % n;
        let end = (start + self.batch_size).min(n);
        let samples = &self.data.samples[start..end];
        let assignments = &self.data.assignments[start..end];
        let x = tape.input(batch_images(samples));
        let out = self.detector.forward(tape, store, x);
        detection_loss(tape, &out, &self.data.anchors, assignments, samples)
    }

    fn freeze(&mut self, store: &ParamStore) -> Vec<LayerChoice> {
        self.detector.backbone.freeze(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backbone::SlotKind;
    use defcon_core::lut::LatencyLut;
    use defcon_core::search::{IntervalSearch, SearchConfig};
    use defcon_gpusim::{DeviceConfig, Gpu};
    use defcon_kernels::op::{OffsetPredictorKind, SamplingMethod};

    fn quick_cfg() -> TrainConfig {
        TrainConfig {
            epochs: 2,
            batch_size: 4,
            train_size: 16,
            val_size: 8,
            ..Default::default()
        }
    }

    fn tmp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("defcon-trainer-{}-{}", std::process::id(), name));
        p
    }

    #[test]
    fn injected_nan_loss_rolls_back_and_training_recovers() {
        use defcon_support::fault::{FaultPlan, Schedule};
        let backbone =
            BackboneConfig::mini(48, BackboneConfig::uniform_slots(5, SlotKind::Regular));
        let mut store = ParamStore::new();
        let mut det = YolactLite::new(&mut store, backbone);
        let _armed = fault::arm(FaultPlan::new(41).point("trainer.loss", Schedule::Nth(1)));
        let history = train_detector_robust(
            &mut det,
            &mut store,
            &quick_cfg(),
            0.0,
            &RobustTrainConfig::default(),
        )
        .unwrap();
        assert_eq!(fault::log(), vec!["trainer.loss#1"]);
        assert_eq!(history.len(), 2);
        assert!(history.iter().all(|l| l.is_finite()), "{history:?}");
        assert!(store.values_finite());
    }

    #[test]
    fn injected_nan_grad_rolls_back_and_training_recovers() {
        use defcon_support::fault::{FaultPlan, Schedule};
        let backbone =
            BackboneConfig::mini(48, BackboneConfig::uniform_slots(5, SlotKind::Regular));
        let mut store = ParamStore::new();
        let mut det = YolactLite::new(&mut store, backbone);
        let _armed = fault::arm(FaultPlan::new(42).point("trainer.grad", Schedule::Nth(0)));
        let history = train_detector_robust(
            &mut det,
            &mut store,
            &quick_cfg(),
            0.0,
            &RobustTrainConfig::default(),
        )
        .unwrap();
        assert_eq!(fault::log(), vec!["trainer.grad#0"]);
        assert!(history.iter().all(|l| l.is_finite()));
        assert!(store.values_finite() && store.grads_finite());
    }

    #[test]
    fn persistent_nan_loss_exhausts_retries() {
        use defcon_support::fault::{FaultPlan, Schedule};
        let backbone =
            BackboneConfig::mini(48, BackboneConfig::uniform_slots(5, SlotKind::Regular));
        let mut store = ParamStore::new();
        let mut det = YolactLite::new(&mut store, backbone);
        let _armed = fault::arm(FaultPlan::new(43).point("trainer.loss", Schedule::Always));
        let err = train_detector_robust(
            &mut det,
            &mut store,
            &quick_cfg(),
            0.0,
            &RobustTrainConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            DefconError::RetriesExhausted { attempts: 4, .. }
        ));
    }

    #[test]
    fn truncated_checkpoint_restarts_and_reproduces_the_uninterrupted_run() {
        let _quiet = fault::quiesce();
        let mk = || {
            let backbone =
                BackboneConfig::mini(48, BackboneConfig::uniform_slots(5, SlotKind::Regular));
            let mut store = ParamStore::new();
            let det = YolactLite::new(&mut store, backbone);
            (store, det)
        };
        let cfg = quick_cfg();
        // Uninterrupted reference run, no checkpointing.
        let (mut store_a, mut det_a) = mk();
        let reference = train_detector_robust(
            &mut det_a,
            &mut store_a,
            &cfg,
            0.0,
            &RobustTrainConfig::default(),
        )
        .unwrap();
        // A truncated checkpoint (CRC mismatch) must be discarded; the
        // restart from a fresh seeded model reproduces the reference
        // run's metrics exactly.
        let path = tmp_path("truncated");
        std::fs::write(&path, "0c0ffee0\n{\"epochs_done\":").unwrap();
        let robust = RobustTrainConfig {
            checkpoint: Some(path.clone()),
            ..Default::default()
        };
        let (mut store_b, mut det_b) = mk();
        let recovered =
            train_detector_robust(&mut det_b, &mut store_b, &cfg, 0.0, &robust).unwrap();
        assert_eq!(reference, recovered, "restart must be bit-reproducible");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn completed_checkpoint_resumes_without_retraining() {
        let _quiet = fault::quiesce();
        let path = tmp_path("complete");
        let _ = std::fs::remove_file(&path);
        let robust = RobustTrainConfig {
            checkpoint: Some(path.clone()),
            ..Default::default()
        };
        let cfg = quick_cfg();
        let backbone =
            BackboneConfig::mini(48, BackboneConfig::uniform_slots(5, SlotKind::Regular));
        let mut store = ParamStore::new();
        let mut det = YolactLite::new(&mut store, backbone.clone());
        let first = train_detector_robust(&mut det, &mut store, &cfg, 0.0, &robust).unwrap();
        // Fresh model + completed checkpoint: every epoch is skipped and
        // the stored history and parameters are returned as-is.
        let mut store2 = ParamStore::new();
        let mut det2 = YolactLite::new(&mut store2, backbone);
        let resumed = train_detector_robust(&mut det2, &mut store2, &cfg, 0.0, &robust).unwrap();
        assert_eq!(first, resumed);
        for i in 0..store.len() {
            assert_eq!(
                store.value(store.param_id(i)).data(),
                store2.value(store2.param_id(i)).data(),
                "resumed parameters must match the checkpointed run"
            );
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn training_reduces_loss_and_eval_runs() {
        let _quiet = fault::quiesce();
        let backbone =
            BackboneConfig::mini(48, BackboneConfig::uniform_slots(5, SlotKind::Regular));
        let cfg = quick_cfg();
        let mut store = ParamStore::new();
        let mut det = YolactLite::new(&mut store, backbone);
        let history = train_detector(&mut det, &mut store, &cfg);
        assert_eq!(history.len(), 2);
        assert!(history[1] < history[0], "loss {history:?}");
        let val = prepare(&cfg.dataset, cfg.val_size, 99).samples;
        let map = evaluate_detector(&mut det, &store, &val, 0.05);
        assert!(map.box_map >= 0.0 && map.box_map <= 100.0);
    }

    #[test]
    fn supernet_search_end_to_end() {
        let _quiet = fault::quiesce();
        let backbone =
            BackboneConfig::mini(48, BackboneConfig::uniform_slots(5, SlotKind::Searchable));
        let mut store = ParamStore::new();
        let data = prepare(&DeformedShapesConfig::default(), 8, 42);
        let mut net = DetectorSuperNet::new(&mut store, backbone, data, 4);
        assert_eq!(net.num_slots(), 5);

        let gpu = Gpu::new(DeviceConfig::xavier_agx());
        let keys = net.detector.backbone.all_latency_keys();
        let lut = LatencyLut::build(
            &gpu,
            &keys,
            SamplingMethod::Tex2dPlusPlus,
            OffsetPredictorKind::Lightweight,
        );
        let cfg = SearchConfig {
            search_epochs: 2,
            finetune_epochs: 1,
            iters_per_epoch: 2,
            ..Default::default()
        };
        let out = IntervalSearch::new(cfg, lut).run(&mut net, &mut store);
        assert_eq!(out.choices.len(), 5);
        assert!(!net.detector.backbone.layout().contains('?'));
    }
}
