//! Training / evaluation drivers and the interval-search supernet adapter.

use crate::backbone::BackboneConfig;
use crate::dataset::{batch_images, DeformedShapesConfig, Sample};
use crate::detector::{
    assign_anchors, build_anchors, decode_detections, detection_loss, Anchor, Assignment,
    YolactLite, NUM_CLASSES,
};
use crate::map::{evaluate_map, MapResult};
use defcon_core::lut::LatencyKey;
use defcon_core::search::SearchModel;
use defcon_nn::graph::{ParamId, ParamStore, Tape, Var};
use defcon_nn::modules::LayerChoice;
use defcon_nn::optim::Sgd;

/// Training hyper-parameters.
#[derive(Clone, Debug)]
pub struct TrainConfig {
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Base learning rate (paper: 1e-2, step decay).
    pub lr: f32,
    /// Training images.
    pub train_size: usize,
    /// Validation images.
    pub val_size: usize,
    /// Dataset generator.
    pub dataset: DeformedShapesConfig,
    /// Seed for data generation.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 6,
            batch_size: 8,
            lr: 0.02,
            train_size: 64,
            val_size: 32,
            dataset: DeformedShapesConfig::default(),
            seed: 0x5EED,
        }
    }
}

/// A dataset split with precomputed anchor assignments.
pub struct PreparedData {
    /// The samples.
    pub samples: Vec<Sample>,
    /// Per-sample anchor assignments.
    pub assignments: Vec<Assignment>,
    /// The anchor grid.
    pub anchors: Vec<Anchor>,
}

/// Generates and assigns a split.
pub fn prepare(cfg: &DeformedShapesConfig, n: usize, seed: u64) -> PreparedData {
    let samples = cfg.generate(n, seed);
    let feat = cfg.size / crate::detector::STRIDE;
    let anchors = build_anchors(feat, feat);
    let assignments = samples
        .iter()
        .map(|s| assign_anchors(&anchors, s))
        .collect();
    PreparedData {
        samples,
        assignments,
        anchors,
    }
}

/// Trains `det` on freshly generated data; returns per-epoch mean losses.
pub fn train_detector(det: &mut YolactLite, store: &mut ParamStore, cfg: &TrainConfig) -> Vec<f32> {
    train_detector_reg(det, store, cfg, 0.0)
}

/// [`train_detector`] with an L2 penalty of `offset_reg` on every DCN
/// layer's predicted offsets — the *regularized training* alternative to
/// hard bounding (paper Table V).
pub fn train_detector_reg(
    det: &mut YolactLite,
    store: &mut ParamStore,
    cfg: &TrainConfig,
    offset_reg: f32,
) -> Vec<f32> {
    let data = prepare(&cfg.dataset, cfg.train_size, cfg.seed);
    let steps = cfg.epochs * cfg.train_size.div_ceil(cfg.batch_size);
    let mut opt = Sgd::paper_schedule(cfg.lr, steps);
    det.set_training(true);
    let mut history = Vec::with_capacity(cfg.epochs);
    for _epoch in 0..cfg.epochs {
        let mut epoch_loss = 0.0f32;
        let mut batches = 0usize;
        for chunk_start in (0..cfg.train_size).step_by(cfg.batch_size) {
            let end = (chunk_start + cfg.batch_size).min(cfg.train_size);
            let samples = &data.samples[chunk_start..end];
            let assignments = &data.assignments[chunk_start..end];
            store.zero_grads();
            let mut tape = Tape::new();
            let x = tape.input(batch_images(samples));
            let out = det.forward(&mut tape, store, x);
            let mut loss = detection_loss(&mut tape, &out, &data.anchors, assignments, samples);
            if offset_reg > 0.0 {
                for off in det.backbone.dcn_offsets() {
                    let pen = defcon_nn::loss::l2_penalty(&mut tape, off, offset_reg);
                    loss = defcon_nn::ops::add(&mut tape, loss, pen);
                }
            }
            epoch_loss += tape.value(loss).data()[0];
            batches += 1;
            tape.backward(loss);
            tape.write_param_grads(store);
            opt.step(store);
        }
        history.push(epoch_loss / batches.max(1) as f32);
    }
    history
}

/// Runs inference on a validation split and computes box/mask mAP.
pub fn evaluate_detector(
    det: &mut YolactLite,
    store: &ParamStore,
    samples: &[Sample],
    score_threshold: f32,
) -> MapResult {
    det.set_training(false);
    let img_size = samples[0].image.dims()[3];
    let mut all_dets = Vec::with_capacity(samples.len());
    for s in samples {
        let mut tape = Tape::new();
        let x = tape.input(s.image.clone());
        let out = det.forward(&mut tape, store, x);
        let dets = decode_detections(
            tape.value(out.cls),
            tape.value(out.boxes),
            tape.value(out.coeffs),
            tape.value(out.protos),
            0,
            img_size,
            score_threshold,
            0.5,
        );
        all_dets.push(dets);
    }
    det.set_training(true);
    evaluate_map(samples, &all_dets, NUM_CLASSES)
}

/// Convenience: build → train → evaluate one backbone layout; returns the
/// trained detector and its validation mAP.
pub fn train_and_eval(
    backbone: BackboneConfig,
    cfg: &TrainConfig,
) -> (YolactLite, ParamStore, MapResult) {
    let mut store = ParamStore::new();
    let mut det = YolactLite::new(&mut store, backbone);
    train_detector(&mut det, &mut store, cfg);
    let val = prepare(&cfg.dataset, cfg.val_size, cfg.seed ^ 0xFFFF_0000).samples;
    let map = evaluate_detector(&mut det, &store, &val, 0.05);
    (det, store, map)
}

/// The supernet adapter: plugs a `YolactLite` with searchable backbone
/// slots into `defcon-core`'s interval search.
pub struct DetectorSuperNet {
    /// The detector under search.
    pub detector: YolactLite,
    /// Training data for the search phase.
    pub data: PreparedData,
    /// Mini-batch size.
    pub batch_size: usize,
    searchable_blocks: Vec<usize>,
}

impl DetectorSuperNet {
    /// Builds the supernet (backbone slots should be `SlotKind::Searchable`).
    pub fn new(
        store: &mut ParamStore,
        backbone: BackboneConfig,
        data: PreparedData,
        batch_size: usize,
    ) -> Self {
        let detector = YolactLite::new(store, backbone);
        let searchable_blocks = detector.backbone.searchable_slots();
        DetectorSuperNet {
            detector,
            data,
            batch_size,
            searchable_blocks,
        }
    }
}

impl SearchModel for DetectorSuperNet {
    fn num_slots(&self) -> usize {
        self.searchable_blocks.len()
    }

    fn alpha(&self, i: usize) -> ParamId {
        self.detector.backbone.alpha_of(self.searchable_blocks[i])
    }

    fn latency_key(&self, i: usize) -> LatencyKey {
        self.detector
            .backbone
            .latency_key_of(self.searchable_blocks[i])
    }

    fn set_temperature(&mut self, tau: f32) {
        self.detector.backbone.set_temperature(tau);
    }

    fn forward_loss(&mut self, tape: &mut Tape, store: &ParamStore, batch: usize) -> Var {
        let n = self.data.samples.len();
        let start = (batch * self.batch_size) % n;
        let end = (start + self.batch_size).min(n);
        let samples = &self.data.samples[start..end];
        let assignments = &self.data.assignments[start..end];
        let x = tape.input(batch_images(samples));
        let out = self.detector.forward(tape, store, x);
        detection_loss(tape, &out, &self.data.anchors, assignments, samples)
    }

    fn freeze(&mut self, store: &ParamStore) -> Vec<LayerChoice> {
        self.detector.backbone.freeze(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backbone::SlotKind;
    use defcon_core::lut::LatencyLut;
    use defcon_core::search::{IntervalSearch, SearchConfig};
    use defcon_gpusim::{DeviceConfig, Gpu};
    use defcon_kernels::op::{OffsetPredictorKind, SamplingMethod};

    fn quick_cfg() -> TrainConfig {
        TrainConfig {
            epochs: 2,
            batch_size: 4,
            train_size: 16,
            val_size: 8,
            ..Default::default()
        }
    }

    #[test]
    fn training_reduces_loss_and_eval_runs() {
        let backbone =
            BackboneConfig::mini(48, BackboneConfig::uniform_slots(5, SlotKind::Regular));
        let cfg = quick_cfg();
        let mut store = ParamStore::new();
        let mut det = YolactLite::new(&mut store, backbone);
        let history = train_detector(&mut det, &mut store, &cfg);
        assert_eq!(history.len(), 2);
        assert!(history[1] < history[0], "loss {history:?}");
        let val = prepare(&cfg.dataset, cfg.val_size, 99).samples;
        let map = evaluate_detector(&mut det, &store, &val, 0.05);
        assert!(map.box_map >= 0.0 && map.box_map <= 100.0);
    }

    #[test]
    fn supernet_search_end_to_end() {
        let backbone =
            BackboneConfig::mini(48, BackboneConfig::uniform_slots(5, SlotKind::Searchable));
        let mut store = ParamStore::new();
        let data = prepare(&DeformedShapesConfig::default(), 8, 42);
        let mut net = DetectorSuperNet::new(&mut store, backbone, data, 4);
        assert_eq!(net.num_slots(), 5);

        let gpu = Gpu::new(DeviceConfig::xavier_agx());
        let keys = net.detector.backbone.all_latency_keys();
        let lut = LatencyLut::build(
            &gpu,
            &keys,
            SamplingMethod::Tex2dPlusPlus,
            OffsetPredictorKind::Lightweight,
        );
        let cfg = SearchConfig {
            search_epochs: 2,
            finetune_epochs: 1,
            iters_per_epoch: 2,
            ..Default::default()
        };
        let out = IntervalSearch::new(cfg, lut).run(&mut net, &mut store);
        assert_eq!(out.choices.len(), 5);
        assert!(!net.detector.backbone.layout().contains('?'));
    }
}
