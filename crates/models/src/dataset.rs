//! The synthetic *deformed shapes* dataset.
//!
//! Each image contains 1–3 objects from a small set of geometric classes,
//! rendered under a random geometric deformation: rotation, anisotropic
//! scale, shear and a sinusoidal bend. Rigid receptive fields struggle to
//! localize and segment heavily warped shapes precisely; flexible sampling
//! (deformable convolution) does not — which is the property Table I and
//! Fig. 5/6 of the paper measure on COCO, transplanted to a dataset we can
//! generate and train on in seconds.

use defcon_support::rng::{Rng, SeedableRng, StdRng};
use defcon_tensor::Tensor;

/// Object classes (the shape taxonomy).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShapeClass {
    /// Filled ellipse.
    Ellipse,
    /// Filled rectangle.
    Rectangle,
    /// Filled triangle.
    Triangle,
}

impl ShapeClass {
    /// All classes, index order = class id.
    pub const ALL: [ShapeClass; 3] = [
        ShapeClass::Ellipse,
        ShapeClass::Rectangle,
        ShapeClass::Triangle,
    ];

    /// Class id (0-based).
    pub fn id(&self) -> usize {
        match self {
            ShapeClass::Ellipse => 0,
            ShapeClass::Rectangle => 1,
            ShapeClass::Triangle => 2,
        }
    }
}

/// One ground-truth object.
#[derive(Clone, Debug)]
pub struct GtObject {
    /// Class id.
    pub class: usize,
    /// Tight bounding box `(y0, x0, y1, x1)` in pixels (exclusive max).
    pub bbox: [f32; 4],
    /// Binary mask at image resolution (`h*w`, row-major).
    pub mask: Vec<bool>,
}

/// One image with its ground truth.
#[derive(Clone, Debug)]
pub struct Sample {
    /// Image `[1, 1, H, W]` (grayscale, values in [0, 1]).
    pub image: Tensor,
    /// Objects in the image.
    pub objects: Vec<GtObject>,
}

/// Dataset generator configuration.
#[derive(Clone, Copy, Debug)]
pub struct DeformedShapesConfig {
    /// Image side (square images).
    pub size: usize,
    /// Maximum objects per image (min 1).
    pub max_objects: usize,
    /// Deformation strength in `[0, 1]`: scales rotation range, shear,
    /// anisotropy and bending amplitude.
    pub deformation: f32,
    /// Additive background noise std.
    pub noise: f32,
}

impl Default for DeformedShapesConfig {
    fn default() -> Self {
        DeformedShapesConfig {
            size: 48,
            max_objects: 2,
            deformation: 0.8,
            noise: 0.05,
        }
    }
}

impl DeformedShapesConfig {
    /// Generates `n` samples deterministically from `seed`.
    pub fn generate(&self, n: usize, seed: u64) -> Vec<Sample> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| self.sample(&mut rng)).collect()
    }

    /// Generates one sample.
    pub fn sample(&self, rng: &mut StdRng) -> Sample {
        let s = self.size;
        let mut img = vec![0.0f32; s * s];
        // Textured background.
        for v in img.iter_mut() {
            *v = 0.1 + self.noise * rng.gen_range(-1.0f32..1.0);
        }

        let n_obj = rng.gen_range(1..=self.max_objects.max(1));
        let mut objects = Vec::with_capacity(n_obj);
        for _ in 0..n_obj {
            let class = ShapeClass::ALL[rng.gen_range(0..ShapeClass::ALL.len())];
            let obj = self.render_object(class, rng, &mut img);
            // Reject degenerate (fully occluded / off-image) objects.
            if obj.mask.iter().filter(|&&m| m).count() >= 8 {
                objects.push(obj);
            }
        }
        // Pixel noise on top of everything.
        for v in img.iter_mut() {
            *v = (*v + self.noise * rng.gen_range(-1.0f32..1.0)).clamp(0.0, 1.0);
        }
        Sample {
            image: Tensor::from_vec(img, &[1, 1, s, s]),
            objects,
        }
    }

    /// Renders one warped shape into `img`, returning its ground truth.
    fn render_object(&self, class: ShapeClass, rng: &mut StdRng, img: &mut [f32]) -> GtObject {
        let s = self.size as f32;
        let d = self.deformation;
        // Object frame.
        let cy = rng.gen_range(0.25 * s..0.75 * s);
        let cx = rng.gen_range(0.25 * s..0.75 * s);
        let base_r = rng.gen_range(0.12 * s..0.22 * s);
        // Deformation parameters.
        let theta = rng.gen_range(-std::f32::consts::PI..std::f32::consts::PI) * d;
        let aniso = 1.0 + rng.gen_range(0.0f32..1.2) * d; // anisotropic scale
        let shear = rng.gen_range(-0.7f32..0.7) * d;
        let bend_amp = rng.gen_range(0.0f32..0.45) * d; // sinusoidal bend
        let bend_freq = rng.gen_range(1.0f32..3.0);
        let intensity = rng.gen_range(0.55f32..0.95);

        let (sin_t, cos_t) = theta.sin_cos();
        let mut mask = vec![false; self.size * self.size];
        let (mut y0, mut x0, mut y1, mut x1) = (f32::MAX, f32::MAX, f32::MIN, f32::MIN);

        for py in 0..self.size {
            for px in 0..self.size {
                // Map the pixel into the object's canonical frame by
                // inverting the deformation: translate, un-bend, un-rotate,
                // un-shear, un-scale.
                let mut y = py as f32 - cy;
                let x = px as f32 - cx;
                // Inverse sinusoidal bend (applied along x as a y-shift).
                y -= bend_amp * base_r * (bend_freq * x / base_r).sin();
                // Inverse rotation.
                let (ry, rx) = (cos_t * y + sin_t * x, -sin_t * y + cos_t * x);
                // Inverse shear (x += shear * y on the forward map).
                let (ry, rx) = (ry, rx - shear * ry);
                // Inverse anisotropic scale on x.
                let (uy, ux) = (ry / base_r, rx / (base_r * aniso));
                let inside = match class {
                    ShapeClass::Ellipse => uy * uy + ux * ux <= 1.0,
                    ShapeClass::Rectangle => uy.abs() <= 0.8 && ux.abs() <= 0.8,
                    ShapeClass::Triangle => {
                        // Upright triangle in canonical frame.
                        uy <= 0.9 && uy >= -0.9 && ux.abs() <= (0.9 - uy) * 0.55
                    }
                };
                if inside {
                    let idx = py * self.size + px;
                    img[idx] = intensity;
                    mask[idx] = true;
                    y0 = y0.min(py as f32);
                    x0 = x0.min(px as f32);
                    y1 = y1.max(py as f32 + 1.0);
                    x1 = x1.max(px as f32 + 1.0);
                }
            }
        }
        if y0 > y1 {
            // Nothing rendered (warped fully off-image).
            (y0, x0, y1, x1) = (0.0, 0.0, 0.0, 0.0);
        }
        GtObject {
            class: class.id(),
            bbox: [y0, x0, y1, x1],
            mask,
        }
    }
}

/// Stacks `samples[range]` into one `[B, 1, H, W]` batch tensor.
pub fn batch_images(samples: &[Sample]) -> Tensor {
    assert!(!samples.is_empty());
    let dims = samples[0].image.dims().to_vec();
    let (h, w) = (dims[2], dims[3]);
    let mut out = Tensor::zeros(&[samples.len(), 1, h, w]);
    for (i, s) in samples.iter().enumerate() {
        let dst = i * h * w;
        out.data_mut()[dst..dst + h * w].copy_from_slice(s.image.data());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = DeformedShapesConfig::default();
        let a = cfg.generate(3, 5);
        let b = cfg.generate(3, 5);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.image, y.image);
            assert_eq!(x.objects.len(), y.objects.len());
        }
    }

    #[test]
    fn every_sample_has_objects_with_valid_boxes() {
        let cfg = DeformedShapesConfig::default();
        for s in cfg.generate(20, 11) {
            assert!(!s.objects.is_empty(), "sample without objects");
            for o in &s.objects {
                let [y0, x0, y1, x1] = o.bbox;
                assert!(y1 > y0 && x1 > x0, "degenerate bbox {:?}", o.bbox);
                assert!(y1 <= cfg.size as f32 && x1 <= cfg.size as f32);
                let area = o.mask.iter().filter(|&&m| m).count();
                assert!(area >= 8, "mask area {area}");
            }
        }
    }

    #[test]
    fn mask_lies_within_bbox() {
        let cfg = DeformedShapesConfig::default();
        for s in cfg.generate(10, 13) {
            for o in &s.objects {
                let [y0, x0, y1, x1] = o.bbox;
                for py in 0..cfg.size {
                    for px in 0..cfg.size {
                        if o.mask[py * cfg.size + px] {
                            assert!(
                                py as f32 >= y0
                                    && (py as f32) < y1
                                    && px as f32 >= x0
                                    && (px as f32) < x1,
                                "mask pixel ({py},{px}) outside bbox {:?}",
                                o.bbox
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn class_distribution_covers_all_classes() {
        let cfg = DeformedShapesConfig::default();
        let samples = cfg.generate(60, 17);
        let mut seen = [false; 3];
        for s in &samples {
            for o in &s.objects {
                seen[o.class] = true;
            }
        }
        assert!(seen.iter().all(|&v| v), "classes seen: {seen:?}");
    }

    #[test]
    fn zero_deformation_keeps_shapes_rigid() {
        // With deformation 0, a rectangle's mask should fill its bbox almost
        // completely (it is axis-aligned).
        let cfg = DeformedShapesConfig {
            deformation: 0.0,
            max_objects: 1,
            noise: 0.0,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let mut img = vec![0.0f32; cfg.size * cfg.size];
            let o = cfg.render_object(ShapeClass::Rectangle, &mut rng, &mut img);
            let [y0, x0, y1, x1] = o.bbox;
            let box_area = (y1 - y0) * (x1 - x0);
            let mask_area = o.mask.iter().filter(|&&m| m).count() as f32;
            if box_area > 0.0 {
                assert!(
                    mask_area / box_area > 0.95,
                    "rigid rectangle fill {}",
                    mask_area / box_area
                );
            }
        }
    }

    #[test]
    fn batch_images_stacks() {
        let cfg = DeformedShapesConfig::default();
        let samples = cfg.generate(4, 1);
        let b = batch_images(&samples);
        assert_eq!(b.dims(), &[4, 1, cfg.size, cfg.size]);
        assert_eq!(&b.data()[0..10], &samples[0].image.data()[0..10]);
    }
}
