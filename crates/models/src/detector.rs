//! `YolactLite`: a single-shot instance segmenter in the YOLACT mould.
//!
//! Architecture (input `[B, 1, S, S]`, default `S = 48`):
//!
//! ```text
//! backbone (3 stages) ──► S2 (16ch, S/4) ── lateral 1×1 ─┐
//!                         S3 (32ch, S/8) ── lateral 1×1 ─ upsample ─ + ─► P (F ch, S/4)
//! P ──► protonet (3×3,3×3,1×1) ─► M prototype masks  (S/4)
//! P ──► head 3×3 ─► { class map  A·(K+1)
//!                   { box map    A·4
//!                   { coeff map  A·M (tanh)
//! ```
//!
//! One detection level at stride 4 with `A` square anchor scales. Training
//! uses softmax CE with OHEM-style negative selection (3:1), smooth-L1 box
//! regression on positives, and YOLACT's mask loss: BCE between the ground
//! truth and `sigmoid(Σ coeffₖ · protoₖ)` inside the GT box.

use crate::backbone::{Backbone, BackboneConfig};
use crate::dataset::Sample;
use defcon_nn::graph::{ParamStore, Tape, Var};
use defcon_nn::modules::{Conv2d, ConvBnRelu, Module};
use defcon_nn::ops;
use defcon_tensor::conv::Conv2dParams;
use defcon_tensor::Tensor;

/// Number of object classes (background is an extra logit).
pub const NUM_CLASSES: usize = 3;
/// Prototype masks.
pub const NUM_PROTOS: usize = 4;
/// Anchor scales (square anchors, pixels).
pub const ANCHOR_SCALES: [f32; 2] = [16.0, 32.0];
/// Detection stride.
pub const STRIDE: usize = 4;

/// One decoded detection.
#[derive(Clone, Debug)]
pub struct Detection {
    /// Class id (0-based, no background).
    pub class: usize,
    /// Confidence in `[0, 1]`.
    pub score: f32,
    /// Box `(y0, x0, y1, x1)` in image pixels.
    pub bbox: [f32; 4],
    /// Instance mask at image resolution (row-major booleans).
    pub mask: Vec<bool>,
}

/// An anchor's box `(cy, cx, h, w)` in image pixels.
#[derive(Clone, Copy, Debug)]
pub struct Anchor {
    /// Center y.
    pub cy: f32,
    /// Center x.
    pub cx: f32,
    /// Height.
    pub h: f32,
    /// Width.
    pub w: f32,
}

impl Anchor {
    /// Corner form `(y0, x0, y1, x1)`.
    pub fn corners(&self) -> [f32; 4] {
        [
            self.cy - self.h / 2.0,
            self.cx - self.w / 2.0,
            self.cy + self.h / 2.0,
            self.cx + self.w / 2.0,
        ]
    }
}

/// IoU of two corner-form boxes.
pub fn box_iou(a: &[f32; 4], b: &[f32; 4]) -> f32 {
    let iy0 = a[0].max(b[0]);
    let ix0 = a[1].max(b[1]);
    let iy1 = a[2].min(b[2]);
    let ix1 = a[3].min(b[3]);
    let inter = (iy1 - iy0).max(0.0) * (ix1 - ix0).max(0.0);
    let area_a = (a[2] - a[0]).max(0.0) * (a[3] - a[1]).max(0.0);
    let area_b = (b[2] - b[0]).max(0.0) * (b[3] - b[1]).max(0.0);
    let union = area_a + area_b - inter;
    if union <= 0.0 {
        0.0
    } else {
        inter / union
    }
}

/// The anchor grid of one detection level.
pub fn build_anchors(feat_h: usize, feat_w: usize) -> Vec<Anchor> {
    let mut anchors = Vec::with_capacity(ANCHOR_SCALES.len() * feat_h * feat_w);
    for &scale in &ANCHOR_SCALES {
        for y in 0..feat_h {
            for x in 0..feat_w {
                anchors.push(Anchor {
                    cy: (y as f32 + 0.5) * STRIDE as f32,
                    cx: (x as f32 + 0.5) * STRIDE as f32,
                    h: scale,
                    w: scale,
                });
            }
        }
    }
    anchors
}

/// Encodes a GT corner box against an anchor → regression target
/// `(ty, tx, th, tw)`.
pub fn encode_box(anchor: &Anchor, gt: &[f32; 4]) -> [f32; 4] {
    let gh = (gt[2] - gt[0]).max(1e-3);
    let gw = (gt[3] - gt[1]).max(1e-3);
    let gcy = (gt[0] + gt[2]) / 2.0;
    let gcx = (gt[1] + gt[3]) / 2.0;
    [
        (gcy - anchor.cy) / anchor.h,
        (gcx - anchor.cx) / anchor.w,
        (gh / anchor.h).ln(),
        (gw / anchor.w).ln(),
    ]
}

/// Decodes a regression vector against an anchor → corner box.
pub fn decode_box(anchor: &Anchor, t: &[f32; 4]) -> [f32; 4] {
    let cy = anchor.cy + t[0] * anchor.h;
    let cx = anchor.cx + t[1] * anchor.w;
    let h = anchor.h * t[2].clamp(-4.0, 4.0).exp();
    let w = anchor.w * t[3].clamp(-4.0, 4.0).exp();
    [cy - h / 2.0, cx - w / 2.0, cy + h / 2.0, cx + w / 2.0]
}

/// Raw head outputs for one batch (Vars on the current tape).
pub struct DetOutputs {
    /// Class logits `[B, A·(K+1), Hf, Wf]`.
    pub cls: Var,
    /// Box regressions `[B, A·4, Hf, Wf]`.
    pub boxes: Var,
    /// Mask coefficients `[B, A·M, Hf, Wf]` (tanh-activated).
    pub coeffs: Var,
    /// Prototype masks `[B, M, Hf, Wf]` (ReLU-activated).
    pub protos: Var,
    /// Feature extent.
    pub feat_hw: (usize, usize),
}

/// Anchor-to-GT assignment for one image.
#[derive(Clone, Debug)]
pub struct Assignment {
    /// Per-anchor label: `None` = ignore, `Some(0)` = background,
    /// `Some(c+1)` = class `c`.
    pub labels: Vec<Option<usize>>,
    /// Per-anchor GT index (valid where label is a foreground class).
    pub gt_index: Vec<usize>,
}

/// Computes the anchor assignment for one image (IoU ≥ 0.5 positive,
/// < 0.4 negative, best anchor per GT forced positive).
pub fn assign_anchors(anchors: &[Anchor], sample: &Sample) -> Assignment {
    let mut labels: Vec<Option<usize>> = vec![Some(0); anchors.len()];
    let mut gt_index = vec![usize::MAX; anchors.len()];
    let mut best_iou = vec![0.0f32; anchors.len()];
    for (gi, obj) in sample.objects.iter().enumerate() {
        let mut best_anchor = 0usize;
        let mut best = -1.0f32;
        for (ai, a) in anchors.iter().enumerate() {
            let iou = box_iou(&a.corners(), &obj.bbox);
            if iou > best {
                best = iou;
                best_anchor = ai;
            }
            if iou >= 0.5 && iou > best_iou[ai] {
                labels[ai] = Some(obj.class + 1);
                gt_index[ai] = gi;
                best_iou[ai] = iou;
            } else if iou >= 0.4 && labels[ai] == Some(0) {
                labels[ai] = None; // ignore band
            }
        }
        // Force-match the best anchor so every GT has a positive.
        labels[best_anchor] = Some(obj.class + 1);
        gt_index[best_anchor] = gi;
        best_iou[best_anchor] = best.max(best_iou[best_anchor]);
    }
    Assignment { labels, gt_index }
}

/// The detector.
pub struct YolactLite {
    /// Feature extractor.
    pub backbone: Backbone,
    lat2: Conv2d,
    lat3: Conv2d,
    smooth: ConvBnRelu,
    proto1: ConvBnRelu,
    proto2: Conv2d,
    head_shared: ConvBnRelu,
    head_cls: Conv2d,
    head_box: Conv2d,
    head_coeff: Conv2d,
    /// Neck feature channels.
    pub feat_channels: usize,
}

impl YolactLite {
    /// Builds the detector over a backbone config.
    pub fn new(store: &mut ParamStore, backbone_cfg: BackboneConfig) -> Self {
        let f = 24usize;
        let chans = backbone_cfg.stage_channels.clone();
        let backbone = Backbone::new(store, backbone_cfg);
        let c2 = chans[chans.len() - 2];
        let c3 = chans[chans.len() - 1];
        let k1 = Conv2dParams {
            kernel: 1,
            stride: 1,
            pad: 0,
            dilation: 1,
        };
        let a = ANCHOR_SCALES.len();
        YolactLite {
            backbone,
            lat2: Conv2d::new(store, "neck.lat2", c2, f, k1, true, 0xA1),
            lat3: Conv2d::new(store, "neck.lat3", c3, f, k1, true, 0xA2),
            smooth: ConvBnRelu::new(
                store,
                "neck.smooth",
                f,
                f,
                Conv2dParams::same(3),
                true,
                0xA3,
            ),
            proto1: ConvBnRelu::new(store, "proto.c1", f, f, Conv2dParams::same(3), true, 0xA4),
            proto2: Conv2d::new(store, "proto.c2", f, NUM_PROTOS, k1, true, 0xA5),
            head_shared: ConvBnRelu::new(
                store,
                "head.shared",
                f,
                f,
                Conv2dParams::same(3),
                true,
                0xA6,
            ),
            head_cls: Conv2d::new(store, "head.cls", f, a * (NUM_CLASSES + 1), k1, true, 0xA7),
            head_box: Conv2d::new(store, "head.box", f, a * 4, k1, true, 0xA8),
            head_coeff: Conv2d::new(store, "head.coeff", f, a * NUM_PROTOS, k1, true, 0xA9),
            feat_channels: f,
        }
    }

    /// Train/eval switch.
    pub fn set_training(&mut self, training: bool) {
        self.backbone.set_training(training);
        self.smooth.set_training(training);
        self.proto1.set_training(training);
        self.head_shared.set_training(training);
    }

    /// Records the forward pass for an image batch.
    pub fn forward(&mut self, tape: &mut Tape, store: &ParamStore, images: Var) -> DetOutputs {
        let feats = self.backbone.forward(tape, store, images);
        let n = feats.len();
        let s2 = feats[n - 2];
        let s3 = feats[n - 1];
        let l2 = self.lat2.forward(tape, store, s2);
        let l3 = self.lat3.forward(tape, store, s3);
        let up = ops::upsample2x_op(tape, l3);
        let merged = ops::add(tape, l2, up);
        let p = self.smooth.forward(tape, store, merged);
        let dims = tape.value(p).dims().to_vec();
        let feat_hw = (dims[2], dims[3]);

        let pr = self.proto1.forward(tape, store, p);
        let pr = self.proto2.forward(tape, store, pr);
        let protos = ops::relu(tape, pr);

        let h = self.head_shared.forward(tape, store, p);
        let cls = self.head_cls.forward(tape, store, h);
        let boxes = self.head_box.forward(tape, store, h);
        let coeff_raw = self.head_coeff.forward(tape, store, h);
        let coeffs = ops::tanh(tape, coeff_raw);
        DetOutputs {
            cls,
            boxes,
            coeffs,
            protos,
            feat_hw,
        }
    }
}

// ---------------------------------------------------------------------------
// Training losses (custom tape ops over the head maps)
// ---------------------------------------------------------------------------

/// Flat anchor index of `(scale s, cell y, cell x)`.
#[inline]
fn anchor_index(s: usize, y: usize, x: usize, hf: usize, wf: usize) -> usize {
    (s * hf + y) * wf + x
}

/// Reads the logit vector of one anchor from the class map.
fn anchor_logits(map: &Tensor, b: usize, s: usize, y: usize, x: usize) -> Vec<f32> {
    let k1 = NUM_CLASSES + 1;
    (0..k1).map(|c| map.at4(b, s * k1 + c, y, x)).collect()
}

fn softmax_ce(logits: &[f32], label: usize) -> (f32, Vec<f32>) {
    let m = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = logits.iter().map(|v| (v - m).exp()).collect();
    let z: f32 = exps.iter().sum();
    let probs: Vec<f32> = exps.iter().map(|e| e / z).collect();
    let loss = -(probs[label].max(1e-12)).ln();
    let mut grad = probs;
    grad[label] -= 1.0;
    (loss, grad)
}

/// Classification loss with OHEM-style negative mining: all positives plus
/// the `neg_ratio`× hardest negatives contribute, averaged by the number of
/// contributors. Gradients flow into the class map.
pub fn det_class_loss(
    tape: &mut Tape,
    cls: Var,
    assignments: &[Assignment],
    neg_ratio: usize,
) -> Var {
    let map = tape.value(cls).clone();
    let (bsz, _, hf, wf) = map.shape().nchw();
    let scales = ANCHOR_SCALES.len();
    let k1 = NUM_CLASSES + 1;

    // Gather (b, s, y, x, label, loss) for every non-ignored anchor.
    struct Item {
        b: usize,
        s: usize,
        y: usize,
        x: usize,
        label: usize,
        loss: f32,
    }
    let mut positives = Vec::new();
    let mut negatives = Vec::new();
    for (b, asg) in assignments.iter().enumerate().take(bsz) {
        for s in 0..scales {
            for y in 0..hf {
                for x in 0..wf {
                    let ai = anchor_index(s, y, x, hf, wf);
                    let Some(label) = asg.labels[ai] else {
                        continue;
                    };
                    let (loss, _) = softmax_ce(&anchor_logits(&map, b, s, y, x), label);
                    let item = Item {
                        b,
                        s,
                        y,
                        x,
                        label,
                        loss,
                    };
                    if label > 0 {
                        positives.push(item);
                    } else {
                        negatives.push(item);
                    }
                }
            }
        }
    }
    // Hard-negative selection.
    negatives.sort_by(|a, b| b.loss.total_cmp(&a.loss));
    let keep_neg = (positives.len() * neg_ratio)
        .max(neg_ratio)
        .min(negatives.len());
    negatives.truncate(keep_neg);
    let selected: Vec<Item> = positives.into_iter().chain(negatives).collect();
    let denom = selected.len().max(1) as f32;
    let total: f32 = selected.iter().map(|i| i.loss).sum::<f32>() / denom;

    let dims = map.dims().to_vec();
    tape.push(
        Tensor::from_vec(vec![total], &[1]),
        vec![cls],
        Some(Box::new(move |gy| {
            let g = gy.data()[0] / denom;
            let mut grad = Tensor::zeros(&dims);
            for it in &selected {
                let logits = anchor_logits(&map, it.b, it.s, it.y, it.x);
                let (_, glog) = softmax_ce(&logits, it.label);
                for (c, gv) in glog.iter().enumerate() {
                    *grad.at4_mut(it.b, it.s * k1 + c, it.y, it.x) += g * gv;
                }
            }
            vec![grad]
        })),
    )
}

/// Smooth-L1 box-regression loss over positive anchors.
pub fn det_box_loss(
    tape: &mut Tape,
    boxes: Var,
    anchors: &[Anchor],
    assignments: &[Assignment],
    samples: &[Sample],
) -> Var {
    let map = tape.value(boxes).clone();
    let (bsz, _, hf, wf) = map.shape().nchw();
    let scales = ANCHOR_SCALES.len();
    let beta = 1.0f32;

    struct Item {
        b: usize,
        s: usize,
        y: usize,
        x: usize,
        target: [f32; 4],
    }
    let mut items = Vec::new();
    for (b, asg) in assignments.iter().enumerate().take(bsz) {
        for s in 0..scales {
            for y in 0..hf {
                for x in 0..wf {
                    let ai = anchor_index(s, y, x, hf, wf);
                    if matches!(asg.labels[ai], Some(l) if l > 0) {
                        let gt = &samples[b].objects[asg.gt_index[ai]];
                        items.push(Item {
                            b,
                            s,
                            y,
                            x,
                            target: encode_box(&anchors[ai], &gt.bbox),
                        });
                    }
                }
            }
        }
    }
    let denom = (items.len() * 4).max(1) as f32;
    let mut total = 0.0f32;
    for it in &items {
        for d in 0..4 {
            let pred = map.at4(it.b, it.s * 4 + d, it.y, it.x);
            let diff = (pred - it.target[d]).abs();
            total += if diff < beta {
                0.5 * diff * diff / beta
            } else {
                diff - 0.5 * beta
            };
        }
    }
    total /= denom;

    let dims = map.dims().to_vec();
    tape.push(
        Tensor::from_vec(vec![total], &[1]),
        vec![boxes],
        Some(Box::new(move |gy| {
            let g = gy.data()[0] / denom;
            let mut grad = Tensor::zeros(&dims);
            for it in &items {
                for d in 0..4 {
                    let pred = map.at4(it.b, it.s * 4 + d, it.y, it.x);
                    let diff = pred - it.target[d];
                    let gd = if diff.abs() < beta {
                        diff / beta
                    } else {
                        diff.signum()
                    };
                    *grad.at4_mut(it.b, it.s * 4 + d, it.y, it.x) += g * gd;
                }
            }
            vec![grad]
        })),
    )
}

/// YOLACT mask loss: for each positive anchor, assemble
/// `sigmoid(Σₖ coeffₖ · protoₖ)` and take BCE against the (downsampled)
/// ground-truth mask *inside the GT box*. Gradients flow to both the
/// prototypes and the coefficient map.
pub fn det_mask_loss(
    tape: &mut Tape,
    protos: Var,
    coeffs: Var,
    assignments: &[Assignment],
    samples: &[Sample],
) -> Var {
    let pmap = tape.value(protos).clone();
    let cmap = tape.value(coeffs).clone();
    let (bsz, m, hf, wf) = pmap.shape().nchw();
    debug_assert_eq!(m, NUM_PROTOS);
    let scales = ANCHOR_SCALES.len();

    struct Item {
        b: usize,
        s: usize,
        y: usize,
        x: usize,
        /// Crop region in proto coordinates (y0, x0, y1, x1).
        crop: [usize; 4],
        /// GT mask downsampled to proto resolution over the crop region
        /// (row-major within the crop).
        gt: Vec<f32>,
    }
    let mut items = Vec::new();
    for (b, asg) in assignments.iter().enumerate().take(bsz) {
        let img_size = samples[b].image.dims()[3];
        let ds = img_size / wf; // downsample factor image → proto grid
        for s in 0..scales {
            for y in 0..hf {
                for x in 0..wf {
                    let ai = anchor_index(s, y, x, hf, wf);
                    if !matches!(asg.labels[ai], Some(l) if l > 0) {
                        continue;
                    }
                    let gt = &samples[b].objects[asg.gt_index[ai]];
                    let [by0, bx0, by1, bx1] = gt.bbox;
                    let crop = [
                        (by0 as usize / ds).min(hf - 1),
                        (bx0 as usize / ds).min(wf - 1),
                        ((by1 as usize).div_ceil(ds)).clamp(1, hf),
                        ((bx1 as usize).div_ceil(ds)).clamp(1, wf),
                    ];
                    if crop[2] <= crop[0] || crop[3] <= crop[1] {
                        continue;
                    }
                    // Downsample GT mask by area fraction ≥ 0.5.
                    let mut gt_ds = Vec::with_capacity((crop[2] - crop[0]) * (crop[3] - crop[1]));
                    for py in crop[0]..crop[2] {
                        for px in crop[1]..crop[3] {
                            let mut cnt = 0usize;
                            for iy in 0..ds {
                                for ix in 0..ds {
                                    let (yy, xx) = (py * ds + iy, px * ds + ix);
                                    if yy < img_size && xx < img_size && gt.mask[yy * img_size + xx]
                                    {
                                        cnt += 1;
                                    }
                                }
                            }
                            gt_ds.push(if cnt * 2 >= ds * ds { 1.0 } else { 0.0 });
                        }
                    }
                    items.push(Item {
                        b,
                        s,
                        y,
                        x,
                        crop,
                        gt: gt_ds,
                    });
                }
            }
        }
    }

    // Forward loss.
    let assemble = |pmap: &Tensor, cmap: &Tensor, it: &Item| -> Vec<f32> {
        let mut vals = Vec::with_capacity(it.gt.len());
        for py in it.crop[0]..it.crop[2] {
            for px in it.crop[1]..it.crop[3] {
                let mut acc = 0.0f32;
                for k in 0..NUM_PROTOS {
                    acc += cmap.at4(it.b, it.s * NUM_PROTOS + k, it.y, it.x)
                        * pmap.at4(it.b, k, py, px);
                }
                vals.push(1.0 / (1.0 + (-acc).exp()));
            }
        }
        vals
    };
    let mut total = 0.0f32;
    let mut pixels = 0usize;
    for it in &items {
        let pred = assemble(&pmap, &cmap, it);
        for (p, t) in pred.iter().zip(it.gt.iter()) {
            total -= t * p.max(1e-7).ln() + (1.0 - t) * (1.0 - p).max(1e-7).ln();
        }
        pixels += it.gt.len();
    }
    let denom = pixels.max(1) as f32;
    total /= denom;

    let pdims = pmap.dims().to_vec();
    let cdims = cmap.dims().to_vec();
    tape.push(
        Tensor::from_vec(vec![total], &[1]),
        vec![protos, coeffs],
        Some(Box::new(move |gy| {
            let g = gy.data()[0] / denom;
            let mut gp = Tensor::zeros(&pdims);
            let mut gc = Tensor::zeros(&cdims);
            for it in &items {
                let pred = assemble(&pmap, &cmap, it);
                let mut idx = 0usize;
                for py in it.crop[0]..it.crop[2] {
                    for px in it.crop[1]..it.crop[3] {
                        // d BCE / d logit = sigmoid − target
                        let dl = (pred[idx] - it.gt[idx]) * g;
                        for k in 0..NUM_PROTOS {
                            *gp.at4_mut(it.b, k, py, px) +=
                                dl * cmap.at4(it.b, it.s * NUM_PROTOS + k, it.y, it.x);
                            *gc.at4_mut(it.b, it.s * NUM_PROTOS + k, it.y, it.x) +=
                                dl * pmap.at4(it.b, k, py, px);
                        }
                        idx += 1;
                    }
                }
            }
            vec![gp, gc]
        })),
    )
}

/// Combined training loss for a batch.
pub fn detection_loss(
    tape: &mut Tape,
    outputs: &DetOutputs,
    anchors: &[Anchor],
    assignments: &[Assignment],
    samples: &[Sample],
) -> Var {
    let lc = det_class_loss(tape, outputs.cls, assignments, 3);
    let lb = det_box_loss(tape, outputs.boxes, anchors, assignments, samples);
    let lm = det_mask_loss(tape, outputs.protos, outputs.coeffs, assignments, samples);
    let lb_w = ops::scale(tape, lb, 1.5);
    let lm_w = ops::scale(tape, lm, 1.0);
    let s1 = ops::add(tape, lc, lb_w);
    ops::add(tape, s1, lm_w)
}

// ---------------------------------------------------------------------------
// Inference
// ---------------------------------------------------------------------------

/// Decodes detections for batch item `b` from raw head tensors (use
/// `tape.value(...)` on the forward outputs). Applies per-class NMS and
/// assembles masks at image resolution.
#[allow(clippy::too_many_arguments)]
pub fn decode_detections(
    cls: &Tensor,
    boxes: &Tensor,
    coeffs: &Tensor,
    protos: &Tensor,
    b: usize,
    img_size: usize,
    score_threshold: f32,
    nms_iou: f32,
) -> Vec<Detection> {
    let (_, _, hf, wf) = protos.shape().nchw();
    let anchors = build_anchors(hf, wf);
    let scales = ANCHOR_SCALES.len();
    let k1 = NUM_CLASSES + 1;

    // Collect raw candidates.
    struct Cand {
        class: usize,
        score: f32,
        bbox: [f32; 4],
        coeff: [f32; NUM_PROTOS],
    }
    let mut cands: Vec<Cand> = Vec::new();
    for s in 0..scales {
        for y in 0..hf {
            for x in 0..wf {
                let ai = anchor_index(s, y, x, hf, wf);
                let logits: Vec<f32> = (0..k1).map(|c| cls.at4(b, s * k1 + c, y, x)).collect();
                let m = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                let exps: Vec<f32> = logits.iter().map(|v| (v - m).exp()).collect();
                let z: f32 = exps.iter().sum();
                for c in 1..k1 {
                    let score = exps[c] / z;
                    if score < score_threshold {
                        continue;
                    }
                    let t = [
                        boxes.at4(b, s * 4, y, x),
                        boxes.at4(b, s * 4 + 1, y, x),
                        boxes.at4(b, s * 4 + 2, y, x),
                        boxes.at4(b, s * 4 + 3, y, x),
                    ];
                    let mut bbox = decode_box(&anchors[ai], &t);
                    for v in bbox.iter_mut() {
                        *v = v.clamp(0.0, img_size as f32);
                    }
                    let mut coeff = [0.0f32; NUM_PROTOS];
                    for (k, cv) in coeff.iter_mut().enumerate() {
                        *cv = coeffs.at4(b, s * NUM_PROTOS + k, y, x);
                    }
                    cands.push(Cand {
                        class: c - 1,
                        score,
                        bbox,
                        coeff,
                    });
                }
            }
        }
    }

    // Per-class NMS.
    cands.sort_by(|a, b| b.score.total_cmp(&a.score));
    let mut keep: Vec<Cand> = Vec::new();
    'outer: for c in cands {
        for k in &keep {
            if k.class == c.class && box_iou(&k.bbox, &c.bbox) > nms_iou {
                continue 'outer;
            }
        }
        keep.push(c);
        if keep.len() >= 16 {
            break;
        }
    }

    // Assemble masks: sigmoid(Σ coeff·proto), crop to box, threshold, and
    // upsample (nearest) to image resolution.
    let ds = img_size / wf;
    keep.into_iter()
        .map(|c| {
            let mut mask = vec![false; img_size * img_size];
            for py in 0..hf {
                for px in 0..wf {
                    let mut acc = 0.0f32;
                    for k in 0..NUM_PROTOS {
                        acc += c.coeff[k] * protos.at4(b, k, py, px);
                    }
                    let on = 1.0 / (1.0 + (-acc).exp()) > 0.5;
                    if !on {
                        continue;
                    }
                    for iy in 0..ds {
                        for ix in 0..ds {
                            let (yy, xx) = (py * ds + iy, px * ds + ix);
                            let (yf, xf) = (yy as f32, xx as f32);
                            if yf >= c.bbox[0]
                                && yf < c.bbox[2]
                                && xf >= c.bbox[1]
                                && xf < c.bbox[3]
                            {
                                mask[yy * img_size + xx] = true;
                            }
                        }
                    }
                }
            }
            Detection {
                class: c.class,
                score: c.score,
                bbox: c.bbox,
                mask,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backbone::SlotKind;
    use crate::dataset::{batch_images, DeformedShapesConfig};

    fn mini_detector(store: &mut ParamStore) -> YolactLite {
        let cfg = BackboneConfig::mini(48, BackboneConfig::uniform_slots(5, SlotKind::Regular));
        YolactLite::new(store, cfg)
    }

    #[test]
    fn forward_shapes() {
        let mut store = ParamStore::new();
        let mut det = mini_detector(&mut store);
        let mut tape = Tape::new();
        let x = tape.input(Tensor::randn(&[2, 1, 48, 48], 0.0, 1.0, 1));
        let out = det.forward(&mut tape, &store, x);
        assert_eq!(out.feat_hw, (12, 12));
        assert_eq!(tape.value(out.cls).dims(), &[2, 2 * 4, 12, 12]);
        assert_eq!(tape.value(out.boxes).dims(), &[2, 2 * 4, 12, 12]);
        assert_eq!(tape.value(out.coeffs).dims(), &[2, 2 * NUM_PROTOS, 12, 12]);
        assert_eq!(tape.value(out.protos).dims(), &[2, NUM_PROTOS, 12, 12]);
    }

    #[test]
    fn box_encode_decode_round_trip() {
        let a = Anchor {
            cy: 24.0,
            cx: 24.0,
            h: 16.0,
            w: 16.0,
        };
        let gt = [10.0, 12.0, 30.0, 40.0];
        let t = encode_box(&a, &gt);
        let back = decode_box(&a, &t);
        for (x, y) in gt.iter().zip(back.iter()) {
            assert!((x - y).abs() < 1e-4, "{gt:?} vs {back:?}");
        }
    }

    #[test]
    fn iou_properties() {
        let a = [0.0, 0.0, 10.0, 10.0];
        assert!((box_iou(&a, &a) - 1.0).abs() < 1e-6);
        let b = [20.0, 20.0, 30.0, 30.0];
        assert_eq!(box_iou(&a, &b), 0.0);
        let c = [0.0, 5.0, 10.0, 15.0];
        assert!((box_iou(&a, &c) - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn every_gt_gets_a_positive_anchor() {
        let cfg = DeformedShapesConfig::default();
        let anchors = build_anchors(12, 12);
        for s in cfg.generate(10, 33) {
            let asg = assign_anchors(&anchors, &s);
            for (gi, _) in s.objects.iter().enumerate() {
                let found = asg
                    .labels
                    .iter()
                    .zip(asg.gt_index.iter())
                    .any(|(l, &g)| matches!(l, Some(v) if *v > 0) && g == gi);
                assert!(found, "GT {gi} has no positive anchor");
            }
        }
    }

    #[test]
    fn class_loss_gradient_matches_fd() {
        let cfg = DeformedShapesConfig::default();
        let samples = cfg.generate(1, 7);
        let anchors = build_anchors(12, 12);
        let asg: Vec<Assignment> = samples
            .iter()
            .map(|s| assign_anchors(&anchors, s))
            .collect();
        let map = Tensor::randn(&[1, 2 * 4, 12, 12], 0.0, 1.0, 8);
        let run = |m: &Tensor| {
            let mut t = Tape::new();
            let v = t.input(m.clone());
            let l = det_class_loss(&mut t, v, &asg, 3);
            t.value(l).data()[0]
        };
        let mut t = Tape::new();
        let v = t.input(map.clone());
        let l = det_class_loss(&mut t, v, &asg, 3);
        t.backward(l);
        let g = t.grad(v).unwrap().clone();
        // Probe a few indices with non-zero gradient.
        let probes: Vec<usize> = g
            .data()
            .iter()
            .enumerate()
            .filter(|(_, &v)| v.abs() > 1e-4)
            .map(|(i, _)| i)
            .take(4)
            .collect();
        assert!(!probes.is_empty(), "no selected anchors?");
        for idx in probes {
            let mut p = map.clone();
            p.data_mut()[idx] += 1e-3;
            let mut m2 = map.clone();
            m2.data_mut()[idx] -= 1e-3;
            let fd = (run(&p) - run(&m2)) / 2e-3;
            // OHEM selection may flip for borderline negatives under the
            // perturbation; allow a loose tolerance.
            assert!(
                (g.data()[idx] - fd).abs() < 5e-2,
                "idx {idx}: {} vs {fd}",
                g.data()[idx]
            );
        }
    }

    #[test]
    fn box_loss_gradient_matches_fd() {
        let cfg = DeformedShapesConfig::default();
        let samples = cfg.generate(1, 9);
        let anchors = build_anchors(12, 12);
        let asg: Vec<Assignment> = samples
            .iter()
            .map(|s| assign_anchors(&anchors, s))
            .collect();
        let map = Tensor::randn(&[1, 2 * 4, 12, 12], 0.0, 0.5, 10);
        let run = |m: &Tensor| {
            let mut t = Tape::new();
            let v = t.input(m.clone());
            let l = det_box_loss(&mut t, v, &anchors, &asg, &samples);
            t.value(l).data()[0]
        };
        let mut t = Tape::new();
        let v = t.input(map.clone());
        let l = det_box_loss(&mut t, v, &anchors, &asg, &samples);
        t.backward(l);
        let g = t.grad(v).unwrap().clone();
        let probes: Vec<usize> = g
            .data()
            .iter()
            .enumerate()
            .filter(|(_, &v)| v.abs() > 1e-5)
            .map(|(i, _)| i)
            .take(4)
            .collect();
        assert!(!probes.is_empty());
        for idx in probes {
            let mut p = map.clone();
            p.data_mut()[idx] += 1e-3;
            let mut m2 = map.clone();
            m2.data_mut()[idx] -= 1e-3;
            let fd = (run(&p) - run(&m2)) / 2e-3;
            assert!(
                (g.data()[idx] - fd).abs() < 1e-3,
                "idx {idx}: {} vs {fd}",
                g.data()[idx]
            );
        }
    }

    #[test]
    fn mask_loss_gradients_match_fd() {
        let cfg = DeformedShapesConfig::default();
        let samples = cfg.generate(1, 11);
        let anchors = build_anchors(12, 12);
        let asg: Vec<Assignment> = samples
            .iter()
            .map(|s| assign_anchors(&anchors, s))
            .collect();
        let pmap = Tensor::randn(&[1, NUM_PROTOS, 12, 12], 0.0, 1.0, 12);
        let cmap = Tensor::randn(&[1, 2 * NUM_PROTOS, 12, 12], 0.0, 0.7, 13);
        let run = |p: &Tensor, c: &Tensor| {
            let mut t = Tape::new();
            let pv = t.input(p.clone());
            let cv = t.input(c.clone());
            let l = det_mask_loss(&mut t, pv, cv, &asg, &samples);
            t.value(l).data()[0]
        };
        let mut t = Tape::new();
        let pv = t.input(pmap.clone());
        let cv = t.input(cmap.clone());
        let l = det_mask_loss(&mut t, pv, cv, &asg, &samples);
        t.backward(l);
        let gp = t.grad(pv).unwrap().clone();
        let gc = t.grad(cv).unwrap().clone();
        for idx in [0usize, 50, 100] {
            let mut a = pmap.clone();
            a.data_mut()[idx] += 1e-3;
            let mut b = pmap.clone();
            b.data_mut()[idx] -= 1e-3;
            let fd = (run(&a, &cmap) - run(&b, &cmap)) / 2e-3;
            assert!(
                (gp.data()[idx] - fd).abs() < 1e-3,
                "proto idx {idx}: {} vs {fd}",
                gp.data()[idx]
            );
        }
        let probes: Vec<usize> = gc
            .data()
            .iter()
            .enumerate()
            .filter(|(_, &v)| v.abs() > 1e-6)
            .map(|(i, _)| i)
            .take(3)
            .collect();
        for idx in probes {
            let mut a = cmap.clone();
            a.data_mut()[idx] += 1e-3;
            let mut b = cmap.clone();
            b.data_mut()[idx] -= 1e-3;
            let fd = (run(&pmap, &a) - run(&pmap, &b)) / 2e-3;
            assert!(
                (gc.data()[idx] - fd).abs() < 1e-3,
                "coeff idx {idx}: {} vs {fd}",
                gc.data()[idx]
            );
        }
    }

    #[test]
    fn decode_produces_valid_detections() {
        let mut store = ParamStore::new();
        let mut det = mini_detector(&mut store);
        let cfg = DeformedShapesConfig::default();
        let samples = cfg.generate(2, 21);
        let mut tape = Tape::new();
        let x = tape.input(batch_images(&samples));
        let out = det.forward(&mut tape, &store, x);
        let dets = decode_detections(
            tape.value(out.cls),
            tape.value(out.boxes),
            tape.value(out.coeffs),
            tape.value(out.protos),
            0,
            48,
            0.05,
            0.5,
        );
        for d in &dets {
            assert!(d.class < NUM_CLASSES);
            assert!(d.score >= 0.05 && d.score <= 1.0);
            assert!(d.bbox[2] >= d.bbox[0] && d.bbox[3] >= d.bbox[1]);
            assert_eq!(d.mask.len(), 48 * 48);
        }
    }

    #[test]
    fn training_step_reduces_loss() {
        let mut store = ParamStore::new();
        let mut det = mini_detector(&mut store);
        let cfg = DeformedShapesConfig::default();
        let samples = cfg.generate(4, 31);
        let anchors = build_anchors(12, 12);
        let asg: Vec<Assignment> = samples
            .iter()
            .map(|s| assign_anchors(&anchors, s))
            .collect();
        let images = batch_images(&samples);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..8 {
            store.zero_grads();
            let mut tape = Tape::new();
            let x = tape.input(images.clone());
            let out = det.forward(&mut tape, &store, x);
            let loss = detection_loss(&mut tape, &out, &anchors, &asg, &samples);
            last = tape.value(loss).data()[0];
            first.get_or_insert(last);
            tape.backward(loss);
            tape.write_param_grads(&mut store);
            store.sgd_step(0.05, 0.9, 1e-4);
        }
        assert!(last < first.unwrap(), "loss {} -> {last}", first.unwrap());
    }
}
