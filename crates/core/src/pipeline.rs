//! The DEFCON configuration facade (paper Fig. 3): interval search →
//! lightweight operators → bounded deformation → texel-based optimization.

use crate::autotune::Autotuner;
use defcon_gpusim::Gpu;
use defcon_kernels::op::{
    synthetic_inputs, DeformConvOp, OffsetPredictorKind, OpFamily, SamplingMethod,
};
use defcon_kernels::{DeformLayerShape, TileConfig};
use defcon_support::error::DefconError;
use defcon_tensor::sample::OffsetTransform;

/// How the sampling-stage tile is chosen.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TileChoice {
    /// A fixed tile.
    Fixed(TileConfig),
    /// Offline Bayesian autotuning per layer shape (paper Fig. 8) with the
    /// given evaluation budget.
    Autotuned {
        /// Evaluation budget per layer.
        budget: usize,
    },
}

/// The full DEFCON optimization configuration — one row of paper Table III
/// is one setting of these switches.
#[derive(Clone, Copy, Debug)]
pub struct DefconConfig {
    /// Use the interval-searched layer placement (vs. hand placement).
    pub interval_search: bool,
    /// Bound learned offsets to `[-P, P]`; the paper settles on `P = 7`
    /// (Fig. 5).
    pub bounded: Option<f32>,
    /// Use the lightweight (depthwise + pointwise) offset predictor.
    pub lightweight: bool,
    /// Sampling implementation for deformable layers.
    pub method: SamplingMethod,
    /// Tile policy for the texture kernels.
    pub tile: TileChoice,
    /// Deformable operator generation for deformable layers
    /// (v1 / v2-modulated / v3-sparse).
    pub op_family: OpFamily,
}

impl DefconConfig {
    /// The YOLACT++-style baseline: hand placement, standard offset conv,
    /// software bilinear.
    pub fn baseline() -> Self {
        DefconConfig {
            interval_search: false,
            bounded: None,
            lightweight: false,
            method: SamplingMethod::SoftwareBilinear,
            tile: TileChoice::Fixed(TileConfig::default16()),
            op_family: OpFamily::DcnV1,
        }
    }

    /// Everything on — the last row of Table III.
    pub fn full() -> Self {
        DefconConfig {
            interval_search: true,
            bounded: Some(7.0),
            lightweight: true,
            method: SamplingMethod::Tex2dPlusPlus,
            tile: TileChoice::Autotuned { budget: 12 },
            op_family: OpFamily::DcnV1,
        }
    }

    /// The offset transform implied by the bounding switch.
    pub fn offset_transform(&self) -> OffsetTransform {
        match self.bounded {
            Some(p) => OffsetTransform::Bounded(p),
            None => OffsetTransform::Identity,
        }
    }

    /// The offset predictor implied by the lightweight switch.
    pub fn offset_predictor(&self) -> OffsetPredictorKind {
        if self.lightweight {
            OffsetPredictorKind::Lightweight
        } else {
            OffsetPredictorKind::Standard
        }
    }

    /// Builds the deformable operator for one layer shape, resolving the
    /// tile policy (autotuning simulates candidate tiles on `gpu`).
    ///
    /// The autotuner's exhaustive strategy honors `DEFCON_THREADS`
    /// (candidates evaluated concurrently, result order preserved); the
    /// Bayesian tuner used here is inherently sequential, but each of its
    /// objective evaluations is a simulator launch that itself follows the
    /// engine's determinism contract.
    pub fn build_op(&self, shape: DeformLayerShape, gpu: &Gpu) -> DeformConvOp {
        let tile = match self.tile {
            TileChoice::Fixed(t) => t,
            TileChoice::Autotuned { budget } => {
                let (x, offsets) =
                    synthetic_inputs(&shape, self.bounded.unwrap_or(4.0).min(4.0), 0xA07);
                let tuner = Autotuner::bayesian(budget, 0xA07);
                let space = TileConfig::search_space();
                tuner
                    .run(&space, |t| {
                        let op = DeformConvOp {
                            shape,
                            tile: t,
                            method: self.method,
                            offset_predictor: self.offset_predictor(),
                            offset_transform: self.offset_transform(),
                            family: self.op_family,
                            modulation: None,
                        };
                        op.simulate_deform(gpu, &x, &offsets)
                            .iter()
                            .map(|r| r.time_ms)
                            .sum()
                    })
                    .best
            }
        };
        DeformConvOp {
            shape,
            tile,
            method: self.method,
            offset_predictor: self.offset_predictor(),
            offset_transform: self.offset_transform(),
            family: self.op_family,
            modulation: None,
        }
    }

    /// [`DefconConfig::build_op`] with graceful degradation: the sampling
    /// method is first probed on synthetic inputs through the
    /// `tex2D++ → tex2D → software` fallback ladder
    /// ([`DeformConvOp::simulate_deform_with_fallback`]), and the operator
    /// (including any autotuning) is then built with the method that
    /// actually runs on this device for this shape. Returns the operator
    /// and one degradation line per skipped rung (empty when the
    /// configured method fits, in which case the operator is identical to
    /// `build_op`'s).
    pub fn build_op_with_fallback(
        &self,
        shape: DeformLayerShape,
        gpu: &Gpu,
    ) -> Result<(DeformConvOp, Vec<String>), DefconError> {
        let (x, offsets) = synthetic_inputs(&shape, self.bounded.unwrap_or(4.0).min(4.0), 0xA07);
        let probe = DeformConvOp {
            shape,
            tile: TileConfig::default16(),
            method: self.method,
            offset_predictor: self.offset_predictor(),
            offset_transform: self.offset_transform(),
            family: self.op_family,
            modulation: None,
        };
        let fb = probe.simulate_deform_with_fallback(gpu, &x, &offsets)?;
        let resolved = DefconConfig {
            method: fb.method,
            ..*self
        };
        Ok((resolved.build_op(shape, gpu), fb.degradations))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use defcon_gpusim::DeviceConfig;

    #[test]
    fn baseline_and_full_presets() {
        let b = DefconConfig::baseline();
        assert!(!b.interval_search && !b.lightweight);
        assert_eq!(b.method, SamplingMethod::SoftwareBilinear);
        let f = DefconConfig::full();
        assert!(f.interval_search && f.lightweight);
        assert_eq!(f.offset_transform(), OffsetTransform::Bounded(7.0));
        assert_eq!(f.offset_predictor(), OffsetPredictorKind::Lightweight);
    }

    #[test]
    fn fallback_build_degrades_texture_method_for_oversized_channels() {
        // 2100 channels in one image exceed Xavier's 2048 texture layers:
        // the full config's tex2D++ must degrade to the software sampler.
        let gpu = Gpu::new(DeviceConfig::xavier_agx());
        let shape = DeformLayerShape::same3x3(2100, 4, 4, 4);
        let cfg = DefconConfig {
            tile: TileChoice::Fixed(TileConfig::default16()),
            ..DefconConfig::full()
        };
        let (op, degradations) = cfg.build_op_with_fallback(shape, &gpu).unwrap();
        assert_eq!(op.method, SamplingMethod::SoftwareBilinear);
        assert_eq!(degradations.len(), 2, "{degradations:?}");
        // The degraded operator actually runs.
        let (x, off) = synthetic_inputs(&shape, 2.0, 5);
        assert_eq!(op.simulate_deform(&gpu, &x, &off).len(), 2);
    }

    #[test]
    fn fallback_build_is_identity_when_method_fits() {
        let gpu = Gpu::new(DeviceConfig::xavier_agx());
        let shape = DeformLayerShape::same3x3(16, 16, 12, 12);
        let cfg = DefconConfig {
            tile: TileChoice::Fixed(TileConfig::default16()),
            ..DefconConfig::full()
        };
        let (op, degradations) = cfg.build_op_with_fallback(shape, &gpu).unwrap();
        assert!(degradations.is_empty());
        assert_eq!(op.method, SamplingMethod::Tex2dPlusPlus);
        assert_eq!(op.tile, cfg.build_op(shape, &gpu).tile);
    }

    #[test]
    fn autotuned_op_not_slower_than_default_tile() {
        let gpu = Gpu::new(DeviceConfig::xavier_agx());
        let shape = DeformLayerShape::same3x3(64, 64, 35, 35);
        let cfg = DefconConfig {
            tile: TileChoice::Autotuned { budget: 10 },
            method: SamplingMethod::Tex2d,
            ..DefconConfig::full()
        };
        let tuned = cfg.build_op(shape, &gpu);
        let fixed = DeformConvOp {
            tile: TileConfig::default16(),
            ..tuned.clone()
        };
        let (x, offsets) = synthetic_inputs(&shape, 4.0, 1);
        let t_tuned: f64 = tuned
            .simulate_deform(&gpu, &x, &offsets)
            .iter()
            .map(|r| r.time_ms)
            .sum();
        let t_fixed: f64 = fixed
            .simulate_deform(&gpu, &x, &offsets)
            .iter()
            .map(|r| r.time_ms)
            .sum();
        assert!(
            t_tuned <= t_fixed * 1.05,
            "tuned {t_tuned} vs fixed {t_fixed}"
        );
    }
}
