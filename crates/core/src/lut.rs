//! The on-device latency lookup table.
//!
//! Paper §III-A-a: the interval search constrains inference latency through
//! a penalty `t(w_n)` looked up per candidate layer. "It is trivial to
//! collect their latency with all possible configurations" — here the
//! "device" is the gpusim model, and the LUT maps a layer configuration to
//! the **extra** milliseconds choosing the deformable operator costs over
//! the regular one.

use defcon_gpusim::Gpu;
use defcon_kernels::backend::Backend;
use defcon_kernels::op::simulate_regular_conv_ms;
use defcon_kernels::op::{
    synthetic_inputs, DeformConvOp, OffsetPredictorKind, OpFamily, SamplingMethod,
};
use defcon_kernels::{DeformLayerShape, TileConfig};
use defcon_support::error::DefconError;
use defcon_support::fault;
use defcon_support::json::{FromJson, Json, JsonError, ToJson};
use defcon_support::par::ParallelSliceMut;
use defcon_tensor::sample::OffsetTransform;
use std::collections::HashMap;

/// LUT key: the latency-relevant coordinates of a 3×3 convolution slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LatencyKey {
    /// Input channels.
    pub c_in: usize,
    /// Output channels.
    pub c_out: usize,
    /// Input height.
    pub h: usize,
    /// Input width.
    pub w: usize,
    /// Stride (1 or 2 in ResNet-style backbones).
    pub stride: usize,
}

impl LatencyKey {
    /// The key of a layer shape.
    pub fn of(shape: &DeformLayerShape) -> Self {
        LatencyKey {
            c_in: shape.c_in,
            c_out: shape.c_out,
            h: shape.h,
            w: shape.w,
            stride: shape.stride,
        }
    }

    /// Reconstructs the layer shape (batch 1, 3×3, pad 1, one deformable
    /// group — the configuration backbones use).
    pub fn shape(&self) -> DeformLayerShape {
        DeformLayerShape {
            n: 1,
            c_in: self.c_in,
            c_out: self.c_out,
            h: self.h,
            w: self.w,
            kernel: 3,
            stride: self.stride,
            pad: 1,
            deform_groups: 1,
        }
    }
}

impl ToJson for LatencyKey {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("c_in", Json::from(self.c_in)),
            ("c_out", Json::from(self.c_out)),
            ("h", Json::from(self.h)),
            ("w", Json::from(self.w)),
            ("stride", Json::from(self.stride)),
        ])
    }
}

impl FromJson for LatencyKey {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(LatencyKey {
            c_in: j.usize_field("c_in")?,
            c_out: j.usize_field("c_out")?,
            h: j.usize_field("h")?,
            w: j.usize_field("w")?,
            stride: j.usize_field("stride")?,
        })
    }
}

/// One LUT entry: measured latencies of the operator choices at a key.
#[derive(Clone, Copy, Debug)]
pub struct LatencyEntry {
    /// Regular 3×3 convolution, milliseconds.
    pub regular_ms: f64,
    /// Deformable operator (offset conv + sampling + conv), milliseconds.
    pub deform_ms: f64,
}

impl LatencyEntry {
    /// The quantity `t(w_n)` the search penalizes: the *additional* cost of
    /// going deformable at this slot.
    pub fn dcn_overhead_ms(&self) -> f64 {
        (self.deform_ms - self.regular_ms).max(0.0)
    }
}

impl ToJson for LatencyEntry {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("regular_ms", Json::from(self.regular_ms)),
            ("deform_ms", Json::from(self.deform_ms)),
        ])
    }
}

impl FromJson for LatencyEntry {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(LatencyEntry {
            regular_ms: j.num_field("regular_ms")?,
            deform_ms: j.num_field("deform_ms")?,
        })
    }
}

/// Latency lookup table built by timing both operator choices on a
/// simulated device.
#[derive(Clone, Debug, Default)]
pub struct LatencyLut {
    /// Device name the table was collected on.
    pub device: String,
    entries: HashMap<LatencyKey, LatencyEntry>,
}

impl LatencyLut {
    /// Builds a LUT on `gpu` for every key in `keys`, timing the deformable
    /// operator in the given configuration (the search should penalize the
    /// operator it will actually deploy).
    ///
    /// Keys are measured in parallel on `gpu.policy().threads` workers
    /// (`DEFCON_THREADS` by default), but every key is simulated on a
    /// *serial* (`threads = 1`) engine, so the table's entries — and its
    /// serialized bytes — are bit-identical for any thread count: the
    /// parallelism lives across independent keys, never inside a launch
    /// where it would change L2 shard semantics.
    pub fn build(
        gpu: &Gpu,
        keys: &[LatencyKey],
        method: SamplingMethod,
        predictor: OffsetPredictorKind,
    ) -> Self {
        Self::build_family(gpu, keys, method, predictor, OpFamily::DcnV1)
    }

    /// [`LatencyLut::build`] generalized over the deformable operator
    /// generation: v2/v3 pay their wider joint predictor and modulation
    /// traffic, so a search penalized with a v3 table can place layers
    /// differently from a v1 table on the same device.
    pub fn build_family(
        gpu: &Gpu,
        keys: &[LatencyKey],
        method: SamplingMethod,
        predictor: OffsetPredictorKind,
        family: OpFamily,
    ) -> Self {
        let worker = Gpu::with_policy(gpu.config().clone(), gpu.policy().with_threads(1));
        let threads = gpu.policy().threads.max(1);
        let mut slots: Vec<Option<LatencyEntry>> = vec![None; keys.len()];
        slots
            .par_chunks_mut(1)
            .threads(threads)
            .enumerate()
            .for_each(|(i, slot)| {
                let shape = keys[i].shape();
                let (x, offsets) = synthetic_inputs(&shape, 4.0, 0xDEFC);
                let op = DeformConvOp {
                    shape,
                    tile: TileConfig::default16(),
                    method,
                    offset_predictor: predictor,
                    offset_transform: OffsetTransform::Identity,
                    family,
                    modulation: None,
                };
                slot[0] = Some(LatencyEntry {
                    regular_ms: simulate_regular_conv_ms(&worker, &shape),
                    deform_ms: op.simulate_total(&worker, &x, &offsets).0,
                });
            });
        let entries: HashMap<LatencyKey, LatencyEntry> = keys
            .iter()
            .zip(slots)
            .map(|(k, e)| (*k, e.expect("every key slot filled")))
            .collect();
        LatencyLut {
            device: gpu.config().name.clone(),
            entries,
        }
    }

    /// [`LatencyLut::build_family`] over any [`Backend`] — the route the
    /// accel backend's tables take. Sequential (backend objects are not
    /// required to be thread-splittable the way [`Gpu`] policies are),
    /// deterministic, and falls back to the backend's own degradation
    /// behaviour per key. Errors surface the first key that cannot be
    /// timed at all.
    pub fn build_family_backend(
        backend: &dyn Backend,
        keys: &[LatencyKey],
        method: SamplingMethod,
        predictor: OffsetPredictorKind,
        family: OpFamily,
    ) -> Result<Self, DefconError> {
        let mut entries = HashMap::with_capacity(keys.len());
        for key in keys {
            let shape = key.shape();
            let (x, offsets) = synthetic_inputs(&shape, 4.0, 0xDEFC);
            let op = DeformConvOp {
                shape,
                tile: TileConfig::default16(),
                method,
                offset_predictor: predictor,
                offset_transform: OffsetTransform::Identity,
                family,
                modulation: None,
            };
            let (deform_ms, _) = backend.launch_total(&op, &x, &offsets)?;
            entries.insert(
                *key,
                LatencyEntry {
                    regular_ms: backend.regular_conv_ms(&shape),
                    deform_ms,
                },
            );
        }
        Ok(LatencyLut {
            device: backend.device_name(),
            entries,
        })
    }

    /// Looks up an entry.
    pub fn get(&self, key: &LatencyKey) -> Option<&LatencyEntry> {
        self.entries.get(key)
    }

    /// Fallible `t(w_n)` lookup: [`DefconError::MissingKey`] when the key
    /// was not collected. Prefer this on paths fed by externally loaded
    /// tables; [`LatencyLut::dcn_overhead_ms`] keeps the hard-fail contract
    /// for in-process search loops.
    pub fn try_dcn_overhead_ms(&self, key: &LatencyKey) -> Result<f64, DefconError> {
        self.entries
            .get(key)
            .map(LatencyEntry::dcn_overhead_ms)
            .ok_or_else(|| DefconError::MissingKey {
                what: format!("latency LUT key {key:?} (collected on {})", self.device),
            })
    }

    /// `t(w_n)` for the search penalty; panics if the key was not collected
    /// (the search must not silently treat an unmeasured layer as free).
    pub fn dcn_overhead_ms(&self, key: &LatencyKey) -> f64 {
        self.entries
            .get(key)
            .unwrap_or_else(|| {
                panic!(
                    "latency LUT missing key {key:?} (collected on {})",
                    self.device
                )
            })
            .dcn_overhead_ms()
    }

    /// Number of collected keys.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing was collected.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serializes to JSON (the paper's workflow collects the table offline).
    ///
    /// The format is `[device, [[key, entry], ...]]` with the pairs sorted
    /// by key, so the same table always serializes to the same bytes no
    /// matter what order the `HashMap` happens to iterate in.
    pub fn to_json(&self) -> String {
        let mut pairs: Vec<(&LatencyKey, &LatencyEntry)> = self.entries.iter().collect();
        pairs.sort_by_key(|(k, _)| **k);
        let pair_values = pairs
            .into_iter()
            .map(|(k, e)| Json::Arr(vec![k.to_json(), e.to_json()]))
            .collect();
        Json::Arr(vec![Json::str(&self.device), Json::Arr(pair_values)]).to_string()
    }

    /// Deserializes from [`LatencyLut::to_json`] output.
    pub fn from_json(s: &str) -> Result<Self, JsonError> {
        let doc = Json::parse(s)?;
        let top = doc
            .as_arr()
            .ok_or_else(|| JsonError::msg("LUT document must be an array"))?;
        let [device, pairs] = top else {
            return Err(JsonError::msg("LUT document must be [device, pairs]"));
        };
        let device = device
            .as_str()
            .ok_or_else(|| JsonError::msg("LUT device must be a string"))?;
        let pairs = pairs
            .as_arr()
            .ok_or_else(|| JsonError::msg("LUT pairs must be an array"))?;
        let mut entries = HashMap::with_capacity(pairs.len());
        for pair in pairs {
            let [key, entry] = pair
                .as_arr()
                .ok_or_else(|| JsonError::msg("LUT pair must be an array"))?
            else {
                return Err(JsonError::msg("LUT pair must be [key, entry]"));
            };
            entries.insert(LatencyKey::from_json(key)?, LatencyEntry::from_json(entry)?);
        }
        Ok(LatencyLut {
            device: device.to_string(),
            entries,
        })
    }

    /// Writes the table to `path` (atomic: temp file + rename).
    pub fn save(&self, path: &std::path::Path) -> Result<(), DefconError> {
        let text = self.to_json();
        let tmp = path.with_extension("lut-tmp");
        let display = path.display().to_string();
        std::fs::write(&tmp, text.as_bytes()).map_err(|e| DefconError::io(&display, &e))?;
        std::fs::rename(&tmp, path).map_err(|e| DefconError::io(&display, &e))?;
        Ok(())
    }

    /// Loads a table written by [`LatencyLut::save`]. IO failures and
    /// malformed JSON both come back as typed [`DefconError`]s — a corrupt
    /// LUT file must never panic the search that consumes it.
    ///
    /// Fault point `lut.load` corrupts the file bytes after reading
    /// (truncation or byte flip), for degradation tests.
    pub fn load(path: &std::path::Path) -> Result<Self, DefconError> {
        let display = path.display().to_string();
        let mut text = std::fs::read_to_string(path).map_err(|e| DefconError::io(&display, &e))?;
        fault::corrupt_string("lut.load", &mut text);
        LatencyLut::from_json(&text).map_err(|e| DefconError::json(&display, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use defcon_gpusim::DeviceConfig;

    fn tiny_keys() -> Vec<LatencyKey> {
        vec![
            LatencyKey {
                c_in: 16,
                c_out: 16,
                h: 16,
                w: 16,
                stride: 1,
            },
            LatencyKey {
                c_in: 16,
                c_out: 32,
                h: 16,
                w: 16,
                stride: 2,
            },
        ]
    }

    #[test]
    fn backend_route_builds_tables_for_both_substrates() {
        let keys = tiny_keys();
        let method = SamplingMethod::Tex2dPlusPlus;
        let pred = OffsetPredictorKind::Standard;
        let gpu = Gpu::new(DeviceConfig::xavier_agx());
        let via_gpu = LatencyLut::build_family_backend(&gpu, &keys, method, pred, OpFamily::DcnV1)
            .expect("gpu backend route must build");
        assert_eq!(via_gpu.device, "Jetson-AGX-Xavier");
        let accel = defcon_accel::Accel::new(defcon_accel::AccelConfig::edge());
        let via_accel =
            LatencyLut::build_family_backend(&accel, &keys, method, pred, OpFamily::DcnV1)
                .expect("accel backend route must build");
        assert_eq!(via_accel.device, "DCN-Accel-Edge");
        for key in &keys {
            // Both substrates tabulate positive overheads for the key set.
            assert!(via_gpu.dcn_overhead_ms(key) > 0.0);
            assert!(via_accel.dcn_overhead_ms(key) > 0.0);
        }
    }

    #[test]
    fn build_measures_both_choices() {
        let gpu = Gpu::new(DeviceConfig::xavier_agx());
        let lut = LatencyLut::build(
            &gpu,
            &tiny_keys(),
            SamplingMethod::SoftwareBilinear,
            OffsetPredictorKind::Standard,
        );
        assert_eq!(lut.len(), 2);
        for key in tiny_keys() {
            let e = lut.get(&key).unwrap();
            assert!(
                e.deform_ms > e.regular_ms,
                "DCN must cost more than regular conv at {key:?}"
            );
            assert!(lut.dcn_overhead_ms(&key) > 0.0);
        }
    }

    #[test]
    fn family_aware_lut_orders_v1_v2_v3() {
        // The modulated (v2) and sparse-softmax (v3) kernels cost strictly
        // more than v1 at the same key: v2 adds a mask load + multiply per
        // tap and widens the joint predictor to 3·G·k² channels; v3 pays
        // the same predictor width plus the in-kernel softmax arithmetic.
        // The search therefore sees a different t(w) per family and can
        // reach a different placement.
        let gpu = Gpu::new(DeviceConfig::xavier_agx());
        let keys = tiny_keys();
        let method = SamplingMethod::Tex2d;
        let pred = OffsetPredictorKind::Standard;
        let v1 = LatencyLut::build_family(&gpu, &keys, method, pred, OpFamily::DcnV1);
        let v2 = LatencyLut::build_family(&gpu, &keys, method, pred, OpFamily::DcnV2);
        let v3 = LatencyLut::build_family(&gpu, &keys, method, pred, OpFamily::DcnV3);
        for key in &keys {
            let (o1, o2, o3) = (
                v1.dcn_overhead_ms(key),
                v2.dcn_overhead_ms(key),
                v3.dcn_overhead_ms(key),
            );
            assert!(o1 < o2, "v2 must cost more than v1 at {key:?}");
            assert!(o2 < o3, "v3 must cost more than v2 at {key:?}");
            // The regular-conv arm is family-independent.
            assert_eq!(
                v1.get(key).expect("v1 entry").regular_ms,
                v2.get(key).expect("v2 entry").regular_ms
            );
        }
        // build() is exactly build_family(DcnV1).
        let legacy = LatencyLut::build(&gpu, &keys, method, pred);
        assert_eq!(legacy.to_json(), v1.to_json());
    }

    #[test]
    fn lightweight_predictor_shrinks_overhead() {
        let gpu = Gpu::new(DeviceConfig::xavier_agx());
        let keys = [LatencyKey {
            c_in: 64,
            c_out: 64,
            h: 32,
            w: 32,
            stride: 1,
        }];
        let std = LatencyLut::build(
            &gpu,
            &keys,
            SamplingMethod::SoftwareBilinear,
            OffsetPredictorKind::Standard,
        );
        let lw = LatencyLut::build(
            &gpu,
            &keys,
            SamplingMethod::Tex2dPlusPlus,
            OffsetPredictorKind::Lightweight,
        );
        assert!(lw.dcn_overhead_ms(&keys[0]) < std.dcn_overhead_ms(&keys[0]));
    }

    #[test]
    fn json_round_trip() {
        let gpu = Gpu::new(DeviceConfig::xavier_agx());
        let lut = LatencyLut::build(
            &gpu,
            &tiny_keys(),
            SamplingMethod::Tex2d,
            OffsetPredictorKind::Lightweight,
        );
        let s = lut.to_json();
        let back = LatencyLut::from_json(&s).unwrap();
        assert_eq!(back.len(), lut.len());
        assert_eq!(back.device, lut.device);
        for key in tiny_keys() {
            assert!((back.dcn_overhead_ms(&key) - lut.dcn_overhead_ms(&key)).abs() < 1e-12);
        }
    }

    #[test]
    fn serialization_is_deterministic() {
        // HashMap iteration order varies run to run; the sorted pair list
        // must not.
        let gpu = Gpu::new(DeviceConfig::xavier_agx());
        let mut keys = tiny_keys();
        let a = LatencyLut::build(
            &gpu,
            &keys,
            SamplingMethod::Tex2d,
            OffsetPredictorKind::Lightweight,
        );
        keys.reverse();
        let b = LatencyLut::build(
            &gpu,
            &keys,
            SamplingMethod::Tex2d,
            OffsetPredictorKind::Lightweight,
        );
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(
            a.to_json(),
            LatencyLut::from_json(&a.to_json()).unwrap().to_json()
        );
    }

    #[test]
    fn save_load_round_trip_and_corrupt_file_is_typed() {
        use defcon_support::fault::{self, FaultPlan, Schedule};
        let gpu = Gpu::new(DeviceConfig::xavier_agx());
        let lut = LatencyLut::build(
            &gpu,
            &tiny_keys(),
            SamplingMethod::Tex2d,
            OffsetPredictorKind::Lightweight,
        );
        let mut path = std::env::temp_dir();
        path.push(format!("defcon-lut-test-{}.json", std::process::id()));
        lut.save(&path).unwrap();
        let back = LatencyLut::load(&path).unwrap();
        assert_eq!(back.to_json(), lut.to_json());
        // Injected corruption on load → typed Json error, never a panic.
        {
            let _g = fault::arm(FaultPlan::new(17).point("lut.load", Schedule::Always));
            let err = LatencyLut::load(&path).unwrap_err();
            assert!(matches!(err, DefconError::Json { .. }));
        }
        // A missing file is an Io error naming the path.
        std::fs::remove_file(&path).unwrap();
        let err = LatencyLut::load(&path).unwrap_err();
        assert!(matches!(err, DefconError::Io { .. }));
    }

    #[test]
    fn try_overhead_returns_missing_key() {
        let lut = LatencyLut::default();
        let key = LatencyKey {
            c_in: 1,
            c_out: 1,
            h: 1,
            w: 1,
            stride: 1,
        };
        assert!(matches!(
            lut.try_dcn_overhead_ms(&key),
            Err(DefconError::MissingKey { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "latency LUT missing key")]
    fn missing_key_panics() {
        let lut = LatencyLut::default();
        lut.dcn_overhead_ms(&LatencyKey {
            c_in: 1,
            c_out: 1,
            h: 1,
            w: 1,
            stride: 1,
        });
    }
}
