//! Throughput-mode simulation serving (ROADMAP open item 1).
//!
//! Every other entry point in this workspace is a one-shot repro binary;
//! this module is the long-running counterpart: a [`SimServer`] accepts
//! [`SimRequest`]s through a bounded admission queue, fans batches across
//! `support::par` workers over shared-immutable [`DeviceConfig`] / LUT
//! state, and consults a **content-addressed launch-report cache** before
//! simulating anything.
//!
//! ## Cache-correctness argument
//!
//! The cache key is the FNV-1a 64 hash of [`SimRequest::canonical_string`]
//! — a canonical JSON rendering with a pinned field order, integer-only
//! policy fields, and the seed spelled as a hex string (so no value is
//! ever squeezed through an `f64`). Canonicalization is **total** (every
//! request renders) and **injective** (distinct requests render
//! differently, since every request field appears verbatim); both
//! properties are enforced by property tests. A lookup only counts as a
//! hit when the stored canonical string matches byte-for-byte, so even a
//! 64-bit hash collision cannot alias two requests.
//!
//! A hit is byte-identical to a fresh simulation because of the PR 2
//! determinism contract: every worker runs its engine at `threads = 1`
//! ([`SamplePolicy`] pinned), so a report is a pure function of the
//! canonicalized request — which is exactly what the key hashes. Cache
//! reads and writes happen only on the owner thread (phases A and C of
//! [`SimServer::drain`]); workers touch disjoint result slots. Eviction
//! and worker count therefore change *when* a simulation runs, never what
//! bytes come back — the differential serving suite
//! (`tests/serving_equivalence.rs`) checks this at 1 vs 4 workers and
//! cold vs warm cache.
//!
//! ## Overload behaviour
//!
//! When the queue is full (or the `serve.enqueue` fault point fires),
//! [`SimServer::submit`] sheds the request with a typed
//! [`DefconError::Overloaded`]. The batch driver [`SimServer::serve`]
//! responds with a **deterministic retry loop** ([`RetryPolicy`], default
//! one retry — the original drain-and-retry behaviour): drain the backlog,
//! charge a seeded exponential backoff *in virtual cycles* against the
//! request's deadline budget, and re-attempt admission (the
//! `retry.attempt` fault point fails an attempt outright). When retries
//! are exhausted, the request is degraded one rung down the paper's
//! `tex2D++ → tex2D → software` ladder ([`SamplingMethod::degrade`]) and
//! served inline; a request already at the software floor is **terminally
//! shed** — it still gets a response, carrying the `Overloaded` error.
//! Every request thus ends in exactly one of three outcomes: served, shed,
//! or deadline-exceeded ([`ServeOutcome`]) — never silently dropped. The
//! `serve.cache` fault point models a corrupt cache entry: the entry is
//! dropped and the request re-simulated, which re-derives identical bytes.
//!
//! ## Deadline budgets (virtual time)
//!
//! A request may carry a deadline in **virtual cycles**
//! ([`RequestPolicy::deadline_cycles`], or the server-wide
//! `DEFCON_SERVE_DEADLINE` default). Enforcement never reads a wall
//! clock, so verdicts are byte-reproducible: retry backoffs are charged
//! against the budget up front, a LUT-backed preflight rejects requests
//! whose tabulated cost already exceeds what remains (uniformly, *before*
//! the cache is consulted, so temperature cannot change the verdict), and
//! a miss simulation runs against a [`DeadlineBudget`] whose cooperative
//! cancellation unwinds the engine's band workers between launches. A
//! cache hit replays the same verdict by walking the cached per-launch
//! cycle charges — hit and miss agree because a budget trips at the first
//! launch whose cumulative `ceil(cycles)` crosses the remainder, and that
//! is a pure function of the (deterministic) report stream. Exceeded
//! requests are never cached. The `serve.deadline` fault point forces the
//! verdict at admission.
//!
//! ## Circuit breaker over the kernel ladder
//!
//! [`SimServer::serve`] consults a per-rung circuit breaker
//! ([`LadderBreaker`]) over the two texture rungs at admission: a rung
//! whose breaker refuses is skipped *before* canonicalization, so the
//! request is planned down the ladder without burning a simulation on a
//! rung that keeps failing. Outcomes feed back in response order — each
//! response's recorded ladder degradations mark the failed rungs, the
//! served method marks a success — so breaker evolution is a pure
//! function of the response stream (cached and fresh responses carry
//! identical degradation lists), invariant to worker count and cache
//! temperature. The software floor is exempt: it cannot fail texture
//! setup, so there is always a rung to land on. The `breaker.trip` fault
//! point force-opens the requested rung at admission.

use std::sync::Arc;
use std::time::Instant;

use defcon_accel::{Accel, AccelConfig};
use defcon_gpusim::{DeadlineBudget, DeviceConfig, Gpu, KernelReport, SamplePolicy};
use defcon_kernels::backend::BackendKind;
use defcon_kernels::op::{synthetic_inputs, DeformConvOp, OpFamily, SamplingMethod};
use defcon_kernels::DeformLayerShape;
use defcon_support::breaker::{BreakerConfig, BreakerState, CircuitBreaker};
use defcon_support::error::DefconError;
use defcon_support::json::{Json, ToJson};
use defcon_support::par::ParallelSliceMut;
use defcon_support::retry::RetryPolicy;
use defcon_support::{env, fault, obs};

use crate::lut::{LatencyKey, LatencyLut};

/// FNV-1a 64-bit hash — the content-address function for cache keys and
/// report digests. Stable across platforms, runs, and Rust versions.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A simulated device a request can target, addressed by canonical name.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeDevice {
    /// The Jetson AGX Xavier preset (`"xavier-agx"`).
    XavierAgx,
    /// The RTX 2080 Ti preset (`"rtx2080ti"`).
    Rtx2080Ti,
}

impl ServeDevice {
    /// The name used in canonical request JSON and cache keys.
    pub fn canonical_name(&self) -> &'static str {
        match self {
            ServeDevice::XavierAgx => "xavier-agx",
            ServeDevice::Rtx2080Ti => "rtx2080ti",
        }
    }

    /// Resolves a canonical name back to a device.
    pub fn from_name(name: &str) -> Option<ServeDevice> {
        ServeDevice::all()
            .into_iter()
            .find(|d| d.canonical_name() == name)
    }

    /// The device preset this request target resolves to.
    pub fn config(&self) -> DeviceConfig {
        DeviceConfig::preset(self.canonical_name())
            .expect("every ServeDevice name is a DeviceConfig preset")
    }

    /// Every servable device.
    pub fn all() -> [ServeDevice; 2] {
        [ServeDevice::XavierAgx, ServeDevice::Rtx2080Ti]
    }
}

/// Per-request simulation policy. Integer-only on purpose: every field
/// lands in the canonical JSON, and floats would make canonicalization
/// rendering-sensitive.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RequestPolicy {
    /// Block-sampling budget for the engine (see [`SamplePolicy`]).
    pub max_blocks: usize,
    /// Seed for the synthetic input/offset tensors.
    pub seed: u64,
    /// Offset spread in milli-pixels (4000 = the paper's ±4.0 px).
    pub spread_milli: u32,
    /// Per-request deadline budget in **virtual cycles**; 0 (the default)
    /// means no per-request deadline (the server default, if any,
    /// applies). Omitted from the canonical form when 0 so pre-deadline
    /// requests keep their content addresses.
    pub deadline_cycles: u64,
}

impl Default for RequestPolicy {
    fn default() -> Self {
        RequestPolicy {
            max_blocks: 96,
            seed: 2024,
            spread_milli: 4000,
            deadline_cycles: 0,
        }
    }
}

impl RequestPolicy {
    /// The offset spread in pixels.
    pub fn spread(&self) -> f32 {
        self.spread_milli as f32 / 1000.0
    }
}

/// One unit of serving work: simulate `kernel_family` for `layer` on
/// `device` under `policy`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimRequest {
    /// Target device preset.
    pub device: ServeDevice,
    /// The deformable layer to simulate.
    pub layer: DeformLayerShape,
    /// Which sampling kernel family to run.
    pub kernel_family: SamplingMethod,
    /// Which deformable operator generation to simulate (v1/v2/v3).
    pub op_family: OpFamily,
    /// Which execution backend times the request. The default
    /// [`BackendKind::Gpusim`] is omitted from the canonical form, so
    /// every pre-backend request keeps its content address.
    pub backend: BackendKind,
    /// Simulation policy knobs.
    pub policy: RequestPolicy,
}

impl SimRequest {
    /// The canonical JSON form: pinned field order, integer-only values,
    /// the seed as a hex string. This is the *content* the cache
    /// addresses — two requests are the same job iff their canonical
    /// forms are byte-identical.
    ///
    /// The `op_family` field is emitted **only** for v2/v3 (right after
    /// `kernel_family`): every pre-family request — always implicitly
    /// v1 — renders to exactly the bytes it rendered to before the field
    /// existed, so persisted digests and pinned FNV vectors survive the
    /// format extension. `deadline_cycles` follows the same discipline:
    /// emitted (last in the policy object) only when non-zero, so every
    /// deadline-free request renders to its pre-deadline bytes. And
    /// `backend` likewise: emitted (after the family fields, before
    /// `policy`) only when it is not the default `gpusim` substrate.
    pub fn canonical(&self) -> Json {
        let l = &self.layer;
        let mut fields = vec![
            ("v", Json::from(1u64)),
            ("device", Json::str(self.device.canonical_name())),
            (
                "layer",
                Json::obj(vec![
                    ("n", Json::from(l.n)),
                    ("c_in", Json::from(l.c_in)),
                    ("c_out", Json::from(l.c_out)),
                    ("h", Json::from(l.h)),
                    ("w", Json::from(l.w)),
                    ("kernel", Json::from(l.kernel)),
                    ("stride", Json::from(l.stride)),
                    ("pad", Json::from(l.pad)),
                    ("deform_groups", Json::from(l.deform_groups)),
                ]),
            ),
            ("kernel_family", Json::str(self.kernel_family.name())),
        ];
        if self.op_family != OpFamily::DcnV1 {
            fields.push(("op_family", Json::str(self.op_family.name())));
        }
        if self.backend != BackendKind::Gpusim {
            fields.push(("backend", Json::str(self.backend.name())));
        }
        let mut policy = vec![
            ("max_blocks", Json::from(self.policy.max_blocks)),
            ("seed", Json::str(format!("{:016x}", self.policy.seed))),
            ("spread_milli", Json::from(self.policy.spread_milli as u64)),
        ];
        if self.policy.deadline_cycles != 0 {
            policy.push((
                "deadline_cycles",
                Json::str(format!("{:016x}", self.policy.deadline_cycles)),
            ));
        }
        fields.push(("policy", Json::obj(policy)));
        Json::obj(fields)
    }

    /// [`SimRequest::canonical`] rendered to bytes.
    pub fn canonical_string(&self) -> String {
        self.canonical().to_string()
    }

    /// The content-address of this request.
    pub fn cache_key(&self) -> u64 {
        fnv1a64(self.canonical_string().as_bytes())
    }

    /// The same request one rung down the fallback ladder, or `None` at
    /// the software floor. Used as the overload degradation response.
    pub fn degraded(&self) -> Option<SimRequest> {
        self.kernel_family
            .degrade()
            .map(|kernel_family| SimRequest {
                kernel_family,
                ..self.clone()
            })
    }
}

/// What a cache lookup returns on a hit.
pub struct CachedHit {
    /// The cached per-launch reports.
    pub reports: Vec<KernelReport>,
    /// The sampling method that produced them.
    pub method: SamplingMethod,
    /// Fallback-ladder degradations recorded at simulation time.
    pub degradations: Vec<String>,
    /// Wall-clock time the lookup took.
    pub latency_ns: u64,
}

struct CacheEntry {
    key: u64,
    canonical: String,
    reports: Vec<KernelReport>,
    method: SamplingMethod,
    degradations: Vec<String>,
    last_used: u64,
}

/// A bounded, LRU-evicting, content-addressed launch-report cache.
///
/// Lookups verify the full canonical string, not just the 64-bit key, so
/// a hash collision degrades to a miss instead of aliasing two requests.
/// The `serve.cache` fault point drops the matching entry at lookup time
/// (modelling corruption): the caller re-simulates and re-inserts
/// identical bytes.
pub struct ReportCache {
    capacity: usize,
    entries: Vec<CacheEntry>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    drops: u64,
    inserts: u64,
}

impl ReportCache {
    /// An empty cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        ReportCache {
            capacity,
            entries: Vec::new(),
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            drops: 0,
            inserts: 0,
        }
    }

    /// Looks up a content address. Only a byte-identical canonical string
    /// counts as a hit; the `serve.cache` fault point drops the matching
    /// entry instead (forcing a deterministic re-simulation).
    pub fn lookup(&mut self, key: u64, canonical: &str) -> Option<CachedHit> {
        let t0 = Instant::now();
        let pos = self
            .entries
            .iter()
            .position(|e| e.key == key && e.canonical == canonical);
        let Some(i) = pos else {
            self.misses += 1;
            return None;
        };
        if fault::fires("serve.cache") {
            // Injected corruption: the stored bytes are untrustworthy, so
            // drop the entry and miss — the fresh simulation re-derives
            // identical bytes and re-inserts them.
            self.entries.remove(i);
            self.drops += 1;
            self.misses += 1;
            return None;
        }
        self.tick += 1;
        self.entries[i].last_used = self.tick;
        self.hits += 1;
        let e = &self.entries[i];
        Some(CachedHit {
            reports: e.reports.clone(),
            method: e.method,
            degradations: e.degradations.clone(),
            latency_ns: t0.elapsed().as_nanos() as u64,
        })
    }

    /// Inserts (or refreshes) an entry, evicting the least recently used
    /// one when at capacity.
    pub fn insert(
        &mut self,
        key: u64,
        canonical: String,
        reports: &[KernelReport],
        method: SamplingMethod,
        degradations: &[String],
    ) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if let Some(e) = self
            .entries
            .iter_mut()
            .find(|e| e.key == key && e.canonical == canonical)
        {
            e.last_used = self.tick;
            return;
        }
        if self.entries.len() >= self.capacity {
            let mut lru = 0;
            for (i, e) in self.entries.iter().enumerate() {
                if e.last_used < self.entries[lru].last_used {
                    lru = i;
                }
            }
            self.entries.swap_remove(lru);
            self.evictions += 1;
        }
        self.entries.push(CacheEntry {
            key,
            canonical,
            reports: reports.to_vec(),
            method,
            degradations: degradations.to_vec(),
            last_used: self.tick,
        });
        self.inserts += 1;
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The configured capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that required a fresh simulation.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries evicted by the LRU bound.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Entries dropped by the `serve.cache` fault point.
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// Entries actually pushed (refreshes excluded). Every inserted entry
    /// is still resident, was LRU-evicted, or was fault-dropped, so
    /// `inserts == len + evictions + drops` at every quiescent point —
    /// the chaos soak's cache-accounting invariant.
    pub fn inserts(&self) -> u64 {
        self.inserts
    }

    /// Lifetime hit rate in `[0, 1]` (0 before any lookup).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Server sizing and robustness tuning. The sizing knobs and the
/// retry/deadline knobs have env overrides (see
/// [`ServeConfig::with_env_overrides`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServeConfig {
    /// Worker bands for miss simulation. Worker count never changes
    /// response bytes — each worker pins its engine to `threads = 1`.
    pub workers: usize,
    /// Admission-queue capacity; a full queue sheds with
    /// [`DefconError::Overloaded`].
    pub queue_capacity: usize,
    /// Report-cache capacity in entries.
    pub cache_capacity: usize,
    /// Admission retry schedule. The default (`max_retries = 1`)
    /// reproduces the original drain-and-retry-once behaviour.
    pub retry: RetryPolicy,
    /// Server-wide deadline budget in virtual cycles applied to requests
    /// that do not carry their own; 0 = no default deadline.
    pub default_deadline_cycles: u64,
    /// Tuning for the per-rung ladder breakers.
    pub breaker: BreakerConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: defcon_gpusim::default_threads(),
            queue_capacity: 64,
            cache_capacity: 256,
            retry: RetryPolicy::default(),
            default_deadline_cycles: 0,
            breaker: BreakerConfig::default(),
        }
    }
}

impl ServeConfig {
    /// Applies `DEFCON_SERVE_QUEUE` / `DEFCON_SERVE_CACHE` /
    /// `DEFCON_RETRY_MAX` / `DEFCON_SERVE_DEADLINE` overrides on top of
    /// `self`. (`workers` already follows `DEFCON_THREADS` through
    /// [`defcon_gpusim::default_threads`] in [`ServeConfig::default`].)
    pub fn with_env_overrides(mut self) -> Result<Self, DefconError> {
        if let Some(q) = env::positive_usize(env::SERVE_QUEUE)? {
            self.queue_capacity = q;
        }
        if let Some(c) = env::positive_usize(env::SERVE_CACHE)? {
            self.cache_capacity = c;
        }
        if let Some(r) = env::u64_value(env::RETRY_MAX)? {
            self.retry.max_retries = r.min(u32::MAX as u64) as u32;
        }
        if let Some(d) = env::u64_value(env::SERVE_DEADLINE)? {
            self.default_deadline_cycles = d;
        }
        Ok(self)
    }

    /// The default configuration with env overrides applied.
    pub fn from_env() -> Result<Self, DefconError> {
        ServeConfig::default().with_env_overrides()
    }
}

/// The terminal state of a request: every request the server accepts a
/// reference to ends in exactly one of these (the chaos soak's
/// none-lost invariant partitions a session's responses over them).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeOutcome {
    /// Answered with reports (possibly degraded, possibly from cache).
    Served,
    /// Admission failed at the software floor after all retries; the
    /// response carries the final `Overloaded` error and no reports.
    Shed,
    /// The virtual-time deadline verdict fired (at admission, preflight,
    /// or mid-simulation); the response carries the `DeadlineExceeded`
    /// rendering and no reports.
    DeadlineExceeded,
    /// The simulation itself failed with a non-deadline error. The chaos
    /// soak asserts this never happens (the software floor always runs).
    Failed,
}

impl ServeOutcome {
    /// Display name, used in summaries and obs events.
    pub fn name(&self) -> &'static str {
        match self {
            ServeOutcome::Served => "served",
            ServeOutcome::Shed => "shed",
            ServeOutcome::DeadlineExceeded => "deadline_exceeded",
            ServeOutcome::Failed => "failed",
        }
    }
}

/// One served request: the reports that answered it plus provenance
/// (cache hit? degraded at admission? which rung actually ran?).
#[derive(Clone, Debug)]
pub struct SimResponse {
    /// The request as served (post-degradation if admission degraded it).
    pub request: SimRequest,
    /// Content-address of `request`.
    pub key: u64,
    /// Per-launch reports from the simulation (or the cache).
    pub reports: Vec<KernelReport>,
    /// The sampling method that actually ran (fallback ladder may have
    /// stepped down from `request.kernel_family`).
    pub method: SamplingMethod,
    /// One line per fallback-ladder rung skipped inside the simulation.
    pub degradations: Vec<String>,
    /// True when answered from the report cache.
    pub from_cache: bool,
    /// True when admission control degraded this request before serving.
    pub degraded_admission: bool,
    /// Wall-clock time to answer (cache lookup or simulation). Excluded
    /// from [`SimResponse::content_json`] — timing is not content.
    pub latency_ns: u64,
    /// `deform − regular` latency from the server's LUT, when attached
    /// and the layer is tabulated.
    pub dcn_overhead_ms: Option<f64>,
    /// Simulation failure rendering, when the request could not be
    /// served (reports empty in that case).
    pub error: Option<String>,
    /// The request's terminal state. Like `from_cache`, provenance —
    /// excluded from [`SimResponse::content_json`] (the `error` field
    /// already carries the distinguishing content).
    pub outcome: ServeOutcome,
}

impl SimResponse {
    /// The response *content* — everything that must be byte-identical
    /// across worker counts and cache temperatures. Deliberately excludes
    /// `from_cache`, `degraded_admission`, and `latency_ns`, which
    /// describe *how* the answer was produced, not the answer.
    pub fn content_json(&self) -> Json {
        Json::obj(vec![
            ("request", self.request.canonical()),
            ("key", Json::str(format!("{:016x}", self.key))),
            ("method", Json::str(self.method.name())),
            (
                "degradations",
                Json::Arr(self.degradations.iter().map(Json::str).collect()),
            ),
            (
                "dcn_overhead_ms",
                self.dcn_overhead_ms.map_or(Json::Null, Json::from),
            ),
            ("error", self.error.as_deref().map_or(Json::Null, Json::str)),
            (
                "reports",
                Json::Arr(self.reports.iter().map(|r| r.to_json()).collect()),
            ),
        ])
    }

    /// [`SimResponse::content_json`] rendered to bytes.
    pub fn content_string(&self) -> String {
        self.content_json().to_string()
    }
}

enum Plan {
    Hit(CachedHit),
    Miss(usize),
    /// The deadline verdict fired in phase A (injected fault or LUT
    /// preflight), before the cache was consulted.
    Deadline(DefconError),
}

struct SimOutcome {
    result: Result<(Vec<KernelReport>, SamplingMethod, Vec<String>), DefconError>,
    latency_ns: u64,
}

fn simulate_request(
    req: &SimRequest,
    device: &DeviceConfig,
    remaining_cycles: Option<u64>,
) -> SimOutcome {
    let t0 = Instant::now();
    // Engine threads pinned to 1: report bytes must be a pure function of
    // the canonical request, independent of the server's worker count.
    let mut gpu = Gpu::with_policy(
        device.clone(),
        SamplePolicy {
            max_blocks: req.policy.max_blocks,
            threads: 1,
        },
    );
    // Deadline enforcement: the remaining budget (deadline minus retry
    // backoffs already charged) rides into the engine as a cooperative
    // cancellation token — launches past the budget unwind and surface as
    // DeadlineExceeded, which is non-degradable and exits the ladder.
    if let Some(r) = remaining_cycles {
        gpu = gpu.with_budget(Arc::new(DeadlineBudget::new(r)));
    }
    let (x, offsets) = synthetic_inputs(&req.layer, req.policy.spread(), req.policy.seed);
    // `modulation: None` — the trace is keyed on the family alone, never
    // on modulation *values*, so a served v2/v3 request needs no tensor;
    // the kernels still emit the family's mask/logit loads and arithmetic.
    let op = DeformConvOp {
        method: req.kernel_family,
        family: req.op_family,
        ..DeformConvOp::baseline(req.layer)
    };
    let result = match req.backend {
        BackendKind::Gpusim => op.simulate_deform_with_fallback(&gpu, &x, &offsets),
        BackendKind::Accel => {
            // Each serving device pairs with its deployment-class
            // accelerator model; the gpusim ladder remains the fallback
            // when the accel declines (buffers, armed accel.tile fault).
            let accel = Accel::new(
                AccelConfig::for_serve_device(req.device.canonical_name())
                    .expect("every ServeDevice has a paired accelerator"),
            );
            defcon_accel::launch_with_gpu_fallback(&accel, &gpu, &op, &x, &offsets).and_then(|fb| {
                // The accel launch is analytic and not budget-gated;
                // replay the deadline charge walk over its reports so
                // fresh simulations and cache hits produce identical
                // verdicts. (Reports from the gpusim fallback already
                // passed the engine's budget, so the walk re-passes.)
                match remaining_cycles.and_then(|r| hit_deadline_verdict(r, &fb.reports)) {
                    Some(e) => Err(e),
                    None => Ok(fb),
                }
            })
        }
    };
    SimOutcome {
        result: result.map(|fb| (fb.reports, fb.method, fb.degradations)),
        latency_ns: t0.elapsed().as_nanos() as u64,
    }
}

/// Replays the deadline verdict for a cache hit: walks the cached
/// per-launch reports accumulating the same integer charge the engine's
/// [`DeadlineBudget`] applies, and returns the error of the first launch
/// whose cumulative charge crosses `remaining` — the exact launch a fresh
/// budgeted simulation of the same (deterministic) report stream would
/// have failed at, so hit and miss produce byte-identical errors.
fn hit_deadline_verdict(remaining: u64, reports: &[KernelReport]) -> Option<DefconError> {
    let mut acc = 0u64;
    for r in reports {
        acc = acc.saturating_add(DeadlineBudget::charge_units(r.cycles));
        if acc > remaining {
            return Some(DefconError::DeadlineExceeded {
                what: format!("launch {}", r.kernel),
                budget_cycles: remaining,
            });
        }
    }
    None
}

/// Per-rung circuit breakers over the texture rungs of the fallback
/// ladder. The software floor is deliberately unguarded — it cannot fail
/// texture setup, so admission always has a rung to land on.
pub struct LadderBreaker {
    tex2dpp: CircuitBreaker,
    tex2d: CircuitBreaker,
    /// Rendered transition log across both rungs, in the order the
    /// transitions happened (lines like `"tex2D:closed->open:trip"`).
    log: Vec<String>,
    drained: [usize; 2],
}

impl LadderBreaker {
    fn new(cfg: BreakerConfig) -> Self {
        LadderBreaker {
            tex2dpp: CircuitBreaker::new(cfg),
            tex2d: CircuitBreaker::new(cfg),
            log: Vec::new(),
            drained: [0; 2],
        }
    }

    fn rung_mut(&mut self, method: SamplingMethod) -> Option<&mut CircuitBreaker> {
        match method {
            SamplingMethod::Tex2dPlusPlus => Some(&mut self.tex2dpp),
            SamplingMethod::Tex2d => Some(&mut self.tex2d),
            SamplingMethod::SoftwareBilinear => None,
        }
    }

    /// Current state of a rung's breaker (the software floor reads as
    /// permanently closed).
    pub fn state(&self, method: SamplingMethod) -> BreakerState {
        match method {
            SamplingMethod::Tex2dPlusPlus => self.tex2dpp.state(),
            SamplingMethod::Tex2d => self.tex2d.state(),
            SamplingMethod::SoftwareBilinear => BreakerState::Closed,
        }
    }

    /// Plans a request's entry rung: starting at `requested`, consults
    /// each guarded rung's breaker (burning one cooldown tick when open)
    /// and steps down past refusals. Always terminates — the software
    /// floor allows unconditionally.
    fn plan(&mut self, requested: SamplingMethod) -> SamplingMethod {
        let mut method = requested;
        loop {
            match self.rung_mut(method) {
                None => return method,
                Some(b) => {
                    if b.allow() {
                        return method;
                    }
                    method = method
                        .degrade()
                        .expect("guarded rungs always have a lower rung");
                }
            }
        }
    }

    /// Feeds one response's outcome back: the rungs the ladder recorded
    /// as degraded (walking down from the admitted family) each count a
    /// failure; the rung that served counts a success.
    fn note_outcome(&mut self, admitted: SamplingMethod, failed_rungs: usize) {
        let mut method = admitted;
        for _ in 0..failed_rungs {
            if let Some(b) = self.rung_mut(method) {
                b.record_failure();
            }
            match method.degrade() {
                Some(next) => method = next,
                None => return,
            }
        }
        if let Some(b) = self.rung_mut(method) {
            b.record_success();
        }
    }

    /// Appends freshly-recorded transitions (since the last sync) to the
    /// combined log, emitting one obs event per transition and refreshing
    /// the per-rung state gauges.
    fn sync_obs(&mut self) {
        for (i, rung) in [SamplingMethod::Tex2dPlusPlus, SamplingMethod::Tex2d]
            .into_iter()
            .enumerate()
        {
            let b = match rung {
                SamplingMethod::Tex2dPlusPlus => &self.tex2dpp,
                _ => &self.tex2d,
            };
            let fresh: Vec<String> = b.transitions()[self.drained[i]..]
                .iter()
                .map(|t| format!("{}:{}", rung.name(), t.render()))
                .collect();
            self.drained[i] = b.transitions().len();
            for line in fresh {
                obs::event_with("serve.breaker.transition", || {
                    vec![("rung", Json::str(rung.name())), ("edge", Json::str(&line))]
                });
                self.log.push(line);
            }
            obs::gauge_set(
                match rung {
                    SamplingMethod::Tex2dPlusPlus => "serve.breaker.tex2dpp",
                    _ => "serve.breaker.tex2d",
                },
                b.state().gauge(),
            );
        }
    }

    /// The combined rendered transition log, in event order.
    pub fn log(&self) -> &[String] {
        &self.log
    }
}

/// The throughput-mode simulation service. See the module docs for the
/// correctness argument; see `repro_serving` for a driveable session.
pub struct SimServer {
    cfg: ServeConfig,
    /// Shared-immutable device state, resolved once at construction.
    devices: Vec<(ServeDevice, DeviceConfig)>,
    lut: Option<LatencyLut>,
    /// Queued requests, each with the virtual backoff cycles its
    /// admission retries already charged against its deadline budget.
    queue: Vec<(SimRequest, u64)>,
    cache: ReportCache,
    breaker: LadderBreaker,
    sheds: u64,
    served: u64,
    degraded_admissions: u64,
    terminal_sheds: u64,
    deadline_exceeded: u64,
    retries: u64,
}

impl SimServer {
    /// A server with an empty queue and a cold cache.
    pub fn new(cfg: ServeConfig) -> Self {
        let devices = ServeDevice::all()
            .into_iter()
            .map(|d| (d, d.config()))
            .collect();
        SimServer {
            cache: ReportCache::new(cfg.cache_capacity),
            breaker: LadderBreaker::new(cfg.breaker),
            cfg,
            devices,
            lut: None,
            queue: Vec::new(),
            sheds: 0,
            served: 0,
            degraded_admissions: 0,
            terminal_sheds: 0,
            deadline_exceeded: 0,
            retries: 0,
        }
    }

    /// Attaches a latency LUT; responses for tabulated layers then carry
    /// `dcn_overhead_ms`. The LUT is shared-immutable serving state.
    pub fn with_lut(mut self, lut: LatencyLut) -> Self {
        self.lut = Some(lut);
        self
    }

    fn device_config(&self, device: ServeDevice) -> &DeviceConfig {
        self.devices
            .iter()
            .find(|(d, _)| *d == device)
            .map(|(_, cfg)| cfg)
            .expect("SimServer::new resolves every ServeDevice")
    }

    /// Admits one request into the bounded queue. A full queue — or a
    /// firing `serve.enqueue` fault — sheds the request with a typed
    /// [`DefconError::Overloaded`]; nothing is partially admitted.
    pub fn submit(&mut self, req: SimRequest) -> Result<(), DefconError> {
        self.submit_with(req, 0)
    }

    /// [`SimServer::submit`] carrying the virtual backoff cycles already
    /// charged against the request's deadline by admission retries.
    fn submit_with(&mut self, req: SimRequest, backoff_cycles: u64) -> Result<(), DefconError> {
        let depth = self.queue.len();
        // Short-circuit: the fault point is only consulted for requests
        // the queue could actually hold, so `fault::log()` indices stay
        // deterministic under overflow.
        if depth >= self.cfg.queue_capacity || fault::fires("serve.enqueue") {
            self.sheds += 1;
            obs::event_with("serve.shed", || {
                vec![
                    ("depth", Json::from(depth)),
                    ("capacity", Json::from(self.cfg.queue_capacity)),
                ]
            });
            return Err(DefconError::Overloaded {
                what: "serve queue".to_string(),
                queue_depth: depth,
                capacity: self.cfg.queue_capacity,
            });
        }
        self.queue.push((req, backoff_cycles));
        obs::gauge_set("serve.queue_depth", self.queue.len() as f64);
        Ok(())
    }

    /// The deadline governing `req`: its own, else the server default;
    /// 0 = none.
    fn effective_deadline(&self, req: &SimRequest) -> u64 {
        if req.policy.deadline_cycles != 0 {
            req.policy.deadline_cycles
        } else {
            self.cfg.default_deadline_cycles
        }
    }

    /// The virtual cycles still available to `req` after `backoff_cycles`
    /// of admission backoff, or `None` when no deadline governs it.
    fn remaining_for(&self, req: &SimRequest, backoff_cycles: u64) -> Option<u64> {
        let d = self.effective_deadline(req);
        (d != 0).then(|| d.saturating_sub(backoff_cycles))
    }

    /// Phase-A deadline gate, run (owner thread, admission order) for
    /// every deadline-carrying request **before** the cache is consulted,
    /// so cache temperature cannot change the verdict. Returns the fatal
    /// error when the `serve.deadline` fault fires or the LUT preflight
    /// says the tabulated cost already exceeds the remaining budget.
    fn deadline_gate(&self, req: &SimRequest, remaining: u64) -> Option<DefconError> {
        if fault::fires("serve.deadline") {
            return Some(DefconError::DeadlineExceeded {
                what: "serve admission".to_string(),
                budget_cycles: remaining,
            });
        }
        // LUT preflight: the tabulated deform latency (when this layer is
        // tabulated) converted to virtual cycles on the target device. An
        // estimate — the table was built under its own policy — used only
        // to fast-reject requests that cannot plausibly fit.
        let lut = self.lut.as_ref()?;
        let entry = lut.get(&LatencyKey::of(&req.layer))?;
        let cfg = self.device_config(req.device);
        let est_cycles = entry.deform_ms * cfg.core_clock_ghz * 1e6;
        (DeadlineBudget::charge_units(est_cycles) > remaining).then(|| {
            DefconError::DeadlineExceeded {
                what: "serve preflight".to_string(),
                budget_cycles: remaining,
            }
        })
    }

    /// Serves everything queued and returns responses in submission
    /// order. Three phases keep the result deterministic: (A) deadline
    /// gate and cache consultation on the owner thread in request order,
    /// (B) miss simulation fanned across worker bands into disjoint
    /// slots (each against its request's remaining deadline budget), (C)
    /// assembly, deadline replay for hits, cache insertion, and breaker
    /// feedback back on the owner thread in request order.
    pub fn drain(&mut self) -> Vec<SimResponse> {
        let batch = std::mem::take(&mut self.queue);
        if batch.is_empty() {
            return Vec::new();
        }
        let workers = self.cfg.workers.max(1);
        let drain_span = obs::span_with("serve.drain", || {
            vec![
                ("depth", Json::from(batch.len())),
                ("workers", Json::from(workers)),
            ]
        });

        // Phase A — deadline-gate and content-address each request, then
        // consult the cache. The gate runs before the lookup so the
        // verdict is identical on cold and warm caches.
        let mut keys: Vec<(u64, String)> = Vec::with_capacity(batch.len());
        let mut remainings: Vec<Option<u64>> = Vec::with_capacity(batch.len());
        let mut plans: Vec<Plan> = Vec::with_capacity(batch.len());
        let mut jobs: Vec<usize> = Vec::new();
        for (req, backoff) in &batch {
            let remaining = self.remaining_for(req, *backoff);
            let canonical = req.canonical_string();
            let key = fnv1a64(canonical.as_bytes());
            let gated = remaining.and_then(|r| self.deadline_gate(req, r));
            match gated {
                Some(e) => plans.push(Plan::Deadline(e)),
                None => match self.cache.lookup(key, &canonical) {
                    Some(hit) => plans.push(Plan::Hit(hit)),
                    None => {
                        plans.push(Plan::Miss(jobs.len()));
                        jobs.push(keys.len());
                    }
                },
            }
            keys.push((key, canonical));
            remainings.push(remaining);
        }

        // Phase B — simulate the misses. Workers read shared-immutable
        // device state and write disjoint one-slot bands.
        let mut slots: Vec<Option<SimOutcome>> = jobs.iter().map(|_| None).collect();
        {
            let devices = &self.devices;
            let batch_ref = &batch;
            let jobs_ref = &jobs;
            let remainings_ref = &remainings;
            slots
                .par_chunks_mut(1)
                .threads(workers)
                .enumerate()
                .for_each(|(i, slot)| {
                    let (req, _) = &batch_ref[jobs_ref[i]];
                    let cfg = devices
                        .iter()
                        .find(|(d, _)| *d == req.device)
                        .map(|(_, c)| c)
                        .expect("SimServer::new resolves every ServeDevice");
                    slot[0] = Some(simulate_request(req, cfg, remainings_ref[jobs_ref[i]]));
                });
        }

        // Phase C — assemble responses and fill the cache, in order.
        let mut out = Vec::with_capacity(batch.len());
        let (mut hits, mut misses) = (0u64, 0u64);
        for (i, (((req, _), plan), ((key, canonical), remaining))) in batch
            .into_iter()
            .zip(plans)
            .zip(keys.into_iter().zip(remainings))
            .enumerate()
        {
            let (reports, method, degradations, from_cache, error, outcome, latency_ns) = match plan
            {
                Plan::Deadline(e) => (
                    Vec::new(),
                    req.kernel_family,
                    Vec::new(),
                    false,
                    Some(e.to_string()),
                    ServeOutcome::DeadlineExceeded,
                    0,
                ),
                Plan::Hit(hit) => {
                    hits += 1;
                    // Replay the deadline verdict against the cached
                    // launch charges — the same predicate a budgeted
                    // fresh simulation evaluates.
                    match remaining.and_then(|r| hit_deadline_verdict(r, &hit.reports)) {
                        Some(e) => (
                            Vec::new(),
                            req.kernel_family,
                            Vec::new(),
                            false,
                            Some(e.to_string()),
                            ServeOutcome::DeadlineExceeded,
                            hit.latency_ns,
                        ),
                        None => (
                            hit.reports,
                            hit.method,
                            hit.degradations,
                            true,
                            None,
                            ServeOutcome::Served,
                            hit.latency_ns,
                        ),
                    }
                }
                Plan::Miss(j) => {
                    misses += 1;
                    let outcome = slots[j].take().expect("phase B fills every miss slot");
                    match outcome.result {
                        Ok((reports, method, degradations)) => {
                            // Deadline-exceeded results never reach
                            // this arm (the ladder propagates the
                            // error), so everything inserted here fit
                            // its budget.
                            self.cache
                                .insert(key, canonical, &reports, method, &degradations);
                            (
                                reports,
                                method,
                                degradations,
                                false,
                                None,
                                ServeOutcome::Served,
                                outcome.latency_ns,
                            )
                        }
                        Err(e) => {
                            let o = if matches!(e, DefconError::DeadlineExceeded { .. }) {
                                ServeOutcome::DeadlineExceeded
                            } else {
                                ServeOutcome::Failed
                            };
                            (
                                Vec::new(),
                                req.kernel_family,
                                Vec::new(),
                                false,
                                Some(e.to_string()),
                                o,
                                outcome.latency_ns,
                            )
                        }
                    }
                }
            };
            let request_span = obs::span_with("serve.request", || {
                vec![
                    ("index", Json::from(i)),
                    ("device", Json::str(req.device.canonical_name())),
                    ("kernel_family", Json::str(req.kernel_family.name())),
                    ("key", Json::str(format!("{key:016x}"))),
                ]
            });
            request_span.record("from_cache", Json::Bool(from_cache));
            request_span.record("reports", Json::from(reports.len()));
            drop(request_span);
            self.served += 1;
            if outcome == ServeOutcome::DeadlineExceeded {
                self.deadline_exceeded += 1;
                obs::counter_add("serve.deadline_exceeded", 1);
                obs::event_with("serve.deadline", || {
                    vec![
                        ("index", Json::from(i)),
                        ("budget", Json::from(remaining.unwrap_or(0))),
                    ]
                });
            }
            // Breaker feedback: the ladder's recorded degradations mark
            // the failed rungs, the served method the healthy one. Only
            // genuine serves feed it — deadline/shed verdicts say nothing
            // about rung health.
            if outcome == ServeOutcome::Served {
                self.breaker
                    .note_outcome(req.kernel_family, degradations.len());
            }
            out.push(SimResponse {
                dcn_overhead_ms: self.lut_overhead(&req),
                request: req,
                key,
                reports,
                method,
                degradations,
                from_cache,
                degraded_admission: false,
                latency_ns,
                error,
                outcome,
            });
        }
        self.breaker.sync_obs();
        obs::counter_add("serve.requests", out.len() as u64);
        obs::counter_add("serve.cache_hits", hits);
        obs::counter_add("serve.cache_misses", misses);
        obs::gauge_set("serve.queue_depth", 0.0);
        obs::gauge_set("serve.hit_rate", self.cache.hit_rate());
        drain_span.record("hits", Json::from(hits));
        drain_span.record("misses", Json::from(misses));
        drop(drain_span);
        out
    }

    /// Serves one request on the owner thread, bypassing the queue. Used
    /// for degraded admissions; same deadline gate, cache discipline and
    /// breaker feedback as [`drain`].
    ///
    /// [`drain`]: SimServer::drain
    fn serve_inline(
        &mut self,
        req: SimRequest,
        backoff_cycles: u64,
        degraded_admission: bool,
    ) -> SimResponse {
        let remaining = self.remaining_for(&req, backoff_cycles);
        let canonical = req.canonical_string();
        let key = fnv1a64(canonical.as_bytes());
        let t0 = Instant::now();
        let gated = remaining.and_then(|r| self.deadline_gate(&req, r));
        // `None` when the deadline gate fired before the cache was
        // consulted; otherwise whether the lookup hit (mirrors drain's
        // hit/miss accounting even when the hit then fails its verdict).
        let mut cache_hit: Option<bool> = None;
        let (reports, method, degradations, from_cache, error, outcome) = match gated {
            Some(e) => (
                Vec::new(),
                req.kernel_family,
                Vec::new(),
                false,
                Some(e.to_string()),
                ServeOutcome::DeadlineExceeded,
            ),
            None => match {
                let looked = self.cache.lookup(key, &canonical);
                cache_hit = Some(looked.is_some());
                looked
            } {
                Some(hit) => match remaining.and_then(|r| hit_deadline_verdict(r, &hit.reports)) {
                    Some(e) => (
                        Vec::new(),
                        req.kernel_family,
                        Vec::new(),
                        false,
                        Some(e.to_string()),
                        ServeOutcome::DeadlineExceeded,
                    ),
                    None => (
                        hit.reports,
                        hit.method,
                        hit.degradations,
                        true,
                        None,
                        ServeOutcome::Served,
                    ),
                },
                None => {
                    let sim = simulate_request(&req, self.device_config(req.device), remaining);
                    match sim.result {
                        Ok((reports, method, degradations)) => {
                            self.cache
                                .insert(key, canonical, &reports, method, &degradations);
                            (
                                reports,
                                method,
                                degradations,
                                false,
                                None,
                                ServeOutcome::Served,
                            )
                        }
                        Err(e) => {
                            let o = if matches!(e, DefconError::DeadlineExceeded { .. }) {
                                ServeOutcome::DeadlineExceeded
                            } else {
                                ServeOutcome::Failed
                            };
                            (
                                Vec::new(),
                                req.kernel_family,
                                Vec::new(),
                                false,
                                Some(e.to_string()),
                                o,
                            )
                        }
                    }
                }
            },
        };
        obs::counter_add("serve.requests", 1);
        if let Some(hit) = cache_hit {
            obs::counter_add(
                if hit {
                    "serve.cache_hits"
                } else {
                    "serve.cache_misses"
                },
                1,
            );
        }
        if outcome == ServeOutcome::DeadlineExceeded {
            self.deadline_exceeded += 1;
            obs::counter_add("serve.deadline_exceeded", 1);
        }
        if outcome == ServeOutcome::Served {
            self.breaker
                .note_outcome(req.kernel_family, degradations.len());
        }
        self.breaker.sync_obs();
        obs::gauge_set("serve.hit_rate", self.cache.hit_rate());
        self.served += 1;
        SimResponse {
            dcn_overhead_ms: self.lut_overhead(&req),
            request: req,
            key,
            reports,
            method,
            degradations,
            from_cache,
            degraded_admission,
            latency_ns: t0.elapsed().as_nanos() as u64,
            error,
            outcome,
        }
    }

    fn lut_overhead(&self, req: &SimRequest) -> Option<f64> {
        let lut = self.lut.as_ref()?;
        lut.try_dcn_overhead_ms(&LatencyKey::of(&req.layer)).ok()
    }

    /// Drives a whole request stream through admission control. Per
    /// request, in order:
    ///
    /// 1. **Breaker planning** — the request's entry rung is stepped down
    ///    past any texture rung whose circuit breaker refuses (and the
    ///    `breaker.trip` fault can force the requested rung open first).
    /// 2. **Submit, retry with backoff** — on overload, drain the
    ///    backlog, charge a seeded exponential backoff in virtual cycles
    ///    against the request's deadline budget, and re-attempt (the
    ///    `retry.attempt` fault fails an attempt outright). The default
    ///    [`RetryPolicy`] (one retry) reproduces the original
    ///    drain-and-retry-once behaviour.
    /// 3. **Degrade or shed** — when retries are exhausted, step one
    ///    ladder rung down and serve inline; a request already at the
    ///    software floor is terminally shed with an `Overloaded` error
    ///    response. A backoff spend that exhausts the deadline budget
    ///    short-circuits to a `DeadlineExceeded` response.
    ///
    /// Every request produces exactly one response; responses come back
    /// in submission order.
    pub fn serve(&mut self, reqs: &[SimRequest]) -> Vec<SimResponse> {
        let mut out = Vec::with_capacity(reqs.len());
        for req in reqs {
            let req = self.plan_admission(req);
            let deadline = self.effective_deadline(&req);
            if self.submit_with(req.clone(), 0).is_ok() {
                continue;
            }
            let mut backoff_spent = 0u64;
            let mut attempt = 0u32;
            let mut settled = false;
            let mut last_err: Option<DefconError> = None;
            while attempt < self.cfg.retry.max_retries {
                out.extend(self.drain());
                let pause = self.cfg.retry.backoff_cycles(attempt);
                backoff_spent = backoff_spent.saturating_add(pause);
                self.retries += 1;
                obs::counter_add("serve.retries", 1);
                obs::event_with("serve.retry", || {
                    vec![
                        ("attempt", Json::from(attempt as u64)),
                        ("backoff_cycles", Json::from(pause)),
                    ]
                });
                if deadline != 0 && backoff_spent >= deadline {
                    // The backoff alone exhausted the budget: the request
                    // is terminally deadline-exceeded without simulating.
                    self.deadline_exceeded += 1;
                    obs::counter_add("serve.deadline_exceeded", 1);
                    self.served += 1;
                    out.push(self.terminal_response(
                        req.clone(),
                        DefconError::DeadlineExceeded {
                            what: "serve backoff".to_string(),
                            budget_cycles: deadline,
                        },
                        ServeOutcome::DeadlineExceeded,
                    ));
                    settled = true;
                    break;
                }
                // The `retry.attempt` fault fails this re-attempt before
                // the queue is consulted (a lost admission race).
                let result = if fault::fires("retry.attempt") {
                    Err(DefconError::Overloaded {
                        what: "serve retry".to_string(),
                        queue_depth: self.queue.len(),
                        capacity: self.cfg.queue_capacity,
                    })
                } else {
                    self.submit_with(req.clone(), backoff_spent)
                };
                match result {
                    Ok(()) => {
                        settled = true;
                        break;
                    }
                    Err(e) => last_err = Some(e),
                }
                attempt += 1;
            }
            if settled {
                continue;
            }
            // Retries exhausted: degrade one rung, or terminally shed at
            // the software floor.
            let err = last_err.unwrap_or(DefconError::Overloaded {
                what: "serve queue".to_string(),
                queue_depth: self.queue.len(),
                capacity: self.cfg.queue_capacity,
            });
            match req.degraded() {
                Some(degraded) => {
                    self.degraded_admissions += 1;
                    obs::event_with("serve.degrade", || {
                        vec![
                            ("from", Json::str(req.kernel_family.name())),
                            ("to", Json::str(degraded.kernel_family.name())),
                            ("error", Json::str(err.to_string())),
                        ]
                    });
                    out.push(self.serve_inline(degraded, backoff_spent, true));
                }
                None => {
                    self.terminal_sheds += 1;
                    obs::counter_add("serve.sheds_terminal", 1);
                    obs::event_with("serve.shed_terminal", || {
                        vec![
                            ("kernel_family", Json::str(req.kernel_family.name())),
                            ("error", Json::str(err.to_string())),
                        ]
                    });
                    self.served += 1;
                    out.push(self.terminal_response(req.clone(), err, ServeOutcome::Shed));
                }
            }
        }
        out.extend(self.drain());
        out
    }

    /// Breaker-aware admission planning: force-opens the requested rung
    /// when the `breaker.trip` fault fires, then steps the request down
    /// past rungs whose breakers refuse. The fault (like the breakers) is
    /// only consulted for guarded (texture) rungs, so software-floor
    /// request streams keep their fault-log indices.
    fn plan_admission(&mut self, req: &SimRequest) -> SimRequest {
        if req.kernel_family == SamplingMethod::SoftwareBilinear {
            return req.clone();
        }
        if fault::fires("breaker.trip") {
            if let Some(b) = self.breaker.rung_mut(req.kernel_family) {
                b.trip();
            }
        }
        let planned = self.breaker.plan(req.kernel_family);
        if planned != req.kernel_family {
            obs::event_with("serve.breaker.reroute", || {
                vec![
                    ("from", Json::str(req.kernel_family.name())),
                    ("to", Json::str(planned.name())),
                ]
            });
        }
        self.breaker.sync_obs();
        SimRequest {
            kernel_family: planned,
            ..req.clone()
        }
    }

    /// A reports-free response for a terminal (shed / deadline) verdict.
    fn terminal_response(
        &self,
        req: SimRequest,
        err: DefconError,
        outcome: ServeOutcome,
    ) -> SimResponse {
        let canonical = req.canonical_string();
        let method = req.kernel_family;
        SimResponse {
            dcn_overhead_ms: self.lut_overhead(&req),
            key: fnv1a64(canonical.as_bytes()),
            request: req,
            reports: Vec::new(),
            method,
            degradations: Vec::new(),
            from_cache: false,
            degraded_admission: false,
            latency_ns: 0,
            error: Some(err.to_string()),
            outcome,
        }
    }

    /// The sizing this server was built with.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Read-only view of the report cache (stats and size).
    pub fn cache(&self) -> &ReportCache {
        &self.cache
    }

    /// Requests currently queued.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Requests shed by admission control.
    pub fn sheds(&self) -> u64 {
        self.sheds
    }

    /// Responses produced over this server's lifetime.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Requests that were degraded at admission before being served.
    pub fn degraded_admissions(&self) -> u64 {
        self.degraded_admissions
    }

    /// Requests terminally shed at the software floor (each still
    /// produced an error-carrying response).
    pub fn terminal_sheds(&self) -> u64 {
        self.terminal_sheds
    }

    /// Requests that ended deadline-exceeded (admission gate, preflight,
    /// backoff exhaustion, cached-verdict replay, or mid-simulation).
    pub fn deadline_exceeded(&self) -> u64 {
        self.deadline_exceeded
    }

    /// Admission re-attempts made by [`SimServer::serve`]'s retry loop.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Read-only view of the ladder circuit breakers (states and the
    /// combined transition log).
    pub fn breaker(&self) -> &LadderBreaker {
        &self.breaker
    }
}

/// Nearest-rank percentile (`p` in 0–100) of an ascending-sorted sample,
/// for the serving bench's p50/p99 latency summary. 0 for empty input.
pub fn percentile_ns(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_request(c: usize, family: SamplingMethod) -> SimRequest {
        SimRequest {
            device: ServeDevice::XavierAgx,
            layer: DeformLayerShape::same3x3(c, c, 10, 10),
            kernel_family: family,
            op_family: OpFamily::DcnV1,
            backend: BackendKind::Gpusim,
            policy: RequestPolicy {
                max_blocks: 16,
                ..RequestPolicy::default()
            },
        }
    }

    fn cfg(workers: usize) -> ServeConfig {
        ServeConfig {
            workers,
            queue_capacity: 8,
            cache_capacity: 32,
            ..ServeConfig::default()
        }
    }

    #[test]
    fn canonical_form_is_stable_and_parses() {
        let req = tiny_request(4, SamplingMethod::Tex2dPlusPlus);
        let a = req.canonical_string();
        let b = req.canonical_string();
        assert_eq!(a, b);
        let doc = Json::parse(&a).expect("canonical form is valid JSON");
        assert_eq!(doc.str_field("device"), Ok("xavier-agx"));
        assert_eq!(doc.str_field("kernel_family"), Ok("tex2D++"));
    }

    #[test]
    fn device_names_round_trip() {
        for d in ServeDevice::all() {
            assert_eq!(ServeDevice::from_name(d.canonical_name()), Some(d));
            assert!(!d.config().name.is_empty());
        }
        assert_eq!(ServeDevice::from_name("abacus"), None);
    }

    #[test]
    fn queue_overflow_is_a_typed_overloaded_error() {
        let _quiet = fault::quiesce();
        let mut server = SimServer::new(ServeConfig {
            workers: 1,
            queue_capacity: 2,
            cache_capacity: 8,
            ..ServeConfig::default()
        });
        let req = tiny_request(2, SamplingMethod::SoftwareBilinear);
        server.submit(req.clone()).expect("first fits");
        server.submit(req.clone()).expect("second fits");
        let err = server.submit(req).expect_err("third overflows");
        assert!(matches!(
            err,
            DefconError::Overloaded {
                queue_depth: 2,
                capacity: 2,
                ..
            }
        ));
        assert!(err.is_degradable());
        assert_eq!(server.sheds(), 1);
    }

    #[test]
    fn worker_count_does_not_change_response_bytes() {
        let _quiet = fault::quiesce();
        let reqs: Vec<SimRequest> = [
            SamplingMethod::Tex2dPlusPlus,
            SamplingMethod::Tex2d,
            SamplingMethod::SoftwareBilinear,
        ]
        .into_iter()
        .flat_map(|m| [tiny_request(2, m), tiny_request(4, m)])
        .collect();
        let serve_with = |workers: usize| -> Vec<String> {
            let mut server = SimServer::new(cfg(workers));
            let mut contents: Vec<String> = server
                .serve(&reqs)
                .iter()
                .map(SimResponse::content_string)
                .collect();
            contents.sort();
            contents
        };
        assert_eq!(serve_with(1), serve_with(3));
    }

    #[test]
    fn cache_hits_are_byte_identical_and_counted() {
        let _quiet = fault::quiesce();
        let mut server = SimServer::new(cfg(1));
        let reqs = vec![
            tiny_request(2, SamplingMethod::Tex2d),
            tiny_request(4, SamplingMethod::Tex2d),
        ];
        let cold = server.serve(&reqs);
        let warm = server.serve(&reqs);
        assert!(cold.iter().all(|r| !r.from_cache));
        assert!(warm.iter().all(|r| r.from_cache));
        for (c, w) in cold.iter().zip(&warm) {
            assert_eq!(c.content_string(), w.content_string());
        }
        assert_eq!(server.cache().hits(), 2);
        assert_eq!(server.cache().misses(), 2);
    }

    #[test]
    fn lru_evicts_the_least_recently_used_entry() {
        let _quiet = fault::quiesce();
        let mut cache = ReportCache::new(2);
        let reports: Vec<KernelReport> = Vec::new();
        let m = SamplingMethod::Tex2d;
        cache.insert(1, "a".into(), &reports, m, &[]);
        cache.insert(2, "b".into(), &reports, m, &[]);
        assert!(cache.lookup(1, "a").is_some(), "refresh a");
        cache.insert(3, "c".into(), &reports, m, &[]); // evicts b, the LRU
        assert!(cache.lookup(1, "a").is_some());
        assert!(cache.lookup(2, "b").is_none());
        assert!(cache.lookup(3, "c").is_some());
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn collision_without_matching_canonical_is_a_miss() {
        let _quiet = fault::quiesce();
        let mut cache = ReportCache::new(4);
        cache.insert(7, "a".into(), &[], SamplingMethod::Tex2d, &[]);
        assert!(
            cache.lookup(7, "b").is_none(),
            "same key, different content"
        );
        assert!(cache.lookup(7, "a").is_some());
    }

    #[test]
    fn degraded_request_steps_down_the_ladder() {
        let req = tiny_request(2, SamplingMethod::Tex2dPlusPlus);
        let d1 = req.degraded().expect("tex2D++ degrades");
        assert_eq!(d1.kernel_family, SamplingMethod::Tex2d);
        let d2 = d1.degraded().expect("tex2D degrades");
        assert_eq!(d2.kernel_family, SamplingMethod::SoftwareBilinear);
        assert_eq!(d2.degraded(), None);
        // Only the family changes — the rest of the request is intact.
        assert_eq!(d2.layer, req.layer);
        assert_eq!(d2.policy, req.policy);
    }

    #[test]
    fn lut_backed_responses_carry_dcn_overhead() {
        let _quiet = fault::quiesce();
        let req = tiny_request(2, SamplingMethod::Tex2d);
        let gpu = Gpu::new(ServeDevice::XavierAgx.config());
        let lut = LatencyLut::build(
            &gpu,
            &[LatencyKey::of(&req.layer)],
            SamplingMethod::Tex2d,
            defcon_kernels::op::OffsetPredictorKind::Standard,
        );
        let mut server = SimServer::new(cfg(1)).with_lut(lut);
        let out = server.serve(std::slice::from_ref(&req));
        assert!(out[0].dcn_overhead_ms.is_some());
        // A layer outside the LUT yields None, not an error.
        let out2 = server.serve(&[tiny_request(4, SamplingMethod::Tex2d)]);
        assert!(out2[0].dcn_overhead_ms.is_none());
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let sample = [10, 20, 30, 40];
        assert_eq!(percentile_ns(&sample, 50.0), 20);
        assert_eq!(percentile_ns(&sample, 99.0), 40);
        assert_eq!(percentile_ns(&sample, 0.0), 10);
        assert_eq!(percentile_ns(&[], 50.0), 0);
    }

    fn deadline_request(c: usize, deadline_cycles: u64) -> SimRequest {
        let mut req = tiny_request(c, SamplingMethod::SoftwareBilinear);
        req.policy.deadline_cycles = deadline_cycles;
        req
    }

    #[test]
    fn impossible_deadline_is_a_typed_terminal_verdict_and_never_cached() {
        let _quiet = fault::quiesce();
        let mut server = SimServer::new(cfg(1));
        let req = deadline_request(2, 1);
        let out = server.serve(std::slice::from_ref(&req));
        assert_eq!(out[0].outcome, ServeOutcome::DeadlineExceeded);
        assert!(out[0].reports.is_empty());
        let rendered = out[0].error.as_deref().expect("verdict carries an error");
        assert!(rendered.contains("deadline exceeded"), "{rendered}");
        assert!(rendered.contains("launch"), "{rendered}");
        assert_eq!(server.deadline_exceeded(), 1);
        // Exceeded requests are never cached: a replay misses again and
        // renders the identical verdict (determinism across temperature).
        let again = server.serve(std::slice::from_ref(&req));
        assert_eq!(server.cache().hits(), 0);
        assert_eq!(out[0].content_string(), again[0].content_string());
    }

    #[test]
    fn generous_deadline_hits_cache_with_identical_bytes() {
        let _quiet = fault::quiesce();
        let mut server = SimServer::new(cfg(1));
        let req = deadline_request(2, u64::MAX / 2);
        let cold = server.serve(std::slice::from_ref(&req));
        let warm = server.serve(std::slice::from_ref(&req));
        assert_eq!(cold[0].outcome, ServeOutcome::Served);
        assert!(!cold[0].from_cache);
        assert!(warm[0].from_cache, "second serve must hit");
        assert_eq!(cold[0].content_string(), warm[0].content_string());
        // A budgeted request keys separately from its unbudgeted twin.
        let unbudgeted = tiny_request(2, SamplingMethod::SoftwareBilinear);
        assert_ne!(req.cache_key(), unbudgeted.cache_key());
    }

    #[test]
    fn server_default_deadline_applies_to_unbudgeted_requests() {
        let _quiet = fault::quiesce();
        let mut server = SimServer::new(ServeConfig {
            default_deadline_cycles: 1,
            ..cfg(1)
        });
        let req = tiny_request(2, SamplingMethod::SoftwareBilinear);
        let out = server.serve(std::slice::from_ref(&req));
        assert_eq!(out[0].outcome, ServeOutcome::DeadlineExceeded);
        // A request-level budget overrides the server default.
        let generous = deadline_request(2, u64::MAX / 2);
        let out2 = server.serve(std::slice::from_ref(&generous));
        assert_eq!(out2[0].outcome, ServeOutcome::Served);
    }

    #[test]
    fn hit_verdict_replays_the_engine_charge_exactly() {
        // The replay must trip at the first launch whose cumulative
        // integer charge crosses the remaining budget — mirroring
        // `DeadlineBudget::charge` on a fresh simulation of the same
        // report stream.
        let mk = |kernel: &str, cycles: f64| KernelReport {
            device: "test".into(),
            kernel: kernel.to_string(),
            time_ms: 0.0,
            cycles,
            grid_blocks: 0,
            simulated_blocks: 0,
            counters: Default::default(),
        };
        let reports = [mk("a", 100.2), mk("b", 50.0)];
        // ceil(100.2) = 101; 101 + 50 = 151.
        assert!(hit_deadline_verdict(151, &reports).is_none());
        match hit_deadline_verdict(150, &reports) {
            Some(DefconError::DeadlineExceeded {
                what,
                budget_cycles,
            }) => {
                assert_eq!(what, "launch b");
                assert_eq!(budget_cycles, 150);
            }
            other => panic!("expected a deadline verdict, got {other:?}"),
        }
        match hit_deadline_verdict(100, &reports) {
            Some(DefconError::DeadlineExceeded { what, .. }) => assert_eq!(what, "launch a"),
            other => panic!("expected a deadline verdict, got {other:?}"),
        }
        // The charge the replay applies is the engine's own unit function.
        assert_eq!(DeadlineBudget::charge_units(100.2), 101);
    }

    #[test]
    fn tripped_breaker_reroutes_requests_down_the_ladder() {
        use defcon_support::fault::{FaultPlan, Schedule};
        // Trip the tex2D++ rung on the first request only; admission must
        // land it on tex2D, and the breaker log records the edge.
        let _armed = fault::arm(FaultPlan::new(7).point("breaker.trip", Schedule::Nth(0)));
        let mut server = SimServer::new(cfg(1));
        let req = tiny_request(2, SamplingMethod::Tex2dPlusPlus);
        let out = server.serve(std::slice::from_ref(&req));
        assert_eq!(out[0].request.kernel_family, SamplingMethod::Tex2d);
        assert_eq!(
            server.breaker().state(SamplingMethod::Tex2dPlusPlus),
            BreakerState::Open
        );
        assert_eq!(
            server.breaker().log(),
            ["tex2D++:closed->open:trip".to_string()]
        );
        // The open rung recovers: after the cooldown's worth of consults
        // a probe is admitted, and its success re-closes the breaker.
        let consults = server.cfg.breaker.cooldown_consults as usize + 1;
        for _ in 0..consults {
            server.serve(std::slice::from_ref(&req));
        }
        assert_eq!(
            server.breaker().state(SamplingMethod::Tex2dPlusPlus),
            BreakerState::Closed
        );
        let log = server.breaker().log();
        assert!(
            log.iter().any(|l| l.contains("open->half-open")),
            "missing probe edge in {log:?}"
        );
        assert!(
            log.iter().any(|l| l.contains("closed")),
            "missing recovery edge in {log:?}"
        );
    }

    #[test]
    fn retry_and_env_knobs_parse() {
        // `serve()` counts one retry per drain-and-retry pass (the
        // default policy retries once, reproducing the original
        // behaviour).
        assert_eq!(RetryPolicy::default().max_retries, 1);
        std::env::set_var(env::RETRY_MAX, "5");
        std::env::set_var(env::SERVE_DEADLINE, "123456");
        let cfg = ServeConfig::default()
            .with_env_overrides()
            .expect("valid overrides");
        std::env::remove_var(env::RETRY_MAX);
        std::env::remove_var(env::SERVE_DEADLINE);
        assert_eq!(cfg.retry.max_retries, 5);
        assert_eq!(cfg.default_deadline_cycles, 123_456);
    }
}
